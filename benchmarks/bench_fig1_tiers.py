"""E1 — Figure 1: per-tier latency breakdown of one end-to-end job.

Paper artifact: the three-tier architecture diagram.  The measured claim:
the user and server tiers (UNICORE's additions) cost little next to the
batch tier — "the effort to learn how to use them is minimal" only pays
off if the middleware itself is cheap.

Expected shape: middleware overhead (handshake, applet load, consignment,
gateway auth, incarnation, outcome return) is a small fraction of batch
wait + execution for any realistically sized job.

The breakdown is derived from the per-job trace
(:meth:`TierTimes.from_trace`), not from hand-placed timers: the same
spans the ``repro trace`` CLI renders.
"""

import pytest

from benchmarks._util import print_table, run_as_script, smoke_mode
from repro.client import JobMonitorController, JobPreparationAgent
from repro.grid import build_grid
from repro.grid.metrics import TierTimes
from repro.observability import telemetry_for
from repro.resources import ResourceRequest

#: Simulated execution times measured; smoke keeps one short job.
RUNTIMES = (60.0,) if smoke_mode() else (60.0, 600.0, 6000.0)


def _measure(runtime_s: float) -> TierTimes:
    grid = build_grid({"FZJ": ["FZJ-T3E"]}, seed=1)
    user = grid.add_user("Tier User", logins={"FZJ": "tier"})
    sim = grid.sim
    session = grid.connect_user(user, "FZJ")

    jpa = JobPreparationAgent(session)
    jmc = JobMonitorController(session)
    session.client.poll_interval_s = 30.0
    job = jpa.new_job("tiered", vsite="FZJ-T3E")
    job.script_task(
        "work", script="#!/bin/sh\n./app\n",
        resources=ResourceRequest(cpus=16, time_s=max(60.0, runtime_s * 3)),
        simulated_runtime_s=runtime_s,
    )

    def scenario(sim):
        job_id = yield from jpa.submit(job)
        yield from jmc.wait_for_completion(job_id)
        yield from jmc.outcome(job_id)
        return job_id

    job_id = sim.run(until=sim.process(scenario(sim)))
    sim.run()

    tracer = telemetry_for(sim).tracer
    return TierTimes.from_trace(
        tracer.trace(job_id), session_trace=tracer.trace(session.trace_id)
    )


@pytest.mark.benchmark(group="E1-fig1-tiers")
def test_e1_tier_breakdown(benchmark):
    results = {}

    def run():
        for runtime in RUNTIMES:
            results[runtime] = _measure(runtime)

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for runtime, times in results.items():
        for label, value in times.rows():
            rows.append((f"{runtime:.0f}s job", label, f"{value:10.3f}"))
        overhead = times.middleware_total()
        busy = times.batch_wait_s + times.execution_s
        rows.append(
            (f"{runtime:.0f}s job", "MIDDLEWARE / BATCH",
             f"{overhead:8.2f} / {busy:8.2f} ({overhead / busy:6.1%})")
        )
    print_table(
        "E1: per-tier latency breakdown (simulated seconds)",
        ["job", "tier component", "seconds"],
        rows,
    )

    # Shape assertions: middleware is small and does not grow with the job.
    overheads = [t.middleware_total() for t in results.values()]
    assert max(overheads) - min(overheads) < 0.5 * max(overheads) + 5.0
    for times in results.values():
        assert times.execution_s > 0.0
        assert times.middleware_total() > 0.0
    if 6000.0 in results:
        long_job = results[6000.0]
        assert long_job.middleware_total() < 0.05 * (
            long_job.batch_wait_s + long_job.execution_s
        )
        # Auth is real but bounded; incarnation is trivial next to handshake.
        assert long_job.incarnation_s < long_job.handshake_s


if __name__ == "__main__":
    run_as_script(test_e1_tier_breakdown)
