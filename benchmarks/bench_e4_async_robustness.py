"""E4 — section 5.3: the asynchronous protocol is more robust.

Paper claim: "It is an asynchronous protocol ... more robust than a
synchronous protocol.  By minimizing the length of time that an
interaction takes the asynchronous protocol protects against any
unreliability of the underlying communication mechanism."

Setup: same lossy link, same 10-minute job.  The async client consigns
(one short interaction) and later polls; the sync baseline holds the
connection with keepalives for the whole job and restarts the entire
interaction (job included) on any lost message.

Expected shape: async completion rate stays at 1.0 with modest retry
counts deep into loss rates where the sync interaction's survival
probability (≈ (1-p)^messages) collapses and it exhausts its retries.
"""

import pytest

from benchmarks._util import print_table
from repro.net import Network, establish_https
from repro.protocol import (
    AsyncProtocolClient,
    Reply,
    ReplyRouter,
    Request,
    RetryExhausted,
    RetryPolicy,
    SyncProtocolClient,
)
from repro.security import CertificateAuthority, CertificateStore, DistinguishedName
from repro.security.x509 import CertificateRole
from repro.simkernel import Simulator

JOB_DURATION_S = 600.0
TRIALS = 20
LOSS_RATES = (0.0, 0.02, 0.05, 0.10, 0.20)
MAX_ATTEMPTS = 8


def _pki():
    ca = CertificateAuthority(key_bits=384, seed=71)
    store = CertificateStore(trusted=[ca])
    c_cert, c_key = ca.issue(DistinguishedName(cn="C"), role=CertificateRole.USER)
    s_cert, s_key = ca.issue(
        DistinguishedName(cn="s.site"), role=CertificateRole.SERVER
    )
    return dict(
        client_cert=c_cert, client_key=c_key,
        server_cert=s_cert, server_key=s_key,
        client_store=store, server_store=store,
    )


PKI = _pki()


def _wire(loss, seed):
    sim = Simulator()
    net = Network(sim, seed=seed)
    net.add_host("client")
    net.add_host("server")
    net.link("client", "server", latency_s=0.02, bandwidth_Bps=250_000.0)
    state = {}

    def wiring(sim):
        state["channel"] = yield from establish_https(
            sim, net, "client", "server", **PKI
        )

    sim.run(until=sim.process(wiring(sim)))
    net.get_link("client", "server").loss_probability = loss
    net.get_link("server", "client").loss_probability = loss
    return sim, net, state["channel"]


def _async_trial(loss, seed):
    """Returns (completed, requests_sent)."""
    sim, net, channel = _wire(loss, seed)
    router = ReplyRouter(sim, net.host("client"))
    client = AsyncProtocolClient(
        sim, channel, router,
        retry=RetryPolicy(max_attempts=MAX_ATTEMPTS, base_delay_s=1.0,
                          max_delay_s=8.0),
        poll_interval_s=60.0,
    )

    # Minimal NJS stand-in: acks consigns, answers polls, job finishes
    # after JOB_DURATION_S.
    t_done = {}

    def server_loop(sim):
        host = net.host("server")
        while True:
            message = yield host.receive()
            request = message.payload
            if not isinstance(request, Request):
                continue
            if request.kind == "consign_job":
                t_done.setdefault("at", sim.now + JOB_DURATION_S)
                body = b"consigned"
            else:
                done = "at" in t_done and sim.now >= t_done["at"]
                body = b"terminal" if done else b"running"
            reply = Reply(request_id=request.request_id, ok=True, payload=body)
            channel.send(reply, reply.wire_size, to_server=False)

    sim.process(server_loop(sim))

    def user(sim):
        yield from client.consign(b"JOB" * 200, user_dn="CN=C")
        yield from client.poll_until(
            make_query=lambda: b"status?",
            user_dn="CN=C",
            is_done=lambda r: r.payload == b"terminal",
        )
        return True

    process = sim.process(user(sim))
    try:
        sim.run(until=process)
        return True, client.requests_sent
    except RetryExhausted:
        return False, client.requests_sent


def _sync_trial(loss, seed):
    """Returns (completed, interactions_started)."""
    sim, net, channel = _wire(loss, seed)
    sync = SyncProtocolClient(
        sim, channel,
        retry=RetryPolicy(max_attempts=MAX_ATTEMPTS, base_delay_s=1.0,
                          max_delay_s=8.0),
        keepalive_interval_s=15.0,
    )

    def user(sim):
        yield from sync.submit_and_hold(
            b"JOB" * 200, user_dn="CN=C", job_duration_s=JOB_DURATION_S
        )
        return True

    process = sim.process(user(sim))
    try:
        sim.run(until=process)
        return True, sync.interactions_started
    except RetryExhausted:
        return False, sync.interactions_started


@pytest.mark.benchmark(group="E4-async-robustness")
def test_e4_async_vs_sync_under_loss(benchmark):
    results = {}

    def run():
        for loss in LOSS_RATES:
            a_ok = s_ok = a_req = s_int = 0
            for trial in range(TRIALS):
                ok, reqs = _async_trial(loss, seed=1000 + trial)
                a_ok += ok
                a_req += reqs
                ok, interactions = _sync_trial(loss, seed=1000 + trial)
                s_ok += ok
                s_int += interactions
            results[loss] = (
                a_ok / TRIALS, a_req / TRIALS, s_ok / TRIALS, s_int / TRIALS
            )

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        (f"{loss:.2f}",
         f"{r[0]:.2f}", f"{r[1]:6.1f}",
         f"{r[2]:.2f}", f"{r[3]:6.1f}")
        for loss, r in results.items()
    ]
    print_table(
        f"E4: async (consign+poll) vs sync (hold) — {TRIALS} trials, "
        f"{JOB_DURATION_S:.0f}s job, {MAX_ATTEMPTS} attempts",
        ["loss", "async ok", "async msgs", "sync ok", "sync restarts"],
        rows,
    )

    # Shape: both perfect on a clean link.
    assert results[0.0][0] == 1.0 and results[0.0][2] == 1.0
    # Async survives everywhere tested.
    assert all(r[0] == 1.0 for r in results.values())
    # Sync collapses at high loss while async does not.
    assert results[0.20][2] < 0.5
    # Sync restart counts grow with loss; async message overhead stays modest.
    assert results[0.20][3] > results[0.02][3]
    assert results[0.20][1] < 60
