"""E13 — chaos sweep: completion and turnaround under injected faults.

The resilience claim of the fault subsystem: with deterministic faults
injected across the six-site production grid — lossy links, latency
spikes, gateway and NJS crash-restarts, Vsite outages, node failures —
jobs submitted through the :class:`repro.api.GridSession` facade still
complete, because every layer has a recovery mechanism (protocol
retries + circuit breaker, broker failover, NJS journal replay, batch
resubmission and outage queueing).

Setup: one arm per fault intensity.  Each arm builds a fresh grid,
arms a :class:`~repro.faults.FaultPlan` at that intensity, submits a
fixed batch of jobs spread across the fault window, and waits for all
of them.  Turnaround is measured from the per-job trace (``client.submit``
start to the last ``njs.job`` end — replays reopen the job span in the
same trace).

Expected shape: intensity 0 matches the clean E1 pipeline exactly (no
faults, no recoveries, everything completes).  At moderate intensity
(1.0) at least 95% of jobs complete, with recovery events visible in
the metrics and traces; turnaround p99 degrades gracefully rather than
jobs being lost.
"""

import pytest

from benchmarks._util import print_table, run_as_script, smoke_mode
from repro.api import GridSession
from repro.faults import FaultInjector, FaultPlan, FaultTargets
from repro.grid import build_german_grid
from repro.observability import telemetry_for

JOB_RUNTIME_S = 600.0
SUBMIT_SPACING_S = 300.0
HORIZON_S = 2 * 3600.0
SEED = 113

INTENSITIES = (0.0, 0.5, 1.0, 2.0)
JOBS = 10
SMOKE_INTENSITIES = (0.0, 1.0)
SMOKE_JOBS = 5

#: Recovery activity counted per arm (all zero on a healthy grid).
RECOVERY_COUNTERS = (
    "njs.journal_replays",
    "njs.task_resubmissions",
    "njs.task_retry_waits",
    "njs.dropped_peer_messages",
    "gateway.dropped_requests",
    "resilience.breaker_open",
    "api.failovers",
    "api.wait_retries",
    "client.stale_status_serves",
)


def _turnaround_s(tracer, handle) -> float | None:
    trace = tracer.trace(handle.trace_id)
    if trace is None:
        return None
    starts = [s.start for s in trace.spans if s.name == "client.submit"]
    ends = [s.end for s in trace.spans
            if s.name == "njs.job" and s.end is not None]
    if not starts or not ends:
        return None
    return max(ends) - min(starts)


def _run_arm(intensity: float, jobs: int) -> dict:
    grid = build_german_grid(seed=SEED)
    user = grid.add_user(
        "Chaos Bench", organization="GMD",
        logins={name: "chaos" for name in grid.usites},
    )
    plan = FaultPlan.generate(
        FaultTargets.from_grid(grid), intensity=intensity,
        seed=SEED, horizon_s=HORIZON_S,
    )
    FaultInjector(grid, plan).arm()
    session = GridSession(grid, user, "FZJ")

    handles = []
    for i in range(jobs):
        job = session.new_job(f"chaos-{i}")
        job.script_task("work", "#!/bin/sh\n./app\n",
                        simulated_runtime_s=JOB_RUNTIME_S)
        handles.append(session.submit(job))
        session.advance(SUBMIT_SPACING_S)
    finals = [session.wait(h) for h in handles]

    telemetry = telemetry_for(grid.sim)
    completed = sum(1 for v in finals if v.status == "successful")
    turnarounds = sorted(
        t for h in handles
        if (t := _turnaround_s(telemetry.tracer, h)) is not None
    )
    recoveries = sum(
        telemetry.metrics.counter(name).value for name in RECOVERY_COUNTERS
    )
    replay_spans = sum(
        1 for h in handles
        if (tr := telemetry.tracer.trace(h.trace_id)) is not None
        and any(s.name == "njs.replay" for s in tr.spans)
    )

    def pctl(q: float) -> float:
        if not turnarounds:
            return float("nan")
        return turnarounds[min(len(turnarounds) - 1,
                               int(q * (len(turnarounds) - 1) + 0.999))]

    return {
        "intensity": intensity,
        "faults": len(plan),
        "injected": telemetry.metrics.counter("faults.injected").value,
        "completed": completed,
        "jobs": jobs,
        "rate": completed / jobs,
        "p50_s": pctl(0.50),
        "p99_s": pctl(0.99),
        "recoveries": recoveries,
        "replayed_jobs": replay_spans,
    }


@pytest.mark.benchmark(group="E13-chaos")
def test_e13_chaos_sweep(benchmark):
    intensities = SMOKE_INTENSITIES if smoke_mode() else INTENSITIES
    jobs = SMOKE_JOBS if smoke_mode() else JOBS
    arms: list[dict] = []

    def run():
        arms.clear()
        for intensity in intensities:
            arms.append(_run_arm(intensity, jobs))

    benchmark.pedantic(run, rounds=1, iterations=1)

    print_table(
        f"E13: fault-intensity sweep — {jobs} jobs of {JOB_RUNTIME_S:.0f}s, "
        f"{HORIZON_S/3600:.0f}h fault window, seed {SEED}",
        ["intensity", "faults", "applied", "done", "rate",
         "p50 [s]", "p99 [s]", "recoveries", "replayed"],
        [
            (f"{a['intensity']:.1f}", a["faults"], f"{a['injected']:.0f}",
             f"{a['completed']}/{a['jobs']}", f"{a['rate']:.2f}",
             f"{a['p50_s']:7.1f}", f"{a['p99_s']:7.1f}",
             f"{a['recoveries']:.0f}", a["replayed_jobs"])
            for a in arms
        ],
    )

    by_intensity = {a["intensity"]: a for a in arms}
    clean = by_intensity[0.0]
    moderate = by_intensity[1.0]

    # Zero intensity is the control arm: the E1 pipeline, untouched.
    assert clean["faults"] == 0 and clean["injected"] == 0
    assert clean["rate"] == 1.0
    assert clean["recoveries"] == 0
    # Clean turnaround is the job runtime plus middleware overhead and
    # poll granularity — nowhere near a retry or crash window.
    assert clean["p99_s"] < JOB_RUNTIME_S + 120.0

    # The headline gate: moderate chaos, >= 95% completion, visible
    # recovery work rather than silent luck.
    assert moderate["rate"] >= 0.95
    assert moderate["recoveries"] > 0
    # Degradation is graceful: faults cost time, not jobs.
    assert moderate["p99_s"] >= clean["p99_s"]


if __name__ == "__main__":
    run_as_script(test_e13_chaos_sweep)
