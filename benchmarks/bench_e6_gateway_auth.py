"""E6 — sections 4/5.2: certificate mapping replaces uniform uids.

Paper claim: the gateway maps the user's certificate DN to the local
user-id, which "eliminates the need to install uniform UNIX uid/gid
pairs for UNICORE users".  The viability question: what does the mapping
cost, and how does it scale with the user database?

Expected shape: a UUDB lookup is dictionary-cheap and essentially flat
in database size; the real per-connection cost is the SSL handshake
(RSA operations), orders of magnitude above the lookup.  A hypothetical
uniform-uid scheme would save only the lookup — i.e. nothing measurable.
"""

import pytest

from benchmarks._util import print_table
from repro.security import (
    CertificateAuthority,
    CertificateStore,
    DistinguishedName,
    UUDB,
    ssl_handshake,
)
from repro.security.x509 import CertificateRole

CA = CertificateAuthority(key_bits=384, seed=81)
STORE = CertificateStore(trusted=[CA])
USER_CERT, USER_KEY = CA.issue(
    DistinguishedName(cn="Bench User", o="FZJ"), role=CertificateRole.USER
)
SERVER_CERT, SERVER_KEY = CA.issue(
    DistinguishedName(cn="gw.bench"), role=CertificateRole.SERVER
)


def _uudb(n_users: int) -> UUDB:
    db = UUDB("BENCH")
    for i in range(n_users):
        db.add_user(f"CN=User {i:06d}, O=FZJ, C=DE", login=f"u{i:06d}")
    db.add_user(USER_CERT.subject, login="bench")
    return db


@pytest.mark.benchmark(group="E6-gateway-auth")
@pytest.mark.parametrize("n_users", [100, 1_000, 10_000, 100_000])
def test_e6_mapping_cost_vs_database_size(benchmark, n_users):
    db = _uudb(n_users)
    mapping = benchmark(db.map_certificate, USER_CERT)
    assert mapping.login == "bench"


@pytest.mark.benchmark(group="E6-gateway-auth")
def test_e6_certificate_validation_cost(benchmark):
    benchmark(STORE.validate, USER_CERT, 100.0)


@pytest.mark.benchmark(group="E6-gateway-auth")
def test_e6_full_handshake_cost(benchmark):
    benchmark(
        lambda: ssl_handshake(
            client_cert=USER_CERT, client_key=USER_KEY,
            server_cert=SERVER_CERT, server_key=SERVER_KEY,
            client_store=STORE, server_store=STORE, now=100.0,
        )
    )


@pytest.mark.benchmark(group="E6-gateway-auth")
def test_e6_shape_report(benchmark):
    """Mapping is O(1)-ish and negligible next to the handshake."""
    import time

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def cost(fn, reps):
        t0 = time.perf_counter()
        for _ in range(reps):
            fn()
        return (time.perf_counter() - t0) / reps

    rows = []
    map_costs = {}
    for n in (100, 1_000, 10_000, 100_000):
        db = _uudb(n)
        map_costs[n] = cost(lambda: db.map_certificate(USER_CERT), 2000)
        rows.append((f"UUDB lookup ({n} users)", f"{map_costs[n] * 1e6:10.2f}"))
    handshake = cost(
        lambda: ssl_handshake(
            client_cert=USER_CERT, client_key=USER_KEY,
            server_cert=SERVER_CERT, server_key=SERVER_KEY,
            client_store=STORE, server_store=STORE, now=100.0,
        ),
        20,
    )
    rows.append(("full SSL handshake", f"{handshake * 1e6:10.2f}"))
    rows.append(("handshake / lookup", f"{handshake / map_costs[100_000]:10.0f}x"))
    print_table(
        "E6: gateway authentication cost (wall-clock microseconds)",
        ["operation", "us"],
        rows,
    )
    # Flat in database size (hash lookup): within 10x across 3 decades.
    assert map_costs[100_000] < 10 * map_costs[100] + 2e-6
    # The handshake dwarfs the mapping — uniform uids would save nothing.
    assert handshake > 100 * map_costs[100_000]
