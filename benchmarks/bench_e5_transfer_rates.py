"""E5 — section 5.6: Uspace-to-Uspace transfer rates on the data plane.

Paper claim: "The file transfer between Uspaces has to be accomplished
through NJS – NJS communication via the gateway ... As this solution has
disadvantages with respect to transfer rates especially for huge data
sets UNICORE is working on alternatives."

The wire is now split into a control plane (small protocol messages)
and a data plane (chunked, binary-framed streams).  This experiment
measures what that split buys over the pre-split shape, where a file
travelled as one monolithic base64-in-JSON message:

1. **Framing overhead** — wire bytes per payload byte, per payload size
   and chunk size.  Binary frames carry file bytes raw, so the ratio
   converges to ~1.0 (frame headers plus SSL record framing); base64
   JSON floors at ~4/3.
2. **Control-plane latency under load** — a small control message sent
   mid-transfer queues behind at most one chunk per hop, not behind the
   whole file.  The monolithic shape would block it for the full
   serialization of the data set.

Expected shape: overhead ratio falls with payload size and is below
1.05 from 1 MiB up at the default chunk size; the mid-transfer control
delay is bounded by a few chunk serializations while the monolithic
bound grows linearly with the data set.
"""

import pytest

from benchmarks._util import print_table, run_as_script, smoke_mode
from repro.grid import build_grid
from repro.protocol.datapath import DEFAULT_CHUNK_BYTES
from repro.security.ssl import SSLSession
from repro.server.njs.supervisor import TransferAck

WAN_BW = 1_250_000.0  # 10 Mbit/s
WAN_LAT = 0.015
HOPS = 3  # NJS -> gateway -> peer gateway -> NJS

SIZES = [1 << 16, 1 << 20, 1 << 24, 1 << 27]
CHUNK_SIZES = [1 << 16, DEFAULT_CHUNK_BYTES, 1 << 20]
PROBE_STREAM_BYTES = 1 << 24

SMOKE_SIZES = [1 << 18, 1 << 20]
SMOKE_CHUNK_SIZES = [DEFAULT_CHUNK_BYTES]
SMOKE_PROBE_STREAM_BYTES = 1 << 22


def _legacy_wire_bytes(size: int) -> int:
    """The pre-split shape: file bytes base64'd into a JSON envelope."""
    b64 = 4 * -(-size // 3)
    return SSLSession.wire_bytes(b64 + 64)


def _build():
    return build_grid(
        {"A": ["FZJ-T3E"], "B": ["ZIB-SP2"]},
        seed=4, wan_latency_s=WAN_LAT, wan_bandwidth_Bps=WAN_BW,
    )


def _warm(njs_a):
    """Pay the route's SSL handshake before anything is measured."""
    yield from njs_a._stream_to_peer(
        "B", b"warm",
        {"kind": "forward-stage", "job": "warm", "path": "warm.dat"},
    )


def _measure_transfer(size: int, chunk_bytes: int) -> dict:
    """One streamed Uspace transfer A->B; time and per-hop wire bytes."""
    grid = _build()
    njs_a = grid.usites["A"].njs
    content = b"\xa5" * size
    result: dict = {}

    def scenario(sim):
        yield from _warm(njs_a)
        base_bytes = grid.network.total_bytes_sent()
        corr = next(njs_a._corr_seq)
        reply_ev = sim.event(name="e5-ack")
        njs_a._pending[corr] = reply_ev
        t0 = sim.now
        yield from njs_a._stream_to_peer(
            "B", content,
            {
                "kind": "uspace-file", "job": "U1@A", "path": "big.dat",
                "reply": "A", "corr": corr,
            },
            chunk_bytes=chunk_bytes,
        )
        ack = yield reply_ev
        assert ack.ok
        result["time_s"] = sim.now - t0
        # The same frames crossed all three hops (plus the small ack).
        result["wire_per_hop"] = (
            (grid.network.total_bytes_sent() - base_bytes) / HOPS
        )

    p = grid.sim.process(scenario(grid.sim))
    grid.sim.run(until=p)
    return result


def _control_delay(chunk_bytes: int, stream_bytes: int, busy: bool) -> float:
    """Route time of one small control message, idle or mid-stream."""
    grid = _build()
    njs_a = grid.usites["A"].njs
    result: dict = {}

    def scenario(sim):
        yield from _warm(njs_a)
        if busy:
            sim.process(
                njs_a._stream_to_peer(
                    "B", b"\x5a" * stream_bytes,
                    {"kind": "forward-stage", "job": "bulk", "path": "bulk.dat"},
                    chunk_bytes=chunk_bytes,
                ),
                name="bulk-stream",
            )
            # Probe mid-transfer, once the stream is in full flight.
            yield sim.timeout(2.0)
        probe = TransferAck(corr_id=999_999, ok=True)
        t0 = sim.now
        yield from njs_a._send_via_route("B", probe, probe.wire_payload)
        result["t"] = sim.now - t0

    p = grid.sim.process(scenario(grid.sim))
    grid.sim.run(until=p)
    return result["t"]


@pytest.mark.benchmark(group="E5-transfer-rates")
def test_e5_streaming_overhead_and_rates(benchmark):
    sizes = SMOKE_SIZES if smoke_mode() else SIZES
    chunks = SMOKE_CHUNK_SIZES if smoke_mode() else CHUNK_SIZES
    results: dict = {}

    def run():
        results.clear()
        for size in sizes:
            for chunk in chunks:
                results[(size, chunk)] = _measure_transfer(size, chunk)

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for size in sizes:
        for chunk in chunks:
            r = results[(size, chunk)]
            ratio = r["wire_per_hop"] / size
            legacy = _legacy_wire_bytes(size) / size
            rows.append((
                f"{size >> 10} KiB" if size < 1 << 20 else f"{size >> 20} MiB",
                f"{chunk >> 10} KiB",
                f"{r['time_s']:9.2f}",
                f"{size / r['time_s'] / 1e3:8.1f}",
                f"{ratio:6.4f}",
                f"{legacy:6.4f}",
            ))
    print_table(
        "E5: streamed Uspace->Uspace transfer via both gateways "
        f"({WAN_BW * 8 / 1e6:.0f} Mbit/s WAN)",
        ["size", "chunk", "time (s)", "KB/s", "wire/payload",
         "legacy b64-JSON"],
        rows,
    )

    default = {
        size: results[(size, DEFAULT_CHUNK_BYTES)]
        for size in sizes
        if (size, DEFAULT_CHUNK_BYTES) in results
    }
    # The headline gate: at the default chunk size, framing overhead is
    # within 5% from 1 MiB up — against the legacy floor of ~33%.
    for size, r in default.items():
        if size >= 1 << 20:
            assert r["wire_per_hop"] / size <= 1.05
        assert _legacy_wire_bytes(size) / size > 1.3
    # Overhead shrinks as payloads grow (headers amortize).
    ordered = [default[s]["wire_per_hop"] / s for s in sorted(default)]
    assert ordered[-1] <= ordered[0]
    # Throughput is WAN-limited, not protocol-limited: the biggest
    # transfer achieves at least half the raw link rate end to end.
    big = max(default)
    assert big / default[big]["time_s"] > 0.5 * WAN_BW


@pytest.mark.benchmark(group="E5-transfer-rates")
def test_e5_control_plane_latency_under_bulk_transfer(benchmark):
    chunk = DEFAULT_CHUNK_BYTES
    stream_bytes = (
        SMOKE_PROBE_STREAM_BYTES if smoke_mode() else PROBE_STREAM_BYTES
    )
    delays: dict = {}

    def run():
        delays["idle"] = _control_delay(chunk, stream_bytes, busy=False)
        delays["busy"] = _control_delay(chunk, stream_bytes, busy=True)

    benchmark.pedantic(run, rounds=1, iterations=1)

    chunk_tx = chunk / WAN_BW
    monolithic_tx = stream_bytes / WAN_BW
    extra = delays["busy"] - delays["idle"]
    print_table(
        "E5: control-message route time during a "
        f"{stream_bytes >> 20} MiB bulk transfer",
        ["probe", "delay (s)"],
        [
            ("idle link", f"{delays['idle']:7.3f}"),
            ("mid-transfer", f"{delays['busy']:7.3f}"),
            ("extra wait", f"{extra:7.3f}"),
            ("one chunk serialization", f"{chunk_tx:7.3f}"),
            ("monolithic message bound", f"{monolithic_tx:7.3f}"),
        ],
    )

    # Chunks interleave with control traffic: the control message waits
    # at most ~one chunk serialization per hop, never the whole file.
    assert extra <= 3 * chunk_tx + 0.05
    assert extra < 0.05 * monolithic_tx


if __name__ == "__main__":
    run_as_script(
        test_e5_streaming_overhead_and_rates,
        test_e5_control_plane_latency_under_bulk_transfer,
    )
