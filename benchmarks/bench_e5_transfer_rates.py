"""E5 — section 5.6: https NJS-to-NJS transfer is slow for huge data.

Paper claim: "The file transfer between Uspaces has to be accomplished
through NJS – NJS communication via the gateway ... As this solution has
disadvantages with respect to transfer rates especially for huge data
sets UNICORE is working on alternatives."

Setup: move a Uspace file between two sites (a) the paper's way — https
records through both gateways (three store-and-forward hops, record
framing, seal/open CPU) — and (b) the direct-socket alternative.

Expected shape: tiny transfers are dominated by handshake/latency on
both paths (https relatively worst there); as size grows, https
throughput plateaus *below* the link rate (per-record seal/open CPU plus
store-and-forward through both gateways) while direct approaches the raw
link bandwidth.  The relative slowdown converges to a constant factor
> 1, so the absolute time lost to the https tunnel grows without bound
with the data size — the paper's "especially for huge data sets".
"""

import pytest

from benchmarks._util import print_table
from repro.net import DirectChannel, Network
from repro.security.ssl import SSLSession
from repro.server.njs.supervisor import TransferFile
from repro.grid import build_grid
from repro.simkernel import Simulator

SIZES = [1 << 10, 1 << 16, 1 << 20, 1 << 24, 1 << 27, 1 << 30]
WAN_BW = 1_250_000.0  # 10 Mbit/s
WAN_LAT = 0.015


def _https_transfer_time(size: int) -> float:
    """Uspace->Uspace through the real NJS route (via both gateways)."""
    grid = build_grid(
        {"A": ["FZJ-T3E"], "B": ["ZIB-SP2"]},
        seed=4, wan_latency_s=WAN_LAT, wan_bandwidth_Bps=WAN_BW,
    )
    njs_a = grid.usites["A"].njs
    # Make a job context at B to receive the file (transfer stash works
    # even without it, but keep it realistic).
    payload = TransferFile(
        corr_id=1, reply_usite="A", parent_job_id="U1@A",
        destination_path="big.dat", content=b"",
    )

    done = {}

    def sender(sim):
        t0 = sim.now
        reply_ev = sim.event()
        njs_a._pending[1] = reply_ev
        yield from njs_a._send_via_route("B", payload, size + 512)
        yield reply_ev
        done["t"] = sim.now - t0

    grid.sim.process(sender(grid.sim))
    grid.sim.run()
    return done["t"]


def _direct_transfer_time(size: int) -> float:
    """The direct-socket alternative: one WAN hop, no framing."""
    sim = Simulator()
    net = Network(sim, seed=4)
    net.add_host("a")
    net.add_host("b")
    net.link("a", "b", latency_s=WAN_LAT, bandwidth_Bps=WAN_BW)
    done = {}

    def sender(sim):
        t0 = sim.now
        channel = yield from DirectChannel.establish(sim, net, "a", "b")
        yield channel.send("file", size, deliver=False)
        # Acknowledge like a real file transfer would.
        yield channel.send("ack", 64, to_server=False, deliver=False)
        done["t"] = sim.now - t0

    sim.process(sender(sim))
    sim.run()
    return done["t"]


@pytest.mark.benchmark(group="E5-transfer-rates")
def test_e5_https_vs_direct_transfer(benchmark):
    https = {}
    direct = {}

    def run():
        for size in SIZES:
            https[size] = _https_transfer_time(size)
            direct[size] = _direct_transfer_time(size)

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for size in SIZES:
        bw_h = size / https[size]
        bw_d = size / direct[size]
        rows.append((
            f"{size / 1024:.0f} KiB" if size < 1 << 20 else f"{size >> 20} MiB",
            f"{https[size]:10.2f}", f"{bw_h / 1e3:8.1f}",
            f"{direct[size]:10.2f}", f"{bw_d / 1e3:8.1f}",
            f"{https[size] / direct[size]:5.2f}x",
        ))
    print_table(
        "E5: Uspace->Uspace transfer, https-via-gateways vs direct socket "
        f"({WAN_BW * 8 / 1e6:.0f} Mbit/s WAN)",
        ["size", "https (s)", "https KB/s", "direct (s)", "direct KB/s",
         "slowdown"],
        rows,
    )

    big = SIZES[-1]
    # https is never faster, and the direct path approaches the link rate
    # on huge files while https plateaus below it.
    assert all(https[s] >= direct[s] * 0.99 for s in SIZES)
    assert direct[big] * 1.2 > big / WAN_BW  # direct ~ link-limited
    https_bw_big = big / https[big]
    direct_bw_big = big / direct[big]
    # The paper's complaint: a substantial, persistent rate disadvantage.
    assert https_bw_big < 0.75 * direct_bw_big
    # The absolute time lost to the tunnel grows monotonically with size.
    gaps = [https[s] - direct[s] for s in SIZES]
    assert all(b >= a for a, b in zip(gaps, gaps[1:]))
    assert gaps[-1] > 100.0  # minutes lost on a 1 GiB data set
    # Sanity: record accounting matches the wire model.
    assert SSLSession.wire_bytes(big) > big
