"""E15 — persistence cost: storage write amplification, snapshot/restore.

The persistence layer's bargain: every consign, delivery, and completion
is durably recorded *before* the NJS acts on it, which buys crash and
full-site recovery at the price of extra writes on the hot path.  This
experiment prices that bargain per backend:

* **write amplification** — storage bytes written per byte of consigned
  AJO.  The journal writes each AJO once at consign plus bounded
  bookkeeping records, so amplification should sit in the low single
  digits and stay flat as the job count grows.
* **writes / fsyncs per job** — the hot-path operation count.  Batched
  groups (consign, done+outcome) must keep fsyncs per job constant.
* **snapshot / restore wall time** — checkpointing the whole grid and
  thawing it into a fresh deployment, the operator-facing costs of the
  warm-restart feature.

Arms: the ``memory`` backend (deterministic dictionaries) and ``sqlite``
(stdlib, real transactions).  Both run the identical workload; the
restored grid must serve the same job listings as the original — a
correctness gate inside the benchmark, not just a cost table.
"""

import time

import pytest

from benchmarks._util import (
    print_table,
    run_as_script,
    smoke_mode,
    write_bench_artifact,
)
from repro.api import GridSession
from repro.grid import build_grid

SEED = 151
JOBS = 20
SMOKE_JOBS = 5
JOB_RUNTIME_S = 300.0
SUBMIT_SPACING_S = 60.0

BACKENDS = ("memory", "sqlite")


def _run_arm(backend: str, jobs: int) -> dict:
    grid = build_grid({"FZJ": ["FZJ-T3E"]}, seed=SEED, storage=backend)
    user = grid.add_user("Persist Bench", logins={"FZJ": "bench"})
    session = GridSession(grid, user, "FZJ")

    handles = []
    for i in range(jobs):
        job = session.new_job(f"persist-{i}")
        job.script_task("work", "#!/bin/sh\n./app\n",
                        simulated_runtime_s=JOB_RUNTIME_S)
        handles.append(session.submit(job))
        session.advance(SUBMIT_SPACING_S)
    for handle in handles:
        assert session.wait(handle).status == "successful"

    storage = grid.storage
    ajo_bytes = sum(
        len(entry.ajo_bytes)
        for entry in grid.usites["FZJ"].njs.journal.entries()
    )

    t0 = time.perf_counter()
    snap = grid.snapshot()
    snapshot_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    restored = build_grid(restore_from=snap)
    restore_s = time.perf_counter() - t0

    # Correctness gate: the thawed grid serves the same jobs.
    restored_journal = restored.usites["FZJ"].njs.journal
    assert len(restored_journal) == jobs
    assert restored.sim.now == grid.sim.now

    return {
        "backend": backend,
        "jobs": jobs,
        "writes_per_job": storage.writes / jobs,
        "fsyncs_per_job": storage.fsyncs / jobs,
        "bytes_per_job": storage.bytes_written / jobs,
        "write_amplification": storage.bytes_written / max(1, ajo_bytes),
        "snapshot_s": snapshot_s,
        "restore_s": restore_s,
    }


@pytest.mark.benchmark(group="E15-persistence")
def test_e15_persistence_costs(benchmark):
    jobs = SMOKE_JOBS if smoke_mode() else JOBS
    arms: list[dict] = []

    def run():
        arms.clear()
        for backend in BACKENDS:
            arms.append(_run_arm(backend, jobs))

    benchmark.pedantic(run, rounds=1, iterations=1)

    print_table(
        f"E15: persistence cost — {jobs} jobs of {JOB_RUNTIME_S:.0f}s, "
        f"seed {SEED}",
        ["backend", "writes/job", "fsyncs/job", "bytes/job",
         "amplification", "snapshot [s]", "restore [s]"],
        [
            (a["backend"], f"{a['writes_per_job']:.1f}",
             f"{a['fsyncs_per_job']:.1f}", f"{a['bytes_per_job']:.0f}",
             f"{a['write_amplification']:.2f}",
             f"{a['snapshot_s']:.3f}", f"{a['restore_s']:.3f}")
            for a in arms
        ],
    )

    by_backend = {a["backend"]: a for a in arms}
    for arm in arms:
        # The journal writes each AJO once plus bounded bookkeeping:
        # amplification must stay in the low single digits.
        assert arm["write_amplification"] < 8.0
        # Batched groups: a handful of durable units per job, not one
        # per record.
        assert arm["fsyncs_per_job"] < 10.0
    # Both backends persist through the same Table/Log surface, so the
    # operation profile (not the latency) must match exactly.
    assert (by_backend["memory"]["writes_per_job"]
            == by_backend["sqlite"]["writes_per_job"])

    write_bench_artifact("e15", {
        "jobs": jobs,
        **{a["backend"]: {k: v for k, v in a.items() if k != "backend"}
           for a in arms},
    })


if __name__ == "__main__":
    run_as_script(test_e15_persistence_costs)
