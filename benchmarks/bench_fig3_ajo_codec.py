"""E3 — Figure 3 + section 5.3: the AJO as the wire unit.

Paper artifact: the AJO class hierarchy and its role as "the
transferable unit between the UNICORE components".

Expected shape: serialize/deserialize cost is linear in the number of
actions; nesting depth adds negligible cost at constant action count
(recursion is cheap relative to the payload).
"""

import pytest

from benchmarks._util import print_table
from repro.ajo import (
    AbstractJobObject,
    ExecuteScriptTask,
    decode_ajo,
    encode_ajo,
)


def flat_job(n_tasks: int) -> AbstractJobObject:
    job = AbstractJobObject("flat", vsite="V", usite="U", user_dn="CN=bench")
    prev = None
    for i in range(n_tasks):
        task = job.add(
            ExecuteScriptTask(f"t{i}", script=f"#!/bin/sh\nstep {i}\n")
        )
        if prev is not None:
            job.add_dependency(prev, task, files=[f"f{i}.dat"])
        prev = task
    return job


def deep_job(depth: int, tasks_per_level: int) -> AbstractJobObject:
    root = AbstractJobObject("deep", vsite="V", usite="U", user_dn="CN=bench")
    group = root
    for level in range(depth):
        for i in range(tasks_per_level):
            group.add(
                ExecuteScriptTask(f"t{level}.{i}", script="#!/bin/sh\nx\n")
            )
        sub = AbstractJobObject(f"level{level + 1}", vsite="V", usite="U")
        group.add(sub)
        group = sub
    return root


@pytest.mark.benchmark(group="E3-ajo-codec")
@pytest.mark.parametrize("n_tasks", [10, 100, 1000])
def test_e3_encode_scales_linearly(benchmark, n_tasks):
    job = flat_job(n_tasks)
    encoded = benchmark(encode_ajo, job)
    assert decode_ajo(encoded) == job


@pytest.mark.benchmark(group="E3-ajo-codec")
@pytest.mark.parametrize("n_tasks", [10, 100, 1000])
def test_e3_decode_scales_linearly(benchmark, n_tasks):
    data = encode_ajo(flat_job(n_tasks))
    decoded = benchmark(decode_ajo, data)
    assert decoded.total_actions() == n_tasks + 1


@pytest.mark.benchmark(group="E3-ajo-codec-depth")
@pytest.mark.parametrize("depth", [1, 4, 16])
def test_e3_depth_is_cheap(benchmark, depth):
    # Constant ~64 actions regardless of nesting.
    tasks_per_level = 64 // depth
    job = deep_job(depth, tasks_per_level)
    encoded = benchmark(encode_ajo, job)
    assert decode_ajo(encoded).depth() == depth + 1


@pytest.mark.benchmark(group="E3-ajo-codec")
def test_e3_shape_report(benchmark):
    """Summary: bytes and per-action cost scale linearly."""
    import time

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    rows = []
    costs = {}
    for n in (10, 100, 1000):
        job = flat_job(n)
        t0 = time.perf_counter()
        encoded = encode_ajo(job)
        t_enc = time.perf_counter() - t0
        t0 = time.perf_counter()
        decode_ajo(encoded)
        t_dec = time.perf_counter() - t0
        costs[n] = (t_enc + t_dec) / n
        rows.append(
            (n, len(encoded), f"{len(encoded) / n:8.1f}",
             f"{1e6 * costs[n]:8.2f}")
        )
    print_table(
        "E3: AJO codec scaling",
        ["tasks", "wire bytes", "bytes/action", "codec us/action"],
        rows,
    )
    # Per-action cost roughly flat across two decades = linear scaling.
    assert costs[1000] < 10 * costs[10]
