"""E8 — section 5.5: site autonomy — UNICORE jobs are ordinary batch jobs.

Paper: "Jobs delivered through UNICORE are treated the same way any
other batch job is treated on a system.  This results from the basic
design decision for UNICORE to have minimal impact on the local
administration."

Setup: one SP-2 under a Poisson stream of site-local jobs, with UNICORE
jobs of the *same size distribution* submitted into the same queue.
Compare the wait-time distributions of the two populations.

Expected shape: statistically indistinguishable wait times (the batch
system has no code path that reads the job's origin) — confirmed with a
Mann-Whitney U test.  As a negative control, a hypothetical
priority-for-locals scheduler *does* separate the distributions,
demonstrating the experiment has power.
"""

import numpy as np
import pytest
from scipy import stats

from benchmarks._util import print_table
from repro.batch import BatchJobSpec, BatchSystem, machine
from repro.batch.scheduling import FCFSScheduler
from repro.grid.metrics import summarize_turnarounds
from repro.grid.workloads import LocalLoadGenerator, WorkloadProfile
from repro.resources import ResourceSet
from repro.simkernel import Simulator, derive_rng

HORIZON = 6 * 24 * 3600.0
PROFILE = WorkloadProfile(mean_runtime_s=3600.0, max_cpus=64, sigma_runtime=0.8)


class LocalsFirstScheduler(FCFSScheduler):
    """Negative control: what site autonomy FORBIDS — origin-aware priority."""

    name = "locals-first"

    def select(self, pending, free_cpus, now, running):
        reordered = (
            [r for r in pending if r.spec.origin == "local"]
            + [r for r in pending if r.spec.origin != "local"]
        )
        return super().select(reordered, free_cpus, now, running)


def _mixed_load(scheduler) -> tuple[list[float], list[float]]:
    """Run mixed local+unicore load; returns (local_waits, unicore_waits)."""
    sim = Simulator()
    batch = BatchSystem(sim, machine("RUKA-SP2"), scheduler=scheduler)
    LocalLoadGenerator(
        sim, batch, derive_rng(8, "locals"),
        arrival_rate_per_s=1 / 500.0, profile=PROFILE, horizon_s=HORIZON,
    )

    # UNICORE jobs: same sizes, same queue, origin tag only.
    def unicore_stream(sim):
        rng = derive_rng(8, "unicore")
        i = 0
        while sim.now < HORIZON:
            yield sim.timeout(float(rng.exponential(500.0)))
            if sim.now >= HORIZON:
                break
            i += 1
            runtime = PROFILE.sample_runtime(rng)
            cpus = min(PROFILE.sample_cpus(rng), batch.machine.cpus)
            res = ResourceSet(
                cpus=cpus, time_s=max(60.0, runtime * 3.0),
                memory_mb=float(min(64 * cpus, batch.machine.total_memory_mb)),
            )
            script = batch.dialect.render_script(f"uc{i}", "batch", res, ["./a"])
            try:
                batch.submit(BatchJobSpec(
                    name=f"uc{i}", owner=f"ucuser{i % 5}", queue="batch",
                    script=script, resources=res, wallclock_s=runtime,
                    origin="unicore",
                ))
            except Exception:
                continue

    sim.process(unicore_stream(sim))
    sim.run()

    local_waits, unicore_waits = [], []
    for record in batch.all_records():
        if record.wait_time is None:
            continue
        (local_waits if record.spec.origin == "local" else unicore_waits).append(
            record.wait_time
        )
    return local_waits, unicore_waits


@pytest.mark.benchmark(group="E8-site-autonomy")
def test_e8_unicore_jobs_wait_like_local_jobs(benchmark):
    data = {}

    def run():
        data["fair"] = _mixed_load(FCFSScheduler())
        data["priority"] = _mixed_load(LocalsFirstScheduler())

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    pvalues = {}
    for label, (local_w, unicore_w) in data.items():
        u = stats.mannwhitneyu(local_w, unicore_w, alternative="two-sided")
        pvalues[label] = u.pvalue
        for origin, waits in (("local", local_w), ("unicore", unicore_w)):
            s = summarize_turnarounds(waits)
            rows.append((
                label, origin, s["count"], f"{s['mean']:9.1f}",
                f"{s['p50']:9.1f}", f"{s['p90']:9.1f}",
                f"{u.pvalue:8.4f}" if origin == "unicore" else "",
            ))
    print_table(
        "E8: wait times (s), local vs UNICORE jobs on one SP-2 "
        f"({HORIZON / 86400:.0f} simulated days)",
        ["scheduler", "origin", "n", "mean", "p50", "p90", "MWU p"],
        rows,
    )

    local_w, unicore_w = data["fair"]
    assert len(local_w) > 200 and len(unicore_w) > 200
    # The real system: indistinguishable (no evidence of difference).
    assert pvalues["fair"] > 0.05
    # The forbidden scheduler: clearly distinguishable (test has power).
    assert pvalues["priority"] < 0.01
    pl, pu = data["priority"]
    assert float(np.mean(pu)) > float(np.mean(pl))
