"""E9 — section 5.5: incarnation via translation tables.

Paper mechanism: the NJS "translate[s] the abstract specifications into
the local system specific nomenclature using translation tables".

Expected shape: incarnating one abstract task costs microseconds (table
lookup plus string templating), roughly uniform across all four vendor
dialects; the emitted scripts parse back under their own dialect and
carry the correct local nomenclature.
"""

import pytest

from benchmarks._util import print_table
from repro.ajo import CompileTask, ExecuteScriptTask, LinkTask, UserTask
from repro.batch import machine
from repro.resources import ResourceRequest
from repro.security.uudb import UserMapping
from repro.server.njs.incarnation import incarnate_task
from repro.server.vsite import Vsite
from repro.simkernel import Simulator
from repro.vfs import UspaceManager

MACHINES = ["FZJ-T3E", "RUKA-SP2", "LRZ-VPP", "DWD-SX4"]
MAPPING = UserMapping(dn="CN=Bench", login="bench", gid="users")


def _vsite(name: str) -> tuple[Vsite, object]:
    sim = Simulator()
    vsite = Vsite(sim, machine(name))
    uspace = UspaceManager(name).create("bench-job")
    return vsite, uspace


def _tasks():
    return [
        CompileTask("compile", sources=["a.f90", "b.f90"], compiler="f90",
                    options=["-O3"]),
        LinkTask("link", objects=["a.o", "b.o"], output="app.exe",
                 linker="f90"),
        UserTask("run", executable="app.exe", arguments=["-n", "8"],
                 resources=ResourceRequest(cpus=8, time_s=3600),
                 environment={"UC_THREADS": "4"}),
        ExecuteScriptTask("script", script="#!/bin/sh\nlegacy_app\n"),
    ]


@pytest.mark.benchmark(group="E9-incarnation")
@pytest.mark.parametrize("machine_name", MACHINES)
def test_e9_incarnation_cost_per_dialect(benchmark, machine_name):
    vsite, uspace = _vsite(machine_name)
    tasks = _tasks()

    def incarnate_all():
        return [
            incarnate_task(task, vsite, MAPPING, uspace) for task in tasks
        ]

    specs = benchmark(incarnate_all)
    # Each spec parses back under the machine's own dialect.
    for spec in specs:
        assert vsite.batch.dialect.parse_directives(spec.script)


@pytest.mark.benchmark(group="E9-incarnation")
def test_e9_translation_correctness_report(benchmark):
    """The emitted scripts really are in the local nomenclature."""
    import time

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    expectations = {
        "FZJ-T3E": ("#QSUB", "f90 -c", "mpprun -n 8"),
        "RUKA-SP2": ("#@", "xlf90 -c", "poe -procs 8"),
        "LRZ-VPP": ("#PJM", "frt -c", "vppexec -p 8"),
        "DWD-SX4": ("#QSUB", "f90 -c", "mpprun -n 8"),
    }
    rows = []
    costs = {}
    for name in MACHINES:
        vsite, uspace = _vsite(name)
        tasks = _tasks()
        t0 = time.perf_counter()
        reps = 200
        for _ in range(reps):
            specs = [incarnate_task(t, vsite, MAPPING, uspace) for t in tasks]
        costs[name] = (time.perf_counter() - t0) / (reps * len(tasks))
        directive, compile_inv, run_inv = expectations[name]
        joined = "\n".join(s.script for s in specs)
        assert directive in joined, name
        assert compile_inv in joined, name
        assert run_inv in joined, name
        rows.append((
            name, vsite.batch.dialect.display_name, directive,
            compile_inv.split()[0], f"{costs[name] * 1e6:8.1f}",
        ))
    print_table(
        "E9: incarnation across the four vendor dialects",
        ["machine", "dialect", "directive", "local f90", "us/task"],
        rows,
    )
    # Uniformly cheap: all four dialects within 5x of each other and
    # under 200 microseconds per task.
    values = list(costs.values())
    assert max(values) < 5 * min(values)
    assert max(values) < 200e-6


@pytest.mark.benchmark(group="E9-incarnation")
def test_e9_environment_translation(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """Abstract env vars are renamed per the translation table."""
    vsite, uspace = _vsite("RUKA-SP2")
    task = UserTask(
        "run", executable="a.out",
        environment={"UC_THREADS": "8", "MY_VAR": "x"},
    )
    spec = incarnate_task(task, vsite, MAPPING, uspace)
    assert "export OMP_NUM_THREADS=8" in spec.script  # renamed
    assert "export MY_VAR=x" in spec.script  # passed through
