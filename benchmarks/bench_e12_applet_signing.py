"""E12 — section 5.2: signed applets — tamper detection and its cost.

Paper mechanism: the JPA/JMC are signed applets; "the applet certificate
is checked to assure the user that the software has not been tampered
with and can be trusted".

Expected shape: signing and verification cost grows linearly with bundle
size (hashing dominates once bundles exceed the RSA fixed cost); every
single-byte tamper across a randomized campaign is detected — zero
misses.
"""

import random

import pytest

from benchmarks._util import print_table
from repro.security import (
    AppletBundle,
    CertificateAuthority,
    DistinguishedName,
    TamperedBundleError,
    sign_applet,
    verify_applet,
)
from repro.security.x509 import CertificateRole

CA = CertificateAuthority(key_bits=384, seed=91)
DEV_CERT, DEV_KEY = CA.issue(
    DistinguishedName(cn="UNICORE Software", o="Consortium"),
    role=CertificateRole.SOFTWARE,
)

SIZES = [1 << 12, 1 << 16, 1 << 20, 1 << 23]


def _bundle(total_bytes: int, n_files: int = 16) -> AppletBundle:
    rng = random.Random(total_bytes)
    bundle = AppletBundle(name="JPA", version="3.0")
    per_file = total_bytes // n_files
    for i in range(n_files):
        bundle.add_file(
            f"jpa/Class{i:02d}.class", rng.randbytes(per_file)
        )
    return bundle


@pytest.mark.benchmark(group="E12-applet-signing")
@pytest.mark.parametrize("size", SIZES)
def test_e12_sign_cost(benchmark, size):
    bundle = _bundle(size)
    applet = benchmark(sign_applet, bundle, DEV_CERT, DEV_KEY)
    verify_applet(applet)


@pytest.mark.benchmark(group="E12-applet-signing")
@pytest.mark.parametrize("size", SIZES)
def test_e12_verify_cost(benchmark, size):
    applet = sign_applet(_bundle(size), DEV_CERT, DEV_KEY)
    benchmark(verify_applet, applet)


@pytest.mark.benchmark(group="E12-applet-signing")
def test_e12_tamper_campaign_zero_misses(benchmark):
    """Flip one byte anywhere, add or drop a file: always detected."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rng = random.Random(12)
    detected = attempts = 0
    rows = []
    for size in SIZES:
        size_detected = 0
        trials = 40
        for trial in range(trials):
            applet = sign_applet(_bundle(size), DEV_CERT, DEV_KEY)
            mode = trial % 3
            files = applet.bundle.files
            if mode == 0:  # flip one byte in one file
                path = rng.choice(sorted(files))
                data = bytearray(files[path])
                pos = rng.randrange(len(data))
                data[pos] ^= 1 << rng.randrange(8)
                files[path] = bytes(data)
            elif mode == 1:  # add a backdoor class
                files["jpa/Backdoor.class"] = rng.randbytes(64)
            else:  # drop a class
                del files[rng.choice(sorted(files))]
            attempts += 1
            try:
                verify_applet(applet)
            except TamperedBundleError:
                detected += 1
                size_detected += 1
        rows.append((f"{size >> 10} KiB", trials, size_detected))
    print_table(
        "E12: tamper-detection campaign (byte flips, additions, deletions)",
        ["bundle size", "attempts", "detected"],
        rows,
    )
    assert detected == attempts  # zero misses, the security claim


@pytest.mark.benchmark(group="E12-applet-signing")
def test_e12_scaling_report(benchmark):
    import time

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    rows = []
    costs = {}
    for size in SIZES:
        bundle = _bundle(size)
        reps = 20
        t0 = time.perf_counter()
        for _ in range(reps):
            applet = sign_applet(bundle, DEV_CERT, DEV_KEY)
        t_sign = (time.perf_counter() - t0) / reps
        t0 = time.perf_counter()
        for _ in range(reps):
            verify_applet(applet)
        t_verify = (time.perf_counter() - t0) / reps
        costs[size] = t_verify
        rows.append((
            f"{size >> 10} KiB", f"{t_sign * 1e3:8.2f}",
            f"{t_verify * 1e3:8.2f}",
            f"{size / t_verify / 1e6:8.1f}",
        ))
    print_table(
        "E12: sign/verify cost vs bundle size",
        ["bundle", "sign ms", "verify ms", "verify MB/s"],
        rows,
    )
    # Hashing-dominated: 2048x bigger bundle costs far more than the
    # fixed RSA floor, and throughput converges (linear regime).
    assert costs[SIZES[-1]] > 5 * costs[SIZES[0]]
