"""E10 — section 5.7: the production deployment, replayed.

Paper evidence: "UNICORE is running at different German sites including
[FZJ, RUS, RUKA, LRZ, ZIB, DWD].  The systems covered are Cray T3E,
Fujitsu VPP/700, IBM SP-2, and NEC SX-4."

Setup: the full six-site grid; three users with different home sites
submit mixed UNICORE workloads (single-site jobs plus cross-site
pipelines) while every machine also carries its own local load, for two
simulated days.

Expected shape: the system sustains the offered load with zero lost
jobs — every consigned job reaches a terminal state, job-state
accounting is consistent across tiers, and every site shows nonzero
utilization from both populations.
"""

import pytest

from benchmarks._util import print_table, write_bench_artifact
from repro.client import JobMonitorController, JobPreparationAgent
from repro.grid import (
    LocalLoadGenerator,
    WorkloadProfile,
    build_german_grid,
    synth_job,
)
from repro.resources import ResourceRequest
from repro.simkernel import derive_rng

HORIZON = 2 * 24 * 3600.0
VSITES = {
    "FZJ": "FZJ-T3E", "RUS": "RUS-T3E", "RUKA": "RUKA-SP2",
    "ZIB": "ZIB-SP2", "LRZ": "LRZ-VPP", "DWD": "DWD-SX4",
}


def _replay():
    grid = build_german_grid(seed=10)
    logins = {s: "prod" for s in grid.usites}
    users = [
        grid.add_user(f"Prod User {i}", logins=logins) for i in range(3)
    ]
    sessions = {
        (u.name, site): grid.connect_user(u, site)
        for u in users
        for site in ("FZJ", "ZIB", "DWD")
    }

    # Local background load everywhere.
    for site, vsite_name in VSITES.items():
        LocalLoadGenerator(
            grid.sim,
            grid.usites[site].vsites[vsite_name].batch,
            derive_rng(10, f"local:{site}"),
            arrival_rate_per_s=1 / 1800.0,
            profile=WorkloadProfile(mean_runtime_s=5400.0, max_cpus=32),
            horizon_s=HORIZON,
        )

    stats = {"submitted": 0, "terminal": 0, "successful": 0, "rejected": 0}
    # Seed every site's Xspace with the input data synth jobs import.
    for site in grid.usites.values():
        for i in range(200):
            site.xspace.fs.write(f"/data/job{i}/input.dat", b"x" * 4096)
            site.xspace.fs.write(f"/data/job{i}/job{i}.f90", b"program x\nend\n")

    def user_stream(user, home_site, seed_name):
        rng = derive_rng(10, seed_name)
        session = sessions[(user.name, home_site)]
        jpa = JobPreparationAgent(session)
        jmc = JobMonitorController(session)
        session.client.poll_interval_s = 300.0
        i = 0
        while grid.sim.now < HORIZON:
            yield grid.sim.timeout(float(rng.exponential(3000.0)))
            if grid.sim.now >= HORIZON:
                break
            i += 1
            roll = rng.random()
            try:
                if roll < 0.7:
                    builder = synth_job(
                        jpa, rng, f"job{i}", vsite=VSITES[home_site],
                        profile=WorkloadProfile(
                            mean_runtime_s=2700.0, max_cpus=32
                        ),
                    )
                else:
                    # Cross-site pipeline home -> another site.
                    other = "LRZ" if home_site != "LRZ" else "RUKA"
                    builder = jpa.new_job(f"pipe{i}", vsite=VSITES[home_site])
                    stage1 = builder.script_task(
                        "stage1", script="#!/bin/sh\ns1\n",
                        resources=ResourceRequest(cpus=8, time_s=7200),
                        simulated_runtime_s=float(rng.uniform(600, 3600)),
                    )
                    sub = builder.sub_job(
                        f"remote{i}", vsite=VSITES[other], usite=other
                    )
                    sub.script_task(
                        "stage2", script="#!/bin/sh\ns2\n",
                        resources=ResourceRequest(cpus=8, time_s=7200),
                        simulated_runtime_s=float(rng.uniform(600, 3600)),
                    )
                    builder.depends(stage1, sub.ajo, files=["hand.off"])
                stats["submitted"] += 1
                job_id = yield from jpa.submit(builder)
            except Exception:
                stats["rejected"] += 1
                continue
            final = yield from jmc.wait_for_completion(job_id)
            stats["terminal"] += 1
            if final["status"] == "successful":
                stats["successful"] += 1

    for i, (user, home) in enumerate(
        zip(users, ("FZJ", "ZIB", "DWD"))
    ):
        grid.sim.process(user_stream(user, home, f"user{i}"))

    grid.sim.run(until=HORIZON + 12 * 3600.0)  # drain period
    # Let remaining polls finish.
    grid.sim.run()
    return grid, stats


@pytest.mark.benchmark(group="E10-production-replay")
def test_e10_two_day_replay(benchmark):
    holder = {}

    def run():
        holder["grid"], holder["stats"] = _replay()

    benchmark.pedantic(run, rounds=1, iterations=1)
    grid, stats = holder["grid"], holder["stats"]

    rows = []
    for site, vsite_name in VSITES.items():
        batch = grid.usites[site].vsites[vsite_name].batch
        records = batch.all_records()
        local = [r for r in records if r.spec.origin == "local"]
        unicore = [r for r in records if r.spec.origin == "unicore"]
        nonterminal = [r for r in records if not r.state.is_terminal]
        rows.append((
            vsite_name, len(local), len(unicore),
            f"{batch.utilization():6.1%}", len(nonterminal),
        ))
    print_table(
        "E10: two-day production replay, six sites",
        ["vsite", "local jobs", "unicore jobs", "utilization", "stuck"],
        rows,
    )
    print(f"  UNICORE jobs: {stats['submitted']} submitted, "
          f"{stats['terminal']} reached terminal state, "
          f"{stats['successful']} successful, "
          f"{stats['rejected']} rejected at submission")

    # No lost jobs: everything submitted reached a terminal state.
    assert stats["submitted"] > 50
    assert stats["terminal"] == stats["submitted"]
    assert stats["successful"] >= 0.9 * stats["terminal"]
    # NJS-side accounting agrees: every run at every site terminal.
    for site in grid.usites.values():
        for run in site.njs._runs.values():
            assert run.status().is_terminal, run.job_id
    # Every machine saw UNICORE work and did real local work too.
    for _, local_n, unicore_n, _, stuck in rows:
        assert stuck == 0
        assert local_n > 0
    assert sum(r[2] for r in rows) > 50

    write_bench_artifact("e10", {
        "horizon_s": HORIZON,
        "stats": stats,
        "sites": {
            vsite: {
                "local_jobs": local_n,
                "unicore_jobs": unicore_n,
                "utilization": util.strip(),
                "stuck": stuck,
            }
            for vsite, local_n, unicore_n, util, stuck in rows
        },
    })
