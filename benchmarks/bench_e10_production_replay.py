"""E10 — section 5.7: the production deployment, replayed.

Paper evidence: "UNICORE is running at different German sites including
[FZJ, RUS, RUKA, LRZ, ZIB, DWD].  The systems covered are Cray T3E,
Fujitsu VPP/700, IBM SP-2, and NEC SX-4."

Setup: the full six-site grid; three users with different home sites
each run ``--jobs N`` concurrent submission streams of mixed UNICORE
workloads (single-site jobs plus cross-site pipelines) while every
machine also carries its own local load, for two simulated days.

Expected shape: the system sustains the offered load with zero lost
jobs — every consigned job reaches a terminal state, job-state
accounting is consistent across tiers, and every site shows nonzero
utilization from both populations.

Beyond the correctness gate, this is the repo's *hot-path throughput*
benchmark: the artifact records simulator events per job, wire bytes
per job, and wall seconds per job so the perf trajectory is comparable
run over run (see ``benchmarks/compare_bench.py``).  ``--legacy-wait``
forces the paper's original bounded-poll monitoring (the pre-delta,
pre-subscription behavior) — that is what the committed baseline was
measured with; the default path uses completion-event subscriptions.

Run directly for the CI smoke gate or for measurements:

    python -m benchmarks.bench_e10_production_replay --smoke
    python -m benchmarks.bench_e10_production_replay --jobs 10
    python -m benchmarks.bench_e10_production_replay --jobs 10 --legacy-wait
"""

import sys
import time

import pytest

from benchmarks._util import (
    print_table,
    run_as_script,
    smoke_mode,
    write_bench_artifact,
)
from repro.client import JobMonitorController, JobPreparationAgent
from repro.grid import (
    LocalLoadGenerator,
    WorkloadProfile,
    build_german_grid,
    synth_job,
)
from repro.observability import telemetry_for
from repro.resources import ResourceRequest
from repro.simkernel import derive_rng

HORIZON = 2 * 24 * 3600.0
SMOKE_HORIZON = 6 * 3600.0
VSITES = {
    "FZJ": "FZJ-T3E", "RUS": "RUS-T3E", "RUKA": "RUKA-SP2",
    "ZIB": "ZIB-SP2", "LRZ": "LRZ-VPP", "DWD": "DWD-SX4",
}
#: Counters worth tracking run over run (all land in the artifact).
TRACKED_COUNTERS = (
    "njs.index.hits",
    "njs.index.rebuilds",
    "njs.incarnation_cache.hits",
    "njs.incarnation_cache.misses",
    "jmc.delta_views",
    "gateway.subscribe_holds",
    "protocol.requests_sent",
    "protocol.retries",
)


def _streams_arg(default: int = 1) -> int:
    """The ``--jobs N`` scale factor (streams per user)."""
    argv = sys.argv
    for i, arg in enumerate(argv):
        if arg == "--jobs" and i + 1 < len(argv):
            return max(1, int(argv[i + 1]))
        if arg.startswith("--jobs="):
            return max(1, int(arg.split("=", 1)[1]))
    return default


def _replay(scale: int = 1, legacy_wait: bool = False,
            horizon: float = HORIZON):
    grid = build_german_grid(seed=10)
    logins = {s: "prod" for s in grid.usites}
    users = [
        grid.add_user(f"Prod User {i}", logins=logins) for i in range(3)
    ]
    sessions = {
        (u.name, site): grid.connect_user(u, site)
        for u in users
        for site in ("FZJ", "ZIB", "DWD")
    }

    # Local background load everywhere.
    for site, vsite_name in VSITES.items():
        LocalLoadGenerator(
            grid.sim,
            grid.usites[site].vsites[vsite_name].batch,
            derive_rng(10, f"local:{site}"),
            arrival_rate_per_s=1 / 1800.0,
            profile=WorkloadProfile(mean_runtime_s=5400.0, max_cpus=32),
            horizon_s=horizon,
        )

    stats = {"submitted": 0, "terminal": 0, "successful": 0, "rejected": 0}
    # Seed every site's Xspace with the input data synth jobs import.
    for site in grid.usites.values():
        for i in range(200):
            site.xspace.fs.write(f"/data/job{i}/input.dat", b"x" * 4096)
            site.xspace.fs.write(f"/data/job{i}/job{i}.f90", b"program x\nend\n")

    def user_stream(user, home_site, seed_name):
        rng = derive_rng(10, seed_name)
        session = sessions[(user.name, home_site)]
        jpa = JobPreparationAgent(session)
        jmc = JobMonitorController(session)
        i = 0
        while grid.sim.now < horizon:
            yield grid.sim.timeout(float(rng.exponential(3000.0)))
            if grid.sim.now >= horizon:
                break
            i += 1
            roll = rng.random()
            try:
                if roll < 0.7:
                    builder = synth_job(
                        jpa, rng, f"job{i}", vsite=VSITES[home_site],
                        profile=WorkloadProfile(
                            mean_runtime_s=2700.0, max_cpus=32
                        ),
                    )
                else:
                    # Cross-site pipeline home -> another site.
                    other = "LRZ" if home_site != "LRZ" else "RUKA"
                    builder = jpa.new_job(f"pipe{i}", vsite=VSITES[home_site])
                    stage1 = builder.script_task(
                        "stage1", script="#!/bin/sh\ns1\n",
                        resources=ResourceRequest(cpus=8, time_s=7200),
                        simulated_runtime_s=float(rng.uniform(600, 3600)),
                    )
                    sub = builder.sub_job(
                        f"remote{i}", vsite=VSITES[other], usite=other
                    )
                    sub.script_task(
                        "stage2", script="#!/bin/sh\ns2\n",
                        resources=ResourceRequest(cpus=8, time_s=7200),
                        simulated_runtime_s=float(rng.uniform(600, 3600)),
                    )
                    builder.depends(stage1, sub.ajo, files=["hand.off"])
                stats["submitted"] += 1
                job_id = yield from jpa.submit(builder)
            except Exception:
                stats["rejected"] += 1
                continue
            final = yield from jmc.wait_for_completion(
                job_id, subscribe=not legacy_wait
            )
            stats["terminal"] += 1
            if final["status"] == "successful":
                stats["successful"] += 1

    for i, (user, home) in enumerate(
        zip(users, ("FZJ", "ZIB", "DWD"), strict=True)
    ):
        for stream in range(scale):
            grid.sim.process(user_stream(user, home, f"user{i}.{stream}"))

    grid.sim.run(until=horizon + 12 * 3600.0)  # drain period
    # Let remaining waits finish.
    grid.sim.run()
    return grid, stats


def _run_replay(benchmark, scale: int, legacy_wait: bool, horizon: float):
    holder = {}

    def run():
        started = time.perf_counter()
        holder["grid"], holder["stats"] = _replay(
            scale=scale, legacy_wait=legacy_wait, horizon=horizon
        )
        holder["wall_s"] = time.perf_counter() - started

    benchmark.pedantic(run, rounds=1, iterations=1)
    grid, stats = holder["grid"], holder["stats"]

    rows = []
    for site, vsite_name in VSITES.items():
        batch = grid.usites[site].vsites[vsite_name].batch
        records = batch.all_records()
        local = [r for r in records if r.spec.origin == "local"]
        unicore = [r for r in records if r.spec.origin == "unicore"]
        nonterminal = [r for r in records if not r.state.is_terminal]
        rows.append((
            vsite_name, len(local), len(unicore),
            f"{batch.utilization():6.1%}", len(nonterminal),
        ))
    print_table(
        f"E10: production replay, six sites "
        f"(scale={scale}, {'poll' if legacy_wait else 'subscribe'} wait)",
        ["vsite", "local jobs", "unicore jobs", "utilization", "stuck"],
        rows,
    )
    print(f"  UNICORE jobs: {stats['submitted']} submitted, "
          f"{stats['terminal']} reached terminal state, "
          f"{stats['successful']} successful, "
          f"{stats['rejected']} rejected at submission")

    # No lost jobs: everything submitted reached a terminal state.
    min_submitted = (2 if smoke_mode() else 25) * scale
    assert stats["submitted"] > min_submitted
    assert stats["terminal"] == stats["submitted"]
    assert stats["successful"] >= 0.9 * stats["terminal"]
    # NJS-side accounting agrees: every run at every site terminal.
    for site in grid.usites.values():
        for run in site.njs._runs.values():
            assert run.status().is_terminal, run.job_id
    # Every machine saw UNICORE work and did real local work too.
    for _, local_n, _unicore_n, _, stuck in rows:
        assert stuck == 0
        assert local_n > 0
    assert sum(r[2] for r in rows) > min_submitted

    profile = grid.sim.profile()
    jobs = max(1, stats["submitted"])
    metrics = telemetry_for(grid.sim).metrics
    throughput = {
        "jobs": stats["submitted"],
        "events_per_job": profile["events_processed"] / jobs,
        "wire_bytes_per_job": grid.network.total_bytes_sent() / jobs,
        "wall_s_per_job": holder["wall_s"] / jobs,
    }
    print(
        f"  throughput: {throughput['events_per_job']:.0f} events/job, "
        f"{throughput['wire_bytes_per_job']:.0f} wire bytes/job, "
        f"{throughput['wall_s_per_job'] * 1000:.1f} wall ms/job"
    )

    write_bench_artifact("e10", {
        "horizon_s": horizon,
        "scale": scale,
        "legacy_wait": legacy_wait,
        "stats": stats,
        "throughput": throughput,
        "sim_profile": profile,
        "counters": {
            name: metrics.counter_value(name) for name in TRACKED_COUNTERS
        },
        "sites": {
            vsite: {
                "local_jobs": local_n,
                "unicore_jobs": unicore_n,
                "utilization": util.strip(),
                "stuck": stuck,
            }
            for vsite, local_n, unicore_n, util, stuck in rows
        },
    })


@pytest.mark.benchmark(group="E10-production-replay")
def test_e10_two_day_replay(benchmark):
    if smoke_mode():
        _run_replay(
            benchmark,
            scale=_streams_arg(1),
            legacy_wait="--legacy-wait" in sys.argv,
            horizon=SMOKE_HORIZON,
        )
    else:
        _run_replay(
            benchmark,
            scale=_streams_arg(1),
            legacy_wait="--legacy-wait" in sys.argv,
            horizon=HORIZON,
        )


if __name__ == "__main__":
    run_as_script(test_e10_two_day_replay)
