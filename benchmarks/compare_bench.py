"""Perf-trajectory gate: diff fresh BENCH_*.json against committed baselines.

The committed baselines under ``benchmarks/baselines/`` record the
hot-path cost profile this repo has already achieved (for E10, measured
with ``--legacy-wait`` — the pre-subscription bounded-poll behavior, so
the monitoring-protocol win stays visible run over run).  CI regenerates
fresh artifacts on every push and this module compares them metric by
metric:

* **fail** metrics (deterministic simulation-counter costs such as
  events per job or wire bytes per job) hard-fail the build when they
  regress by more than :data:`FAIL_THRESHOLD` (25%) past the baseline.
* **warn** metrics (wall-clock derived, machine-dependent) only print a
  warning — CI runners are too noisy for wall time to gate merges.

Re-baselining: after an *intentional* change to the cost profile (a new
protocol feature, a deliberate trade-off), regenerate the full-horizon
artifacts and bless them::

    REPRO_BENCH_DIR=/tmp/fresh python -m benchmarks.bench_e10_production_replay --jobs 10 --legacy-wait
    REPRO_BENCH_DIR=/tmp/fresh python -m benchmarks.bench_e11_broker_ablation
    REPRO_BENCH_DIR=/tmp/fresh python -m benchmarks.bench_e15_persistence
    python -m benchmarks.compare_bench --fresh /tmp/fresh --update

then commit the updated ``benchmarks/baselines/*.json`` with a sentence
in the PR explaining why the trajectory moved.

Usage::

    python -m benchmarks.compare_bench --fresh <dir-with-fresh-artifacts>
    python -m benchmarks.compare_bench --fresh <dir> --update   # re-baseline
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import typing

__all__ = [
    "MetricSpec",
    "METRIC_SPECS",
    "FAIL_THRESHOLD",
    "CompareBenchError",
    "load_artifact",
    "metric_value",
    "compare_metric",
    "compare_experiment",
    "main",
]


class CompareBenchError(Exception):
    """A gate input is unusable (corrupt artifact, unknown experiment).

    ``main`` turns this into a one-line message and exit code 2 — the
    gate must never die with a traceback on a bad input, because a
    traceback reads as "the tooling is broken" when the actual story is
    "your artifact is broken".
    """

#: Relative regression past the baseline that hard-fails the gate.
FAIL_THRESHOLD = 0.25

BASELINE_DIR = os.path.join(os.path.dirname(__file__), "baselines")


class MetricSpec(typing.NamedTuple):
    """One gated metric: where it lives and how it is judged."""

    path: str  #: dotted path into the artifact, e.g. "throughput.events_per_job"
    direction: str  #: "lower" or "higher" is better
    severity: str  #: "fail" gates the build, "warn" only prints


#: Per-experiment gate definitions.  Counter-derived metrics fail the
#: build; wall-clock metrics warn only (CI runners are noisy).
METRIC_SPECS: dict[str, tuple[MetricSpec, ...]] = {
    "e10": (
        MetricSpec("throughput.events_per_job", "lower", "fail"),
        MetricSpec("throughput.wire_bytes_per_job", "lower", "fail"),
        MetricSpec("throughput.wall_s_per_job", "lower", "warn"),
    ),
    "e11": (
        MetricSpec("jain_fairness", "higher", "fail"),
        MetricSpec("makespan_federated_s", "lower", "warn"),
    ),
    # E12 is wall-clock by construction (real sockets), so both metrics
    # are warn-only: runner noise must not gate merges.
    "e12": (
        MetricSpec("transport.msgs_per_s", "higher", "warn"),
        MetricSpec("transport.stream_MBps", "higher", "warn"),
    ),
    # E15 is warn-only per the persistence acceptance criteria: the
    # wall-time metrics are machine-dependent, and amplification shifts
    # legitimately whenever the journal record shapes evolve.
    "e15": (
        MetricSpec("sqlite.write_amplification", "lower", "warn"),
        MetricSpec("sqlite.fsyncs_per_job", "lower", "warn"),
        MetricSpec("sqlite.snapshot_s", "lower", "warn"),
        MetricSpec("sqlite.restore_s", "lower", "warn"),
    ),
}


def load_artifact(directory: str, experiment: str) -> dict | None:
    """Read ``BENCH_<experiment>.json`` from ``directory`` (None if absent).

    Raises :class:`CompareBenchError` when the file exists but cannot be
    read or parsed — a half-written artifact must fail loudly, not be
    mistaken for "bench did not run".
    """
    path = os.path.join(directory, f"BENCH_{experiment}.json")
    if not os.path.exists(path):
        return None
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        raise CompareBenchError(
            f"cannot read artifact {path}: {err}"
        ) from None
    if not isinstance(data, dict):
        raise CompareBenchError(
            f"artifact {path} is not a JSON object "
            f"(got {type(data).__name__})"
        )
    return data


def metric_value(artifact: dict, dotted: str) -> float | None:
    """Resolve a dotted path ("throughput.events_per_job") to a number."""
    node: object = artifact
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return float(node) if isinstance(node, (int, float)) else None


def compare_metric(
    spec: MetricSpec, baseline: float, fresh: float,
    threshold: float = FAIL_THRESHOLD,
) -> tuple[str, float]:
    """Judge one metric; returns ``(verdict, relative_change)``.

    ``relative_change`` is signed in the *bad* direction: +0.30 means
    30% worse than baseline, -0.50 means 50% better.  Verdicts: ``ok``,
    ``improved``, ``warn`` (past threshold on a warn metric), ``fail``.
    """
    if baseline == 0:
        # No baseline signal; only flag appearing-from-zero costs.
        change = 0.0 if fresh == 0 else float("inf")
    else:
        change = (fresh - baseline) / abs(baseline)
    if spec.direction == "higher":
        change = -change
    if change > threshold:
        return (spec.severity, change)
    if change < 0:
        return ("improved", change)
    return ("ok", change)


def compare_experiment(
    experiment: str,
    baseline: dict | None,
    fresh: dict | None,
    threshold: float = FAIL_THRESHOLD,
) -> list[dict]:
    """Compare all gated metrics of one experiment.

    Returns one row per metric: ``{metric, verdict, baseline, fresh,
    change}``.  Missing artifacts yield a single ``missing-baseline`` /
    ``missing-fresh`` row with verdict ``warn`` (a gate that silently
    skips is not a gate, but absence should not brick unrelated PRs).
    """
    if fresh is None:
        return [{"metric": "<artifact>", "verdict": "warn",
                 "note": f"no fresh BENCH_{experiment}.json — bench did not run"}]
    if baseline is None:
        return [{"metric": "<artifact>", "verdict": "warn",
                 "note": f"no committed baseline for {experiment} — "
                         "run compare_bench --update to create one"}]
    rows = []
    for spec in METRIC_SPECS[experiment]:
        base_v = metric_value(baseline, spec.path)
        fresh_v = metric_value(fresh, spec.path)
        if base_v is None or fresh_v is None:
            rows.append({"metric": spec.path, "verdict": "warn",
                         "note": "metric missing from artifact"})
            continue
        verdict, change = compare_metric(spec, base_v, fresh_v, threshold)
        rows.append({
            "metric": spec.path, "verdict": verdict,
            "baseline": base_v, "fresh": fresh_v, "change": change,
        })
    return rows


def _print_rows(experiment: str, rows: list[dict]) -> None:
    print(f"{experiment}:")
    for row in rows:
        if "note" in row:
            print(f"  [{row['verdict'].upper():>8}] {row['metric']}: {row['note']}")
            continue
        arrow = f"{row['change']:+.1%}" if row["change"] != float("inf") else "+inf"
        print(
            f"  [{row['verdict'].upper():>8}] {row['metric']}: "
            f"{row['baseline']:.6g} -> {row['fresh']:.6g} ({arrow} "
            f"in the costly direction)"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="compare_bench", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--fresh", default=".", help="directory holding fresh BENCH_*.json"
    )
    parser.add_argument(
        "--baselines", default=BASELINE_DIR,
        help="directory holding committed baselines",
    )
    parser.add_argument(
        "--threshold", type=float, default=FAIL_THRESHOLD,
        help="relative regression that fails the gate (default 0.25)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="bless the fresh artifacts as the new committed baselines",
    )
    parser.add_argument(
        "experiments", nargs="*", default=[],
        help="experiments to compare (default: all with gate specs)",
    )
    opts = parser.parse_args(argv)
    # Explicitly-named experiments tighten the contract: the caller
    # asserted these artifacts exist, so absence is a failure rather
    # than the default-mode "bench did not run" warning.
    explicit = bool(opts.experiments)
    experiments = opts.experiments or sorted(METRIC_SPECS)
    unknown = [e for e in experiments if e not in METRIC_SPECS]
    if unknown:
        print(
            f"compare_bench: unknown experiment(s) {', '.join(unknown)}; "
            f"gated experiments are: {', '.join(sorted(METRIC_SPECS))}",
            file=sys.stderr,
        )
        return 2

    if opts.update:
        os.makedirs(opts.baselines, exist_ok=True)
        for experiment in experiments:
            src = os.path.join(opts.fresh, f"BENCH_{experiment}.json")
            if not os.path.exists(src):
                print(f"{experiment}: nothing to bless ({src} missing)")
                continue
            dst = os.path.join(opts.baselines, f"BENCH_{experiment}.json")
            shutil.copyfile(src, dst)
            print(f"{experiment}: baseline updated from {src}")
        return 0

    failed = False
    for experiment in experiments:
        try:
            baseline = load_artifact(opts.baselines, experiment)
            fresh = load_artifact(opts.fresh, experiment)
        except CompareBenchError as err:
            print(f"compare_bench: {err}", file=sys.stderr)
            return 2
        if explicit and (baseline is None or fresh is None):
            which = "baseline" if baseline is None else "fresh"
            where = opts.baselines if baseline is None else opts.fresh
            print(
                f"compare_bench: {experiment} was requested explicitly but "
                f"its {which} artifact BENCH_{experiment}.json is missing "
                f"from {where}",
                file=sys.stderr,
            )
            return 2
        rows = compare_experiment(
            experiment, baseline, fresh, threshold=opts.threshold,
        )
        _print_rows(experiment, rows)
        failed = failed or any(row["verdict"] == "fail" for row in rows)
    if failed:
        print("perf-trajectory gate: FAIL (see rows above)")
        return 1
    print("perf-trajectory gate: pass")
    return 0


if __name__ == "__main__":
    sys.exit(main())
