"""A14 (ablation) — substrate design choice: FCFS vs EASY backfill.

The paper leaves destination scheduling entirely to the sites (section
5.5), so the simulator must model *credible* local policies — the shapes
of all queueing-sensitive experiments (E2, E8, E10, E11) depend on it.
This ablation validates the two implemented policies against each other
on a day of mixed load.

Expected shape: EASY backfill raises utilization and cuts mean wait for
small/short jobs without delaying the queue head beyond its FCFS
reservation — the classic result from the SP-2 literature the policy
comes from.
"""

import numpy as np
import pytest

from benchmarks._util import print_table
from repro.batch import BackfillScheduler, BatchSystem, FCFSScheduler, machine
from repro.grid.workloads import LocalLoadGenerator, WorkloadProfile
from repro.simkernel import Simulator, derive_rng

HORIZON = 24 * 3600.0


def _run_day(scheduler):
    sim = Simulator()
    batch = BatchSystem(sim, machine("RUKA-SP2"), scheduler=scheduler)
    LocalLoadGenerator(
        sim, batch, derive_rng(14, "day"),
        arrival_rate_per_s=1 / 180.0,
        profile=WorkloadProfile(mean_runtime_s=3600.0, max_cpus=128,
                                sigma_runtime=1.2),
        horizon_s=HORIZON,
    )
    sim.run()
    records = [r for r in batch.all_records() if r.wait_time is not None]
    waits = np.array([r.wait_time for r in records])
    small = np.array([
        r.wait_time for r in records if r.spec.resources.cpus <= 8
    ])
    return {
        "utilization": batch.utilization(),
        "mean_wait": float(waits.mean()),
        "p90_wait": float(np.percentile(waits, 90)),
        "small_mean_wait": float(small.mean()) if small.size else 0.0,
        "finished": sum(r.state.value == "done" for r in records),
    }


@pytest.mark.benchmark(group="A14-scheduler-ablation")
def test_a14_backfill_vs_fcfs(benchmark):
    results = {}

    def run():
        results["fcfs"] = _run_day(FCFSScheduler())
        results["backfill"] = _run_day(BackfillScheduler())

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        (
            name,
            f"{r['utilization']:8.1%}",
            f"{r['mean_wait']:9.0f}",
            f"{r['p90_wait']:9.0f}",
            f"{r['small_mean_wait']:9.0f}",
            r["finished"],
        )
        for name, r in results.items()
    ]
    print_table(
        "A14: one day on the SP-2, FCFS vs EASY backfill (same workload)",
        ["scheduler", "utilization", "mean wait", "p90 wait",
         "small-job wait", "finished"],
        rows,
    )

    fcfs, easy = results["fcfs"], results["backfill"]
    # Backfill never loses throughput, and improves waits overall and for
    # small jobs in particular.
    assert easy["utilization"] >= fcfs["utilization"] * 0.99
    assert easy["mean_wait"] <= fcfs["mean_wait"]
    assert easy["small_mean_wait"] <= fcfs["small_mean_wait"]
