"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` regenerates one experiment from DESIGN.md section 5.
Simulation-clock experiments print their table from a single simulated
run (wrapped in ``benchmark.pedantic(rounds=1)`` so they appear in the
pytest-benchmark report); implementation-cost experiments use
pytest-benchmark in the ordinary way.

Run with output:  pytest benchmarks/ --benchmark-only -s

Smoke mode: running a benchmark module directly with ``--smoke`` (or
with ``REPRO_SMOKE=1`` in the environment) executes a fast-path variant
— fewer/shorter configurations, crash-detection only — which is what CI
runs on every push.
"""

from __future__ import annotations

import json
import os
import sys
import typing

from repro.client import JobMonitorController, JobPreparationAgent
from repro.grid import build_grid
from repro.resources import ResourceRequest

__all__ = [
    "print_table",
    "single_site_session",
    "run_simple_job",
    "smoke_mode",
    "write_bench_artifact",
    "NullBenchmark",
    "run_as_script",
]


def smoke_mode() -> bool:
    """True when running the fast CI smoke path."""
    return "--smoke" in sys.argv or os.environ.get("REPRO_SMOKE", "") not in ("", "0")


def write_bench_artifact(name: str, payload: dict) -> str:
    """Persist one experiment's headline numbers as ``BENCH_<name>.json``.

    The file lands in ``$REPRO_BENCH_DIR`` (default: the working
    directory) so CI can collect machine-readable results next to the
    printed tables.  The record is tagged with the smoke flag — smoke
    numbers are crash-gate artifacts, not publishable measurements.
    """
    out_dir = os.environ.get("REPRO_BENCH_DIR", ".")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    record = {"experiment": name, "smoke": smoke_mode(), **payload}
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"  wrote {path}")
    return path


class NullBenchmark:
    """Stand-in for the pytest-benchmark fixture outside pytest.

    Lets a benchmark module run as a plain script (the CI smoke gate)
    without pytest-benchmark installed or active.
    """

    def pedantic(self, target, args=(), kwargs=None, rounds=1, iterations=1):
        return target(*args, **(kwargs or {}))

    def __call__(self, target, *args, **kwargs):
        return target(*args, **kwargs)


def run_as_script(*test_functions) -> None:
    """Execute benchmark test functions directly (``python -m benchmarks.X``).

    Each function receives a :class:`NullBenchmark`; any exception
    propagates, so a non-zero exit code marks the smoke run failed.
    """
    for fn in test_functions:
        print(f"-- {fn.__name__}{' [smoke]' if smoke_mode() else ''}")
        fn(NullBenchmark())


def print_table(
    title: str,
    headers: typing.Sequence[str],
    rows: typing.Sequence[typing.Sequence[object]],
) -> None:
    """A plain fixed-width table, like the paper era's tooling."""
    widths = [
        max(len(str(h)), *(len(f"{row[i]}") for row in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    print(f"\n=== {title} ===")
    print("  ".join(
        str(h).ljust(w) for h, w in zip(headers, widths, strict=True)
    ))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(
            f"{cell}".ljust(w) for cell, w in zip(row, widths, strict=False)
        ))


def single_site_session(seed: int = 0, machine: str = "FZJ-T3E", site: str = "FZJ"):
    """A one-site grid with a connected user; returns (grid, user, session)."""
    grid = build_grid({site: [machine]}, seed=seed)
    user = grid.add_user("Bench User", logins={site: "bench"})
    session = grid.connect_user(user, site)
    return grid, user, session


def run_simple_job(
    grid, session, name: str, vsite: str, runtime_s: float = 600.0,
    cpus: int = 8, poll_interval_s: float = 30.0,
):
    """Submit one script-task job and wait for completion; returns the
    (job_id, final_status_tree) pair."""
    jpa = JobPreparationAgent(session)
    jmc = JobMonitorController(session)
    session.client.poll_interval_s = poll_interval_s
    job = jpa.new_job(name, vsite=vsite)
    job.script_task(
        "work", script="#!/bin/sh\n./app\n",
        resources=ResourceRequest(cpus=cpus, time_s=max(60.0, runtime_s * 3)),
        simulated_runtime_s=runtime_s,
    )

    def scenario(sim):
        job_id = yield from jpa.submit(job)
        final = yield from jmc.wait_for_completion(job_id)
        return job_id, final

    process = grid.sim.process(scenario(grid.sim))
    return grid.sim.run(until=process)
