"""E11 — section 6 outlook, ablation: does a resource broker help?

Paper motivation: without a broker, users pick destinations by habit —
"scientists often continue to work at the site and on the system they
know" (section 1), causing "sub-optimal use of expensive resources".

Setup: the FZJ T3E carries heavy local load while the rest of the grid
is quiet.  Twenty UNICORE jobs are placed (a) the habit way — always the
home T3E — and (b) by the section-6 broker using live load information.
A third arm repeats both under *uniform* load everywhere.

Expected shape: under skewed load the broker cuts mean turnaround by a
large factor; under uniform load the two placements are comparable (the
broker cannot manufacture capacity, it can only avoid hotspots).
"""

import numpy as np
import pytest

from benchmarks._util import print_table
from repro.client import JobMonitorController, JobPreparationAgent
from repro.ext import ResourceBroker
from repro.grid import LocalLoadGenerator, WorkloadProfile, build_grid
from repro.resources import ResourceRequest
from repro.simkernel import derive_rng

SITES = {
    "FZJ": ["FZJ-T3E"], "RUS": ["RUS-T3E"],
    "RUKA": ["RUKA-SP2"], "ZIB": ["ZIB-SP2"],
}
N_JOBS = 20
RUNTIME = 1800.0


def _turnarounds(placement: str, skewed: bool) -> list[float]:
    grid = build_grid(SITES, seed=11)
    user = grid.add_user("Habit User", logins={s: "hab" for s in SITES})
    sessions = {s: grid.connect_user(user, s) for s in SITES}
    broker = ResourceBroker.for_grid(grid)

    load_profile = WorkloadProfile(mean_runtime_s=7200.0, max_cpus=256)
    load_sites = list(SITES) if not skewed else ["FZJ"]
    rate = 1 / 400.0 if skewed else 1 / 1600.0
    for site in load_sites:
        LocalLoadGenerator(
            grid.sim,
            grid.usites[site].vsites[SITES[site][0]].batch,
            derive_rng(11, f"load:{site}:{skewed}"),
            arrival_rate_per_s=rate,
            profile=load_profile,
            horizon_s=2 * 3600.0,
        )
    grid.sim.run(until=2 * 3600.0)  # build the backlog

    turnarounds = []

    def stream(sim):
        rng = derive_rng(11, f"jobs:{placement}:{skewed}")
        pending = []
        for i in range(N_JOBS):
            request = ResourceRequest(cpus=64, time_s=RUNTIME * 3,
                                      memory_mb=4096)
            if placement == "habit":
                site, vsite = "FZJ", "FZJ-T3E"
            else:
                decision = broker.choose(request, baseline_runtime_s=RUNTIME)
                site, vsite = decision.usite, decision.vsite
            session = sessions[site]
            jpa = JobPreparationAgent(session)
            job = jpa.new_job(f"{placement}{i}", vsite=vsite)
            job.script_task(
                "work", script="#!/bin/sh\n./app\n", resources=request,
                simulated_runtime_s=RUNTIME,
            )
            t0 = sim.now
            job_id = yield from jpa.submit(job)
            pending.append((session, job_id, t0))
            yield sim.timeout(float(rng.uniform(30.0, 120.0)))
        for session, job_id, t0 in pending:
            jmc = JobMonitorController(session)
            session.client.poll_interval_s = 120.0
            yield from jmc.wait_for_completion(job_id)
            turnarounds.append(sim.now - t0)

    grid.sim.run(until=grid.sim.process(stream(grid.sim)))
    return turnarounds


@pytest.mark.benchmark(group="E11-broker-ablation")
def test_e11_broker_vs_habit(benchmark):
    results = {}

    def run():
        for skewed in (True, False):
            for placement in ("habit", "broker"):
                results[(placement, skewed)] = _turnarounds(placement, skewed)

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    means = {}
    for (placement, skewed), values in results.items():
        arr = np.asarray(values)
        means[(placement, skewed)] = float(arr.mean())
        rows.append((
            "skewed" if skewed else "uniform", placement,
            f"{arr.mean():9.0f}", f"{np.median(arr):9.0f}",
            f"{arr.max():9.0f}",
        ))
    print_table(
        f"E11: turnaround (s) of {N_JOBS} jobs, habit (home T3E) vs broker",
        ["load", "placement", "mean", "median", "max"],
        rows,
    )

    # Under skew the broker wins big.
    assert means[("broker", True)] < 0.5 * means[("habit", True)]
    # Under uniform load it does not *hurt* much (within 2x).
    assert means[("broker", False)] < 2.0 * means[("habit", False)]
