"""E11 — section 6 outlook, ablation: does a resource broker help?

Paper motivation: without a broker, users pick destinations by habit —
"scientists often continue to work at the site and on the system they
know" (section 1), causing "sub-optimal use of expensive resources".

Setup: the FZJ T3E carries heavy local load while the rest of the grid
is quiet.  Twenty UNICORE jobs are placed (a) the habit way — always the
home T3E — and (b) by the section-6 broker using live load information.
A third arm repeats both under *uniform* load everywhere.

The **brokered federation** arm goes further than the one-shot
placement broker: every Usite runs two load-balanced gateways, jobs
enter the :class:`~repro.broker.service.FederationBroker` task queue
*without* a destination, and binding happens at dispatch time against
live capacity advertisements under fair-share quotas.  It measures
makespan against habit placement and Jain's fairness index across
users, with one deliberately over-quota user exercising the
``broker.quota_exceeded`` rejection path.

Expected shape: under skewed load the broker cuts mean turnaround by a
large factor; under uniform load the two placements are comparable (the
broker cannot manufacture capacity, it can only avoid hotspots).  The
federation arm beats habit on makespan and serves users near-equally.
"""

import numpy as np
import pytest

from benchmarks._util import (
    print_table,
    run_as_script,
    smoke_mode,
    write_bench_artifact,
)
from repro.broker import BrokerQuotaError, FairSharePolicy, attach_broker
from repro.broker.placement import ResourceBroker
from repro.client import JobMonitorController, JobPreparationAgent
from repro.grid import LocalLoadGenerator, WorkloadProfile, build_grid
from repro.resources import ResourceRequest
from repro.simkernel import derive_rng

SITES = {
    "FZJ": ["FZJ-T3E"], "RUS": ["RUS-T3E"],
    "RUKA": ["RUKA-SP2"], "ZIB": ["ZIB-SP2"],
}
N_JOBS = 20
RUNTIME = 1800.0


def _turnarounds(placement: str, skewed: bool) -> list[float]:
    grid = build_grid(SITES, seed=11)
    user = grid.add_user("Habit User", logins={s: "hab" for s in SITES})
    sessions = {s: grid.connect_user(user, s) for s in SITES}
    broker = ResourceBroker.for_grid(grid)

    load_profile = WorkloadProfile(mean_runtime_s=7200.0, max_cpus=256)
    load_sites = list(SITES) if not skewed else ["FZJ"]
    rate = 1 / 400.0 if skewed else 1 / 1600.0
    for site in load_sites:
        LocalLoadGenerator(
            grid.sim,
            grid.usites[site].vsites[SITES[site][0]].batch,
            derive_rng(11, f"load:{site}:{skewed}"),
            arrival_rate_per_s=rate,
            profile=load_profile,
            horizon_s=2 * 3600.0,
        )
    grid.sim.run(until=2 * 3600.0)  # build the backlog

    turnarounds = []

    def stream(sim):
        rng = derive_rng(11, f"jobs:{placement}:{skewed}")
        pending = []
        for i in range(N_JOBS):
            request = ResourceRequest(cpus=64, time_s=RUNTIME * 3,
                                      memory_mb=4096)
            if placement == "habit":
                site, vsite = "FZJ", "FZJ-T3E"
            else:
                decision = broker.choose(request, baseline_runtime_s=RUNTIME)
                site, vsite = decision.usite, decision.vsite
            session = sessions[site]
            jpa = JobPreparationAgent(session)
            job = jpa.new_job(f"{placement}{i}", vsite=vsite)
            job.script_task(
                "work", script="#!/bin/sh\n./app\n", resources=request,
                simulated_runtime_s=RUNTIME,
            )
            t0 = sim.now
            job_id = yield from jpa.submit(job)
            pending.append((session, job_id, t0))
            yield sim.timeout(float(rng.uniform(30.0, 120.0)))
        for session, job_id, t0 in pending:
            jmc = JobMonitorController(session)
            session.client.poll_interval_s = 120.0
            yield from jmc.wait_for_completion(job_id)
            turnarounds.append(sim.now - t0)

    grid.sim.run(until=grid.sim.process(stream(grid.sim)))
    return turnarounds


@pytest.mark.benchmark(group="E11-broker-ablation")
def test_e11_broker_vs_habit(benchmark):
    results = {}

    def run():
        for skewed in (True, False):
            for placement in ("habit", "broker"):
                results[(placement, skewed)] = _turnarounds(placement, skewed)

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    means = {}
    for (placement, skewed), values in results.items():
        arr = np.asarray(values)
        means[(placement, skewed)] = float(arr.mean())
        rows.append((
            "skewed" if skewed else "uniform", placement,
            f"{arr.mean():9.0f}", f"{np.median(arr):9.0f}",
            f"{arr.max():9.0f}",
        ))
    print_table(
        f"E11: turnaround (s) of {N_JOBS} jobs, habit (home T3E) vs broker",
        ["load", "placement", "mean", "median", "max"],
        rows,
    )

    # Under skew the broker wins big.
    assert means[("broker", True)] < 0.5 * means[("habit", True)]
    # Under uniform load it does not *hurt* much (within 2x).
    assert means[("broker", False)] < 2.0 * means[("habit", False)]


# -- brokered federation: late binding, fair share, multi-gateway -----------

BACKLOG_S = 2 * 3600.0


def _federation_params():
    if smoke_mode():
        return {"users": 4, "jobs": 2, "runtime": 600.0, "backlog": 3600.0}
    return {"users": 8, "jobs": 3, "runtime": RUNTIME, "backlog": BACKLOG_S}


def _skew_fzj(grid, backlog_s, tag):
    # Heavy enough that the habit machine is saturated with hours of
    # queued local work when the UNICORE jobs arrive.
    LocalLoadGenerator(
        grid.sim,
        grid.usites["FZJ"].vsites["FZJ-T3E"].batch,
        derive_rng(11, f"fedload:{tag}"),
        arrival_rate_per_s=1 / 150.0,
        profile=WorkloadProfile(mean_runtime_s=7200.0, max_cpus=256),
        horizon_s=backlog_s,
    )
    grid.sim.run(until=backlog_s)


def _federation_grid(n_users, tag):
    grid = build_grid(SITES, seed=11, gateways=2)
    logins = {s: "fed" for s in SITES}
    users = [
        grid.add_user(f"Fed User {i} {tag}", logins=logins)
        for i in range(n_users)
    ]
    return grid, users


def _job_specs(params):
    return [
        (u, ResourceRequest(cpus=32, time_s=params["runtime"] * 3,
                            memory_mb=2048), params["runtime"])
        for u in range(params["users"])
        for _ in range(params["jobs"])
    ]


def _habit_makespan(params):
    """Everyone submits everything to the home T3E, through one session."""
    grid, users = _federation_grid(params["users"], "habit")
    sessions = [grid.connect_user(u, "FZJ") for u in users]
    _skew_fzj(grid, params["backlog"], "habit")
    t0 = grid.sim.now

    def one(i, user_idx, request, runtime):
        session = sessions[user_idx]
        jpa = JobPreparationAgent(session)
        jmc = JobMonitorController(session)
        session.client.poll_interval_s = 120.0
        job = jpa.new_job(f"habit{i}", vsite="FZJ-T3E")
        job.script_task(
            "work", script="#!/bin/sh\n./app\n", resources=request,
            simulated_runtime_s=runtime,
        )
        job_id = yield from jpa.submit(job)
        yield from jmc.wait_for_completion(job_id)

    procs = [
        grid.sim.process(one(i, user_idx, request, runtime))
        for i, (user_idx, request, runtime) in enumerate(_job_specs(params))
    ]
    for proc in procs:
        grid.sim.run(until=proc)
    return grid.sim.now - t0


def _federated_run(params):
    """Late binding through the FederationBroker across 2-gateway sites."""
    grid, users = _federation_grid(params["users"], "fed")
    greedy_dn = str(users[0].browser.user_cert.subject)
    broker = attach_broker(
        grid,
        policy=FairSharePolicy(
            default_max_active=100,
            # The greedy user's cap admits exactly their planned jobs;
            # everything they push beyond that is rejected up front.
            max_active={greedy_dn: params["jobs"]},
        ),
        advertise_interval_s=60.0,
        dispatch_interval_s=30.0,
    )
    sessions = {
        (i, site): grid.connect_user(u, site)
        for i, u in enumerate(users)
        for site in SITES
    }
    _skew_fzj(grid, params["backlog"], "fed")
    t0 = grid.sim.now

    def make_dispatch(i, user_idx, request, runtime):
        def dispatch(usite, vsite):
            session = sessions[(user_idx, usite)]
            jpa = JobPreparationAgent(session)
            job = jpa.new_job(f"fed{i}", vsite=vsite)
            job.script_task(
                "work", script="#!/bin/sh\n./app\n", resources=request,
                simulated_runtime_s=runtime,
            )
            return jpa.submit(job)

        return dispatch

    entries = []
    rejected = 0
    for i, (user_idx, request, runtime) in enumerate(_job_specs(params)):
        user_dn = str(users[user_idx].browser.user_cert.subject)
        entry = broker.submit(
            user_dn, f"fed{i}", request,
            dispatch=make_dispatch(i, user_idx, request, runtime),
            bind_timeout_s=48 * 3600.0,
        )
        entry.meta["user"] = user_idx
        entries.append(entry)
    # The greedy user keeps pushing past their concurrency cap: every
    # extra submission is rejected up front with the stable code.
    for extra in range(3):
        try:
            broker.submit(
                greedy_dn, f"greedy-extra{extra}",
                ResourceRequest(cpus=32, time_s=params["runtime"] * 3),
                dispatch=make_dispatch(-1, 0, ResourceRequest(cpus=32),
                                       params["runtime"]),
            )
        except BrokerQuotaError:
            rejected += 1

    grid.sim.run(until=grid.sim.process(broker.drain(entries, poll_s=60.0)))
    makespan = grid.sim.now - t0
    return grid, broker, entries, makespan, rejected


def _jain(values):
    arr = np.asarray(values, dtype=float)
    return float(arr.sum() ** 2 / (len(arr) * (arr ** 2).sum()))


@pytest.mark.benchmark(group="E11-broker-ablation")
def test_e11_federated_broker(benchmark):
    params = _federation_params()
    holder = {}

    def run():
        holder["habit"] = _habit_makespan(params)
        (holder["grid"], holder["broker"], holder["entries"],
         holder["federated"], holder["rejected"]) = _federated_run(params)

    benchmark.pedantic(run, rounds=1, iterations=1)
    grid, broker, entries = holder["grid"], holder["broker"], holder["entries"]
    counters = broker.counters()

    # Every accepted job finished; the greedy extras were all rejected
    # with the stable code and show up in the rejection counter.
    assert all(e.state.name == "DONE" for e in entries)
    assert holder["rejected"] == 3
    assert counters["rejections"] == 3

    # Late binding beats habit placement under skewed load.
    assert holder["federated"] < holder["habit"]
    assert counters["matches"] >= len(entries)

    # Both gateways of at least one load-balanced Usite served traffic.
    assert any(
        all(gw.requests_served > 0 for gw in usite.gateways)
        for usite in grid.usites.values()
    )

    # Fair share: per-user mean turnaround is near-uniform across the
    # non-greedy users (Jain's index of 1.0 = perfectly equal).
    by_user = {}
    for entry in entries:
        if entry.meta["user"] != 0:
            by_user.setdefault(entry.meta["user"], []).append(
                entry.done_at - entry.enqueued_at
            )
    jain = _jain([float(np.mean(v)) for v in by_user.values()])
    assert jain >= 0.5

    spread = sorted(e.vsite for e in entries)
    print_table(
        "E11+: brokered federation vs habit placement (skewed load)",
        ["arm", "makespan (s)", "matches", "steals", "rejections", "jain"],
        [
            ("habit", f"{holder['habit']:9.0f}", "-", "-", "-", "-"),
            ("federated", f"{holder['federated']:9.0f}",
             counters["matches"], counters["steals"],
             counters["rejections"], f"{jain:.3f}"),
        ],
    )
    write_bench_artifact("e11", {
        "params": params,
        "makespan_habit_s": holder["habit"],
        "makespan_federated_s": holder["federated"],
        "jain_fairness": jain,
        "counters": counters,
        "rejected_submissions": holder["rejected"],
        "placements": spread,
    })


if __name__ == "__main__":
    run_as_script(test_e11_federated_broker)
