"""A13 (ablation) — section 5.2: the firewall split's cost.

Paper: "For sites using firewalls the UNICORE server can be separated
into the Web server and the NJS part with the firewall in between ...
The communication between the two components is done via IP socket
connection to a site selectable port."

The split is a deployment *option*; this ablation measures what it
costs: every client request crosses the internal socket twice (request
in, reply out), and NJS-NJS traffic gains an extra store-and-forward hop
per direction.

Expected shape: per-request overhead on the order of the internal link's
round trip (~1 ms) — negligible against WAN latencies, i.e. the security
option is effectively free, which is why the paper offers it without
caveats.
"""

import pytest

from benchmarks._util import print_table
from repro.client import JobMonitorController
from repro.grid import build_grid


def _request_latency(firewall_split: bool, n_requests: int = 30) -> float:
    """Mean JMC list_jobs round trip against an idle site."""
    grid = build_grid({"FZJ": ["FZJ-T3E"]}, seed=13)
    # Rebuild the second site variant by flag: build_grid always splits,
    # so construct the non-split Usite directly when asked.
    if not firewall_split:
        import repro.grid.build as gb

        sim = __import__("repro.simkernel", fromlist=["Simulator"]).Simulator()
        from repro.net.transport import Network
        from repro.security.ca import CertificateAuthority

        network = Network(sim, seed=13)
        ca = CertificateAuthority(key_bits=384, seed=13)
        grid = gb.Grid(sim, network, ca)
        grid.applets.update(gb._build_applets(ca))
        grid.add_usite("FZJ", ["FZJ-T3E"], firewall_split=False)
        grid.connect_all()

    user = grid.add_user("FW User", logins={"FZJ": "fw"})
    session = grid.connect_user(user, "FZJ")
    jmc = JobMonitorController(session)

    samples = []

    def scenario(sim):
        for _ in range(n_requests):
            t0 = sim.now
            yield from jmc.list_jobs()
            samples.append(sim.now - t0)

    grid.sim.run(until=grid.sim.process(scenario(grid.sim)))
    return sum(samples) / len(samples)


@pytest.mark.benchmark(group="A13-firewall-split")
def test_a13_firewall_split_cost(benchmark):
    results = {}

    def run():
        results["split"] = _request_latency(True)
        results["colocated"] = _request_latency(False)

    benchmark.pedantic(run, rounds=1, iterations=1)

    overhead = results["split"] - results["colocated"]
    print_table(
        "A13: request latency, firewall-split vs co-located server",
        ["deployment", "mean request latency (s)"],
        [
            ("co-located", f"{results['colocated']:.6f}"),
            ("firewall split", f"{results['split']:.6f}"),
            ("overhead", f"{overhead:.6f}"),
        ],
    )

    # The split costs something (the socket is real)...
    assert overhead > 0
    # ...but it is negligible against the client's WAN access latency.
    assert overhead < 0.1 * results["colocated"]
