"""E12 — wall-clock arm: the real-socket transport, measured in real time.

Every other experiment reports simulated seconds; this one reports what
the machine actually does.  The grid is built on the ``"aio"`` backend
(:class:`~repro.net.aio_transport.AioTransport`), so WAN edges — user
workstation to gateway — carry length-prefixed frames over real TCP
through the OS loopback, while the protocol stack above stays byte-for-
byte the one the simulated numbers were taken from.

Two arms:

**round-trip sweep** (``transport.msgs_per_s``)
    A plan sends bursts of control-plane-sized messages across the WAN
    edge and waits for their delivery events (each one completes when
    the frame has crossed the socket and been read back by the server
    tier).  Swept over payload sizes; the headline figure is the small-
    message rate, the transport's per-message overhead.

**stream fetch** (``transport.stream_MBps``)
    A job stages a file into its Uspace, then the client fetches it
    back through the full chunked data plane (PR-3 stream frames) over
    the socket.  Headline: payload MB per wall second.

Both are wall-clock numbers and therefore machine-dependent: the
perf-trajectory gate treats them as **warn-only**
(:mod:`benchmarks.compare_bench`), unlike the deterministic E10/E11
counters.  Smoke mode shrinks the sweep to a crash gate.
"""

import asyncio
import time

from benchmarks._util import (
    print_table,
    run_as_script,
    smoke_mode,
    write_bench_artifact,
)
from repro.api.aio import AsyncGridSession
from repro.grid import build_grid

SITE = "FZJ"
MACHINE = "FZJ-T3E"
#: Burst window: frames in flight per wait, enough to keep the socket
#: busy without turning the sweep into a memory benchmark.
WINDOW = 32


def _params():
    if smoke_mode():
        return {"n_msgs": 200, "sizes": [64], "stream_bytes": 1 << 18}
    return {
        "n_msgs": 2000,
        "sizes": [64, 4096, 65536],
        "stream_bytes": 4 << 20,
    }


def _burst_plan(net, src, dst, n_msgs, size_bytes):
    """Send ``n_msgs`` across the WAN edge in windows of WINDOW frames."""
    sent = 0
    while sent < n_msgs:
        burst = min(WINDOW, n_msgs - sent)
        events = [
            net.send(src, dst, payload=b"x" * min(size_bytes, 256),
                     size_bytes=size_bytes, channel="bench", deliver=False)
            for _ in range(burst)
        ]
        for event in events:
            yield event
        sent += burst
    return sent


async def _measure(params):
    grid = build_grid({SITE: [MACHINE]}, seed=7, transport="aio")
    user = grid.add_user("Bench User", logins={SITE: "bench"})
    session = await AsyncGridSession.connect(grid, user, SITE)
    net = grid.network
    ws = user.browser.host.name
    gw = grid.usites[SITE].gateway_host.name

    # -- arm 1: round-trip sweep over message sizes ---------------------------
    sweep = []
    for size in params["sizes"]:
        n = params["n_msgs"]
        proc = grid.sim.process(
            _burst_plan(net, ws, gw, n, size), name=f"bench:burst:{size}")
        t0 = time.perf_counter()
        await net.drive(proc)
        elapsed = time.perf_counter() - t0
        sweep.append({
            "size_bytes": size,
            "msgs": n,
            "wall_s": elapsed,
            "msgs_per_s": n / elapsed if elapsed > 0 else 0.0,
        })

    # -- arm 2: stream fetch through the chunked data plane -------------------
    content = b"e12-stream-payload--" * (params["stream_bytes"] // 20)
    user.workstation.fs.write("/home/bench/payload.dat", content)
    job = await session.new_job("e12-stream", vsite=MACHINE)
    imp = job.import_from_workstation("/home/bench/payload.dat", "payload.dat")
    work = job.script_task(
        "touch", "#!/bin/sh\nwc payload.dat\n", simulated_runtime_s=5.0)
    job.depends(imp, work, files=["payload.dat"])
    handle = await session.submit(job, workstation=user.workstation)
    final = await handle.wait()
    assert final.status == "successful", final.status

    t0 = time.perf_counter()
    fetched = await handle.fetch_file("payload.dat")
    stream_wall = time.perf_counter() - t0
    assert fetched == content

    stats = {
        "socket_frames": net.socket_frames,
        "socket_bytes": net.socket_bytes,
    }
    await net.aclose()
    return sweep, len(content), stream_wall, stats


def test_e12_realsocket_transport(benchmark):
    params = _params()
    sweep, stream_len, stream_wall, stats = benchmark.pedantic(
        lambda: asyncio.run(_measure(params)), rounds=1
    )

    stream_mbps = (stream_len / (1 << 20)) / stream_wall if stream_wall else 0.0
    headline = sweep[0]["msgs_per_s"]  # small-message per-frame overhead

    print_table(
        "E12+: real-socket transport, wall clock",
        ["arm", "payload", "volume", "wall (s)", "rate"],
        [
            *(
                ("round-trip", f"{row['size_bytes']} B", f"{row['msgs']} msgs",
                 f"{row['wall_s']:.3f}", f"{row['msgs_per_s']:,.0f} msgs/s")
                for row in sweep
            ),
            ("stream fetch", f"{stream_len / (1 << 20):.2f} MiB", "1 file",
             f"{stream_wall:.3f}", f"{stream_mbps:.1f} MB/s"),
        ],
    )

    assert headline > 0
    assert stats["socket_frames"] > sum(row["msgs"] for row in sweep)

    write_bench_artifact("e12", {
        "params": params,
        "transport": {
            "msgs_per_s": headline,
            "stream_MBps": stream_mbps,
        },
        "sweep": sweep,
        "stream": {"bytes": stream_len, "wall_s": stream_wall},
        "socket": stats,
    })


if __name__ == "__main__":
    run_as_script(test_e12_realsocket_transport)
