"""E14 — consign-time static analysis cost and coverage.

The analyzer runs on every consignment at both the JPA and the NJS, so
its cost must stay small relative to the codec + consignment path it
rides on.  This experiment measures ``analyze_ajo`` throughput (jobs/s
and us/action) against AJO size on clean staged pipelines, and checks
that seeded defects — a read of a never-produced file, a write-write
race, an infeasible resource request — are found at every size with
their stable codes.

Expected shape: cost linear in the number of actions (the passes are
single walks plus a transitive closure over each group's DAG), with
the full three-pass run staying within a small multiple of the codec
cost for the same tree.
"""

import time

import pytest

from benchmarks._util import print_table, run_as_script, smoke_mode
from repro.ajo import (
    AbstractJobObject,
    ExportTask,
    ImportTask,
    UserTask,
    encode_ajo,
)
from repro.analysis import AnalysisContext, analyze_ajo
from repro.resources import ResourceRequest
from repro.resources.editor import ResourcePageEditor


def bench_page(vsite="V"):
    return (
        ResourcePageEditor(vsite)
        .set_system("T3E", "unicos", 100.0)
        .set_range("cpus", 1, 512)
        .set_range("time_s", 0, 86400)
        .set_range("memory_mb", 0, 65536)
        .set_range("disk_permanent_mb", 0, 10**6)
        .set_range("disk_temporary_mb", 0, 10**6)
        .add_compiler("f90")
        .publish()
    )


def pipeline_job(n_stages: int) -> AbstractJobObject:
    """A clean import -> run -> export pipeline, 3 actions per stage."""
    job = AbstractJobObject("lint-bench", vsite="V", user_dn="CN=bench")
    for i in range(n_stages):
        imp = job.add(ImportTask(
            f"in{i}", source_path=f"/in/{i}.dat", destination_path=f"in{i}.dat",
        ))
        run = job.add(UserTask(
            f"run{i}", executable=f"in{i}.dat",
            resources=ResourceRequest(cpus=8, time_s=3600),
        ))
        exp = job.add(ExportTask(
            f"out{i}", source_path=f"out{i}.dat", destination_path=f"/out/{i}",
        ))
        job.add_dependency(imp, run)
        job.add_dependency(run, exp, files=[f"out{i}.dat"])
    return job


def seeded_defects(n_stages: int) -> AbstractJobObject:
    """The clean pipeline plus one defect of each analyzer family."""
    job = pipeline_job(n_stages)
    # AJO201: export of a file nothing produces.
    job.add(ExportTask("ghost", source_path="ghost.dat", destination_path="/x"))
    # AJO203: two unordered writers of the same Uspace path.
    job.add(ImportTask("w1", source_path="/in/a", destination_path="race.dat"))
    job.add(ImportTask("w2", source_path="/in/b", destination_path="race.dat"))
    # AJO302: a request beyond the resource page.
    job.add(UserTask(
        "huge", executable="/bin/huge",
        resources=ResourceRequest(cpus=4096, time_s=60),
    ))
    return job


def bench_context() -> AnalysisContext:
    return AnalysisContext(pages={"V": bench_page()}, dialects={"V": "nqs"})


@pytest.mark.benchmark(group="E14-lint")
def test_e14_lint_throughput(benchmark):
    """jobs/s and us/action for the full three-pass analysis vs AJO size."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    context = bench_context()
    sizes = (4, 16) if smoke_mode() else (4, 16, 64, 256)
    repeats = 3 if smoke_mode() else 10

    rows = []
    per_action = {}
    for n_stages in sizes:
        job = pipeline_job(n_stages)
        actions = job.total_actions()
        assert analyze_ajo(job, context).ok

        t0 = time.perf_counter()
        for _ in range(repeats):
            analyze_ajo(job, context)
        t_lint = (time.perf_counter() - t0) / repeats

        t0 = time.perf_counter()
        for _ in range(repeats):
            encode_ajo(job)
        t_codec = (time.perf_counter() - t0) / repeats

        per_action[n_stages] = t_lint / actions
        rows.append((
            actions,
            f"{1.0 / t_lint:10.0f}",
            f"{1e6 * per_action[n_stages]:8.2f}",
            f"{t_lint / t_codec:6.1f}x",
        ))
    print_table(
        "E14: static analysis cost vs AJO size",
        ["actions", "jobs/s", "lint us/action", "lint/codec"],
        rows,
    )
    # Per-action cost must not blow up super-linearly across the sweep.
    small, large = min(sizes), max(sizes)
    assert per_action[large] < 50 * per_action[small]


@pytest.mark.benchmark(group="E14-lint")
def test_e14_defects_found_at_every_size(benchmark):
    """The seeded defects are reported with their stable codes."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    context = bench_context()
    sizes = (4,) if smoke_mode() else (4, 64, 256)
    for n_stages in sizes:
        report = analyze_ajo(seeded_defects(n_stages), context)
        found = {d.code for d in report.errors}
        assert {"AJO201", "AJO203", "AJO302"} <= found, (n_stages, found)
        assert not report.ok
    print(f"  defect codes stable across sizes {sizes}")


if __name__ == "__main__":
    run_as_script(test_e14_lint_throughput, test_e14_defects_found_at_every_size)
