"""E7 — section 5.5: NJS scheduling is sequenced delivery only.

Paper: "The scheduling done by the NJS is limited to the delivery of the
generated batch jobs to the destination systems in the specified
sequence."

Setup: jobs shaped as chains, fans, and diamonds on one idle T3E; each
task runs STAGE_S seconds.  Because the machine is idle and wide enough,
makespan should equal (critical path length x stage time) plus a small,
per-dependency-edge constant of NJS overhead.

Expected shape: chain makespan grows linearly with depth; a fan of width
w costs ~one stage (parallel delivery) while a chain of length w costs
~w stages; measured NJS overhead per edge is constant and small.
"""

import pytest

from benchmarks._util import print_table, single_site_session
from repro.ajo import critical_path_length
from repro.client import JobMonitorController, JobPreparationAgent
from repro.resources import ResourceRequest

STAGE_S = 300.0
CPUS = 4  # 128 tasks x 4 cpus < 512: width never binds


def _run_shape(name: str, shape: str, n: int) -> tuple[float, int, float]:
    """Returns (makespan, edges, critical_path_stages)."""
    grid, user, session = single_site_session(seed=5)
    jpa = JobPreparationAgent(session)
    jmc = JobMonitorController(session)
    session.client.poll_interval_s = 10.0
    job = jpa.new_job(name, vsite="FZJ-T3E")

    def task(label):
        return job.script_task(
            label, script="#!/bin/sh\nstage\n",
            resources=ResourceRequest(cpus=CPUS, time_s=STAGE_S * 3),
            simulated_runtime_s=STAGE_S,
        )

    if shape == "chain":
        prev = None
        for i in range(n):
            t = task(f"c{i}")
            if prev is not None:
                job.depends(prev, t)
            prev = t
    elif shape == "fan":
        src = task("src")
        sink = task("sink")
        for i in range(n):
            mid = task(f"f{i}")
            job.depends(src, mid)
            job.depends(mid, sink)
    elif shape == "diamond":
        # n layered diamonds in sequence.
        prev = task("start")
        for i in range(n):
            left, right = task(f"l{i}"), task(f"r{i}")
            join = task(f"j{i}")
            job.depends(prev, left)
            job.depends(prev, right)
            job.depends(left, join)
            job.depends(right, join)
            prev = join

    edges = len(job.ajo.dependencies)
    stages = critical_path_length(job.ajo)

    def scenario(sim):
        t0 = sim.now
        job_id = yield from jpa.submit(job)
        final = yield from jmc.wait_for_completion(job_id)
        assert final["status"] == "successful"
        return sim.now - t0

    process = grid.sim.process(scenario(grid.sim))
    makespan = grid.sim.run(until=process)
    return makespan, edges, stages


@pytest.mark.benchmark(group="E7-dag-scheduling")
def test_e7_sequenced_delivery(benchmark):
    cases = [
        ("chain", 1), ("chain", 4), ("chain", 8), ("chain", 16),
        ("fan", 4), ("fan", 16), ("fan", 32),
        ("diamond", 2), ("diamond", 4),
    ]
    results = {}

    def run():
        for shape, n in cases:
            results[(shape, n)] = _run_shape(f"{shape}{n}", shape, n)

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    overheads = []
    for (shape, n), (makespan, edges, stages) in results.items():
        ideal = stages * STAGE_S
        overhead = makespan - ideal
        per_edge = overhead / edges if edges else float("nan")
        if edges:
            overheads.append(per_edge)
        rows.append((
            f"{shape}({n})", f"{stages:.0f}", edges,
            f"{makespan:9.1f}", f"{ideal:9.1f}",
            f"{overhead:7.2f}", f"{per_edge:7.3f}" if edges else "-",
        ))
    print_table(
        f"E7: DAG delivery on an idle T3E (stage = {STAGE_S:.0f}s)",
        ["shape", "crit.path", "edges", "makespan", "ideal", "overhead",
         "ovh/edge"],
        rows,
    )

    # Chain scales linearly with depth.
    chain = {n: results[("chain", n)][0] for n in (1, 4, 8, 16)}
    assert chain[16] / chain[1] == pytest.approx(16, rel=0.15)
    # Fans deliver in parallel: width-32 fan ~ 3 stages, not 34.
    fan32 = results[("fan", 32)][0]
    assert fan32 < 4 * STAGE_S
    # NJS overhead per dependency edge is bounded by a couple of seconds
    # (incarnation + status-poll quantization), and total sequencing
    # overhead stays under 5% of every job's makespan.
    assert max(overheads) < 2.0
    for (_shape, _n), (makespan, _edges, stages) in results.items():
        assert makespan - stages * STAGE_S < 0.05 * makespan
