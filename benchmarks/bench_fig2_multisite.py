"""E2 — Figure 2: multi-site grid throughput and dependency chains.

Paper artifact: the architecture-overview diagram — multiple UNICORE
servers exchanging (parts of) jobs, data, and control information.

Expected shape: independent jobs spread across more Usites finish in
less total time (near-linear scaling until the per-site capacity stops
binding); a chain of cross-site dependent groups serializes and gains
nothing from extra sites.
"""

import pytest

from benchmarks._util import print_table
from repro.client import JobMonitorController, JobPreparationAgent
from repro.grid import build_grid
from repro.resources import ResourceRequest

SITES = {
    "FZJ": ["FZJ-T3E"],
    "RUS": ["RUS-T3E"],
    "RUKA": ["RUKA-SP2"],
    "ZIB": ["ZIB-SP2"],
    "LRZ": ["LRZ-VPP"],
    "DWD": ["DWD-SX4"],
}

N_JOBS = 48
RUNTIME = 1800.0
CPUS = 64


def _fanout_makespan(n_sites: int) -> float:
    """N_JOBS independent jobs spread round-robin over n_sites sites.

    Sites are homogeneous (T3E everywhere) so the scaling signal is
    queueing, not machine speed; a single T3E (512 cpus) runs 8 of these
    64-cpu jobs at once, so one site needs 6 waves.
    """
    chosen = {f"S{i}": ["FZJ-T3E"] for i in range(n_sites)}
    grid = build_grid(chosen, seed=2)
    user = grid.add_user("Fan User", logins={s: "fan" for s in chosen})
    sessions = {s: grid.connect_user(user, s) for s in chosen}
    site_names = list(chosen)

    def scenario(sim):
        pending = []
        for i in range(N_JOBS):
            site = site_names[i % n_sites]
            session = sessions[site]
            jpa = JobPreparationAgent(session)
            job = jpa.new_job(f"fan{i}", vsite=chosen[site][0])
            job.script_task(
                "work", script="#!/bin/sh\n./app\n",
                resources=ResourceRequest(cpus=CPUS, time_s=RUNTIME * 3),
                simulated_runtime_s=RUNTIME,
            )
            job_id = yield from jpa.submit(job)
            pending.append((session, job_id))
        for session, job_id in pending:
            jmc = JobMonitorController(session)
            yield from jmc.wait_for_completion(job_id)
        return grid.sim.now

    start = grid.sim.now
    process = grid.sim.process(scenario(grid.sim))
    end = grid.sim.run(until=process)
    return end - start


def _chain_makespan(n_stages: int) -> float:
    """A root job with a chain of cross-site dependent groups."""
    grid = build_grid(SITES, seed=3)
    user = grid.add_user("Chain User", logins={s: "chain" for s in SITES})
    session = grid.connect_user(user, "FZJ")
    jpa = JobPreparationAgent(session)
    jmc = JobMonitorController(session)

    root = jpa.new_job("chain", vsite="FZJ-T3E")
    site_cycle = [("ZIB", "ZIB-SP2"), ("RUKA", "RUKA-SP2"), ("RUS", "RUS-T3E"),
                  ("LRZ", "LRZ-VPP"), ("DWD", "DWD-SX4")]
    prev = None
    for i in range(n_stages):
        site, vsite = site_cycle[i % len(site_cycle)]
        sub = root.sub_job(f"stage{i}@{site}", vsite=vsite, usite=site)
        sub.script_task(
            f"s{i}", script="#!/bin/sh\nstage\n",
            # 32 cpus fits every machine, including the 52-cpu VPP and
            # the 32-cpu SX-4.
            resources=ResourceRequest(cpus=32, time_s=RUNTIME * 3),
            simulated_runtime_s=RUNTIME,
        )
        if prev is not None:
            root.depends(prev, sub.ajo, files=[f"stage{i - 1}.out"])
        prev = sub.ajo

    def scenario(sim):
        t0 = sim.now
        job_id = yield from jpa.submit(root)
        yield from jmc.wait_for_completion(job_id)
        return sim.now - t0

    process = grid.sim.process(scenario(grid.sim))
    return grid.sim.run(until=process)


@pytest.mark.benchmark(group="E2-fig2-multisite")
def test_e2_multisite_scaling(benchmark):
    fan = {}
    chains = {}

    def run():
        for n in (1, 2, 4, 6):
            fan[n] = _fanout_makespan(n)
        for n in (1, 2, 4):
            chains[n] = _chain_makespan(n)

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        (f"{n} site(s)", f"{fan[n]:10.0f}", f"{fan[1] / fan[n]:6.2f}x")
        for n in sorted(fan)
    ]
    print_table(
        f"E2a: makespan of {N_JOBS} independent jobs vs number of Usites",
        ["sites", "makespan (s)", "speedup"],
        rows,
    )
    rows = [
        (f"{n} stage(s)", f"{chains[n]:10.0f}",
         f"{chains[n] / (n * RUNTIME):6.2f}")
        for n in sorted(chains)
    ]
    print_table(
        "E2b: cross-site dependency chain (serializes regardless of sites)",
        ["chain length", "makespan (s)", "makespan / (stages*runtime)"],
        rows,
    )

    # Shape: spreading helps, with diminishing but real returns.
    assert fan[2] < fan[1]
    assert fan[4] < fan[2]
    assert fan[6] <= fan[4]
    assert fan[1] / fan[6] > 2.0  # meaningful scaling by 6 sites
    # Shape: chains serialize — makespan is at least the sum of the
    # per-stage runtimes (scaled by each machine's speed factor).
    speeds = [0.8, 0.8, 1.0, 4.0]  # ZIB, RUKA, RUS, LRZ
    for n, makespan in chains.items():
        serial_floor = sum(RUNTIME / speeds[i] for i in range(n))
        assert makespan >= serial_floor
