"""Integration: the per-job trace assembled across all three tiers.

A consigned job must leave a causally ordered span tree — client submit,
gateway auth, NJS consignment/incarnation, batch wait/execute, outcome
return — retrievable by job id, renderable, and exportable as JSON.
"""

import json

import pytest

from repro.client import JobMonitorController, JobPreparationAgent
from repro.grid import build_grid
from repro.grid.metrics import TierTimes
from repro.observability import telemetry_for
from repro.resources import ResourceRequest


@pytest.fixture()
def single_site():
    grid = build_grid({"FZJ": ["FZJ-T3E"]}, seed=7)
    user = grid.add_user("Trace User", logins={"FZJ": "trace"})
    session = grid.connect_user(user, "FZJ")
    return grid, session


def _run_job(grid, session, runtime_s=600.0, fetch_outcome=True):
    jpa = JobPreparationAgent(session)
    jmc = JobMonitorController(session)
    job = jpa.new_job("traced", vsite="FZJ-T3E")
    job.script_task(
        "work", script="#!/bin/sh\n./app\n",
        resources=ResourceRequest(cpus=8, time_s=max(60.0, runtime_s * 3)),
        simulated_runtime_s=runtime_s,
    )

    def scenario(sim):
        job_id = yield from jpa.submit(job)
        yield from jmc.wait_for_completion(job_id)
        if fetch_outcome:
            yield from jmc.outcome(job_id)
        return job_id

    return grid.sim.run(until=grid.sim.process(scenario(grid.sim)))


def test_job_trace_spans_all_three_tiers(single_site):
    grid, session = single_site
    job_id = _run_job(grid, session)
    trace = telemetry_for(grid.sim).tracer.trace(job_id)

    # The acceptance bar: at least six distinct span names covering the
    # user, server, and batch tiers.
    assert len(trace.names) >= 6
    assert {"user", "server", "batch"} <= trace.tiers
    for name in (
        "client.submit", "gateway.request", "gateway.auth", "njs.consign",
        "njs.job", "njs.incarnate", "batch.wait", "batch.execute",
        "client.outcome",
    ):
        assert name in trace.names, f"missing span {name}"


def test_causal_order_client_gateway_njs_batch(single_site):
    grid, session = single_site
    job_id = _run_job(grid, session)
    trace = telemetry_for(grid.sim).tracer.trace(job_id)

    submit = trace.first("client.submit")
    gateway = trace.first("gateway.request")
    consign = trace.first("njs.consign")
    execute = trace.first("batch.execute")
    outcome = trace.first("client.outcome")
    assert submit.start <= gateway.start <= consign.start <= execute.start
    assert execute.end <= outcome.start
    # Parent links wire the tree: gateway under the submit interaction,
    # NJS under the gateway, batch under the NJS job span.
    assert gateway.parent_id == submit.span_id
    assert consign.parent_id == gateway.span_id
    njs_job = trace.first("njs.job")
    assert trace.first("batch.wait").parent_id == njs_job.span_id
    assert execute.parent_id == njs_job.span_id
    # All spans closed once the job is done and the outcome fetched.
    assert all(s.finished for s in trace.spans)


def test_trace_renders_and_exports(single_site, tmp_path):
    grid, session = single_site
    job_id = _run_job(grid, session)
    telemetry = telemetry_for(grid.sim)
    trace = telemetry.tracer.trace(job_id)

    rendered = trace.render()
    assert "client.submit" in rendered
    assert "batch.execute" in rendered

    blob = json.dumps(trace.to_json())
    decoded = json.loads(blob)
    assert decoded["trace_id"] == trace.trace_id
    assert decoded["span_count"] == len(trace)

    # Metrics recorded along the way.
    counters = telemetry.metrics.snapshot()["counters"]
    assert counters["gateway.requests"] >= 2  # consign + polls + outcome
    assert counters["njs.incarnations"] == 1
    assert counters["batch.submitted"] == 1
    assert telemetry.metrics.histogram("batch.execute_seconds").count == 1


def test_tiertimes_from_trace_matches_run(single_site):
    grid, session = single_site
    job_id = _run_job(grid, session, runtime_s=600.0)
    tracer = telemetry_for(grid.sim).tracer
    times = TierTimes.from_trace(
        tracer.trace(job_id), session_trace=tracer.trace(session.trace_id)
    )
    assert times.execution_s == pytest.approx(600.0)
    assert times.handshake_s > 0.0
    assert times.middleware_total() < 0.05 * (
        times.batch_wait_s + times.execution_s
    )


def test_session_trace_covers_connect_sequence(single_site):
    grid, session = single_site
    assert session.trace_id
    trace = telemetry_for(grid.sim).tracer.trace(session.trace_id)
    assert {"client.handshake", "client.applet_load",
            "client.resource_pages"} <= trace.names


def test_cli_trace_subcommand(capsys, tmp_path):
    from repro.__main__ import main

    out_path = tmp_path / "trace.json"
    main(["trace", "--runtime", "60", "--json", str(out_path)])
    printed = capsys.readouterr().out
    assert "client.submit" in printed
    assert "batch.execute" in printed
    assert "tier breakdown" in printed

    export = json.loads(out_path.read_text())
    assert export["trace"]["span_count"] >= 6
    assert set(export["trace"]["tiers"]) == {"batch", "server", "user"}
    assert "gateway.requests" in export["metrics"]["counters"]
