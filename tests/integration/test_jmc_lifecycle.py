"""Integration tests for the JMC data-return and disposal lifecycle
(section 5.6), plus site-specific authentication at the gateway."""

import pytest

from repro.client import JobMonitorController, JobPreparationAgent
from repro.grid import build_grid
from repro.resources import ResourceRequest


@pytest.fixture()
def site():
    grid = build_grid({"FZJ": ["FZJ-T3E"]}, seed=23)
    user = grid.add_user("Rita", logins={"FZJ": "rita"})
    session = grid.connect_user(user, "FZJ")
    return grid, user, session


def _finished_job(grid, session, name="lifecycle"):
    jpa = JobPreparationAgent(session)
    jmc = JobMonitorController(session)
    job = jpa.new_job(name, vsite="FZJ-T3E")
    work = job.script_task("produce", script="#!/bin/sh\nmake out\n",
                           simulated_runtime_s=30.0)
    exp = job.export_to_xspace("result.dat", f"/res/{name}.dat")
    job.depends(work, exp, files=["result.dat"])

    def scenario(sim):
        job_id = yield from jpa.submit(job)
        yield from jmc.wait_for_completion(job_id)
        return job_id

    p = grid.sim.process(scenario(grid.sim))
    return jmc, grid.sim.run(until=p)


def test_fetch_file_returns_to_workstation(site):
    grid, user, session = site
    jmc, job_id = _finished_job(grid, session)

    def fetch(sim):
        content = yield from jmc.fetch_file(
            job_id, "result.dat", workstation=user.workstation,
            save_as="/home/rita/result.dat",
        )
        return content

    p = grid.sim.process(fetch(grid.sim))
    content = grid.sim.run(until=p)
    assert len(content) == 1 << 20
    assert user.workstation.fs.read("/home/rita/result.dat") == content


def test_fetch_missing_file_fails_cleanly(site):
    grid, user, session = site
    jmc, job_id = _finished_job(grid, session)

    def fetch(sim):
        yield from jmc.fetch_file(job_id, "nope.dat")

    p = grid.sim.process(fetch(grid.sim))
    with pytest.raises(RuntimeError, match="no Uspace file"):
        grid.sim.run(until=p)


def test_dispose_destroys_uspace_and_forgets_job(site):
    grid, user, session = site
    jmc, job_id = _finished_job(grid, session)
    vsite = grid.usites["FZJ"].vsites["FZJ-T3E"]
    assert vsite.uspaces.active_jobs  # uspace exists while job retained

    def dispose(sim):
        ack = yield from jmc.dispose(job_id)
        return ack

    p = grid.sim.process(dispose(grid.sim))
    ack = grid.sim.run(until=p)
    assert ack["disposed"] == job_id
    assert vsite.uspaces.active_jobs == []

    # The job is gone: further queries fail.
    def query(sim):
        yield from jmc.status(job_id)

    p2 = grid.sim.process(query(grid.sim))
    with pytest.raises(RuntimeError, match="unknown UNICORE job"):
        grid.sim.run(until=p2)


def test_dispose_refuses_running_job(site):
    grid, user, session = site
    jpa = JobPreparationAgent(session)
    jmc = JobMonitorController(session)
    job = jpa.new_job("running", vsite="FZJ-T3E")
    job.script_task("slow", script="#!/bin/sh\nsleep\n",
                    resources=ResourceRequest(cpus=1, time_s=80000),
                    simulated_runtime_s=70000.0)

    def scenario(sim):
        job_id = yield from jpa.submit(job)
        yield from jmc.dispose(job_id)

    p = grid.sim.process(scenario(grid.sim))
    with pytest.raises(RuntimeError, match="cancel it before"):
        grid.sim.run(until=p)


def test_site_specific_auth_hook_blocks_at_gateway(site):
    """Sites requiring smart cards / DCE (section 4.2) refuse the mapping."""
    grid, user, session = site
    grid.usites["FZJ"].uudb.install_site_check(lambda cert: False)
    jpa = JobPreparationAgent(session)
    job = jpa.new_job("blocked", vsite="FZJ-T3E")
    job.script_task("t", script="#!/bin/sh\nx\n", simulated_runtime_s=1.0)

    def submit(sim):
        yield from jpa.submit(job)

    p = grid.sim.process(submit(grid.sim))
    from repro.ajo import ValidationError

    with pytest.raises(ValidationError, match="site-specific"):
        grid.sim.run(until=p)
    assert grid.usites["FZJ"].gateway.auth_failures >= 1


def test_accounting_charges_unicore_jobs_automatically(site):
    grid, user, session = site
    jmc, job_id = _finished_job(grid, session, name="billed")
    log = grid.usites["FZJ"].accounting
    assert len(log) >= 1
    hours = log.cpu_hours_by_user()
    assert hours.get("rita", 0) > 0
    assert "FZJ-T3E" in log.cpu_hours_by_vsite()
