"""Integration tests for completion-event subscription monitoring.

The hot-path tentpole: ``GridSession.wait`` parks one QUERY at the
gateway until the job completes instead of running a poll train.  These
tests pin the observable contract — far fewer protocol interactions for
the same answer, delta-based LIST views run over the same session, a
typed ``WaitTimeout`` when a poll budget is exhausted, and survival of
an NJS crash while a subscription is parked.
"""

import pytest

from repro.api import GridSession
from repro.errors import ReproError, WaitTimeout
from repro.grid import build_grid
from repro.observability import telemetry_for
from repro.resources import ResourceRequest


def _session(seed=11):
    grid = build_grid({"FZJ": ["FZJ-T3E"]}, seed=seed)
    user = grid.add_user("Sub User", logins={"FZJ": "sub"})
    return grid, GridSession(grid, user, "FZJ")


def _job(session, name="subwork", runtime_s=3000.0):
    job = session.new_job(name)
    job.script_task(
        "work", "#!/bin/sh\nwork\n",
        resources=ResourceRequest(cpus=1, time_s=runtime_s * 1.5),
        simulated_runtime_s=runtime_s,
    )
    return job


def _requests_sent(grid):
    return telemetry_for(grid.sim).metrics.counter_value("protocol.requests_sent")


def test_subscription_wait_replaces_the_poll_train():
    grid, session = _session()
    handle = session.submit(_job(session, runtime_s=3000.0))
    before = _requests_sent(grid)
    final = session.wait(handle)
    subscribe_cost = _requests_sent(grid) - before
    assert final.status == "successful"

    # Same workload, classic bounded polling (30s default cadence).
    grid2, session2 = _session()
    handle2 = session2.submit(_job(session2, runtime_s=3000.0))
    before = _requests_sent(grid2)
    final2 = session2.wait(handle2, subscribe=False)
    poll_cost = _requests_sent(grid2) - before
    assert final2.status == "successful"

    # One parked interaction (plus at most a renewal) versus ~100 polls.
    assert subscribe_cost <= 3
    assert poll_cost >= 10 * subscribe_cost
    holds = telemetry_for(grid.sim).metrics.counter_value(
        "gateway.subscribe_holds"
    )
    assert holds >= 1


def test_subscription_wait_survives_njs_crash_window():
    grid, session = _session()
    njs = grid.usites["FZJ"].njs
    handle = session.submit(_job(session, runtime_s=2000.0))
    # Crash while the subscription is parked; restart shortly after.
    grid.sim.schedule_callback(300.0, njs.crash)
    grid.sim.schedule_callback(420.0, njs.restart)
    final = session.wait(handle)
    assert final.is_terminal
    assert final.status == "successful"
    assert njs.crashes == 1


def test_poll_budget_exhaustion_raises_typed_wait_timeout():
    grid, session = _session()
    handle = session.submit(_job(session, runtime_s=20_000.0))
    with pytest.raises(WaitTimeout) as exc_info:
        session.wait(handle, max_polls=3, subscribe=False)
    err = exc_info.value
    assert err.code == "api.wait_timeout"
    assert err.job_id == handle.job_id
    assert err.polls == 3
    # It is a ReproError (typed API surface), not a transport error the
    # session would have swallowed and retried.
    assert isinstance(err, ReproError)
    # The job is still live server-side; a real wait still works.
    view = session.status(handle)
    assert not view.is_terminal


def test_subscribe_renewal_budget_also_raises_wait_timeout():
    grid, session = _session()
    handle = session.submit(_job(session, runtime_s=20_000.0))
    with pytest.raises(WaitTimeout) as exc_info:
        session.wait(handle, max_polls=2, subscribe=True)
    assert exc_info.value.code == "api.wait_timeout"


def test_list_jobs_uses_delta_views_across_refreshes():
    grid, session = _session()
    jmc = session._connect("FZJ")[2]
    metrics = telemetry_for(grid.sim).metrics

    h1 = session.submit(_job(session, "first", runtime_s=200.0))

    def _listing():
        proc = grid.sim.process(jmc.list_jobs(), name="listing")
        return grid.sim.run(until=proc)

    rows = _listing()
    assert {row["job_id"] for row in rows} == {h1.job_id}

    # Second refresh after a new submission rides the cursor: the wire
    # answer is a delta (counted), yet the merged view is complete.
    h2 = session.submit(_job(session, "second", runtime_s=200.0))
    before = metrics.counter_value("jmc.delta_views")
    rows = _listing()
    assert metrics.counter_value("jmc.delta_views") == before + 1
    assert {row["job_id"] for row in rows} == {h1.job_id, h2.job_id}

    # Jobs finishing show up through the same delta stream.
    session.wait(h1)
    session.wait(h2)
    rows = _listing()
    by_id = {row["job_id"]: row for row in rows}
    assert by_id[h1.job_id]["status"] == "successful"
    assert by_id[h2.job_id]["status"] == "successful"

    # An idle refresh is an empty delta, not a resync.
    assert _listing() == rows
