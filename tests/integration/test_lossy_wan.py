"""Failure injection: the whole stack on an unreliable WAN.

The paper chose an asynchronous protocol precisely to "protect against
any unreliability of the underlying communication mechanism"; these
tests inject message loss on every WAN link and verify the system still
delivers — client-to-gateway traffic via the async client's retries, and
NJS-to-NJS traffic via the supervisor's bounded resends.
"""

import pytest

from repro.ajo import ActionStatus
from repro.client import JobMonitorController, JobPreparationAgent
from repro.grid import build_grid
from repro.protocol import RetryPolicy


def _lossy_grid(loss: float, seed: int):
    grid = build_grid({"FZJ": ["FZJ-T3E"], "ZIB": ["ZIB-SP2"]}, seed=seed)
    user = grid.add_user("Lossy", logins={"FZJ": "loss", "ZIB": "loss_b"})
    user.browser.retry = RetryPolicy(max_attempts=20, base_delay_s=1.0,
                                     max_delay_s=10.0)
    session = grid.connect_user(user, "FZJ")
    # Inject loss on every WAN link *after* connection setup.
    for (a, b), link in grid.network._links.items():
        if ".gateway" in a and ".gateway" in b and a.split(".")[0] != b.split(".")[0]:
            link.loss_probability = loss
        if a.startswith("ws") or b.startswith("ws"):
            link.loss_probability = loss
    return grid, user, session


@pytest.mark.parametrize("loss", [0.05, 0.15])
def test_single_site_job_completes_on_lossy_access_link(loss):
    grid, user, session = _lossy_grid(loss, seed=101)
    jpa = JobPreparationAgent(session)
    jmc = JobMonitorController(session)
    session.client.poll_interval_s = 60.0
    job = jpa.new_job("lossy-job", vsite="FZJ-T3E")
    job.script_task("w", script="#!/bin/sh\nx\n", simulated_runtime_s=120.0)

    def scenario(sim):
        job_id = yield from jpa.submit(job)
        final = yield from jmc.wait_for_completion(job_id)
        return final

    p = grid.sim.process(scenario(grid.sim))
    final = grid.sim.run(until=p)
    assert final["status"] == "successful"
    assert session.client.retries >= 0  # retries may or may not trigger


def test_multisite_pipeline_survives_lossy_wan():
    grid, user, session = _lossy_grid(0.10, seed=103)
    jpa = JobPreparationAgent(session)
    jmc = JobMonitorController(session)
    session.client.poll_interval_s = 60.0

    root = jpa.new_job("lossy-pipeline", vsite="FZJ-T3E")
    work = root.script_task("produce", script="#!/bin/sh\nx\n",
                            simulated_runtime_s=60.0)
    sub = root.sub_job("remote", vsite="ZIB-SP2", usite="ZIB")
    sub.script_task("consume", script="#!/bin/sh\nx\n",
                    simulated_runtime_s=60.0)
    root.depends(work, sub.ajo, files=["hand.off"])

    def scenario(sim):
        job_id = yield from jpa.submit(root)
        final = yield from jmc.wait_for_completion(job_id)
        outcome = yield from jmc.outcome(job_id)
        return final, outcome

    p = grid.sim.process(scenario(grid.sim))
    final, outcome = grid.sim.run(until=p)
    assert final["status"] == "successful"
    assert outcome.rollup_status() is ActionStatus.SUCCESSFUL
    # The WAN really lost messages along the way.
    assert grid.network.total_messages_lost() > 0


def test_duplicate_consign_suppressed_under_reply_loss():
    """Reply loss forces consign retries; the gateway's idempotency cache
    must prevent duplicate jobs."""
    grid, user, session = _lossy_grid(0.25, seed=107)
    jpa = JobPreparationAgent(session)
    jmc = JobMonitorController(session)
    session.client.poll_interval_s = 60.0
    job = jpa.new_job("dedup", vsite="FZJ-T3E")
    job.script_task("w", script="#!/bin/sh\nx\n", simulated_runtime_s=30.0)

    def scenario(sim):
        job_id = yield from jpa.submit(job)
        final = yield from jmc.wait_for_completion(job_id)
        listing = yield from jmc.list_jobs()
        return job_id, final, listing

    p = grid.sim.process(scenario(grid.sim))
    job_id, final, listing = grid.sim.run(until=p)
    assert final["status"] == "successful"
    assert [j["job_id"] for j in listing] == [job_id]  # exactly one job
    assert grid.usites["FZJ"].njs.job_count == 1
