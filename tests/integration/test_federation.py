"""Integration tests for the federation tier: load-balanced gateways,
late-bound submission through :meth:`GridSession.submit(broker=True)`,
quota rejection across the protocol edge, and cross-Vsite work stealing.
"""

import pytest

from repro.api import GridSession
from repro.broker import BrokerQuotaError, FairSharePolicy, attach_broker
from repro.grid.build import build_grid
from repro.resources.model import ResourceRequest

TWO_SITES = {"FZJ": ["FZJ-T3E"], "LRZ": ["LRZ-VPP"]}


def _user(grid, name="Alice Debye", login="alice"):
    grid.add_user(
        name, organization="FZJ",
        logins={site: login for site in grid.usites},
    )
    return name


def test_multiple_gateways_load_balance_one_usite():
    grid = build_grid({"FZJ": ["FZJ-T3E"]}, gateways=2)
    usite = grid.usites["FZJ"]
    assert len(usite.gateways) == 2
    assert usite.gateways[0].njs is usite.gateways[1].njs

    handles = []
    for i in range(2):
        name = _user(grid, f"User {i}", f"user{i}")
        session = GridSession(grid, name, "FZJ")
        job = session.new_job(f"job{i}")
        job.script_task("t", "echo hi", simulated_runtime_s=30)
        handles.append((session, session.submit(job)))
    for session, handle in handles:
        assert session.wait(handle).status == "successful"
    # Round-robin connect spread the sessions, so both web servers did
    # real protocol work against the same NJS.
    assert all(gw.requests_served > 0 for gw in usite.gateways)


def test_brokered_submission_binds_and_completes():
    grid = build_grid(TWO_SITES, gateways=2)
    broker = attach_broker(grid)
    session = GridSession(grid, _user(grid), "FZJ")

    job = session.new_job("late-bound")
    job.script_task(
        "t", "echo hi",
        resources=ResourceRequest(cpus=2, time_s=120),
        simulated_runtime_s=60,
    )
    handle = session.submit(job, broker=True)
    assert handle.usite in TWO_SITES
    assert handle.vsite in ("FZJ-T3E", "LRZ-VPP")
    entry = broker.matcher.dispatched[0]
    assert entry.job_id == handle.job_id

    view = session.wait(handle)
    assert view.status == "successful"
    assert session.outcome(handle) is not None
    counters = broker.counters()
    assert counters["matches"] >= 1
    assert counters["rejections"] == 0
    # Completion feedback retires the queue entry without polling.
    session.advance(200)
    assert entry.state.is_terminal


def test_broker_quota_rejects_before_enqueue():
    grid = build_grid(TWO_SITES)
    broker = attach_broker(
        grid, policy=FairSharePolicy(default_max_active=1)
    )
    session = GridSession(grid, _user(grid), "FZJ")

    first = session.new_job("first")
    first.script_task("t", "x", simulated_runtime_s=7_200)
    session.submit(first, broker=True)

    second = session.new_job("second")
    second.script_task("t", "x", simulated_runtime_s=60)
    with pytest.raises(BrokerQuotaError) as exc:
        session.submit(second, broker=True)
    assert exc.value.code == "broker.quota_exceeded"
    assert broker.counters()["rejections"] == 1
    # Nothing leaked into the queue.
    assert broker.matcher.queue_depth == 0


def test_work_stealing_moves_queued_job_to_drained_site():
    # LRZ-VPP (52 cpus, 4x speed) attracts the small job; a hog consigned
    # directly there just before binding makes it queue behind 52 busy
    # cpus, and the broker steals it over to the idle FZJ-T3E.
    grid = build_grid(TWO_SITES)
    broker = attach_broker(
        grid,
        advertise_interval_s=60,
        dispatch_interval_s=30,
        min_steal_wait_s=600,
    )
    session = GridSession(grid, _user(grid), "FZJ")

    # Let both sites advertise themselves idle first (offsets 0 and 30).
    while grid.sim.now < 35:
        session.advance(5)

    hog = session.new_job("hog", vsite="LRZ-VPP", usite="LRZ")
    hog.script_task(
        "occupy", "sleep",
        resources=ResourceRequest(cpus=52, time_s=3600),
        simulated_runtime_s=3600,
    )
    session.submit(hog)  # plain targeted consign: broker cannot see it yet

    small = session.new_job("small")
    small.script_task(
        "quick", "echo hi",
        resources=ResourceRequest(cpus=2, time_s=60),
        simulated_runtime_s=30,
    )
    handle = session.submit(small, broker=True)
    assert handle.vsite == "LRZ-VPP"  # bound on the stale idle picture

    entry = broker.matcher.dispatched[-1]
    view = session.wait(handle)
    assert view.status == "successful"
    assert entry.steals == 1
    assert entry.vsite == "FZJ-T3E"
    assert "LRZ-VPP" in entry.excluded
    assert broker.counters()["steals"] == 1
    # The job finished at FZJ long before the hog releases LRZ.
    assert grid.sim.now < 3600 + 35
    # And the session's verbs follow the stolen job transparently.
    assert session.status(handle).status == "successful"


def test_gateway_dict_config_and_primary_wiring():
    grid = build_grid(TWO_SITES, gateways={"FZJ": 3})
    assert len(grid.usites["FZJ"].gateways) == 3
    assert len(grid.usites["LRZ"].gateways) == 1
    # The primary gateway keeps the WAN/peer role.
    assert grid.usites["FZJ"].gateway is grid.usites["FZJ"].gateways[0]
