"""Full-site failure and recovery: the machine room goes dark.

The acceptance scenario of the persistence layer: kill a whole Usite —
every gateway, the NJS (bare heap), the UUDB's in-memory table — in the
middle of a workload, cold-start it from the SQLite backend, and verify
zero lost jobs: finished jobs reappear as restored listings with their
outcomes intact, in-flight jobs are replayed to completion.
"""

import pytest

from repro.api import GridSession
from repro.faults import FaultEvent, FaultInjector, FaultKind, FaultPlan
from repro.grid import build_grid
from repro.observability import telemetry_for
from repro.resources import ResourceRequest


def _grid(sites=None, seed=21, storage="sqlite"):
    grid = build_grid(sites or {"FZJ": ["FZJ-T3E"]}, seed=seed, storage=storage)
    user = grid.add_user(
        "Site Tester", organization="Test",
        logins={site: "site" for site in grid.usites},
    )
    return grid, GridSession(grid, user, "FZJ")


def _dag_job(session, name="dag", stage_runtime_s=400.0):
    job = session.new_job(name)
    a = job.script_task("stage-a", "#!/bin/sh\na\n",
                        simulated_runtime_s=stage_runtime_s)
    b = job.script_task("stage-b", "#!/bin/sh\nb\n",
                        simulated_runtime_s=stage_runtime_s)
    c = job.script_task("stage-c", "#!/bin/sh\nc\n",
                        simulated_runtime_s=stage_runtime_s)
    job.depends(a, b, files=["a.out"])
    job.depends(b, c, files=["b.out"])
    return job


def _quick_job(session, name="quick", runtime_s=50.0):
    job = session.new_job(name)
    job.script_task("only", "#!/bin/sh\nq\n", simulated_runtime_s=runtime_s)
    return job


def test_full_site_restart_loses_no_jobs():
    """Gateway + NJS + UUDB die mid-workload; SQLite brings it all back."""
    grid, session = _grid()
    usite = grid.usites["FZJ"]

    finished = session.submit(_quick_job(session, "finished-before"))
    assert session.wait(finished).status == "successful"

    inflight = session.submit(_dag_job(session, "caught-midflight"))
    session.advance(600.0)  # stage-a done, stage-b running

    usite.crash_site()
    assert usite.njs.crashed and all(gw.down for gw in usite.gateways)
    # The cold crash wiped the Python heap, not the storage backend.
    assert len(usite.njs._runs) == 0
    session.advance(45.0)
    usite.restart_site()

    final = session.wait(inflight)
    assert final.status == "successful"

    rows = {row.job_id: row for row in session.list_jobs()}
    assert set(rows) == {finished.job_id, inflight.job_id}
    # The replayed job is flagged; the restored finished one keeps its
    # original (un-recovered) history.
    assert rows[inflight.job_id].recovered
    assert not rows[finished.job_id].recovered

    # Outcomes of both jobs are served — one live, one from storage.
    for handle in (finished, inflight):
        outcome = session.outcome(handle)
        assert all(t.stdout for t in outcome.children.values())

    metrics = telemetry_for(grid.sim).metrics
    assert metrics.counter("njs.restored_runs").value == 1
    assert metrics.counter("njs.journal_replays").value == 1


def test_restored_listing_serves_files_and_disposal():
    grid, session = _grid(seed=22)
    usite = grid.usites["FZJ"]
    handle = session.submit(_quick_job(session))
    assert session.wait(handle).status == "successful"

    usite.crash_site()
    session.advance(30.0)
    usite.restart_site()

    # Uspace files of the restored job come back from the manifest.
    content = session.fetch_file(handle, "only.o1")
    assert b"completed" in content
    # Disposal drops it from the journal and the outcome store.
    session.dispose(handle)
    assert session.list_jobs() == []
    assert usite.njs.journal.entry(handle.job_id) is None


def test_uudb_and_resource_pages_survive_cold_restart():
    grid, session = _grid(seed=23)
    usite = grid.usites["FZJ"]
    page = usite.vsites["FZJ-T3E"].resource_page

    usite.uudb.disable("CN=Site Tester, O=Test, C=DE")
    usite.crash_site()
    usite.restart_site()

    # The disable was persisted before the crash and restored after it.
    from repro.errors import MappingError
    with pytest.raises(MappingError):
        usite.uudb.map_dn("CN=Site Tester, O=Test, C=DE")
    # Resource pages round-trip through their durable ASN.1 form.
    assert usite.vsites["FZJ-T3E"].resource_page == page


def test_forwarded_group_replays_after_child_site_cold_restart():
    """Parent site forwards a sub-job; the child site power-fails mid-run."""
    grid, session = _grid(sites={"FZJ": ["FZJ-T3E"], "ZIB": ["ZIB-SP2"]},
                          seed=24)
    child = grid.usites["ZIB"]

    root = session.new_job("forwarded", vsite="FZJ-T3E")
    pre = root.script_task(
        "preprocess", script="#!/bin/sh\nprep\n",
        resources=ResourceRequest(cpus=8, time_s=3600),
        simulated_runtime_s=600.0,
    )
    remote = root.sub_job("render@ZIB", vsite="ZIB-SP2", usite="ZIB")
    remote.script_task(
        "render", script="#!/bin/sh\nrender\n",
        resources=ResourceRequest(cpus=8, time_s=3600),
        simulated_runtime_s=300.0,
    )
    root.depends(pre, remote.ajo, files=["field.dat"])
    handle = session.submit(root)

    # Crash the child site while the forwarded group runs there.
    grid.sim.schedule_callback(700.0, child.crash_site)
    grid.sim.schedule_callback(760.0, child.restart_site)

    final = session.wait(handle)
    assert final.status == "successful"
    # The child journaled the forwarded consign (with its forward_meta)
    # and replayed it from SQLite after the cold start.
    assert telemetry_for(grid.sim).metrics.counter(
        "njs.journal_replays"
    ).value >= 1
    outcome = session.outcome(handle)
    assert outcome.rollup_status().value == "successful"


def test_site_restart_fault_kind_is_opt_in():
    # Not part of the default chaos sweep...
    assert FaultKind.SITE_RESTART not in FaultKind.ALL
    # ...but the injector applies it when a plan asks.
    grid, session = _grid(seed=25)
    plan = FaultPlan(
        seed=0, intensity=1.0, horizon_s=3600.0,
        events=(FaultEvent(at_s=500.0, kind=FaultKind.SITE_RESTART,
                           target="FZJ", duration_s=60.0),),
    )
    injector = FaultInjector(grid, plan)
    injector.arm()
    handle = session.submit(_dag_job(session, "through-the-outage"))
    final = session.wait(handle)
    assert final.status == "successful"
    metrics = telemetry_for(grid.sim).metrics
    assert metrics.counter("faults.site_restart").value == 1
    assert metrics.counter("njs.journal_replays").value == 1


def test_snapshot_mid_workload_restores_and_replays():
    """A grid snapshot taken with jobs in flight replays them on thaw."""
    grid, session = _grid(seed=26)
    handle = session.submit(_dag_job(session, "snapshotted"))
    session.advance(600.0)  # mid-DAG

    snap = session.snapshot()

    restored = build_grid(restore_from=snap)
    assert restored.sim.now == grid.sim.now
    user = restored.users["Site Tester"]
    session2 = GridSession(restored, user, "FZJ")
    final = session2.wait(handle.job_id)
    assert final.status == "successful"
    rows = session2.list_jobs()
    assert [r.job_id for r in rows] == [handle.job_id]
    assert rows[0].recovered
