"""The data plane end to end: chunked uploads, resumable transfers,
streamed result fetches.

The control plane (AJO consignment, status queries, acks) keeps its
small messages; everything bulky — workstation files riding with a
consignment, Uspace-to-Uspace transfers, outcome and file fetches —
moves as binary-framed chunked streams.  These tests drive whole jobs
through the three-tier stack and check the split behaves: big payloads
stream in chunks, a WAN drop mid-transfer resumes from the last acked
chunk instead of restarting, and fetched bytes come back exact.
"""

import pytest

from repro.client import JobMonitorController, JobPreparationAgent
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.grid import build_grid
from repro.observability import telemetry_for
from repro.protocol.datapath import INLINE_FILE_MAX


@pytest.fixture()
def two_sites():
    grid = build_grid({"FZJ": ["FZJ-T3E"], "ZIB": ["ZIB-SP2"]}, seed=13)
    user = grid.add_user(
        "Clara Schmidt",
        organization="FZ Juelich",
        logins={"FZJ": "clara", "ZIB": "cschmidt"},
    )
    session = grid.connect_user(user, "FZJ")
    return grid, user, session


def test_large_consign_upload_streams_and_roundtrips(two_sites):
    """A workstation file above the inline ceiling streams to the NJS
    in chunks and comes back byte-exact through a streamed fetch."""
    grid, user, session = two_sites
    content = bytes(range(256)) * 1200  # ~300 KiB, all byte values
    assert len(content) > INLINE_FILE_MAX
    user.workstation.fs.write("/home/clara/input.dat", content)
    jpa = JobPreparationAgent(session)
    jmc = JobMonitorController(session)

    job = jpa.new_job("bulk-upload", vsite="FZJ-T3E")
    imp = job.import_from_workstation("/home/clara/input.dat", "input.dat")
    work = job.script_task(
        "crunch", script="#!/bin/sh\nwc input.dat\n", simulated_runtime_s=30.0
    )
    job.depends(imp, work, files=["input.dat"])

    def scenario(sim):
        job_id = yield from jpa.submit(job, workstation=user.workstation)
        final = yield from jmc.wait_for_completion(job_id)
        fetched = yield from jmc.fetch_file(job_id, "input.dat")
        return job_id, final, fetched

    p = grid.sim.process(scenario(grid.sim))
    job_id, final, fetched = grid.sim.run(until=p)
    assert final["status"] == "successful"
    # Byte-exact roundtrip: upload stream in, push stream back out.
    assert fetched == content
    metrics = telemetry_for(grid.sim).metrics
    # The upload and the fetch each moved multiple chunks; nothing was
    # lost, so nothing resumed.
    assert metrics.counter_value("stream.opens") >= 2
    assert metrics.counter_value("stream.chunks") >= 4
    assert metrics.counter_value("stream.resumes") == 0
    # Framing overhead is bytes, not base64: the data plane carried both
    # directions for well under 3x one payload.
    assert metrics.counter_value("stream.wire_bytes") < 3 * len(content)
    # The file physically landed in the job's uspace.
    run = grid.usites["FZJ"].njs._runs[job_id]
    uspace = next(iter(run.uspaces.values()))
    assert uspace.read("input.dat") == content


def test_transfer_resumes_after_wan_drop(two_sites):
    """E13-style channel drop mid-transfer: the stream resends only the
    chunks that were lost, and the job still succeeds."""
    grid, user, session = two_sites
    jpa = JobPreparationAgent(session)
    jmc = JobMonitorController(session)

    root = jpa.new_job("xfer-under-fire", vsite="FZJ-T3E")
    work = root.script_task(
        "produce", script="#!/bin/sh\nmake data\n", simulated_runtime_s=60.0
    )
    remote = root.sub_job("consume@ZIB", vsite="ZIB-SP2", usite="ZIB")
    remote.script_task(
        "consume", script="#!/bin/sh\nread big.dat\n", simulated_runtime_s=60.0
    )
    xfer = root.transfer_to_usite("big.dat", "ZIB")
    root.depends(work, xfer, files=["big.dat"])
    root.depends(xfer, remote.ajo)

    # The 1 MiB transfer starts right after the 60 s produce task; drop
    # the gateway-gateway link across that window.  Chunk resends are
    # spaced a few seconds apart, so the stream rides out the outage.
    gw_a = grid.usites["FZJ"].gateway_host.name
    gw_b = grid.usites["ZIB"].gateway_host.name
    plan = FaultPlan(
        seed=13, intensity=1.0, horizon_s=200.0,
        events=(
            FaultEvent(
                at_s=61.0, kind=FaultKind.CHANNEL_DROP,
                target=f"{gw_a}|{gw_b}", duration_s=10.0, severity=1.0,
            ),
        ),
    )
    FaultInjector(grid, plan).arm()

    def scenario(sim):
        job_id = yield from jpa.submit(root)
        final = yield from jmc.wait_for_completion(job_id)
        return job_id, final

    p = grid.sim.process(scenario(grid.sim))
    job_id, final = grid.sim.run(until=p)
    assert final["status"] == "successful"
    metrics = telemetry_for(grid.sim).metrics
    # Chunks really were lost and resent from the last acked point...
    assert metrics.counter_value("stream.resumes") >= 1
    # ...rather than the whole payload restarting: the wire carried far
    # less than two full copies of the 1 MiB file.
    assert metrics.counter_value("stream.wire_bytes") < 2 * (1 << 20)
    # The stream reassembled completely at the destination.  (It arrives
    # before the forwarded group, so it sits in the early-file stash.)
    assert grid.usites["FZJ"].njs.transfers_bytes == 1 << 20
    early = grid.usites["ZIB"].njs._early_files.get(job_id, {})
    assert len(early.get("big.dat", b"")) == 1 << 20


def test_forwarded_group_stages_and_returns_large_files(two_sites):
    """Forward staging and group returns both use the data plane when
    the dependency files exceed the inline ceiling (1 MiB here)."""
    grid, user, session = two_sites
    jpa = JobPreparationAgent(session)
    jmc = JobMonitorController(session)

    root = jpa.new_job("coupled", vsite="FZJ-T3E")
    pre = root.script_task(
        "preprocess", script="#!/bin/sh\nprep\n", simulated_runtime_s=60.0
    )
    post_group = root.sub_job("postprocess@ZIB", vsite="ZIB-SP2", usite="ZIB")
    post_group.script_task(
        "render", script="#!/bin/sh\nrender field.dat\n",
        simulated_runtime_s=60.0,
    )
    final_task = root.script_task(
        "archive", script="#!/bin/sh\ntar render.out\n",
        simulated_runtime_s=30.0,
    )
    root.depends(pre, post_group.ajo, files=["field.dat"])
    root.depends(post_group.ajo, final_task, files=["render.out"])

    def scenario(sim):
        job_id = yield from jpa.submit(root)
        final = yield from jmc.wait_for_completion(job_id)
        return job_id, final

    p = grid.sim.process(scenario(grid.sim))
    job_id, final = grid.sim.run(until=p)
    assert final["status"] == "successful"
    metrics = telemetry_for(grid.sim).metrics
    # field.dat streamed out with the forwarded group, render.out
    # streamed back with the group result: two streams, 1 MiB each.
    assert metrics.counter_value("stream.opens") >= 2
    assert metrics.counter_value("stream.chunks") >= 8
    # The returned file reached the root run for the archive step.
    root_run = grid.usites["FZJ"].njs._runs[job_id]
    remote_files = root_run.remote_files.get(post_group.ajo.id, {})
    assert len(remote_files.get("render.out", b"")) == 1 << 20
