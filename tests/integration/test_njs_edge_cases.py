"""Integration tests for NJS and gateway edge cases and failure injection."""

import pytest

from repro.ajo import ActionStatus, ValidationError
from repro.client import JobMonitorController, JobPreparationAgent
from repro.grid import build_grid
from repro.resources import ResourceRequest


@pytest.fixture()
def duo():
    grid = build_grid({"FZJ": ["FZJ-T3E"], "ZIB": ["ZIB-SP2"]}, seed=29)
    user = grid.add_user("Edge", logins={"FZJ": "edge", "ZIB": "edge_b"})
    session = grid.connect_user(user, "FZJ")
    return grid, user, session


def test_cancel_propagates_to_forwarded_group(duo):
    grid, user, session = duo
    jpa = JobPreparationAgent(session)
    jmc = JobMonitorController(session)
    root = jpa.new_job("spanning", vsite="FZJ-T3E")
    root.script_task("local-long", script="#!/bin/sh\nx\n",
                     resources=ResourceRequest(cpus=1, time_s=80000),
                     simulated_runtime_s=70000.0)
    sub = root.sub_job("remote", vsite="ZIB-SP2", usite="ZIB")
    sub.script_task("remote-long", script="#!/bin/sh\nx\n",
                    resources=ResourceRequest(cpus=1, time_s=80000),
                    simulated_runtime_s=70000.0)

    def scenario(sim):
        job_id = yield from jpa.submit(root)
        yield sim.timeout(300.0)  # both parts are running by now
        yield from jmc.cancel(job_id)
        final = yield from jmc.wait_for_completion(job_id)
        return final

    p = grid.sim.process(scenario(grid.sim))
    final = grid.sim.run(until=p)
    assert final["status"] == "killed"
    # The remote batch job was really cancelled at ZIB.
    from repro.batch import BatchState

    zib_records = grid.usites["ZIB"].vsites["ZIB-SP2"].batch.all_records()
    assert zib_records and zib_records[0].state is BatchState.CANCELLED
    # And the local one at FZJ.
    fzj_records = grid.usites["FZJ"].vsites["FZJ-T3E"].batch.all_records()
    assert fzj_records[0].state is BatchState.CANCELLED


def test_transfer_to_unknown_usite_fails_task_only(duo):
    grid, user, session = duo
    jpa = JobPreparationAgent(session)
    jmc = JobMonitorController(session)
    job = jpa.new_job("badxfer", vsite="FZJ-T3E")
    work = job.script_task("w", script="#!/bin/sh\nx\n", simulated_runtime_s=10.0)
    xfer = job.transfer_to_usite("out.dat", "ATLANTIS")
    job.depends(work, xfer, files=["out.dat"])

    def scenario(sim):
        job_id = yield from jpa.submit(job)
        final = yield from jmc.wait_for_completion(job_id)
        outcome = yield from jmc.outcome(job_id)
        return final, outcome

    p = grid.sim.process(scenario(grid.sim))
    final, outcome = grid.sim.run(until=p)
    assert final["status"] == "failed"
    assert outcome.child(work.id).status is ActionStatus.SUCCESSFUL
    assert outcome.child(xfer.id).status is ActionStatus.FAILED
    assert "no route" in outcome.child(xfer.id).reason


def test_missing_workstation_file_fails_import(duo):
    grid, user, session = duo
    jpa = JobPreparationAgent(session)
    user.workstation.fs.write("/home/edge/real.dat", b"data")
    job = jpa.new_job("wsimport", vsite="FZJ-T3E")
    job.import_from_workstation("/home/edge/real.dat", "a.dat")

    # Submitting with a workstation that lacks the file fails client-side.
    from repro.vfs import Workstation

    empty_ws = Workstation("CN=Edge")

    def scenario(sim):
        yield from jpa.submit(job, workstation=empty_ws)

    p = grid.sim.process(scenario(grid.sim))
    from repro.vfs.errors import FileNotFoundVFSError

    with pytest.raises(FileNotFoundVFSError):
        grid.sim.run(until=p)


def test_workstation_import_requires_workstation_argument(duo):
    grid, user, session = duo
    jpa = JobPreparationAgent(session)
    job = jpa.new_job("noworkstation", vsite="FZJ-T3E")
    job.import_from_workstation("/home/edge/x.dat", "x.dat")

    def scenario(sim):
        yield from jpa.submit(job)

    p = grid.sim.process(scenario(grid.sim))
    with pytest.raises(ValidationError, match="no workstation"):
        grid.sim.run(until=p)


def test_spoofed_user_dn_rejected_by_gateway(duo):
    """A request claiming another user's DN over an authenticated channel."""
    grid, user, session = duo
    from repro.protocol.messages import Request, RequestKind

    captured = {}

    def scenario(sim):
        request = Request(
            kind=RequestKind.LIST,
            user_dn="CN=Somebody Else",  # != the channel's certificate
            payload=__import__("repro.ajo", fromlist=["encode_service"])
            .encode_service(
                __import__("repro.ajo", fromlist=["ListService"]).ListService("l")
            ),
        )
        reply = yield from session.client.interact(request)
        captured["reply"] = reply

    p = grid.sim.process(scenario(grid.sim))
    grid.sim.run(until=p)
    assert not captured["reply"].ok
    assert "identity mismatch" in captured["reply"].error
    assert grid.usites["FZJ"].gateway.auth_failures >= 1


def test_oversized_request_rejected_by_jpa_client_side(duo):
    grid, user, session = duo
    jpa = JobPreparationAgent(session)
    job = jpa.new_job("huge", vsite="FZJ-T3E")
    with pytest.raises(ValidationError, match="above maximum"):
        job.script_task(
            "monster", script="#!/bin/sh\nx\n",
            resources=ResourceRequest(cpus=4096, time_s=60),
        )


def test_batch_queue_rejection_reported_in_outcome(duo):
    """A task that passes the page check can still hit queue limits at
    submission time (e.g. memory beyond the machine)."""
    grid, user, session = duo
    jpa = JobPreparationAgent(session)
    jmc = JobMonitorController(session)
    job = jpa.new_job("memhog", vsite="FZJ-T3E")
    # 512*128MB = 65536MB machine memory; page allows memory up to total,
    # so ask within page but with cpus*... actually ask exactly at the
    # machine's total memory with 1 cpu: page ok, batch rejects.
    job.script_task(
        "hog", script="#!/bin/sh\nx\n",
        resources=ResourceRequest(cpus=1, time_s=600,
                                  memory_mb=65536.0),
        simulated_runtime_s=10.0,
    )

    def scenario(sim):
        job_id = yield from jpa.submit(job)
        final = yield from jmc.wait_for_completion(job_id)
        outcome = yield from jmc.outcome(job_id)
        return final, outcome

    p = grid.sim.process(scenario(grid.sim))
    final, outcome = grid.sim.run(until=p)
    # Either the NJS consign check or the batch system rejected it; in
    # both cases the user sees a clean failure, never a hang.
    assert final["status"] in ("failed", "successful")


def test_two_jobs_share_nothing(duo):
    """Uspace isolation: identical file names in two jobs never collide."""
    grid, user, session = duo
    jpa = JobPreparationAgent(session)
    jmc = JobMonitorController(session)

    def make(name, content_marker):
        job = jpa.new_job(name, vsite="FZJ-T3E")
        work = job.script_task(f"w-{name}", script="#!/bin/sh\nx\n",
                               simulated_runtime_s=10.0)
        exp = job.export_to_xspace("result.dat", f"/out/{name}.dat")
        job.depends(work, exp, files=["result.dat"])
        return job

    def scenario(sim):
        id1 = yield from jpa.submit(make("iso1", b"one"))
        id2 = yield from jpa.submit(make("iso2", b"two"))
        yield from jmc.wait_for_completion(id1)
        yield from jmc.wait_for_completion(id2)

    grid.sim.run(until=grid.sim.process(scenario(grid.sim)))
    xfs = grid.usites["FZJ"].xspace.fs
    assert xfs.exists("/out/iso1.dat") and xfs.exists("/out/iso2.dat")


def test_list_jobs_scoped_to_user(duo):
    grid, user, session = duo
    other = grid.add_user("Other", logins={"FZJ": "other"})
    other_session = grid.connect_user(other, "FZJ")
    jpa = JobPreparationAgent(session)
    job = jpa.new_job("mine", vsite="FZJ-T3E")
    job.script_task("t", script="#!/bin/sh\nx\n", simulated_runtime_s=5.0)

    def scenario(sim):
        yield from jpa.submit(job)
        mine = yield from JobMonitorController(session).list_jobs()
        theirs = yield from JobMonitorController(other_session).list_jobs()
        return mine, theirs

    p = grid.sim.process(scenario(grid.sim))
    mine, theirs = grid.sim.run(until=p)
    assert len(mine) == 1
    assert theirs == []
