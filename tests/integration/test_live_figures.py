"""The architecture figures rendered from live systems match the paper."""

from repro.grid import build_german_grid, build_grid
from repro.grid.figures import figure1, figure2


def test_figure1_shows_all_three_tiers():
    grid = build_grid({"FZJ": ["FZJ-T3E"]}, seed=47)
    grid.add_user("Fig User", logins={"FZJ": "fig"})
    text = figure1(grid.usites["FZJ"])
    # The tiers, top to bottom.
    assert text.index("user tier") < text.index("UNICORE server tier")
    assert text.index("UNICORE server tier") < text.index("batch subsystem tier")
    # The components of section 4.2.
    assert "gateway @ FZJ.gateway" in text
    assert "firewall socket" in text
    assert "NJS @ FZJ.njs" in text
    assert "UUDB: 1 mapping(s)" in text
    assert "JPA" in text and "JMC" in text
    assert "Cray T3E-900" in text
    assert "Xspace" in text
    assert "translation tables" in text


def test_figure1_colocated_variant():
    from repro.grid.build import Grid, _build_applets
    from repro.net.transport import Network
    from repro.security.ca import CertificateAuthority
    from repro.simkernel import Simulator

    sim = Simulator()
    grid = Grid(sim, Network(sim, seed=1), CertificateAuthority(key_bits=384, seed=1))
    grid.applets.update(_build_applets(grid.ca))
    usite = grid.add_usite("FZJ", ["FZJ-T3E"], firewall_split=False)
    text = figure1(usite)
    assert "co-located" in text
    assert "firewall socket" not in text


def test_figure2_shows_full_mesh_and_machines():
    grid = build_german_grid(seed=47)
    grid.add_user("Grid User", logins={s: "gu" for s in grid.usites})
    text = figure2(grid)
    for site in ("FZJ", "RUS", "RUKA", "LRZ", "ZIB", "DWD"):
        assert f"Usite {site}" in text
    for arch in ("Cray T3E", "Fujitsu VPP/700", "IBM SP-2", "NEC SX-4"):
        assert arch in text
    # Full mesh: 6 choose 2 = 15 connections, each listed once.
    assert text.count("<->") == 15
    # Routes go via the gateways (section 5.6).
    assert "FZJ.njs -> FZJ.gateway" in text
    assert "Grid User" in text and "DFN-PCA" in text
