"""Integration tests for crash recovery: journal replay, outages, retries.

The tentpole claim of the resilience subsystem: an NJS crash in the
middle of a dependent-task job loses no work the journal recorded — the
restarted NJS re-supervises the job under the same id, the client's
polls keep answering, and the job still completes.
"""

from repro.api import GridSession
from repro.grid import build_grid
from repro.observability import telemetry_for


def _session(seed=13):
    grid = build_grid({"FZJ": ["FZJ-T3E"]}, seed=seed)
    user = grid.add_user(
        "Crash Tester", organization="Test", logins={"FZJ": "crash"}
    )
    return grid, GridSession(grid, user, "FZJ")


def _dag_job(session, name="dag", stage_runtime_s=400.0):
    """Three dependent script stages — a crash mid-DAG leaves stages undone."""
    job = session.new_job(name)
    a = job.script_task("stage-a", "#!/bin/sh\na\n",
                        simulated_runtime_s=stage_runtime_s)
    b = job.script_task("stage-b", "#!/bin/sh\nb\n",
                        simulated_runtime_s=stage_runtime_s)
    c = job.script_task("stage-c", "#!/bin/sh\nc\n",
                        simulated_runtime_s=stage_runtime_s)
    job.depends(a, b, files=["a.out"])
    job.depends(b, c, files=["b.out"])
    return job


def test_njs_crash_mid_dag_recovers_via_journal_replay():
    grid, session = _session()
    njs = grid.usites["FZJ"].njs
    handle = session.submit(_dag_job(session))

    # Let stage-a finish and stage-b get going, then pull the plug.
    session.advance(600.0)
    assert njs.journal.entry(handle.job_id) is not None
    njs.crash()
    assert njs.crashed
    session.advance(45.0)
    njs.restart()
    assert njs.replays == 1

    final = session.wait(handle)
    assert final.status == "successful"

    # The replayed run is flagged for the user and traced for operators.
    rows = session.list_jobs()
    assert [r.job_id for r in rows] == [handle.job_id]
    assert rows[0].recovered

    telemetry = telemetry_for(grid.sim)
    assert telemetry.metrics.counter("njs.journal_replays").value == 1
    trace = telemetry.tracer.trace(handle.trace_id)
    names = [span.name for span in trace.spans]
    assert "njs.replay" in names

    # The outcome tree is complete despite the mid-flight restart.
    outcome = session.outcome(handle)
    outputs = {o.strip() for o in (t.stdout for t in outcome.children.values())}
    assert len(outcome.children) == 3
    assert all(outputs)


def test_client_polls_ride_out_the_crash_window():
    """No operator intervention: crash + restart while the client waits."""
    grid, session = _session(seed=14)
    njs = grid.usites["FZJ"].njs
    sim = grid.sim
    handle = session.submit(_dag_job(session, name="unattended"))

    # Schedule the crash and the restart as the injector would.
    sim.schedule_callback(500.0, njs.crash)
    sim.schedule_callback(560.0, njs.restart)

    final = session.wait(handle)
    assert final.status == "successful"
    assert njs.crashes == 1
    assert njs.replays == 1


def test_crash_before_any_delivery_still_replays():
    grid, session = _session(seed=15)
    njs = grid.usites["FZJ"].njs
    sim = grid.sim
    # Crash almost immediately after the consign ack: nothing delivered yet.
    handle = session.submit(_dag_job(session, name="early-crash"))
    sim.schedule_callback(1.0, njs.crash)
    sim.schedule_callback(30.0, njs.restart)
    final = session.wait(handle)
    assert final.status == "successful"


def test_vsite_outage_queues_tasks_instead_of_failing():
    grid, session = _session(seed=16)
    batch = grid.usites["FZJ"].vsites["FZJ-T3E"].batch
    sim = grid.sim

    handle = session.submit(_dag_job(session, name="outage"))
    sim.schedule_callback(450.0, lambda: batch.set_offline(True))
    sim.schedule_callback(600.0, lambda: batch.set_offline(False))

    final = session.wait(handle)
    assert final.status == "successful"
    metrics = telemetry_for(grid.sim).metrics
    assert metrics.counter("batch.outages").value == 1
    # The task killed by the outage (or refused during it) was retried.
    assert (
        metrics.counter("njs.task_resubmissions").value
        + metrics.counter("njs.task_retry_waits").value
    ) >= 1


def test_node_failure_resubmission():
    grid, session = _session(seed=17)
    batch = grid.usites["FZJ"].vsites["FZJ-T3E"].batch
    sim = grid.sim

    handle = session.submit(_dag_job(session, name="node-fail"))

    def kill_one():
        running = batch.running_job_ids()
        if running:
            batch.fail_job(running[0], reason="node failure")

    sim.schedule_callback(450.0, kill_one)
    final = session.wait(handle)
    assert final.status == "successful"
    metrics = telemetry_for(grid.sim).metrics
    assert metrics.counter("batch.node_failures").value == 1
    assert metrics.counter("njs.task_resubmissions").value == 1
