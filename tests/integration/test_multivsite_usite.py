"""Section 4.3: 'One NJS can support multiple destination systems
(Vsites) at one UNICORE site.'  Job groups for different Vsites of the
same Usite run locally (no NJS-to-NJS forwarding), with dependency files
staged between the Vsites' Uspaces as local copies."""

import pytest

from repro.ajo import ActionStatus
from repro.client import JobMonitorController, JobPreparationAgent
from repro.grid import build_grid


@pytest.fixture()
def fzj_two_vsites():
    # One Usite offering both a T3E and an SX-4 behind a single NJS.
    grid = build_grid({"FZJ": ["FZJ-T3E", "DWD-SX4"]}, seed=67)
    user = grid.add_user("Multi", logins={"FZJ": "multi"})
    session = grid.connect_user(user, "FZJ")
    return grid, user, session


def test_resource_pages_for_both_vsites(fzj_two_vsites):
    grid, user, session = fzj_two_vsites
    assert set(session.resource_pages) == {"FZJ-T3E", "DWD-SX4"}
    assert session.resource_pages["DWD-SX4"].architecture == "NEC SX-4"


def test_cross_vsite_pipeline_within_one_usite(fzj_two_vsites):
    grid, user, session = fzj_two_vsites
    jpa = JobPreparationAgent(session)
    jmc = JobMonitorController(session)

    # Main run on the T3E, vector post-processing on the SX-4 — same site.
    root = jpa.new_job("hybrid", vsite="FZJ-T3E")
    main_run = root.script_task(
        "solve", script="#!/bin/sh\nsolve\n", simulated_runtime_s=200.0
    )
    post = root.sub_job("vector-post", vsite="DWD-SX4", usite="FZJ")
    render = post.script_task(
        "vectorize", script="#!/bin/sh\nvec field.dat\n",
        simulated_runtime_s=100.0,
    )
    root.depends(main_run, post.ajo, files=["field.dat"])

    def scenario(sim):
        job_id = yield from jpa.submit(root)
        final = yield from jmc.wait_for_completion(job_id)
        outcome = yield from jmc.outcome(job_id)
        return job_id, final, outcome

    p = grid.sim.process(scenario(grid.sim))
    job_id, final, outcome = grid.sim.run(until=p)
    assert final["status"] == "successful"
    sub_outcome = outcome.child(post.ajo.id)
    assert sub_outcome.child(render.id).status is ActionStatus.SUCCESSFUL

    usite = grid.usites["FZJ"]
    # No forwarding happened: both parts ran under this NJS.
    assert usite.njs.forwarded_groups == 0
    # Both machines executed work, in their own dialects.
    t3e = usite.vsites["FZJ-T3E"].batch.all_records()
    sx4 = usite.vsites["DWD-SX4"].batch.all_records()
    assert len(t3e) == 1 and "#QSUB" in t3e[0].spec.script
    assert len(sx4) == 1 and "#QSUB" in sx4[0].spec.script
    # The dependency file crossed from the T3E uspace to the SX-4 uspace.
    run = usite.njs.get_run(job_id)
    sx4_uspace = run.uspaces[post.ajo.id]
    assert sx4_uspace.exists("field.dat")
    # Sequencing respected: the SX-4 job started after the T3E job ended.
    assert sx4[0].submit_time >= t3e[0].end_time


def test_vsite_specific_uudb_mapping_applies(fzj_two_vsites):
    grid, user, session = fzj_two_vsites
    # Different login on the SX-4 partition.
    grid.usites["FZJ"].add_user(
        user.browser.user_cert.subject, "multi_sx", vsite="DWD-SX4"
    )
    jpa = JobPreparationAgent(session)
    jmc = JobMonitorController(session)
    root = jpa.new_job("split-identity", vsite="FZJ-T3E")
    root.script_task("a", script="#!/bin/sh\nx\n", simulated_runtime_s=10.0)
    sub = root.sub_job("on-sx4", vsite="DWD-SX4", usite="FZJ")
    sub.script_task("b", script="#!/bin/sh\nx\n", simulated_runtime_s=10.0)

    def scenario(sim):
        job_id = yield from jpa.submit(root)
        final = yield from jmc.wait_for_completion(job_id)
        return final

    p = grid.sim.process(scenario(grid.sim))
    assert grid.sim.run(until=p)["status"] == "successful"
    usite = grid.usites["FZJ"]
    assert usite.vsites["FZJ-T3E"].batch.all_records()[0].spec.owner == "multi"
    assert usite.vsites["DWD-SX4"].batch.all_records()[0].spec.owner == "multi_sx"
