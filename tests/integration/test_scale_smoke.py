"""Scale smoke test: the six-site grid under a burst of concurrent jobs.

A lighter in-suite version of benchmark E10: thirty jobs submitted
back-to-back from three sessions, every one tracked to a terminal state,
with conservation checks across tiers.  Also guards wall-clock sanity:
the whole scenario must simulate quickly (event-count regression guard).
"""

import time

from repro.client import JobMonitorController, JobPreparationAgent
from repro.grid import build_german_grid
from repro.resources import ResourceRequest

VSITES = {
    "FZJ": "FZJ-T3E", "RUS": "RUS-T3E", "RUKA": "RUKA-SP2",
    "ZIB": "ZIB-SP2", "LRZ": "LRZ-VPP", "DWD": "DWD-SX4",
}


def test_thirty_concurrent_jobs_across_six_sites():
    grid = build_german_grid(seed=89)
    user = grid.add_user("Scale", logins={s: "scale" for s in grid.usites})
    sessions = {s: grid.connect_user(user, s) for s in ("FZJ", "ZIB", "DWD")}
    t0 = time.perf_counter()

    results = []

    def stream(home):
        session = sessions[home]
        session.client.poll_interval_s = 120.0
        jpa = JobPreparationAgent(session)
        jmc = JobMonitorController(session)
        pending = []
        for i in range(10):
            job = jpa.new_job(f"{home.lower()}-{i}", vsite=VSITES[home])
            job.script_task(
                "w", script="#!/bin/sh\nx\n",
                resources=ResourceRequest(cpus=4, time_s=3600),
                simulated_runtime_s=300.0 + 10 * i,
            )
            job_id = yield from jpa.submit(job)
            pending.append(job_id)
        for job_id in pending:
            final = yield from jmc.wait_for_completion(job_id)
            results.append((job_id, final["status"]))

    procs = [grid.sim.process(stream(h)) for h in ("FZJ", "ZIB", "DWD")]
    for p in procs:
        grid.sim.run(until=p)
    grid.sim.run()
    wall = time.perf_counter() - t0

    assert len(results) == 30
    assert all(status == "successful" for _, status in results)
    # Conservation at every tier.
    for usite in grid.usites.values():
        for run in usite.njs._runs.values():
            assert run.status().is_terminal
        for vsite in usite.vsites.values():
            assert all(r.state.is_terminal for r in vsite.batch.all_records())
    # Codine ledgers drained.
    for usite in grid.usites.values():
        assert usite.njs.codine.in_flight() == 0
    # Accounting saw all 30 jobs.
    billed = sum(len(u.accounting) for u in grid.usites.values())
    assert billed == 30
    # Wall-clock sanity: the whole scenario simulates in seconds.
    assert wall < 30.0
