"""The static analyzer in the live three-tier pipeline.

Errors block at the JPA before any bytes move; a client that skips its
own lint is caught by the NJS on arrival ("never trust the client") and
rejected with the stable diagnostic code, before any incarnation; and
``repro lint`` reports the same diagnostics from the command line.
"""

import json

import pytest

from repro.__main__ import main as repro_main
from repro.ajo import AbstractJobObject, ExportTask, ImportTask, UserTask, encode_ajo
from repro.analysis import AnalysisError
from repro.client import JobMonitorController, JobPreparationAgent
from repro.grid import build_grid
from repro.observability import telemetry_for
from repro.resources import ResourceRequest
from repro.server.errors import ConsignError


@pytest.fixture()
def site():
    grid = build_grid({"FZJ": ["FZJ-T3E"]}, seed=14)
    user = grid.add_user("Lint", logins={"FZJ": "lint"})
    session = grid.connect_user(user, "FZJ")
    return grid, user, session


def ghost_export_job(user_dn="CN=Lint,O=,C=DE"):
    job = AbstractJobObject("ghostly", vsite="FZJ-T3E", user_dn=user_dn)
    job.add(UserTask("work", executable="/bin/true"))
    job.add(ExportTask("out", source_path="ghost.dat", destination_path="/x/g"))
    return job


def test_jpa_blocks_errors_before_consigning(site):
    grid, user, session = site
    jpa = JobPreparationAgent(session)
    job = jpa.new_job("bad", vsite="FZJ-T3E")
    job.script_task("w", script="#!/bin/sh\nx\n", simulated_runtime_s=10.0)
    job.export_to_xspace("ghost.dat", "/out/g.dat", name="out")

    def scenario(sim):
        yield from jpa.submit(job)

    p = grid.sim.process(scenario(grid.sim))
    with pytest.raises(AnalysisError) as exc_info:
        grid.sim.run(until=p)
    assert exc_info.value.code == "AJO201"
    # Rejected client-side: the NJS never saw it, but the counters did.
    assert grid.usites["FZJ"].njs.job_count == 0
    metrics = telemetry_for(grid.sim).metrics
    assert metrics.counter_value("analysis.jobs_rejected") >= 1
    assert metrics.counter_value("analysis.errors") >= 1


def test_njs_rejects_unlinted_arrival_before_incarnation(site):
    grid, user, session = site
    njs = grid.usites["FZJ"].njs
    # Bypass the JPA entirely: a hand-rolled consignment with a staging
    # defect must be caught on arrival, before any incarnation.
    with pytest.raises(ConsignError) as exc_info:
        njs.consign(ghost_export_job())
    assert exc_info.value.code == "AJO201"
    assert njs.job_count == 0
    assert grid.usites["FZJ"].vsites["FZJ-T3E"].batch.all_records() == []
    assert telemetry_for(grid.sim).metrics.counter_value(
        "analysis.jobs_rejected"
    ) >= 1


def test_njs_rejects_infeasible_request_with_resource_code(site):
    grid, user, session = site
    njs = grid.usites["FZJ"].njs
    job = AbstractJobObject("monster", vsite="FZJ-T3E", user_dn="CN=Lint,O=,C=DE")
    job.add(UserTask(
        "huge", executable="/bin/huge",
        resources=ResourceRequest(cpus=10**6, time_s=60),
    ))
    with pytest.raises(ConsignError) as exc_info:
        njs.consign(job)
    assert exc_info.value.code == "AJO302"
    assert njs.job_count == 0


def test_clean_job_traced_through_njs_analyze_span(site):
    grid, user, session = site
    jpa = JobPreparationAgent(session)
    jmc = JobMonitorController(session)
    job = jpa.new_job("clean", vsite="FZJ-T3E")
    job.script_task("w", script="#!/bin/sh\nx\n", simulated_runtime_s=10.0)

    def scenario(sim):
        job_id = yield from jpa.submit(job)
        yield from jmc.wait_for_completion(job_id)
        return job_id

    job_id = grid.sim.run(until=grid.sim.process(scenario(grid.sim)))
    trace = telemetry_for(grid.sim).tracer.trace(job_id)
    names = [s.name for s in trace.spans]
    assert "njs.analyze" in names
    analyze = next(s for s in trace.spans if s.name == "njs.analyze")
    assert analyze.attributes["errors"] == 0


def test_repro_lint_reports_the_same_diagnostics(site, tmp_path, capsys):
    grid, user, session = site
    njs = grid.usites["FZJ"].njs
    job = ghost_export_job()
    with pytest.raises(ConsignError) as exc_info:
        njs.consign(job)
    server_code = exc_info.value.code

    path = tmp_path / "job.ajo"
    path.write_bytes(encode_ajo(job))
    with pytest.raises(SystemExit) as exit_info:
        repro_main(["lint", "--json", str(path)])
    assert exit_info.value.code == 1
    reports = json.loads(capsys.readouterr().out)
    assert reports[0]["ok"] is False
    client_codes = [d["code"] for d in reports[0]["diagnostics"]]
    assert server_code in client_codes


def test_lint_exit_zero_on_clean_job(tmp_path, capsys):
    job = AbstractJobObject("fine", vsite="V", user_dn="CN=x")
    imp = job.add(ImportTask("in", source_path="/in/a", destination_path="a.dat"))
    run = job.add(UserTask("run", executable="a.dat"))
    job.add_dependency(imp, run)
    path = tmp_path / "fine.ajo"
    path.write_bytes(encode_ajo(job))
    repro_main(["lint", str(path)])  # must not SystemExit
    out = capsys.readouterr().out
    assert "0 error(s)" in out
