"""Backend parity: the same workload must yield the same observable
results over every (facade, transport) pairing.

Each scenario is written once against the awaitable session surface and
run three ways — blocking facade on the simkernel backend, async facade
on the simkernel backend, async facade on the real-socket ``aio``
backend — then the returned observables are compared for equality.
This is the contract the Transport split promises: server and protocol
logic cannot tell the fabrics apart.
"""

import asyncio

import pytest

from repro.api import GridSession
from repro.api.aio import AsyncGridSession
from repro.broker import attach_broker
from repro.grid.build import build_grid
from repro.observability import telemetry_for

SITES = {"FZJ": ["FZJ-T3E"], "RUS": ["RUS-T3E"]}
SEED = 11


class _Await:
    """Adapt the blocking GridSession verbs to the awaitable surface so
    one scenario body drives both facades."""

    def __init__(self, session: GridSession) -> None:
        self._session = session

    def __getattr__(self, name):
        verb = getattr(self._session, name)

        async def call(*args, **kwargs):
            return verb(*args, **kwargs)

        return call


def _build(transport, broker=False):
    grid = build_grid(SITES, seed=SEED, transport=transport)
    user = grid.add_user(
        "Parity User", logins={name: "parity" for name in SITES})
    if broker:
        attach_broker(grid)
    return grid, user


def _run_sync_sim(scenario, broker=False):
    grid, user = _build(None, broker=broker)
    session = _Await(GridSession(grid, user, "FZJ"))
    return asyncio.run(scenario(grid, user, session))


def _run_async_sim(scenario, broker=False):
    async def main():
        grid, user = _build(None, broker=broker)
        session = await AsyncGridSession.connect(grid, user, "FZJ")
        return await scenario(grid, user, session)

    return asyncio.run(main())


def _run_async_aio(scenario, broker=False):
    async def main():
        grid, user = _build("aio", broker=broker)
        session = await AsyncGridSession.connect(grid, user, "FZJ")
        try:
            return await scenario(grid, user, session)
        finally:
            await grid.network.aclose()

    return asyncio.run(main())


_RUNNERS = [
    pytest.param(_run_sync_sim, id="sync-sim"),
    pytest.param(_run_async_sim, id="async-sim"),
    pytest.param(_run_async_aio, id="async-aio"),
]


def _assert_parity(scenario, broker=False):
    """Run everywhere; every backend must agree with the blocking sim."""
    want = _run_sync_sim(scenario, broker=broker)
    assert want == _run_async_sim(scenario, broker=broker)
    assert want == _run_async_aio(scenario, broker=broker)
    return want


# -- scenario: submit -> wait -> outcome --------------------------------------

async def _scenario_lifecycle(grid, user, session):
    job = await session.new_job("parity-job", vsite="FZJ-T3E")
    task = job.script_task(
        "work", "#!/bin/sh\nwork\n", simulated_runtime_s=30.0)
    handle = await session.submit(job)
    final = await session.wait(handle)
    outcome = await session.outcome(handle)
    listing = await session.list_jobs()
    return {
        "job_id": str(handle),
        "status": final.status,
        "terminal": final.is_terminal,
        "rollup": outcome.rollup_status().name,
        "exit_code": outcome.child(task.id).exit_code,
        "listed": [(r.job_id, r.status) for r in listing],
    }


def test_lifecycle_parity():
    want = _assert_parity(_scenario_lifecycle)
    assert want["status"] == "successful"
    assert want["rollup"] == "SUCCESSFUL"
    assert want["exit_code"] == 0


# -- scenario: bulk fetch -----------------------------------------------------

_CONTENT = b"0123456789abcdef" * 65536  # 1 MiB: streams in many chunks


async def _scenario_fetch(grid, user, session):
    user.workstation.fs.write("/home/parity/input.dat", _CONTENT)
    job = await session.new_job("parity-fetch", vsite="FZJ-T3E")
    imp = job.import_from_workstation("/home/parity/input.dat", "input.dat")
    work = job.script_task(
        "crunch", "#!/bin/sh\nwc input.dat\n", simulated_runtime_s=10.0)
    job.depends(imp, work, files=["input.dat"])
    handle = await session.submit(job, workstation=user.workstation)
    final = await session.wait(handle)
    fetched = await session.fetch_file(handle, "input.dat")
    metrics = telemetry_for(grid.sim).metrics
    return {
        "status": final.status,
        "fetched_ok": fetched == _CONTENT,
        "fetched_len": len(fetched),
        "chunks_moved": metrics.counter_value("stream.chunks") >= 4,
    }


def test_bulk_fetch_parity():
    want = _assert_parity(_scenario_fetch)
    assert want == {
        "status": "successful",
        "fetched_ok": True,
        "fetched_len": len(_CONTENT),
        "chunks_moved": True,
    }


# -- scenario: fetch under loss (simkernel only: loss is modeled) -------------

async def _scenario_fetch_lossy(grid, user, session):
    ws = user.browser.host.name
    gw = grid.usites["FZJ"].gateway_host.name
    user.workstation.fs.write("/home/parity/input.dat", _CONTENT)
    job = await session.new_job("parity-lossy", vsite="FZJ-T3E")
    imp = job.import_from_workstation("/home/parity/input.dat", "input.dat")
    work = job.script_task(
        "crunch", "#!/bin/sh\nwc input.dat\n", simulated_runtime_s=10.0)
    job.depends(imp, work, files=["input.dat"])
    # Damage the WAN edge only after submit so consignment itself is
    # deterministic; the stream's resume protocol must absorb the loss.
    handle = await session.submit(job, workstation=user.workstation)
    grid.network.get_link(ws, gw).loss_probability = 0.10
    grid.network.get_link(gw, ws).loss_probability = 0.10
    final = await session.wait(handle)
    fetched = await session.fetch_file(handle, "input.dat")
    metrics = telemetry_for(grid.sim).metrics
    return {
        "status": final.status,
        "fetched_ok": fetched == _CONTENT,
        "resumed": metrics.counter_value("stream.resumes") >= 1,
    }


def test_lossy_fetch_parity_between_facades():
    """Both facades must ride out modeled loss identically (the aio
    backend is excluded: real sockets do not lose frames)."""
    want = _run_sync_sim(_scenario_fetch_lossy)
    assert want == _run_async_sim(_scenario_fetch_lossy)
    assert want["status"] == "successful"
    assert want["fetched_ok"] is True


# -- scenario: brokered submit ------------------------------------------------

async def _scenario_broker(grid, user, session):
    job = await session.new_job("parity-brokered")
    job.script_task("work", "#!/bin/sh\nwork\n", simulated_runtime_s=30.0)
    handle = await session.submit(job, broker=True)
    final = await session.wait(handle)
    return {
        "status": final.status,
        "usite": handle.usite if hasattr(handle, "usite") else None,
        "vsite": handle.vsite,
    }


def test_broker_submit_parity():
    want = _assert_parity(_scenario_broker, broker=True)
    assert want["status"] == "successful"
    assert want["usite"] in SITES
