"""Both section-5.2 deployment options: firewall-split and co-located."""

from repro.client import JobMonitorController, JobPreparationAgent
from repro.grid.build import Grid, _build_applets
from repro.net.transport import Network
from repro.security.ca import CertificateAuthority
from repro.simkernel import Simulator


def build_mixed_grid(seed=19):
    """FZJ co-located (no firewall), ZIB split (behind a firewall)."""
    sim = Simulator()
    network = Network(sim, seed=seed)
    ca = CertificateAuthority(key_bits=384, seed=seed)
    grid = Grid(sim, network, ca)
    grid.applets.update(_build_applets(ca))
    grid.add_usite("FZJ", ["FZJ-T3E"], firewall_split=False)
    grid.add_usite("ZIB", ["ZIB-SP2"], firewall_split=True)
    grid.connect_all()
    return grid


def test_colocated_site_serves_jobs():
    grid = build_mixed_grid()
    fzj = grid.usites["FZJ"]
    assert fzj.njs_host is fzj.gateway_host  # really co-located
    user = grid.add_user("Co Located", logins={"FZJ": "co", "ZIB": "co_b"})
    session = grid.connect_user(user, "FZJ")
    jpa = JobPreparationAgent(session)
    jmc = JobMonitorController(session)
    job = jpa.new_job("on-colo", vsite="FZJ-T3E")
    job.script_task("t", script="#!/bin/sh\nx\n", simulated_runtime_s=20.0)

    def scenario(sim):
        job_id = yield from jpa.submit(job)
        final = yield from jmc.wait_for_completion(job_id)
        return final

    p = grid.sim.process(scenario(grid.sim))
    assert grid.sim.run(until=p)["status"] == "successful"


def test_cross_site_forwarding_between_mixed_deployments():
    """Job groups flow correctly in both directions between a co-located
    site and a firewall-split site."""
    grid = build_mixed_grid()
    user = grid.add_user("Mixed", logins={"FZJ": "mx", "ZIB": "mx_b"})

    for home, remote, remote_vsite, home_vsite in (
        ("FZJ", "ZIB", "ZIB-SP2", "FZJ-T3E"),
        ("ZIB", "FZJ", "FZJ-T3E", "ZIB-SP2"),
    ):
        session = grid.connect_user(user, home)
        jpa = JobPreparationAgent(session)
        jmc = JobMonitorController(session)
        root = jpa.new_job(f"span-from-{home}", vsite=home_vsite)
        work = root.script_task("local", script="#!/bin/sh\nx\n",
                                simulated_runtime_s=30.0)
        sub = root.sub_job("remote", vsite=remote_vsite, usite=remote)
        sub.script_task("far", script="#!/bin/sh\nx\n",
                        simulated_runtime_s=30.0)
        root.depends(work, sub.ajo, files=["data.out"])

        def scenario(sim):
            job_id = yield from jpa.submit(root)
            final = yield from jmc.wait_for_completion(job_id)
            return final

        p = grid.sim.process(scenario(grid.sim))
        final = grid.sim.run(until=p)
        assert final["status"] == "successful", f"{home} -> {remote}"

    # Both machines really executed work.
    assert grid.usites["FZJ"].vsites["FZJ-T3E"].batch.all_records()
    assert grid.usites["ZIB"].vsites["ZIB-SP2"].batch.all_records()


def test_colocated_route_has_fewer_hops():
    grid = build_mixed_grid()
    fzj_route = grid.usites["FZJ"].njs._peer_routes["ZIB"]
    zib_route = grid.usites["ZIB"].njs._peer_routes["FZJ"]
    # FZJ (co-located) -> ZIB (split): gateway->gateway, gateway->njs.
    assert len(fzj_route) == 2
    # ZIB (split) -> FZJ (co-located): njs->gateway, gateway->gateway.
    assert len(zib_route) == 2
    assert all(a != b for a, b in fzj_route + zib_route)
