"""Hold/resume control: delivery pauses, running work is untouched."""

import pytest

from repro.client import JobMonitorController, JobPreparationAgent
from repro.grid import build_grid


@pytest.fixture()
def site():
    grid = build_grid({"FZJ": ["FZJ-T3E"]}, seed=37)
    user = grid.add_user("Holder", logins={"FZJ": "hold"})
    session = grid.connect_user(user, "FZJ")
    return grid, session


def _chain_job(jpa, n=3, stage_s=100.0):
    job = jpa.new_job("held-chain", vsite="FZJ-T3E")
    prev = None
    tasks = []
    for i in range(n):
        t = job.script_task(f"s{i}", script="#!/bin/sh\nx\n",
                            simulated_runtime_s=stage_s)
        if prev is not None:
            job.depends(prev, t)
        prev = t
        tasks.append(t)
    return job, tasks


def test_hold_pauses_delivery_resume_continues(site):
    grid, session = site
    jpa = JobPreparationAgent(session)
    jmc = JobMonitorController(session)
    session.client.poll_interval_s = 20.0
    job, tasks = _chain_job(jpa)

    def scenario(sim):
        job_id = yield from jpa.submit(job)
        # Hold while stage 0 runs: stage 1 must not be delivered.
        yield sim.timeout(50.0)
        yield from jmc.hold(job_id)
        yield sim.timeout(500.0)  # long after stage 0 finished
        batch = grid.usites["FZJ"].vsites["FZJ-T3E"].batch
        delivered_while_held = len(batch.all_records())
        yield from jmc.resume(job_id)
        final = yield from jmc.wait_for_completion(job_id)
        return delivered_while_held, final, sim.now

    p = grid.sim.process(scenario(grid.sim))
    delivered_while_held, final, end = grid.sim.run(until=p)
    assert delivered_while_held == 1  # only stage 0 reached the T3E
    assert final["status"] == "successful"
    # The held interval (~450s idle) shows up in the makespan.
    assert end > 3 * 100.0 + 400.0


def test_hold_does_not_touch_running_batch_job(site):
    grid, session = site
    jpa = JobPreparationAgent(session)
    jmc = JobMonitorController(session)
    job, tasks = _chain_job(jpa, n=1, stage_s=300.0)

    def scenario(sim):
        job_id = yield from jpa.submit(job)
        yield sim.timeout(10.0)
        yield from jmc.hold(job_id)
        final = yield from jmc.wait_for_completion(job_id)
        return final

    p = grid.sim.process(scenario(grid.sim))
    # The single already-delivered task runs to completion despite the
    # hold (UNICORE cannot influence the destination system).
    assert grid.sim.run(until=p)["status"] == "successful"


def test_cancel_wakes_held_job(site):
    grid, session = site
    jpa = JobPreparationAgent(session)
    jmc = JobMonitorController(session)
    session.client.poll_interval_s = 20.0
    job, tasks = _chain_job(jpa)

    def scenario(sim):
        job_id = yield from jpa.submit(job)
        yield sim.timeout(50.0)
        yield from jmc.hold(job_id)
        yield sim.timeout(200.0)
        yield from jmc.cancel(job_id)
        final = yield from jmc.wait_for_completion(job_id)
        return final

    p = grid.sim.process(scenario(grid.sim))
    assert grid.sim.run(until=p)["status"] == "killed"


def test_hold_terminal_job_rejected(site):
    grid, session = site
    jpa = JobPreparationAgent(session)
    jmc = JobMonitorController(session)
    job, _ = _chain_job(jpa, n=1, stage_s=10.0)

    def scenario(sim):
        job_id = yield from jpa.submit(job)
        yield from jmc.wait_for_completion(job_id)
        yield from jmc.hold(job_id)

    p = grid.sim.process(scenario(grid.sim))
    with pytest.raises(RuntimeError, match="already terminal"):
        grid.sim.run(until=p)
