"""Figure 2 reproduction: multiple interconnected Usites exchanging
(parts of) UNICORE jobs, data, and control information."""

import pytest

from repro.ajo import ActionStatus
from repro.client import JobMonitorController, JobPreparationAgent
from repro.grid import build_german_grid, build_grid


@pytest.fixture()
def two_sites():
    grid = build_grid({"FZJ": ["FZJ-T3E"], "ZIB": ["ZIB-SP2"]}, seed=13)
    user = grid.add_user(
        "Clara Schmidt",
        organization="FZ Juelich",
        logins={"FZJ": "clara", "ZIB": "cschmidt"},
    )
    session = grid.connect_user(user, "FZJ")
    return grid, user, session


def test_multisite_pipeline_with_file_transfer(two_sites):
    """Pre-process at FZJ, post-process at ZIB, data handed over by the
    NJS-to-NJS dependency-file mechanism."""
    grid, user, session = two_sites
    jpa = JobPreparationAgent(session)
    jmc = JobMonitorController(session)

    root = jpa.new_job("coupled", vsite="FZJ-T3E")
    pre = root.script_task(
        "preprocess", script="#!/bin/sh\nprep\n", simulated_runtime_s=600.0
    )
    post_group = root.sub_job("postprocess@ZIB", vsite="ZIB-SP2", usite="ZIB")
    post = post_group.script_task(
        "render", script="#!/bin/sh\nrender field.dat\n",
        simulated_runtime_s=300.0,
    )
    root.depends(pre, post_group.ajo, files=["field.dat"])

    def scenario(sim):
        job_id = yield from jpa.submit(root)
        final = yield from jmc.wait_for_completion(job_id)
        outcome = yield from jmc.outcome(job_id)
        return job_id, final, outcome

    p = grid.sim.process(scenario(grid.sim))
    job_id, final, outcome = grid.sim.run(until=p)

    assert final["status"] == "successful"
    # The remote group's outcome was merged back into the job tree.
    sub_outcome = outcome.child(post_group.ajo.id)
    assert sub_outcome.rollup_status() is ActionStatus.SUCCESSFUL
    assert sub_outcome.child(post.id).status is ActionStatus.SUCCESSFUL
    # The ZIB SP-2 really executed the render task under the ZIB login.
    zib_batch = grid.usites["ZIB"].vsites["ZIB-SP2"].batch
    records = zib_batch.all_records()
    assert len(records) == 1
    assert records[0].spec.owner == "cschmidt"
    assert "#@" in records[0].spec.script  # LoadLeveler dialect
    # The FZJ side ran the preprocess under the FZJ login.
    fzj_batch = grid.usites["FZJ"].vsites["FZJ-T3E"].batch
    assert fzj_batch.all_records()[0].spec.owner == "clara"
    # The dependency file was materialized at ZIB before the render ran.
    assert grid.usites["FZJ"].njs.forwarded_groups == 1


def test_transfer_task_moves_uspace_data_between_sites(two_sites):
    grid, user, session = two_sites
    jpa = JobPreparationAgent(session)
    jmc = JobMonitorController(session)

    root = jpa.new_job("xfer", vsite="FZJ-T3E")
    work = root.script_task(
        "produce", script="#!/bin/sh\nmake data\n", simulated_runtime_s=60.0
    )
    remote = root.sub_job("consume@ZIB", vsite="ZIB-SP2", usite="ZIB")
    remote.script_task(
        "consume", script="#!/bin/sh\nread big.dat\n", simulated_runtime_s=60.0
    )
    xfer = root.transfer_to_usite("big.dat", "ZIB")
    root.depends(work, xfer, files=["big.dat"])
    root.depends(xfer, remote.ajo)

    def scenario(sim):
        job_id = yield from jpa.submit(root)
        final = yield from jmc.wait_for_completion(job_id)
        outcome = yield from jmc.outcome(job_id)
        return final, outcome, xfer.id

    p = grid.sim.process(scenario(grid.sim))
    final, outcome, xfer_id = grid.sim.run(until=p)
    assert final["status"] == "successful"
    xfer_outcome = outcome.child(xfer_id)
    assert xfer_outcome.status is ActionStatus.SUCCESSFUL
    assert xfer_outcome.bytes_moved > 0
    assert xfer_outcome.effective_bandwidth > 0
    assert grid.usites["FZJ"].njs.transfers_bytes == xfer_outcome.bytes_moved


def test_user_without_remote_mapping_fails_remote_group(two_sites):
    grid, user, session = two_sites
    dave = grid.add_user("Dave", logins={"FZJ": "dave"})  # no ZIB account
    d_session = grid.connect_user(dave, "FZJ")
    jpa = JobPreparationAgent(d_session)
    jmc = JobMonitorController(d_session)

    root = jpa.new_job("denied", vsite="FZJ-T3E")
    root.script_task("ok-here", script="#!/bin/sh\nx\n", simulated_runtime_s=10.0)
    remote = root.sub_job("not-there", vsite="ZIB-SP2", usite="ZIB")
    remote.script_task("t", script="#!/bin/sh\nx\n", simulated_runtime_s=10.0)

    def scenario(sim):
        job_id = yield from jpa.submit(root)
        final = yield from jmc.wait_for_completion(job_id)
        outcome = yield from jmc.outcome(job_id)
        return final, outcome, remote.ajo.id

    p = grid.sim.process(scenario(grid.sim))
    final, outcome, remote_id = grid.sim.run(until=p)
    assert final["status"] == "failed"
    assert outcome.child(remote_id).status is ActionStatus.FAILED
    assert "no local account" in outcome.child(remote_id).reason


def test_german_grid_builds_with_six_sites():
    grid = build_german_grid(seed=1)
    assert sorted(grid.usites) == ["DWD", "FZJ", "LRZ", "RUKA", "RUS", "ZIB"]
    dialects = {
        vsite.machine.dialect
        for usite in grid.usites.values()
        for vsite in usite.vsites.values()
    }
    assert dialects == {"nqs", "loadleveler", "vpp"}


def test_user_can_contact_any_unicore_server(two_sites):
    """Section 4.3: 'allow the user to contact any UNICORE server'."""
    grid, user, session = two_sites
    zib_session = grid.connect_user(user, "ZIB")
    jpa = JobPreparationAgent(zib_session)
    jmc = JobMonitorController(zib_session)
    job = jpa.new_job("direct-at-zib", vsite="ZIB-SP2")
    job.script_task("t", script="#!/bin/sh\nx\n", simulated_runtime_s=30.0)

    def scenario(sim):
        job_id = yield from jpa.submit(job)
        final = yield from jmc.wait_for_completion(job_id)
        return job_id, final

    p = grid.sim.process(scenario(grid.sim))
    job_id, final = grid.sim.run(until=p)
    assert job_id.endswith("@ZIB")
    assert final["status"] == "successful"


def test_three_site_scatter(two_sites):
    """One job fanning sub-groups to two remote sites simultaneously."""
    grid = build_grid(
        {"FZJ": ["FZJ-T3E"], "ZIB": ["ZIB-SP2"], "LRZ": ["LRZ-VPP"]}, seed=3
    )
    user = grid.add_user(
        "Eva", logins={"FZJ": "eva", "ZIB": "eva_b", "LRZ": "eva_m"}
    )
    session = grid.connect_user(user, "FZJ")
    jpa = JobPreparationAgent(session)
    jmc = JobMonitorController(session)

    root = jpa.new_job("scatter", vsite="FZJ-T3E")
    for site, vsite in (("ZIB", "ZIB-SP2"), ("LRZ", "LRZ-VPP")):
        sub = root.sub_job(f"part@{site}", vsite=vsite, usite=site)
        sub.script_task(
            f"work-{site}", script="#!/bin/sh\nwork\n", simulated_runtime_s=120.0
        )

    def scenario(sim):
        job_id = yield from jpa.submit(root)
        final = yield from jmc.wait_for_completion(job_id)
        return final

    p = grid.sim.process(scenario(grid.sim))
    final = grid.sim.run(until=p)
    assert final["status"] == "successful"
    assert grid.usites["ZIB"].vsites["ZIB-SP2"].batch.all_records()
    assert grid.usites["LRZ"].vsites["LRZ-VPP"].batch.all_records()
    # Both remote parts ran concurrently: the VPP is 4x faster but both
    # finished; total time bounded by the slower remote + overheads.
    assert grid.sim.now < 600.0


def test_workstation_files_ship_with_forwarded_groups(two_sites):
    """Section 5.6: workstation files ride inside the AJO — including for
    sub-jobs executed at a remote Usite."""
    grid, user, session = two_sites
    user.workstation.fs.write("/home/clara/params.nml", b"&config n=3 /")
    jpa = JobPreparationAgent(session)
    jmc = JobMonitorController(session)

    root = jpa.new_job("ws-ship", vsite="FZJ-T3E")
    root.script_task("local", script="#!/bin/sh\nx\n", simulated_runtime_s=10.0)
    remote = root.sub_job("remote", vsite="ZIB-SP2", usite="ZIB")
    imp = remote.import_from_workstation("/home/clara/params.nml", "params.nml")
    work = remote.script_task("use-params", script="#!/bin/sh\nread params\n",
                              simulated_runtime_s=10.0)
    remote.depends(imp, work, files=["params.nml"])

    def scenario(sim):
        # jpa.submit needs the workstation for the staged import.
        job_id = yield from jpa.submit(root, workstation=user.workstation)
        final = yield from jmc.wait_for_completion(job_id)
        return job_id, final

    p = grid.sim.process(scenario(grid.sim))
    job_id, final = grid.sim.run(until=p)
    assert final["status"] == "successful"
    # The file physically landed in the remote (ZIB) uspace.
    zib_njs = grid.usites["ZIB"].njs
    remote_run = zib_njs._foreign_runs[job_id]
    uspace = next(iter(remote_run.uspaces.values()))
    assert uspace.read("params.nml") == b"&config n=3 /"
