"""Figure 1 reproduction: one Usite wired browser -> gateway -> NJS -> batch.

Drives the complete single-site flow of the paper: mutual https
authentication, signed-applet loading, JPA job building with live
resource checks, consignment, incarnation, batch execution, dependency
sequencing with file guarantees, output collection, JMC monitoring,
and outcome retrieval.
"""

import pytest

from repro.ajo import ActionStatus
from repro.client import JobMonitorController, JobPreparationAgent
from repro.grid import build_grid
from repro.resources import ResourceRequest


@pytest.fixture()
def single_site():
    grid = build_grid({"FZJ": ["FZJ-T3E"]}, seed=7)
    user = grid.add_user(
        "Alice Adams", organization="FZ Juelich", logins={"FZJ": "alice01"}
    )
    session = grid.connect_user(user, "FZJ")
    return grid, user, session


def test_connect_authenticates_and_loads_applets(single_site):
    grid, user, session = single_site
    assert session.usite == "FZJ"
    assert set(session.applets) == {"JPA", "JMC"}
    assert "FZJ-T3E" in session.resource_pages
    page = session.resource_pages["FZJ-T3E"]
    assert page.architecture.startswith("Cray")
    assert page.software.has("compiler", "f90")


def test_unmapped_user_rejected_at_consign(single_site):
    grid, user, session = single_site
    mallory = grid.add_user("Mallory", logins={})  # no UUDB entry anywhere
    m_session = grid.connect_user(mallory, "FZJ")
    jpa = JobPreparationAgent(m_session)
    job = jpa.new_job("evil", vsite="FZJ-T3E")
    job.script_task("t", script="#!/bin/sh\nwhoami\n")

    def submit(sim):
        yield from jpa.submit(job)

    p = grid.sim.process(submit(grid.sim))
    from repro.ajo import ValidationError

    with pytest.raises(ValidationError, match="no local account"):
        grid.sim.run(until=p)


def test_compile_link_execute_end_to_end(single_site):
    grid, user, session = single_site
    user.workstation.fs.write("/home/alice/solver.f90", b"program solver\nend\n")

    jpa = JobPreparationAgent(session)
    jmc = JobMonitorController(session)
    job = jpa.new_job("cfd", vsite="FZJ-T3E", account_group="zam")
    src = job.import_from_workstation("/home/alice/solver.f90", "solver.f90")
    compile_t, link_t, run_t = job.compile_link_execute(
        "solver",
        sources=["solver.f90"],
        executable="solver.exe",
        run_resources=ResourceRequest(cpus=64, time_s=7200, memory_mb=4096),
        simulated_runtime_s=1800.0,
    )
    job.depends(src, compile_t, files=["solver.f90"])
    exp = job.export_to_xspace("result.dat", "/arch/cfd/result.dat")
    job.depends(run_t, exp, files=["result.dat"])

    def scenario(sim):
        job_id = yield from jpa.submit(job, workstation=user.workstation)
        final = yield from jmc.wait_for_completion(job_id)
        outcome = yield from jmc.outcome(job_id)
        return job_id, final, outcome

    session.client.poll_interval_s = 60.0
    p = grid.sim.process(scenario(grid.sim))
    job_id, final, outcome = grid.sim.run(until=p)

    assert final["status"] == "successful"
    assert outcome.rollup_status() is ActionStatus.SUCCESSFUL
    # The export landed the result on the site's Xspace.
    usite = grid.usites["FZJ"]
    assert usite.xspace.fs.exists("/arch/cfd/result.dat")
    # Output was collected for the run task.
    run_outcome = outcome.child(run_t.id)
    assert "Cray" in run_outcome.stdout
    assert run_outcome.exit_code == 0
    # The batch job really went through the T3E's NQS with the mapped uid.
    batch = usite.vsites["FZJ-T3E"].batch
    records = batch.all_records()
    assert len(records) == 3  # compile, link, run
    assert all(r.spec.owner == "alice01" for r in records)
    assert all("#QSUB" in r.spec.script for r in records)


def test_dependency_sequencing_is_strict(single_site):
    grid, user, session = single_site
    jpa = JobPreparationAgent(session)
    job = jpa.new_job("chain", vsite="FZJ-T3E")
    t1 = job.script_task("first", script="#!/bin/sh\nstep1\n",
                         simulated_runtime_s=100.0)
    t2 = job.script_task("second", script="#!/bin/sh\nstep2\n",
                         simulated_runtime_s=100.0)
    job.depends(t1, t2)

    def scenario(sim):
        job_id = yield from jpa.submit(job)
        return job_id

    p = grid.sim.process(scenario(grid.sim))
    grid.sim.run(until=p)
    grid.sim.run()
    batch = grid.usites["FZJ"].vsites["FZJ-T3E"].batch
    recs = {r.spec.name: r for r in batch.all_records()}
    assert recs["second"].submit_time >= recs["first"].end_time


def test_failed_predecessor_skips_successor(single_site):
    grid, user, session = single_site
    jpa = JobPreparationAgent(session)
    jmc = JobMonitorController(session)
    job = jpa.new_job("failing", vsite="FZJ-T3E")
    # Import of a nonexistent Xspace file fails...
    imp = job.import_from_xspace("/no/such/file.dat", "input.dat")
    work = job.script_task("work", script="#!/bin/sh\nwork\n",
                           simulated_runtime_s=10.0)
    job.depends(imp, work, files=["input.dat"])

    def scenario(sim):
        job_id = yield from jpa.submit(job)
        final = yield from jmc.wait_for_completion(job_id)
        outcome = yield from jmc.outcome(job_id)
        return final, outcome

    p = grid.sim.process(scenario(grid.sim))
    final, outcome = grid.sim.run(until=p)
    assert final["status"] == "failed"
    assert outcome.child(imp.id).status is ActionStatus.FAILED
    assert outcome.child(work.id).status is ActionStatus.NOT_ATTEMPTED


def test_jmc_list_status_and_cancel(single_site):
    grid, user, session = single_site
    jpa = JobPreparationAgent(session)
    jmc = JobMonitorController(session)
    job = jpa.new_job("longrun", vsite="FZJ-T3E")
    job.script_task("forever", script="#!/bin/sh\nsleep\n",
                    resources=ResourceRequest(cpus=1, time_s=80000),
                    simulated_runtime_s=72000.0)

    def scenario(sim):
        job_id = yield from jpa.submit(job)
        listing = yield from jmc.list_jobs()
        tree = yield from jmc.status(job_id)
        yield from jmc.cancel(job_id)
        final = yield from jmc.wait_for_completion(job_id)
        return job_id, listing, tree, final

    p = grid.sim.process(scenario(grid.sim))
    job_id, listing, tree, final = grid.sim.run(until=p)
    assert any(j["job_id"] == job_id for j in listing)
    assert tree["name"] == "longrun"
    assert final["status"] == "killed"
    # The batch job was really cancelled on the T3E.
    batch = grid.usites["FZJ"].vsites["FZJ-T3E"].batch
    from repro.batch import BatchState

    assert batch.all_records()[0].state is BatchState.CANCELLED


def test_users_cannot_touch_others_jobs(single_site):
    grid, user, session = single_site
    bob = grid.add_user("Bob", logins={"FZJ": "bob7"})
    bob_session = grid.connect_user(bob, "FZJ")
    jpa = JobPreparationAgent(session)
    job = jpa.new_job("private", vsite="FZJ-T3E")
    job.script_task("t", script="#!/bin/sh\nx\n", simulated_runtime_s=5000.0)

    def submit(sim):
        job_id = yield from jpa.submit(job)
        return job_id

    p = grid.sim.process(submit(grid.sim))
    job_id = grid.sim.run(until=p)

    bob_jmc = JobMonitorController(bob_session)

    def snoop(sim):
        yield from bob_jmc.status(job_id)

    p2 = grid.sim.process(snoop(grid.sim))
    with pytest.raises(RuntimeError, match="another user"):
        grid.sim.run(until=p2)


def test_jmc_render_tree_shows_colors(single_site):
    grid, user, session = single_site
    jpa = JobPreparationAgent(session)
    jmc = JobMonitorController(session)
    job = jpa.new_job("viz", vsite="FZJ-T3E")
    job.script_task("quick", script="#!/bin/sh\nx\n", simulated_runtime_s=1.0)

    def scenario(sim):
        job_id = yield from jpa.submit(job)
        yield from jmc.wait_for_completion(job_id)
        tree = yield from jmc.status(job_id)
        return tree

    p = grid.sim.process(scenario(grid.sim))
    tree = grid.sim.run(until=p)
    text = JobMonitorController.render_tree(tree)
    assert "green" in text  # successful icons are green
    assert "viz" in text and "quick" in text


def test_save_and_resubmit_job(single_site):
    """Section 5.7: loading an old UNICORE job for resubmission."""
    grid, user, session = single_site
    jpa = JobPreparationAgent(session)
    jmc = JobMonitorController(session)
    job = jpa.new_job("repeat", vsite="FZJ-T3E")
    job.script_task("t", script="#!/bin/sh\nx\n", simulated_runtime_s=10.0)
    saved = job.save()

    reloaded = jpa.load_job(saved)
    assert reloaded.ajo.name == "repeat"

    def scenario(sim):
        first = yield from jpa.submit(job)
        second = yield from jpa.submit(reloaded)
        yield from jmc.wait_for_completion(first)
        final = yield from jmc.wait_for_completion(second)
        return first, second, final

    p = grid.sim.process(scenario(grid.sim))
    first, second, final = grid.sim.run(until=p)
    assert first != second
    assert final["status"] == "successful"
