"""Bit-for-bit determinism: the foundation of every EXPERIMENTS.md number.

Two runs of the same seeded scenario must agree on *everything* —
simulated end time, processed event counts, per-job statuses, batch
utilizations, network byte counts — even with loss, background load, and
cross-site traffic in play.
"""

from repro.client import JobMonitorController, JobPreparationAgent
from repro.grid import LocalLoadGenerator, WorkloadProfile, build_grid
from repro.simkernel import derive_rng


def _run_scenario(seed: int) -> dict:
    grid = build_grid({"FZJ": ["FZJ-T3E"], "ZIB": ["ZIB-SP2"]}, seed=seed)
    user = grid.add_user("Det", logins={"FZJ": "det", "ZIB": "det_b"})
    session = grid.connect_user(user, "FZJ")
    # Loss on every WAN and access link (deterministic streams); the
    # intra-site firewall sockets stay reliable, like real LANs.
    for (a, b), link in grid.network._links.items():
        same_site = a.split(".")[0] == b.split(".")[0] and "." in a and "." in b
        if not same_site:
            link.loss_probability = 0.05
    from repro.protocol import RetryPolicy

    session.client.retry = RetryPolicy(max_attempts=30, base_delay_s=1.0)
    session.client.poll_interval_s = 60.0

    LocalLoadGenerator(
        grid.sim,
        grid.usites["ZIB"].vsites["ZIB-SP2"].batch,
        derive_rng(seed, "bg"),
        arrival_rate_per_s=1 / 300.0,
        profile=WorkloadProfile(mean_runtime_s=1200.0, max_cpus=64),
        horizon_s=4000.0,
    )

    jpa = JobPreparationAgent(session)
    jmc = JobMonitorController(session)
    statuses = []

    def scenario(sim):
        for i in range(4):
            root = jpa.new_job(f"det{i}", vsite="FZJ-T3E")
            work = root.script_task(
                "w", script="#!/bin/sh\nx\n", simulated_runtime_s=300.0 + i
            )
            sub = root.sub_job("r", vsite="ZIB-SP2", usite="ZIB")
            sub.script_task("rw", script="#!/bin/sh\nx\n",
                            simulated_runtime_s=200.0)
            root.depends(work, sub.ajo, files=["d.dat"])
            job_id = yield from jpa.submit(root)
            final = yield from jmc.wait_for_completion(job_id)
            statuses.append((job_id, final["status"]))

    grid.sim.run(until=grid.sim.process(scenario(grid.sim)))
    grid.sim.run()
    return {
        "now": grid.sim.now,
        "events": grid.sim.processed_events,
        "statuses": statuses,
        "bytes": grid.network.total_bytes_sent(),
        "lost": grid.network.total_messages_lost(),
        "utils": {
            name: usite.vsites[v].batch.utilization()
            for name, usite in grid.usites.items()
            for v in usite.vsites
        },
        "zib_jobs": len(
            grid.usites["ZIB"].vsites["ZIB-SP2"].batch.all_records()
        ),
    }


def test_identical_seeds_identical_worlds():
    a = _run_scenario(seed=73)
    b = _run_scenario(seed=73)
    assert a == b


def test_different_seeds_diverge():
    a = _run_scenario(seed=73)
    c = _run_scenario(seed=74)
    # The job statuses may coincide, but the stochastic fabric cannot.
    assert a["bytes"] != c["bytes"] or a["events"] != c["events"]
