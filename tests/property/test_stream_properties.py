"""Property-based tests: frame codec totality, consignment v2 roundtrips."""

import string
import zlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FrameError, SerializationError
from repro.net.stream import (
    Frame,
    FrameType,
    StreamReassembler,
    StreamSender,
    chunk_payload,
    decode_frame,
    encode_frame,
)
from repro.protocol.consignment import (
    decode_consignment,
    decode_consignment_envelope,
    encode_consignment,
    file_entry_for,
)

payloads = st.binary(max_size=4096)
relative_paths = st.text(
    string.ascii_letters + string.digits + "_-.", min_size=1, max_size=16
).filter(lambda p: p not in (".", "..") and ".." not in p)


# ---------------------------------------------------------------- frames
@settings(max_examples=120, deadline=None)
@given(
    stream_id=st.integers(0, (1 << 64) - 1),
    seq=st.integers(0, (1 << 32) - 1),
    ftype=st.sampled_from(FrameType.ALL),
    payload=payloads,
)
def test_frame_encode_decode_roundtrip(stream_id, seq, ftype, payload):
    frame = Frame(stream_id=stream_id, seq=seq, ftype=ftype, payload=payload)
    assert decode_frame(encode_frame(frame)) == frame


@settings(max_examples=120, deadline=None)
@given(payload=payloads, flip=st.integers(0, 1 << 20))
def test_frame_decode_is_total_on_corruption(payload, flip):
    """Any single-byte corruption either decodes or raises FrameError."""
    raw = bytearray(encode_frame(Frame(stream_id=1, seq=0, payload=payload)))
    raw[flip % len(raw)] ^= 1 + (flip % 255)
    try:
        decode_frame(bytes(raw))
    except FrameError:
        pass  # rejection is the expected outcome for most flips


@settings(max_examples=120, deadline=None)
@given(junk=st.binary(max_size=256))
def test_frame_decode_never_crashes_on_junk(junk):
    try:
        decode_frame(junk)
    except FrameError:
        pass


@settings(max_examples=120, deadline=None)
@given(data=st.binary(min_size=0, max_size=8192), chunk=st.integers(1, 1024))
def test_chunking_partitions_payload(data, chunk):
    chunks = chunk_payload(data, chunk)
    assert b"".join(chunks) == data
    assert all(1 <= len(c) <= chunk for c in chunks)


@settings(max_examples=120, deadline=None)
@given(
    data=st.binary(min_size=1, max_size=8192),
    chunk=st.integers(1, 1024),
    order=st.randoms(use_true_random=False),
)
def test_sender_reassembler_roundtrip_any_feed_order(data, chunk, order):
    """Shuffled (and duplicated) delivery still reassembles exactly."""
    sender = StreamSender(17, data, chunk, {"kind": "prop"})
    frames = list(sender.frames())
    open_frame, data_frames = frames[0], frames[1:]
    order.shuffle(data_frames)
    reassembler = StreamReassembler(decode_frame(encode_frame(open_frame)))
    for frame in data_frames:
        reassembler.feed(decode_frame(encode_frame(frame)))
    if data_frames:  # duplicates are idempotent
        reassembler.feed(data_frames[0])
    assert reassembler.complete
    assert reassembler.payload() == data
    assert reassembler.context == {"kind": "prop"}


# ----------------------------------------------------------- consignment
@settings(max_examples=120, deadline=None)
@given(
    ajo=st.binary(min_size=1, max_size=512),
    files=st.dictionaries(relative_paths, payloads, max_size=5),
)
def test_consignment_inline_roundtrip(ajo, files):
    ajo_back, files_back = decode_consignment(encode_consignment(ajo, files))
    assert ajo_back == ajo
    assert files_back == files


@settings(max_examples=120, deadline=None)
@given(
    ajo=st.binary(min_size=1, max_size=512),
    inline=st.dictionaries(relative_paths, payloads, max_size=4),
    streamed=st.lists(
        st.tuples(relative_paths, payloads, st.integers(0, (1 << 64) - 1)),
        max_size=4,
        unique_by=lambda t: t[0],
    ),
)
def test_consignment_streamed_roundtrip(ajo, inline, streamed):
    names = set(inline)
    streamed = [t for t in streamed if t[0] not in names]
    entries = [
        file_entry_for(path, content, stream_id)
        for path, content, stream_id in streamed
    ]
    payload = encode_consignment(ajo, inline, streamed=entries)
    back = decode_consignment_envelope(payload)
    assert back.ajo_bytes == ajo
    assert back.files == inline
    # The codec canonicalizes entry order by path.
    assert list(back.streamed) == sorted(entries, key=lambda e: e.path)
    for (_, content, _), entry in zip(streamed, entries, strict=True):
        assert entry.size == len(content)
        assert entry.crc32 == zlib.crc32(content)
    if entries:
        try:
            decode_consignment(payload)
        except SerializationError:
            pass
        else:
            raise AssertionError("plain decoder accepted a streamed envelope")


@settings(max_examples=120, deadline=None)
@given(junk=st.binary(max_size=512))
def test_consignment_decode_never_crashes_on_junk(junk):
    try:
        decode_consignment_envelope(junk)
    except SerializationError:
        pass
