"""Property-based tests for the AJO: codec totality, DAG invariants."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ajo import (
    AbstractJobObject,
    ExecuteScriptTask,
    ImportTask,
    UserTask,
    critical_path_length,
    decode_ajo,
    encode_ajo,
    ready_actions,
    topological_order,
)
from repro.resources import ResourceRequest

names = st.text(string.ascii_letters + string.digits + " _-", min_size=1,
                max_size=12)


@st.composite
def tasks(draw):
    kind = draw(st.integers(0, 2))
    name = draw(names)
    if kind == 0:
        return UserTask(
            name,
            executable=draw(names),
            arguments=draw(st.lists(names, max_size=3)),
            resources=ResourceRequest(
                cpus=draw(st.integers(1, 512)),
                time_s=draw(st.floats(1, 1e5)),
            ),
        )
    if kind == 1:
        return ExecuteScriptTask(name, script="#!/bin/sh\n" + draw(names))
    return ImportTask(
        name, source_path="/" + draw(names), destination_path=draw(names)
    )


@st.composite
def job_trees(draw, depth=2):
    job = AbstractJobObject(
        draw(names), vsite=draw(names), usite=draw(names),
        user_dn="CN=" + draw(names), account_group=draw(names),
    )
    children = draw(st.lists(tasks(), min_size=0, max_size=5))
    for child in children:
        job.add(child)
    if depth > 0:
        for sub in draw(st.lists(job_trees(depth=depth - 1), max_size=2)):
            job.add(sub)
    # Random forward-only dependencies (guaranteed acyclic).
    kids = job.children
    if len(kids) >= 2:
        n_deps = draw(st.integers(0, min(4, len(kids) * (len(kids) - 1) // 2)))
        for _ in range(n_deps):
            i = draw(st.integers(0, len(kids) - 2))
            j = draw(st.integers(i + 1, len(kids) - 1))
            files = draw(st.lists(names, max_size=2))
            try:
                job.add_dependency(kids[i], kids[j], files=files)
            except Exception:
                pass
    return job


@given(job_trees())
@settings(max_examples=120, deadline=None)
def test_codec_roundtrip_any_tree(job):
    assert decode_ajo(encode_ajo(job)) == job


@given(job_trees())
@settings(max_examples=120, deadline=None)
def test_codec_deterministic(job):
    assert encode_ajo(job) == encode_ajo(job)


@given(job_trees())
@settings(max_examples=100, deadline=None)
def test_topological_order_respects_every_edge(job):
    order = topological_order(job)
    assert sorted(order) == sorted(c.id for c in job.children)
    position = {cid: i for i, cid in enumerate(order)}
    for dep in job.dependencies:
        assert position[dep.predecessor_id] < position[dep.successor_id]


@given(job_trees())
@settings(max_examples=100, deadline=None)
def test_ready_actions_simulation_completes_everything(job):
    """Repeatedly completing the ready set visits every child exactly once."""
    completed: list[str] = []
    seen = set()
    for _ in range(len(job.children) + 1):
        ready = ready_actions(job, completed)
        if not ready:
            break
        for cid in ready:
            assert cid not in seen
            seen.add(cid)
            completed.append(cid)
    assert seen == {c.id for c in job.children}


@given(job_trees())
@settings(max_examples=100, deadline=None)
def test_critical_path_bounds(job):
    n = len(job.children)
    cp = critical_path_length(job)
    if n == 0:
        assert cp == 0
    else:
        assert 1 <= cp <= n
        # The critical path is at least as long as any single path's edges.
        assert cp >= 1


@given(job_trees())
@settings(max_examples=60, deadline=None)
def test_walk_counts_match(job):
    assert job.total_actions() == len(list(job.walk()))
    assert job.depth() >= 1
