"""Property-based tests for the federation broker's matcher.

Two invariants:

* **no starvation under fair share** — however the submission order is
  skewed, a user with pending work is never more than one binding
  behind any other user within a matching round: the matcher re-ranks
  by served count after every single binding, so backlog from one user
  cannot crowd out another;
* **determinism** — the matcher holds no clock, randomness, or hash
  iteration order, so replaying the identical submission/advertisement
  history yields the identical (seq, vsite) binding sequence.

Every generated job requests one cpu (feasible at every generated
Vsite), so fairness is a pure scheduling question, never a feasibility
accident.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broker import (
    AdvertiseCapacity,
    CapacityAdvertisement,
    TaskQueueBroker,
)
from repro.resources.editor import ResourcePageEditor
from repro.resources.model import ResourceRequest


def _page(vsite, cpus):
    return (
        ResourcePageEditor(vsite)
        .set_system("Test", "TestOS", 1.0)
        .set_range("cpus", 1, cpus)
        .set_range("time_s", 1, 86_400)
        .set_range("memory_mb", 1, 100_000)
        .set_range("disk_permanent_mb", 0, 1_000_000)
        .set_range("disk_temporary_mb", 0, 1_000_000)
        .publish()
    )


def _ad(vsite, cpus, speed):
    return CapacityAdvertisement(
        usite=f"U-{vsite}",
        vsite=vsite,
        sent_at=0.0,
        total_cpus=cpus,
        free_cpus=cpus,
        queued_jobs=0,
        running_jobs=0,
        backlog_cpu_s=0.0,
        speed_factor=speed,
        page=_page(vsite, cpus),
    )


vsite_specs = st.lists(
    st.tuples(
        st.integers(1, 512),                          # cpus
        st.sampled_from([0.5, 0.8, 1.0, 2.0, 4.0]),   # speed factor
    ),
    min_size=1,
    max_size=4,
)

#: (user index, time_s) per submission, in arrival order.
submissions = st.lists(
    st.tuples(st.integers(0, 3), st.integers(60, 7_200)),
    min_size=1,
    max_size=24,
)


def _run_rounds(specs, subs, rounds=40):
    """Drive the matcher through advertise+match cycles, binding every
    dispatched job and feeding completions back the following round.

    Returns (binding history, per-round (dispatch counts, pending users)).
    """
    broker = TaskQueueBroker(max_queued_per_vsite=2)
    ads = [_ad(f"v{i}", cpus, speed) for i, (cpus, speed) in enumerate(specs)]
    for user, time_s in subs:
        broker.enqueue(
            f"user{user}", f"job-u{user}",
            ResourceRequest(cpus=1, time_s=float(time_s)),
        )
    history = []
    per_round = []
    finished: dict[str, list[str]] = {}
    for _ in range(rounds):
        for ad in ads:
            broker.observe(
                AdvertiseCapacity(
                    usite=ad.usite, sent_at=0.0, vsites=(ad,),
                    terminal=tuple(finished.pop(ad.usite, ())),
                ),
                now=0.0,
            )
        bound = broker.match(now=0.0)
        counts: dict[str, int] = {}
        for job in bound:
            broker.bind(job, f"id{job.seq}")
            finished.setdefault(job.usite, []).append(f"id{job.seq}")
            counts[job.user_dn] = counts.get(job.user_dn, 0) + 1
            history.append((job.seq, job.vsite))
        per_round.append((counts, {j.user_dn for j in broker.pending}))
        if broker.queue_depth == 0 and not broker.dispatched:
            break
    return history, per_round


@settings(max_examples=60, deadline=None)
@given(specs=vsite_specs, subs=submissions)
def test_fair_share_never_starves_a_pending_user(specs, subs):
    _, per_round = _run_rounds(specs, subs)
    for counts, pending_users in per_round:
        for waiting in pending_users:
            for other, n in counts.items():
                # A user still waiting at the end of the round was served
                # within one binding of everyone served during it.
                assert n - counts.get(waiting, 0) <= 1, (
                    f"{other} got {n} bindings while {waiting} "
                    f"(served {counts.get(waiting, 0)}) still had "
                    f"pending work"
                )


@settings(max_examples=60, deadline=None)
@given(specs=vsite_specs, subs=submissions)
def test_matching_is_deterministic(specs, subs):
    first, _ = _run_rounds(specs, subs)
    second, _ = _run_rounds(specs, subs)
    assert first == second
    # All work eventually drains (every job fits everywhere).
    assert len(first) == len(subs)


@settings(max_examples=40, deadline=None)
@given(subs=submissions)
def test_single_vsite_rounds_serve_users_near_equally(subs):
    """With one machine and contention, per-round dispatch counts of any
    two users who both still have pending work differ by at most one."""
    _, per_round = _run_rounds([(64, 1.0)], subs)
    for counts, pending_users in per_round:
        contended = [counts.get(u, 0) for u in pending_users]
        if len(contended) >= 2:
            assert max(contended) - min(contended) <= 1
