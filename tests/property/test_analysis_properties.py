"""Property-based tests for the static analyzer.

Two invariants:

* **soundness on clean jobs** — a well-formed staged pipeline (every
  export fed by a files-annotated dependency edge, every import
  consumed) produces no error-severity diagnostics, so the analyzer
  never blocks a job the runtime could run;
* **determinism** — analyzing the same tree twice yields the identical
  diagnostic sequence, and the ``validate_ajo`` wrapper raises exactly
  when the structure pass reports an error.
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ajo import (
    AbstractJobObject,
    ExecuteScriptTask,
    ImportTask,
    UserTask,
)
from repro.ajo.errors import ValidationError
from repro.ajo.validate import validate_ajo
from repro.analysis import Severity, analyze_ajo, structure_pass

names = st.text(string.ascii_letters + string.digits + "_-", min_size=1,
                max_size=10)


@st.composite
def clean_pipelines(draw):
    """A staged import -> run -> export pipeline that must lint clean."""
    job = AbstractJobObject(
        draw(names), vsite=draw(names), user_dn="CN=" + draw(names)
    )
    stages = draw(st.integers(1, 4))
    for i in range(stages):
        imp = job.add(ImportTask(
            f"in{i}", source_path="/in/" + draw(names),
            destination_path=f"input{i}.dat",
        ))
        run = job.add(UserTask(f"run{i}", executable=f"input{i}.dat"))
        job.add_dependency(imp, run)
        if draw(st.booleans()):
            exp = job.add(ImportTask(
                f"re{i}", source_path="/in/x", destination_path=f"extra{i}.dat",
            ))
            use = job.add(UserTask(f"use{i}", executable=f"extra{i}.dat"))
            job.add_dependency(exp, use)
    return job


@st.composite
def arbitrary_trees(draw, depth=1):
    """Random (possibly defective) trees: no user DN guarantee, random
    forward-only dependencies, sub-groups."""
    job = AbstractJobObject(
        draw(names),
        vsite=draw(names) if draw(st.booleans()) else "",
        user_dn="CN=u" if draw(st.booleans()) else "",
    )
    n = draw(st.integers(0, 4))
    for i in range(n):
        kind = draw(st.integers(0, 2))
        if kind == 0:
            job.add(UserTask(f"t{i}", executable=draw(names)))
        elif kind == 1:
            job.add(ExecuteScriptTask(f"t{i}", script="#!/bin/sh\nx\n"))
        else:
            job.add(ImportTask(
                f"t{i}", source_path="/in/a", destination_path=draw(names),
            ))
    if depth > 0:
        for sub in draw(st.lists(arbitrary_trees(depth=depth - 1), max_size=2)):
            job.add(sub)
    kids = job.children
    for j in range(1, len(kids)):
        for i in range(j):
            if draw(st.integers(0, 3)) == 0:
                files = [draw(names)] if draw(st.booleans()) else []
                job.add_dependency(kids[i], kids[j], files=files)
    return job


@given(clean_pipelines())
@settings(max_examples=50, deadline=None)
def test_well_formed_jobs_produce_no_errors(job):
    report = analyze_ajo(job)
    assert report.ok, report.render()
    assert report.errors == ()
    assert not any(d.severity is Severity.ERROR for d in report.diagnostics)
    validate_ajo(job)  # the wrapper agrees: nothing raises


@given(arbitrary_trees())
@settings(max_examples=50, deadline=None)
def test_analysis_is_deterministic(job):
    first = analyze_ajo(job)
    second = analyze_ajo(job)
    assert first.diagnostics == second.diagnostics
    assert first.to_dict() == second.to_dict()


@given(arbitrary_trees())
@settings(max_examples=50, deadline=None)
def test_wrapper_raises_exactly_on_structure_errors(job):
    has_error = any(
        d.severity is Severity.ERROR for d in structure_pass(job)
    )
    try:
        validate_ajo(job)
        raised = False
    except ValidationError:
        raised = True
    assert raised == has_error
