"""Property-based tests for the virtual filesystem quota invariant."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vfs import InMemoryFileSystem, VFSError
from repro.vfs.errors import QuotaExceededError
from repro.vfs.filesystem import normalize

segments = st.text(string.ascii_lowercase + string.digits, min_size=1,
                   max_size=6)
paths = st.builds(lambda parts: "/" + "/".join(parts),
                  st.lists(segments, min_size=1, max_size=3))

ops = st.lists(
    st.one_of(
        st.tuples(st.just("write"), paths, st.binary(max_size=64)),
        st.tuples(st.just("append"), paths, st.binary(max_size=32)),
        st.tuples(st.just("delete"), paths, st.none()),
    ),
    max_size=40,
)


@given(ops, st.integers(min_value=1, max_value=500))
@settings(max_examples=200, deadline=None)
def test_quota_invariant_under_any_op_sequence(operations, quota):
    """used_bytes always equals the sum of file sizes and never exceeds
    the quota, no matter what sequence of operations runs."""
    fs = InMemoryFileSystem(quota_bytes=quota)
    for op, path, data in operations:
        try:
            if op == "write":
                fs.write(path, data)
            elif op == "append":
                fs.append(path, data)
            else:
                fs.delete(path)
        except VFSError:
            pass  # rejected operations must leave state consistent
        total = sum(fs.size(p) for p in fs.walk_files())
        assert fs.used_bytes == total
        assert fs.used_bytes <= quota


@given(ops)
@settings(max_examples=100, deadline=None)
def test_read_returns_last_write(operations):
    fs = InMemoryFileSystem()
    shadow = {}
    for op, path, data in operations:
        p = normalize(path)
        try:
            if op == "write":
                fs.write(path, data)
                shadow[p] = data
            elif op == "append":
                fs.append(path, data)
                shadow[p] = shadow.get(p, b"") + data
            else:
                fs.delete(path)
                if p in shadow:
                    del shadow[p]
                else:
                    # deleted a directory: drop everything under it
                    shadow = {
                        k: v for k, v in shadow.items()
                        if not k.startswith(p + "/")
                    }
        except VFSError:
            continue
    for p, expected in shadow.items():
        assert fs.read(p) == expected


@given(paths, st.binary(min_size=1, max_size=64))
@settings(max_examples=100, deadline=None)
def test_quota_rejection_is_atomic(path, data):
    fs = InMemoryFileSystem(quota_bytes=max(1, len(data) - 1))
    try:
        fs.write(path, data)
    except QuotaExceededError:
        assert fs.used_bytes == 0
        assert not fs.is_file(path)
