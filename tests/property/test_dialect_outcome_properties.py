"""Property tests: dialect render/parse totality, outcome codec."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ajo import ActionStatus, AJOOutcome, FileOutcome, ServiceOutcome, TaskOutcome
from repro.ajo.serialize import decode_outcome, encode_outcome
from repro.batch.dialects import dialect_for
from repro.resources import ResourceSet

job_names = st.text(string.ascii_letters + string.digits + "_-", min_size=1,
                    max_size=16)
queue_names = st.sampled_from(["batch", "small", "medium", "long"])
resources = st.builds(
    ResourceSet,
    cpus=st.integers(1, 4096),
    time_s=st.floats(1, 1e6),
    memory_mb=st.floats(1, 1e6),
)


@given(
    st.sampled_from(["nqs", "loadleveler", "vpp", "codine"]),
    job_names, queue_names, resources,
    st.lists(st.text(string.printable.replace("\n", ""), max_size=30),
             max_size=4),
)
@settings(max_examples=200, deadline=None)
def test_dialect_render_always_parses_back(key, name, queue, res, body):
    dialect = dialect_for(key)
    script = dialect.render_script(name, queue, res, body)
    directives = dialect.parse_directives(script)
    assert directives  # every rendered script parses under its dialect
    # And never under a different prefix-style dialect.
    others = {"nqs", "vpp", "codine"} - {key}
    for other in others:
        other_d = dialect_for(other)
        joined = "\n".join(
            line for line in script.splitlines()
            if line.startswith(other_d.directive_prefix())
        )
        assert not joined.startswith(other_d.directive_prefix()) or key == other


statuses = st.sampled_from(list(ActionStatus))
small_text = st.text(max_size=40)


@st.composite
def outcomes(draw, depth=2):
    kind = draw(st.integers(0, 3 if depth > 0 else 2))
    action_id = draw(st.uuids()).hex[:8]
    if kind == 0:
        out = TaskOutcome(
            action_id=action_id,
            exit_code=draw(st.one_of(st.none(), st.integers(-255, 255))),
            stdout=draw(small_text), stderr=draw(small_text),
        )
    elif kind == 1:
        out = FileOutcome(
            action_id=action_id,
            bytes_moved=draw(st.integers(0, 2**40)),
            effective_bandwidth=draw(st.floats(0, 1e9, allow_nan=False)),
        )
    elif kind == 2:
        out = ServiceOutcome(
            action_id=action_id,
            answer=draw(st.one_of(st.none(), st.integers(),
                                  st.lists(small_text, max_size=3))),
        )
    else:
        out = AJOOutcome(action_id=action_id)
        for child in draw(st.lists(outcomes(depth=depth - 1), max_size=4)):
            out.add_child(child)
    out.status = draw(statuses)
    out.reason = draw(small_text)
    return out


@given(outcomes())
@settings(max_examples=200, deadline=None)
def test_outcome_codec_roundtrip(outcome):
    restored = decode_outcome(encode_outcome(outcome))
    assert type(restored) is type(outcome)
    assert restored.action_id == outcome.action_id
    assert restored.status is outcome.status
    assert restored.reason == outcome.reason
    if isinstance(outcome, AJOOutcome):
        assert set(restored.children) == set(outcome.children)
    if isinstance(outcome, TaskOutcome):
        assert restored.exit_code == outcome.exit_code
        assert restored.stdout == outcome.stdout
    if isinstance(outcome, FileOutcome):
        assert restored.bytes_moved == outcome.bytes_moved


@given(outcomes())
@settings(max_examples=100, deadline=None)
def test_rollup_is_deterministic_and_terminal_consistent(outcome):
    if not isinstance(outcome, AJOOutcome):
        return
    a = outcome.rollup_status()
    b = outcome.rollup_status()
    assert a is b
    # A rollup of SUCCESSFUL implies no child failed.
    if a is ActionStatus.SUCCESSFUL and outcome.children:
        assert all(
            c.status is not ActionStatus.FAILED
            for c in outcome.children.values()
        )
