"""Property tests: network delivery invariants and queue-selection totality."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Network
from repro.simkernel import Simulator


@given(st.lists(st.integers(min_value=0, max_value=100_000), min_size=1,
                max_size=30))
@settings(max_examples=150, deadline=None)
def test_lossless_link_delivers_in_order(sizes):
    """FIFO serialization: whatever the message sizes, a lossless link
    delivers in send order, and arrival times are nondecreasing."""
    sim = Simulator()
    net = Network(sim, seed=0)
    net.add_host("a")
    net.add_host("b")
    net.link("a", "b", latency_s=0.01, bandwidth_Bps=10_000.0)
    arrivals = []

    def receiver(sim):
        host = net.host("b")
        for _ in range(len(sizes)):
            message = yield host.receive()
            arrivals.append((sim.now, message.payload))

    sim.process(receiver(sim))
    for i, size in enumerate(sizes):
        net.send("a", "b", i, size)
    sim.run()
    order = [p for _, p in arrivals]
    assert order == list(range(len(sizes)))
    times = [t for t, _ in arrivals]
    assert times == sorted(times)
    assert net.host("b").received_bytes == sum(sizes)


@given(st.lists(st.integers(min_value=0, max_value=100_000), min_size=1,
                max_size=20))
@settings(max_examples=100, deadline=None)
def test_link_busy_time_conserved(sizes):
    """Total transfer completion time >= serialized transmission time."""
    sim = Simulator()
    net = Network(sim, seed=0)
    net.add_host("a")
    net.add_host("b")
    bw = 5_000.0
    net.link("a", "b", latency_s=0.0, bandwidth_Bps=bw)
    for i, s in enumerate(sizes):
        net.send("a", "b", i, s)
    sim.run()
    assert sim.now >= sum(sizes) / bw - 1e-9


@st.composite
def page_admissible_requests(draw):
    from repro.resources import ResourceRequest

    return ResourceRequest(
        cpus=draw(st.integers(1, 512)),
        time_s=draw(st.floats(1.0, 86400.0)),
        memory_mb=draw(st.floats(1.0, 512 * 128.0)),
    )


@given(page_admissible_requests())
@settings(max_examples=150, deadline=None)
def test_every_page_admissible_request_finds_a_queue(request):
    """The default queue layout is total over the resource page: anything
    the page admits, some queue admits (the NJS never strands a job
    between the client-side check and the local submission)."""
    from repro.batch import machine
    from repro.resources.check import check_request
    from repro.server.njs.incarnation import select_queue
    from repro.server.vsite import Vsite

    sim = Simulator()
    vsite = Vsite(sim, machine("FZJ-T3E"))
    if check_request(vsite.resource_page, request).ok:
        queue_name = select_queue(vsite, request)
        queue = vsite.batch.queues[queue_name]
        assert not queue.admits(request)  # empty violation list
