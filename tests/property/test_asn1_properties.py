"""Property-based tests for the ASN.1 codec."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resources import asn1

# Finite floats whose repr round-trips exactly (excludes NaN; inf is fine
# via repr but float('inf') -> 'inf' parses back, so allow it).
finite_floats = st.floats(allow_nan=False)

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**128), max_value=2**128),
    finite_floats,
    st.text(max_size=50),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=6),
        st.dictionaries(st.text(max_size=10), children, max_size=6),
    ),
    max_leaves=25,
)


def _equal(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        return (math.isnan(a) and math.isnan(b)) or a == b
    if isinstance(a, list) and isinstance(b, list):
        return len(a) == len(b) and all(
            _equal(x, y) for x, y in zip(a, b, strict=True)
        )
    if isinstance(a, dict) and isinstance(b, dict):
        return set(a) == set(b) and all(_equal(a[k], b[k]) for k in a)
    return a == b and type(a) is type(b)


@given(values)
@settings(max_examples=300)
def test_roundtrip(value):
    assert _equal(asn1.decode(asn1.encode(value)), value)


@given(values)
def test_encoding_is_deterministic(value):
    assert asn1.encode(value) == asn1.encode(value)


@given(st.integers(min_value=-(2**256), max_value=2**256))
def test_integer_roundtrip_wide(n):
    assert asn1.decode(asn1.encode(n)) == n


@given(st.text())
def test_string_roundtrip_unicode(s):
    assert asn1.decode(asn1.encode(s)) == s


@given(st.binary(max_size=64))
def test_decoder_never_crashes_unhandled(data):
    """Arbitrary bytes either decode or raise ResourcePageError — nothing else."""
    from repro.resources.errors import ResourcePageError

    try:
        asn1.decode(data)
    except ResourcePageError:
        pass
