"""Property-based tests for simulation-kernel invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simkernel import Container, Simulator, Store

delays = st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1,
                  max_size=40)


@given(delays)
@settings(max_examples=200, deadline=None)
def test_clock_is_monotone_and_events_ordered(ds):
    sim = Simulator()
    seen = []
    for d in ds:
        sim.timeout(d, value=d).callbacks.append(
            lambda e: seen.append((sim.now, e.value))
        )
    sim.run()
    # Fired in nondecreasing time order, at exactly their delays.
    times = [t for t, _ in seen]
    assert times == sorted(times)
    assert sorted(v for _, v in seen) == sorted(ds)
    for fired_at, delay in seen:
        assert fired_at == delay
    assert sim.now == max(ds)


@given(delays, delays)
@settings(max_examples=100, deadline=None)
def test_store_is_fifo_for_any_schedule(producer_gaps, consumer_gaps):
    """Whatever the timing, items come out in the order they went in."""
    sim = Simulator()
    store = Store(sim)
    n = min(len(producer_gaps), len(consumer_gaps))
    got = []

    def producer(sim):
        for i in range(n):
            yield sim.timeout(producer_gaps[i])
            store.put(i)

    def consumer(sim):
        for i in range(n):
            yield sim.timeout(consumer_gaps[i])
            item = yield store.get()
            got.append(item)

    sim.process(producer(sim))
    sim.process(consumer(sim))
    sim.run()
    assert got == list(range(n))


@given(
    st.integers(min_value=1, max_value=64),
    st.lists(
        st.tuples(st.integers(1, 16), st.floats(0.1, 100.0)),
        min_size=1, max_size=25,
    ),
)
@settings(max_examples=150, deadline=None)
def test_container_never_overcommits(capacity, jobs):
    sim = Simulator()
    pool = Container(sim, capacity=capacity)
    peak = {"in_use": 0.0}

    def job(sim, need, hold):
        need = min(need, capacity)
        yield pool.get(need)
        peak["in_use"] = max(peak["in_use"], pool.in_use)
        assert pool.in_use <= capacity + 1e-9
        yield sim.timeout(hold)
        pool.put(need)

    for need, hold in jobs:
        sim.process(job(sim, need, hold))
    sim.run()
    assert pool.available == capacity  # everything returned
    assert peak["in_use"] <= capacity + 1e-9
