"""Property: a snapshot/restore cycle is invisible to the workload.

Two runs of the same randomized scenario — one straight through, one
checkpointed at a quiescent point and thawed into a brand-new grid —
must be indistinguishable to a client: byte-identical outcome encodings
for every job (timestamps included, so the restored clock and cursors
must be exact) and identical job listings.

The scenario: a first batch of jobs runs to completion, the grid is
snapshotted (control arm: not), a fresh session connects, and a second
batch runs.  Everything after the checkpoint exercises the restored
clock, message-id counter, and durable job-id cursor.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ajo.actions import reset_action_ids
from repro.api import GridSession
from repro.grid import build_grid


@st.composite
def scenarios(draw):
    seed = draw(st.integers(0, 2**16))
    batch1 = draw(
        st.lists(st.floats(10.0, 400.0), min_size=1, max_size=3)
    )
    batch2 = draw(
        st.lists(st.floats(10.0, 400.0), min_size=1, max_size=3)
    )
    return seed, batch1, batch2


def _build(seed):
    grid = build_grid({"FZJ": ["FZJ-T3E"]}, seed=seed, storage="sqlite")
    grid.add_user("Prop User", organization="Test", logins={"FZJ": "prop"})
    return grid


def _submit_batch(session, runtimes, label):
    handles = []
    for i, runtime in enumerate(runtimes):
        job = session.new_job(f"{label}-{i}")
        job.script_task(
            f"task-{i}", "#!/bin/sh\nwork\n", simulated_runtime_s=runtime
        )
        handles.append(session.submit(job))
    for handle in handles:
        assert session.wait(handle).status == "successful"
    return handles


def _observe(grid, session, handles):
    """What the client can see: raw outcome bytes + listing rows."""
    njs = grid.usites["FZJ"].njs
    outcomes = {h.job_id: njs.retrieve_outcome(h.job_id) for h in handles}
    listings = [
        (row.job_id, row.name, row.status, row.submitted_at, row.recovered)
        for row in session.list_jobs()
    ]
    return outcomes, listings


@given(scenarios())
@settings(max_examples=10, deadline=None)
def test_snapshot_restore_is_byte_identical(scenario):
    seed, batch1, batch2 = scenario

    # Control arm: straight through, fresh session between batches.
    # (Action ids come from a process-local counter; reset it so both
    # arms build their AJOs with the same identifiers.)
    reset_action_ids()
    grid_a = _build(seed)
    session_a1 = GridSession(grid_a, grid_a.users["Prop User"], "FZJ")
    handles_1a = _submit_batch(session_a1, batch1, "first")
    session_a2 = GridSession(grid_a, grid_a.users["Prop User"], "FZJ")
    handles_2a = _submit_batch(session_a2, batch2, "second")
    outcomes_a, listings_a = _observe(grid_a, session_a2, handles_1a + handles_2a)

    # Checkpointed arm: snapshot after batch one, thaw, continue.
    reset_action_ids()
    grid_b = _build(seed)
    session_b1 = GridSession(grid_b, grid_b.users["Prop User"], "FZJ")
    handles_1b = _submit_batch(session_b1, batch1, "first")
    snap = grid_b.snapshot()

    grid_c = build_grid(restore_from=snap)
    assert grid_c.sim.now == grid_b.sim.now
    session_c = GridSession(grid_c, grid_c.users["Prop User"], "FZJ")
    handles_2c = _submit_batch(session_c, batch2, "second")
    outcomes_c, listings_c = _observe(grid_c, session_c, handles_1b + handles_2c)

    assert [h.job_id for h in handles_2c] == [h.job_id for h in handles_2a]
    assert outcomes_c == outcomes_a  # byte-for-byte, timestamps included
    assert listings_c == listings_a
