"""Randomized end-to-end property: any valid job reaches a consistent
terminal state.

Hypothesis generates random (valid) job shapes — tasks, sub-groups,
forward-only dependencies, mixed failure injection via nonexistent
imports — submits them through the full stack, and checks the global
invariants:

* the job reaches a terminal status;
* outcome statuses are consistent (successors of failures NOT_ATTEMPTED,
  successful groups have no failed children);
* no batch record is left non-terminal;
* jobs are conserved (everything consigned is accounted for).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ajo import ActionStatus
from repro.analysis import AnalysisContext, AnalysisError, analyze_ajo
from repro.client import JobMonitorController, JobPreparationAgent
from repro.grid import build_grid


@st.composite
def job_plans(draw):
    """A compact random plan: list of (kind, fails?) plus random edges."""
    n = draw(st.integers(1, 5))
    tasks = [
        (
            draw(st.sampled_from(["script", "import", "export"])),
            draw(st.booleans()),
        )
        for _ in range(n)
    ]
    edges = []
    for j in range(1, n):
        for i in range(j):
            if draw(st.integers(0, 3)) == 0:
                edges.append((i, j))
    has_remote = draw(st.booleans())
    return tasks, edges, has_remote


@given(job_plans())
@settings(max_examples=25, deadline=None)
def test_any_valid_job_terminates_consistently(plan):
    tasks, edges, has_remote = plan
    grid = build_grid({"FZJ": ["FZJ-T3E"], "ZIB": ["ZIB-SP2"]}, seed=61)
    user = grid.add_user("Rand", logins={"FZJ": "r", "ZIB": "rb"})
    session = grid.connect_user(user, "FZJ")
    jpa = JobPreparationAgent(session)
    jmc = JobMonitorController(session)
    session.client.poll_interval_s = 60.0

    # Seed Xspace inputs for the non-failing imports.
    grid.usites["FZJ"].xspace.fs.write("/in/ok.dat", b"seed")

    job = jpa.new_job("random-job", vsite="FZJ-T3E")
    built = []
    for i, (kind, fails) in enumerate(tasks):
        if kind == "script":
            t = job.script_task(
                f"t{i}", script="#!/bin/sh\nx\n",
                simulated_runtime_s=30.0,
            )
        elif kind == "import":
            src = "/in/missing.dat" if fails else "/in/ok.dat"
            t = job.import_from_xspace(src, f"in{i}.dat", name=f"t{i}")
        else:
            # Exports fail when their source was never produced.
            src = f"ghost{i}.dat" if fails else f"made{i}.dat"
            t = job.export_to_xspace(src, f"/out/{i}.dat", name=f"t{i}")
        built.append(t)
    for i, j in edges:
        # Annotate some edges with files so producers materialize them.
        files = [f"made{j}.dat"] if tasks[j][0] == "export" and not tasks[j][1] else []
        job.depends(built[i], built[j], files=files)
    if has_remote:
        sb = job.sub_job("remote", vsite="ZIB-SP2", usite="ZIB")
        sb.script_task("rt", script="#!/bin/sh\nx\n", simulated_runtime_s=30.0)

    def scenario(sim):
        job_id = yield from jpa.submit(job)
        final = yield from jmc.wait_for_completion(job_id)
        outcome = yield from jmc.outcome(job_id)
        return job_id, final, outcome

    # The static analyzer's verdict decides the property being checked:
    # plans with dataflow errors (ghost exports, write-write races on a
    # shared made-file) must be rejected at submit time with a stable
    # code; clean plans must run to a consistent terminal state.
    report = analyze_ajo(job.ajo, AnalysisContext.for_session(session))
    if not report.ok:
        p = grid.sim.process(scenario(grid.sim))
        with pytest.raises(AnalysisError) as exc_info:
            grid.sim.run(until=p)
        assert exc_info.value.code.startswith("AJO")
        assert exc_info.value.report.errors
        # Rejected client-side: nothing may have reached the NJS.
        assert grid.usites["FZJ"].njs.job_count == 0
        return

    p = grid.sim.process(scenario(grid.sim))
    job_id, final, outcome = grid.sim.run(until=p)

    # 1. Terminal.
    assert final["status"] in ("successful", "failed", "killed")
    assert outcome.rollup_status().is_terminal

    # 2. Consistency: failed predecessors imply NOT_ATTEMPTED successors.
    statuses = {t.id: outcome.child(t.id).status for t in built}
    pred_of = {}
    for i, j in edges:
        pred_of.setdefault(built[j].id, []).append(built[i].id)
    for t in built:
        for pred in pred_of.get(t.id, []):
            if statuses[pred] in (
                ActionStatus.FAILED, ActionStatus.NOT_ATTEMPTED,
                ActionStatus.KILLED,
            ):
                assert statuses[t.id] is ActionStatus.NOT_ATTEMPTED

    # 3. Batch records all terminal.
    for usite in grid.usites.values():
        for vsite in usite.vsites.values():
            assert all(r.state.is_terminal for r in vsite.batch.all_records())

    # 4. Conservation: exactly one job known at FZJ for this user.
    assert grid.usites["FZJ"].njs.job_count == 1
