"""Tests for the AJO/Outcome wire codec and outcome semantics."""

import pytest

from repro.ajo import (
    AbstractJobObject,
    ActionStatus,
    AJOOutcome,
    CompileTask,
    ControlService,
    ExecuteScriptTask,
    ExportTask,
    FileOutcome,
    ImportTask,
    LinkTask,
    ListService,
    QueryService,
    SerializationError,
    ServiceOutcome,
    TaskOutcome,
    TransferTask,
    UserTask,
    decode_ajo,
    decode_outcome,
    encode_ajo,
    encode_outcome,
)
from repro.resources import ResourceRequest


def rich_job() -> AbstractJobObject:
    """A job exercising every concrete wire type."""
    root = AbstractJobObject(
        "cfd-study",
        vsite="FZJ-T3E",
        usite="FZJ",
        user_dn="CN=Alice, O=FZJ, C=DE",
        account_group="zam",
        site_security="smartcard:42",
    )
    imp = root.add(
        ImportTask(
            "fetch-mesh",
            source_path="/home/alice/mesh.grid",
            destination_path="mesh.grid",
            source_space="workstation",
        )
    )
    comp = root.add(
        CompileTask(
            "compile",
            sources=["solver.f90"],
            compiler="f90",
            options=["-O3"],
            resources=ResourceRequest(cpus=1, time_s=300),
        )
    )
    link = root.add(
        LinkTask("link", objects=["solver.o"], output="solver.exe", libraries=["mpi"])
    )
    run = root.add(
        UserTask(
            "run",
            executable="solver.exe",
            arguments=["-n", "64"],
            resources=ResourceRequest(cpus=64, time_s=7200, memory_mb=8192),
            environment={"OMP_NUM_THREADS": "1"},
        )
    )
    exp = root.add(
        ExportTask("save", source_path="result.dat", destination_path="/arch/result.dat")
    )
    root.add_dependency(imp, comp, files=["mesh.grid"])
    root.add_dependency(comp, link, files=["solver.o"])
    root.add_dependency(link, run, files=["solver.exe"])
    root.add_dependency(run, exp, files=["result.dat"])

    sub = AbstractJobObject("post-process", vsite="ZIB-SP2", usite="ZIB")
    sub.add(ExecuteScriptTask("viz", script="#!/bin/sh\nrender result.dat\n"))
    sub.add(
        TransferTask(
            "bring-results",
            source_path="result.dat",
            destination_path="result.dat",
            destination_usite="ZIB",
        )
    )
    root.add(sub)
    return root


# ---------------------------------------------------------------- AJO codec
def test_ajo_roundtrip_full():
    job = rich_job()
    restored = decode_ajo(encode_ajo(job))
    assert restored == job
    assert restored.total_actions() == job.total_actions()
    assert [d.files for d in restored.dependencies] == [
        d.files for d in job.dependencies
    ]


def test_ajo_encoding_deterministic():
    job = rich_job()
    assert encode_ajo(job) == encode_ajo(job)


def test_ajo_decode_preserves_subjob_destination():
    restored = decode_ajo(encode_ajo(rich_job()))
    sub = restored.sub_jobs()[0]
    assert sub.vsite == "ZIB-SP2"
    assert sub.usite == "ZIB"


def test_decode_rejects_garbage():
    with pytest.raises(SerializationError):
        decode_ajo(b"not json")
    with pytest.raises(SerializationError):
        decode_ajo(b'{"unicore_ajo": 99}')
    with pytest.raises(SerializationError):
        decode_ajo(b'{"unicore_ajo": 1, "type": "warp", "data": {}}')


def test_encode_rejects_bare_task():
    with pytest.raises(SerializationError):
        encode_ajo(UserTask("t", executable="x"))


def test_decode_rejects_truncated_payload():
    import json

    envelope = json.loads(encode_ajo(rich_job()))
    del envelope["data"]["name"]
    with pytest.raises(SerializationError):
        decode_ajo(json.dumps(envelope).encode())


def test_services_roundtrip_inside_envelope():
    """Services travel standalone; check their payloads reconstruct."""
    from repro.ajo.serialize import _decode_action, _encode_action

    for svc in (
        ControlService("kill", target_job_id="ajo42", verb="cancel"),
        ListService("ls"),
        QueryService("q", target_job_id="ajo42", detail="groups"),
    ):
        clone = _decode_action(_encode_action(svc))
        assert clone == svc


# ------------------------------------------------------------------ outcomes
def test_outcome_mark_transitions():
    out = TaskOutcome(action_id="x")
    out.mark(ActionStatus.QUEUED)
    out.mark(ActionStatus.RUNNING)
    out.mark(ActionStatus.SUCCESSFUL)
    assert out.status.is_terminal
    with pytest.raises(ValueError):
        out.mark(ActionStatus.FAILED)


def test_outcome_roundtrip_each_kind():
    task = TaskOutcome(action_id="t", exit_code=1, stdout="out", stderr="err")
    task.mark(ActionStatus.FAILED, reason="exit 1")
    file_out = FileOutcome(action_id="f", bytes_moved=1024, effective_bandwidth=2.5)
    svc = ServiceOutcome(action_id="s", answer={"jobs": ["a", "b"]})
    agg = AJOOutcome(action_id="root")
    agg.add_child(task)
    agg.add_child(file_out)
    agg.add_child(svc)

    restored = decode_outcome(encode_outcome(agg))
    assert isinstance(restored, AJOOutcome)
    rt = restored.child("t")
    assert isinstance(rt, TaskOutcome)
    assert rt.exit_code == 1 and rt.stdout == "out" and rt.reason == "exit 1"
    rf = restored.child("f")
    assert isinstance(rf, FileOutcome)
    assert rf.bytes_moved == 1024
    rs = restored.child("s")
    assert isinstance(rs, ServiceOutcome)
    assert rs.answer == {"jobs": ["a", "b"]}


def test_outcome_decode_rejects_garbage():
    with pytest.raises(SerializationError):
        decode_outcome(b"nope")
    with pytest.raises(SerializationError):
        decode_outcome(b'{"unicore_outcome": 1, "kind": "alien", "data": {}}')


def test_rollup_status_rules():
    agg = AJOOutcome(action_id="root")
    a = TaskOutcome(action_id="a")
    b = TaskOutcome(action_id="b")
    agg.add_child(a)
    agg.add_child(b)
    assert agg.rollup_status() is ActionStatus.PENDING
    a.mark(ActionStatus.QUEUED)
    assert agg.rollup_status() is ActionStatus.QUEUED
    a.mark(ActionStatus.RUNNING)
    assert agg.rollup_status() is ActionStatus.RUNNING
    a.mark(ActionStatus.SUCCESSFUL)
    b.mark(ActionStatus.QUEUED)
    b.mark(ActionStatus.RUNNING)
    b.mark(ActionStatus.FAILED)
    assert agg.rollup_status() is ActionStatus.FAILED


def test_rollup_all_successful():
    agg = AJOOutcome(action_id="root")
    for name in "ab":
        child = TaskOutcome(action_id=name)
        child.mark(ActionStatus.SUCCESSFUL)
        agg.add_child(child)
    assert agg.rollup_status() is ActionStatus.SUCCESSFUL


def test_rollup_killed_dominates_success():
    agg = AJOOutcome(action_id="root")
    ok = TaskOutcome(action_id="ok")
    ok.mark(ActionStatus.SUCCESSFUL)
    dead = TaskOutcome(action_id="dead")
    dead.mark(ActionStatus.KILLED)
    agg.add_child(ok)
    agg.add_child(dead)
    assert agg.rollup_status() is ActionStatus.KILLED


def test_rollup_empty_uses_own_status():
    agg = AJOOutcome(action_id="root")
    assert agg.rollup_status() is ActionStatus.PENDING


def test_status_colors_cover_all_states():
    for status in ActionStatus:
        assert status.display_color


def test_status_terminality():
    assert ActionStatus.SUCCESSFUL.is_terminal
    assert ActionStatus.FAILED.is_terminal
    assert ActionStatus.KILLED.is_terminal
    assert ActionStatus.NOT_ATTEMPTED.is_terminal
    assert not ActionStatus.PENDING.is_terminal
    assert not ActionStatus.QUEUED.is_terminal
    assert not ActionStatus.RUNNING.is_terminal
    assert ActionStatus.SUCCESSFUL.is_success
    assert not ActionStatus.FAILED.is_success


def test_outcome_find_recursive():
    root = AJOOutcome(action_id="root")
    mid = AJOOutcome(action_id="mid")
    leaf = TaskOutcome(action_id="leaf")
    mid.add_child(leaf)
    root.add_child(mid)
    root.add_child(TaskOutcome(action_id="top"))
    assert root.find("root") is root
    assert root.find("top").action_id == "top"
    assert root.find("mid") is mid
    assert root.find("leaf") is leaf
    with pytest.raises(KeyError):
        root.find("ghost")
