"""Unit tests for the consignment envelope and task incarnation."""

import pytest

from repro.ajo import (
    CompileTask,
    ExecuteScriptTask,
    ImportTask,
    LinkTask,
    SerializationError,
    UserTask,
)
from repro.batch import machine
from repro.batch.base import FileEffect
from repro.protocol.consignment import decode_consignment, encode_consignment
from repro.resources import ResourceRequest
from repro.security.uudb import UserMapping
from repro.server.errors import IncarnationError
from repro.server.njs.incarnation import incarnate_task
from repro.server.vsite import Vsite
from repro.simkernel import Simulator
from repro.vfs import UspaceManager

MAPPING = UserMapping(dn="CN=U", login="u1", gid="proj")


def t3e():
    sim = Simulator()
    vsite = Vsite(sim, machine("FZJ-T3E"))
    uspace = UspaceManager("FZJ-T3E").create("j")
    return vsite, uspace


# ------------------------------------------------------------ consignment
def test_consignment_roundtrip():
    files = {"/home/u/a.f90": b"program a\nend\n", "/home/u/b.dat": b"\x00\x01"}
    blob = encode_consignment(b"AJO-BYTES", files)
    ajo_bytes, restored = decode_consignment(blob)
    assert ajo_bytes == b"AJO-BYTES"
    assert restored == files


def test_consignment_empty_files():
    ajo_bytes, files = decode_consignment(encode_consignment(b"X"))
    assert ajo_bytes == b"X" and files == {}


def test_consignment_rejects_garbage():
    with pytest.raises(SerializationError):
        decode_consignment(b"not json")
    with pytest.raises(SerializationError):
        decode_consignment(b'{"unicore_consignment": 9}')
    with pytest.raises(SerializationError):
        decode_consignment(b'{"unicore_consignment": 1, "ajo": "!!!", "files": {}}')


# ------------------------------------------------------------- incarnation
def test_incarnate_compile_emits_local_compiler_and_objects():
    vsite, uspace = t3e()
    task = CompileTask("c", sources=["m.f90", "s.f90"], options=["-O2"])
    spec = incarnate_task(task, vsite, MAPPING, uspace)
    assert "f90 -c -O2 m.f90" in spec.script
    assert spec.owner == "u1" and spec.group == "proj"
    effect_paths = {e.path for e in spec.effects}
    assert effect_paths == {"m.o", "s.o"}
    assert spec.origin == "unicore"


def test_incarnate_link_emits_libraries_and_executable():
    vsite, uspace = t3e()
    task = LinkTask("l", objects=["m.o"], output="app", libraries=["mpi", "blas"])
    spec = incarnate_task(task, vsite, MAPPING, uspace)
    assert "f90 -o app m.o -lmpi -lblas" in spec.script
    assert {e.path for e in spec.effects} == {"app"}


def test_incarnate_user_task_uses_run_prefix():
    vsite, uspace = t3e()
    task = UserTask("r", executable="app", arguments=["-i", "x"],
                    resources=ResourceRequest(cpus=16, time_s=600))
    spec = incarnate_task(task, vsite, MAPPING, uspace)
    assert "mpprun -n 16 ./app -i x" in spec.script


def test_incarnate_script_task_heredoc():
    vsite, uspace = t3e()
    task = ExecuteScriptTask("s", script="#!/bin/sh\necho hi\n", interpreter="ksh")
    spec = incarnate_task(task, vsite, MAPPING, uspace)
    assert "ksh <<'UNICORE_EOF'" in spec.script
    assert "echo hi" in spec.script


def test_incarnate_unknown_compiler_fails():
    vsite, uspace = t3e()
    task = CompileTask("c", sources=["m.c"], compiler="hpf")
    with pytest.raises(IncarnationError, match="no local translation"):
        incarnate_task(task, vsite, MAPPING, uspace)


def test_incarnate_file_task_rejected():
    vsite, uspace = t3e()
    task = ImportTask("i", source_path="/a", destination_path="b")
    with pytest.raises(IncarnationError, match="handled by the NJS"):
        incarnate_task(task, vsite, MAPPING, uspace)


def test_incarnate_runtime_scaling_by_machine_speed():
    task = UserTask("r", executable="a", simulated_runtime_s=1000.0,
                    resources=ResourceRequest(cpus=4, time_s=9000))
    t3e_vsite, t3e_uspace = t3e()
    sim = Simulator()
    vpp_vsite = Vsite(sim, machine("LRZ-VPP"))
    vpp_uspace = UspaceManager("LRZ-VPP").create("j")
    t3e_spec = incarnate_task(task, t3e_vsite, MAPPING, t3e_uspace)
    vpp_spec = incarnate_task(task, vpp_vsite, MAPPING, vpp_uspace)
    assert t3e_spec.wallclock_s == pytest.approx(1000.0)
    assert vpp_spec.wallclock_s == pytest.approx(250.0)  # 4x vector speed


def test_incarnate_default_runtime_is_half_the_limit():
    vsite, uspace = t3e()
    task = UserTask("r", executable="a",
                    resources=ResourceRequest(cpus=1, time_s=1000))
    spec = incarnate_task(task, vsite, MAPPING, uspace)
    assert spec.wallclock_s == pytest.approx(500.0)


def test_incarnate_extra_outputs_deduplicated():
    vsite, uspace = t3e()
    task = LinkTask("l", objects=["m.o"], output="app")
    spec = incarnate_task(
        task, vsite, MAPPING, uspace,
        extra_outputs=(FileEffect("app", size_bytes=1),
                       FileEffect("log.txt", size_bytes=2)),
    )
    paths = [e.path for e in spec.effects]
    assert paths.count("app") == 1  # intrinsic product wins
    assert "log.txt" in paths


def test_incarnate_script_parses_under_own_dialect():
    vsite, uspace = t3e()
    task = UserTask("r", executable="a")
    spec = incarnate_task(task, vsite, MAPPING, uspace)
    directives = vsite.batch.dialect.parse_directives(spec.script)
    assert directives["-q"] == spec.queue
    assert spec.queue in vsite.batch.queues


def test_incarnate_routes_to_tightest_queue():
    from repro.server.njs.incarnation import select_queue

    vsite, uspace = t3e()  # T3E: small<=128cpu/1h, medium<=256/12h, batch
    assert select_queue(vsite, ResourceRequest(cpus=4, time_s=600)) == "small"
    assert select_queue(vsite, ResourceRequest(cpus=4, time_s=7200)) == "medium"
    assert select_queue(vsite, ResourceRequest(cpus=200, time_s=600)) == "medium"
    assert select_queue(vsite, ResourceRequest(cpus=500, time_s=600)) == "batch"
    assert (
        select_queue(vsite, ResourceRequest(cpus=4, time_s=80000)) == "batch"
    )
    with pytest.raises(IncarnationError, match="no queue admits"):
        select_queue(vsite, ResourceRequest(cpus=9999, time_s=600))
