"""Unit tests for the pluggable persistence layer.

Backends (memory + sqlite), the value codec, spec parsing, transactional
batches with rollback, instrumentation counters, the journal-over-storage
refactor, and the deprecated-module compatibility shims.
"""

import warnings

import pytest

from repro.observability import MetricsRegistry
from repro.storage import (
    JobJournal,
    MemoryBackend,
    OutcomeRecord,
    OutcomeStore,
    SQLiteBackend,
    StorageError,
    StorageSpec,
    available_backends,
    decode_value,
    encode_value,
    resolve_storage,
)

BACKENDS = [MemoryBackend, SQLiteBackend]


# -- codec -------------------------------------------------------------------
def test_codec_round_trips_bytes_tuples_and_nesting():
    value = {
        "raw": b"\x00\xff\xca\xfe",
        "nested": {"list": [1, 2.5, None, True, b"x"]},
        "tuple": (1, "two", b"three"),
    }
    decoded = decode_value(encode_value(value))
    assert decoded["raw"] == b"\x00\xff\xca\xfe"
    assert decoded["nested"]["list"] == [1, 2.5, None, True, b"x"]
    # Tuples canonicalize to lists (JSON has no tuple type).
    assert decoded["tuple"] == [1, "two", b"three"]


def test_codec_is_canonical():
    a = encode_value({"b": 1, "a": 2})
    b = encode_value({"a": 2, "b": 1})
    assert a == b


# -- backends ----------------------------------------------------------------
@pytest.mark.parametrize("backend_cls", BACKENDS)
def test_table_crud_and_listing(backend_cls):
    backend = backend_cls()
    table = backend.table("t")
    assert table.get("missing") is None
    assert table.get("missing", 42) == 42
    table.put("b", {"x": 1})
    table.put("a", b"bytes")
    assert table.get("a") == b"bytes"
    assert table.keys() == ["a", "b"]
    assert "a" in table and "zz" not in table
    assert len(table) == 2
    table.delete("a")
    table.delete("never-existed")  # no error
    assert table.keys() == ["b"]
    assert dict(table.items()) == {"b": {"x": 1}}


@pytest.mark.parametrize("backend_cls", BACKENDS)
def test_log_append_order_and_truncate(backend_cls):
    backend = backend_cls()
    log = backend.log("journal")
    seqs = [log.append({"n": i}) for i in range(5)]
    assert seqs == sorted(seqs)
    assert [r["n"] for r in log.records()] == [0, 1, 2, 3, 4]
    assert len(log) == 5
    log.truncate()
    assert len(log) == 0 and log.records() == []


@pytest.mark.parametrize("backend_cls", BACKENDS)
def test_dump_load_round_trip_across_backends(backend_cls):
    src = backend_cls()
    src.table("t1").put("k", {"payload": b"\x01\x02"})
    src.log("l1").append({"kind": "consign", "ajo": b"raw"})
    dump = src.dump()
    for dst_cls in BACKENDS:
        dst = dst_cls()
        dst.load(dump)
        assert dst.table("t1").get("k") == {"payload": b"\x01\x02"}
        assert dst.log("l1").records() == [{"kind": "consign", "ajo": b"raw"}]
        assert dst.dump() == dump


@pytest.mark.parametrize("backend_cls", BACKENDS)
def test_batch_groups_writes_into_one_fsync(backend_cls):
    backend = backend_cls()
    table = backend.table("t")
    with backend.batch():
        table.put("a", 1)
        table.put("b", 2)
        with backend.batch():  # reentrant
            table.put("c", 3)
    assert backend.fsyncs == 1
    assert backend.writes == 3
    table.put("d", 4)  # unbatched: its own durable unit
    assert backend.fsyncs == 2


def test_sqlite_batch_rolls_back_on_error():
    backend = SQLiteBackend()
    table = backend.table("t")
    table.put("keep", "before")
    with pytest.raises(RuntimeError):
        with backend.batch():
            table.put("keep", "changed")
            table.put("new", "value")
            raise RuntimeError("boom")
    assert table.get("keep") == "before"
    assert "new" not in table


def test_sqlite_file_survives_reopen(tmp_path):
    path = str(tmp_path / "site.db")
    first = SQLiteBackend(path)
    first.table("t").put("k", b"persisted")
    first.log("l").append({"seq": 1})
    first.close()
    second = SQLiteBackend(path)
    assert second.table("t").get("k") == b"persisted"
    assert second.log("l").records() == [{"seq": 1}]
    # Sequence numbers continue rather than restart.
    assert second.log("l").append({"seq": 2}) > 1


def test_counters_and_metrics_mirroring():
    backend = MemoryBackend()
    registry = MetricsRegistry()
    backend.bind_metrics(registry)
    backend.table("t").put("k", {"v": 1})
    backend.table("t").get("k")
    assert backend.writes == 1 and backend.reads == 1
    assert backend.bytes_written > 0 and backend.bytes_read > 0
    assert registry.counter("storage.writes").value == 1
    assert registry.counter("storage.reads").value == 1
    assert registry.counter("storage.fsyncs").value == backend.fsyncs
    assert registry.counter("storage.bytes").value == backend.bytes_written


# -- spec / registry ---------------------------------------------------------
def test_spec_parsing_spellings(monkeypatch):
    monkeypatch.delenv("REPRO_STORAGE", raising=False)
    assert StorageSpec.parse(None).kind == "memory"
    assert StorageSpec.parse("sqlite").kind == "sqlite"
    spec = StorageSpec.parse("sqlite:/tmp/x.db")
    assert spec.kind == "sqlite" and spec.options == {"path": "/tmp/x.db"}
    assert StorageSpec.parse(spec) is spec
    monkeypatch.setenv("REPRO_STORAGE", "sqlite")
    assert StorageSpec.parse(None).kind == "sqlite"
    with pytest.raises(TypeError):
        StorageSpec.parse(123)


def test_resolve_storage_by_kind():
    assert set(available_backends()) >= {"memory", "sqlite"}
    assert resolve_storage("memory").kind == "memory"
    assert resolve_storage("sqlite").kind == "sqlite"
    with pytest.raises(StorageError):
        resolve_storage("etcd")


# -- journal over storage ----------------------------------------------------
def _journal_with_traffic(backend):
    journal = JobJournal(backend, name="njs.journal")
    journal.record_consign("U1", b"ajo-1", "CN=a", trace_id="t1")
    journal.record_delivery("U1", "task", "VS", "B001")
    journal.record_consign("U2", b"ajo-2", "CN=b")
    journal.record_done("U2")
    return journal


def test_journal_cold_reload_from_backend():
    backend = SQLiteBackend()
    _journal_with_traffic(backend)
    # A brand-new journal over the same backend sees everything.
    reborn = JobJournal(backend, name="njs.journal")
    assert len(reborn) == 2
    entry = reborn.entry("U1")
    assert entry.ajo_bytes == b"ajo-1"
    assert entry.delivered == {"task": ("VS", "B001")}
    assert [e.job_id for e in reborn.incomplete()] == ["U1"]
    assert reborn.entry("U2").done


def test_journal_forget_is_a_tombstone():
    backend = MemoryBackend()
    journal = _journal_with_traffic(backend)
    journal.forget("U2")
    reborn = JobJournal(backend, name="njs.journal")
    assert reborn.entry("U2") is None
    assert len(reborn) == 1


def test_journal_records_written_compat_counter():
    journal = _journal_with_traffic(MemoryBackend())
    assert journal.records_written == 4


# -- outcome store -----------------------------------------------------------
def test_outcome_store_round_trip():
    backend = SQLiteBackend()
    store = OutcomeStore(backend, "FZJ.outcomes")
    record = OutcomeRecord(
        job_id="U1", name="demo", user_dn="CN=a", status="successful",
        submitted_at=12.5, recovered=True, trace_id="t1",
        outcome_bytes=b"outcome", files={"stdout": b"hello\n"},
    )
    store.put(record)
    fetched = OutcomeStore(backend, "FZJ.outcomes").get("U1")
    assert fetched == record
    assert store.job_ids() == ["U1"]
    store.forget("U1")
    assert store.get("U1") is None


# -- compat shims ------------------------------------------------------------
@pytest.mark.parametrize(
    "module,name,home",
    [
        ("repro.server.njs.journal", "JobJournal", "repro.storage.journal"),
        ("repro.core", "JobBuilder", "repro.client"),
        ("repro.net.transport", "Network", "repro.net.sim_transport"),
    ],
)
def test_deprecated_module_shims_warn_once(module, name, home):
    import importlib

    mod = importlib.import_module(module)
    mod._warned.discard(name)
    mod.__dict__.pop(name, None)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        resolved = getattr(mod, name)
    assert resolved.__module__.startswith(home.rsplit(".", 1)[0])
    messages = [str(w.message) for w in caught
                if issubclass(w.category, DeprecationWarning)]
    assert any(home in m for m in messages)
    assert name in dir(mod)
    with pytest.raises(AttributeError):
        mod.not_a_thing
