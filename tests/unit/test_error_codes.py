"""The canonical error-code registry (repro.errors.ERROR_CODES).

The registry is the single source of truth the RD2xx devlint rules and
the README error table are checked against, so this suite pins its
contract: completeness over every layer, the declare-your-own-code
registration rule, the duplicate guard, and the lazy re-export shim.
"""

import gc

import pytest

import repro.errors as errors_module
from repro.errors import (
    DuplicateErrorCode,
    ReproError,
    error_code_registry,
    iter_error_classes,
)


def test_registry_spans_every_layer():
    registry = error_code_registry()
    # One spot-check per layer module that contributes codes.
    for code in (
        "repro.error", "api.wait_timeout", "net.error", "server.consign",
        "batch.error", "vfs.quota", "resources.page",
        "security.authentication", "ajo.dependency_cycle",
        "protocol.retry_exhausted", "faults.circuit_open",
        "broker.no_capacity", "storage.snapshot",
    ):
        assert code in registry, code
    assert len(registry) >= 40


def test_every_code_is_dotted_lower_snake():
    for code, cls in error_code_registry().items():
        assert "." in code, f"{cls.__qualname__}: {code!r} is not dotted"
        assert code == code.lower(), f"{cls.__qualname__}: {code!r}"
        assert " " not in code


def test_subclass_without_own_code_shares_parent_identity():
    # FileNotFoundVFSError-style classes that do declare their own code
    # register; a class that only inherits must not shadow its parent.
    registry = error_code_registry()
    for code, cls in registry.items():
        assert cls.__dict__.get("code") == code


def test_iter_error_classes_is_deterministic_and_repro_only():
    first = list(iter_error_classes())
    second = list(iter_error_classes())
    assert first == second
    assert all(cls.__module__.startswith("repro.") for cls in first)
    assert all(issubclass(cls, ReproError) for cls in first)


def test_duplicate_code_refuses_to_build_registry():
    # Two classes claiming one wire code must abort the build loudly —
    # silently picking a winner would make client-side re-raise
    # ambiguous.  The fakes masquerade as repro-internal classes so the
    # module filter admits them, and are garbage-collected afterwards so
    # later registry builds in this process see the clean hierarchy.
    ns = {"code": "zz.collision", "__module__": "repro._test_dup"}
    first = type("FirstCollider", (ReproError,), dict(ns))
    second = type("SecondCollider", (ReproError,), dict(ns))
    try:
        with pytest.raises(DuplicateErrorCode, match="zz.collision"):
            error_code_registry()
    finally:
        del first, second
        gc.collect()
    assert "zz.collision" not in error_code_registry()


def test_error_codes_attribute_is_lazy_and_cached():
    errors_module.__dict__.pop("ERROR_CODES", None)
    registry = errors_module.ERROR_CODES
    assert registry is errors_module.__dict__["ERROR_CODES"]
    assert registry["net.error"] is errors_module.NetworkError
    with pytest.raises(TypeError):
        registry["net.error"] = None  # read-only mapping


def test_lazy_reexport_resolves_layer_names():
    from repro.batch.errors import UnknownQueueError

    assert errors_module.UnknownQueueError is UnknownQueueError
    with pytest.raises(AttributeError, match="NoSuchError"):
        errors_module.NoSuchError
    assert "ConsignError" in dir(errors_module)
