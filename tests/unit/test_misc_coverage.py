"""Edge-case tests across modules: kernel conditions, JMC helpers,
broker candidates, co-allocation exhaustion, network accounting."""

import pytest

from repro.simkernel import EventAborted, Interrupt, Simulator


# ------------------------------------------------------------ kernel edges
def test_allof_fails_fast_on_member_failure():
    sim = Simulator()

    def failing(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("member died")

    def waiter(sim):
        p = sim.process(failing(sim))
        t = sim.timeout(10.0)
        try:
            yield p & t
        except RuntimeError as err:
            return f"caught: {err}"

    p = sim.process(waiter(sim))
    assert sim.run(until=p) == "caught: member died"
    assert sim.now == 1.0  # failed fast, did not wait for the timeout


def test_anyof_failure_propagates():
    sim = Simulator()

    def failing(sim):
        yield sim.timeout(1.0)
        raise ValueError("boom")

    def waiter(sim):
        p = sim.process(failing(sim))
        t = sim.timeout(10.0)
        try:
            yield p | t
        except ValueError:
            return "caught"

    p = sim.process(waiter(sim))
    assert sim.run(until=p) == "caught"


def test_interrupt_non_waiting_process_rejected():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)

    p = sim.process(proc(sim))
    # Before the simulation starts, the process has not yielded yet.
    with pytest.raises(RuntimeError, match="not waiting"):
        p.interrupt()


def test_interrupt_cause_roundtrip():
    intr = Interrupt("reason")
    assert intr.cause == "reason"
    assert Interrupt().cause is None


def test_event_aborted_carries_cause():
    err = ValueError("inner")
    assert EventAborted(err).cause is err


def test_run_until_already_processed_event():
    sim = Simulator()
    t = sim.timeout(1.0, value="done")
    sim.run()
    assert sim.run(until=t) == "done"


def test_process_failure_via_run_until_raises():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1.0)
        raise KeyError("gone")

    p = sim.process(bad(sim))
    with pytest.raises(KeyError):
        sim.run(until=p)


# ------------------------------------------------------------- JMC helpers
def test_jmc_output_helpers():
    from repro.ajo import AJOOutcome, FileOutcome, TaskOutcome
    from repro.client import JobMonitorController
    from repro.vfs import Workstation

    root = AJOOutcome(action_id="root")
    t1 = TaskOutcome(action_id="t1", stdout="hello\n", stderr="warn\n")
    nested = AJOOutcome(action_id="sub")
    t2 = TaskOutcome(action_id="t2", stdout="deep\n")
    nested.add_child(t2)
    root.add_child(t1)
    root.add_child(FileOutcome(action_id="f1"))
    root.add_child(nested)

    outputs = JobMonitorController.list_task_outputs(root)
    assert outputs == {"t1": ("hello\n", "warn\n"), "t2": ("deep\n", "")}

    ws = Workstation("CN=X")
    JobMonitorController.save_output(t1, ws, "/home/x/t1.out")
    assert ws.fs.read("/home/x/t1.out") == b"hello\n"


def test_jmc_render_tree_nested_indent():
    from repro.client import JobMonitorController

    tree = {
        "name": "root", "status": "running", "color": "blue",
        "children": [
            {"name": "leaf", "status": "queued", "color": "yellow"},
        ],
    }
    text = JobMonitorController.render_tree(tree)
    lines = text.splitlines()
    assert lines[0].startswith("[")
    assert lines[1].startswith("  [")


# ------------------------------------------------------------------ broker
def test_broker_candidates_ranked_and_complete():
    from repro.ext import ResourceBroker
    from repro.grid import build_grid
    from repro.resources import ResourceRequest

    grid = build_grid({"FZJ": ["FZJ-T3E"], "LRZ": ["LRZ-VPP"]}, seed=43)
    broker = ResourceBroker.for_grid(grid)
    ranked = broker.candidates(
        ResourceRequest(cpus=4, time_s=3600), baseline_runtime_s=1000.0
    )
    assert [d.vsite for d in ranked] == ["LRZ-VPP", "FZJ-T3E"]
    turnarounds = [d.estimated_turnaround_s for d in ranked]
    assert turnarounds == sorted(turnarounds)


# ----------------------------------------------------------- co-allocation
def test_coallocation_gives_up_after_max_polls():
    from repro.batch import BatchJobSpec, BatchSystem, machine
    from repro.ext import CoAllocator
    from repro.resources import ResourceSet

    sim = Simulator()
    system = BatchSystem(sim, machine("DWD-SX4"))
    res = ResourceSet(cpus=32, time_s=80000)
    script = system.dialect.render_script("hog", "batch", res, ["x"])
    system.submit(BatchJobSpec(name="hog", owner="h", queue="batch",
                               script=script, resources=res, wallclock_s=79000))
    alloc = CoAllocator(sim, poll_interval_s=10.0, max_polls=5)

    part = BatchJobSpec(
        name="part", owner="m", queue="batch",
        script=system.dialect.render_script(
            "part", "batch", ResourceSet(cpus=32, time_s=100), ["x"]
        ),
        resources=ResourceSet(cpus=32, time_s=100),
    )

    def scenario(sim):
        result = yield from alloc.co_allocate([(system, part)])
        return result

    p = sim.process(scenario(sim))
    result = sim.run(until=p)
    assert not result.achieved
    assert result.polls == 5
    assert result.start_skew_s == float("inf")


# --------------------------------------------------------------- networking
def test_link_transmission_delay_and_stats():
    from repro.net import Network

    sim = Simulator()
    net = Network(sim, seed=0)
    net.add_host("a")
    net.add_host("b")
    net.link("a", "b", latency_s=0.0, bandwidth_Bps=100.0)
    link = net.get_link("a", "b")
    assert link.transmission_delay(50) == pytest.approx(0.5)
    net.send("a", "b", "x", 50)
    sim.run()
    assert link.messages_sent == 1
    assert link.bytes_sent == 50
    assert link.messages_lost == 0


def test_asymmetric_link():
    from repro.net import HostUnreachable, Network

    sim = Simulator()
    net = Network(sim, seed=0)
    net.add_host("a")
    net.add_host("b")
    net.link("a", "b", symmetric=False)
    net.send("a", "b", "x", 1)
    with pytest.raises(HostUnreachable):
        net.send("b", "a", "x", 1)


def test_core_namespace_exports_resolve():
    import repro.core as core

    for name in core.__all__:
        assert getattr(core, name) is not None
