"""Tests for the recursive job object, dependencies, DAG utilities."""

import pytest

from repro.ajo import (
    AbstractJobObject,
    DependencyCycleError,
    ExecuteScriptTask,
    ListService,
    UserTask,
    ValidationError,
    critical_path_length,
    ready_actions,
    topological_order,
    validate_ajo,
)
from repro.ajo.dag import predecessors_map, to_networkx
from repro.ajo.tasks import ImportTask, TransferTask


def make_task(name="t"):
    return UserTask(name, executable="./a.out")


def make_diamond():
    r"""a -> b, a -> c, b -> d, c -> d."""
    job = AbstractJobObject("diamond", vsite="V", user_dn="CN=u")
    a, b, c, d = (job.add(make_task(n)) for n in "abcd")
    job.add_dependency(a, b)
    job.add_dependency(a, c)
    job.add_dependency(b, d)
    job.add_dependency(c, d)
    return job, (a, b, c, d)


# ------------------------------------------------------------ construction
def test_add_and_children_order():
    job = AbstractJobObject("j", vsite="V")
    t1, t2 = make_task("one"), make_task("two")
    job.add(t1)
    job.add(t2)
    assert job.children == [t1, t2]
    assert job.tasks() == [t1, t2]
    assert job.sub_jobs() == []


def test_add_duplicate_id_rejected():
    job = AbstractJobObject("j")
    t = make_task()
    job.add(t)
    with pytest.raises(ValidationError):
        job.add(t)


def test_add_self_rejected():
    job = AbstractJobObject("j")
    with pytest.raises(ValidationError):
        job.add(job)


def test_add_service_rejected():
    """Services are standalone requests, not job-graph nodes."""
    job = AbstractJobObject("j")
    with pytest.raises(ValidationError):
        job.add(ListService("l"))


def test_dependency_requires_children():
    job = AbstractJobObject("j")
    t1 = job.add(make_task())
    stranger = make_task("stranger")
    with pytest.raises(ValidationError):
        job.add_dependency(t1, stranger)
    with pytest.raises(ValidationError):
        job.add_dependency(stranger, t1)


def test_dependency_self_loop_rejected():
    job = AbstractJobObject("j")
    t = job.add(make_task())
    with pytest.raises(ValidationError):
        job.add_dependency(t, t)


def test_dependency_files_recorded():
    job = AbstractJobObject("j", vsite="V")
    a, b = job.add(make_task("a")), job.add(make_task("b"))
    dep = job.add_dependency(a, b, files=["result.dat", "mesh.grid"])
    assert dep.files == ("result.dat", "mesh.grid")


def test_recursive_structure_walk_depth_count():
    root = AbstractJobObject("root", vsite="V1", usite="FZJ", user_dn="CN=u")
    root.add(make_task("pre"))
    sub = AbstractJobObject("sub", vsite="V2", usite="ZIB")
    sub.add(make_task("main"))
    subsub = AbstractJobObject("subsub", vsite="V3", usite="LRZ")
    subsub.add(make_task("post"))
    sub.add(subsub)
    root.add(sub)
    assert root.depth() == 3
    assert root.total_actions() == 6  # 3 groups + 3 tasks
    names = [a.name for a in root.walk()]
    assert names == ["root", "pre", "sub", "main", "subsub", "post"]


def test_child_lookup():
    job = AbstractJobObject("j")
    t = job.add(make_task())
    assert job.child(t.id) is t
    with pytest.raises(ValidationError):
        job.child("nope")


# ---------------------------------------------------------------- DAG utils
def test_topological_order_diamond():
    job, (a, b, c, d) = make_diamond()
    order = topological_order(job)
    assert order.index(a.id) < order.index(b.id) < order.index(d.id)
    assert order.index(a.id) < order.index(c.id) < order.index(d.id)


def test_topological_order_deterministic_insertion_ties():
    job = AbstractJobObject("j", vsite="V")
    ts = [job.add(make_task(f"t{i}")) for i in range(5)]
    assert topological_order(job) == [t.id for t in ts]


def test_topological_order_tolerates_duplicate_edges():
    """A repeated edge must not release its successor early.

    With a -> c declared twice (once per file set, say) plus a -> b -> c,
    a naive successor list decrements c twice when a completes and emits
    c before b — the regression hypothesis found.
    """
    job = AbstractJobObject("dup", vsite="V", user_dn="CN=u")
    a, b, c = (job.add(make_task(n)) for n in "abc")
    job.add_dependency(a, c, files=["first.out"])
    job.add_dependency(a, c, files=["second.out"])
    job.add_dependency(a, b)
    job.add_dependency(b, c)
    order = topological_order(job)
    assert order.index(a.id) < order.index(b.id) < order.index(c.id)


def test_cycle_detected():
    job = AbstractJobObject("j", vsite="V")
    a, b = job.add(make_task("a")), job.add(make_task("b"))
    job.add_dependency(a, b)
    job.add_dependency(b, a)
    with pytest.raises(DependencyCycleError):
        topological_order(job)


def test_ready_actions_progression():
    job, (a, b, c, d) = make_diamond()
    assert ready_actions(job, completed=[]) == [a.id]
    assert set(ready_actions(job, completed=[a.id])) == {b.id, c.id}
    assert ready_actions(job, completed=[a.id, b.id]) == [c.id]
    assert ready_actions(job, completed=[a.id, b.id, c.id]) == [d.id]
    assert ready_actions(job, completed=[a.id, b.id, c.id, d.id]) == []


def test_critical_path_unit_weights():
    job, _ = make_diamond()
    assert critical_path_length(job) == 3.0  # a -> b/c -> d


def test_critical_path_custom_weights():
    job, (a, b, c, d) = make_diamond()
    weights = {a.id: 1.0, b.id: 10.0, c.id: 2.0, d.id: 1.0}
    assert critical_path_length(job, weight=weights.__getitem__) == 12.0


def test_predecessors_map():
    job, (a, b, c, d) = make_diamond()
    preds = predecessors_map(job)
    assert preds[a.id] == set()
    assert preds[d.id] == {b.id, c.id}


def test_to_networkx_mirror():
    job, (a, b, c, d) = make_diamond()
    g = to_networkx(job)
    assert set(g.nodes) == {a.id, b.id, c.id, d.id}
    assert g.number_of_edges() == 4
    assert g.nodes[a.id]["action"] is a


def test_empty_job_trivial_dag():
    job = AbstractJobObject("empty")
    assert topological_order(job) == []
    assert critical_path_length(job) == 0.0


# ---------------------------------------------------------------- validation
def test_validate_good_job():
    job, _ = make_diamond()
    validate_ajo(job)


def test_validate_requires_user_dn():
    job = AbstractJobObject("j", vsite="V")
    job.add(make_task())
    with pytest.raises(ValidationError, match="user DN"):
        validate_ajo(job)
    validate_ajo(job, require_user=False)


def test_validate_requires_vsite_when_tasks_present():
    job = AbstractJobObject("j", user_dn="CN=u")
    job.add(make_task())
    with pytest.raises(ValidationError, match="Vsite"):
        validate_ajo(job)


def test_validate_pure_container_needs_no_vsite():
    root = AbstractJobObject("root", user_dn="CN=u")
    sub = AbstractJobObject("sub", vsite="V")
    sub.add(make_task())
    root.add(sub)
    validate_ajo(root)


def test_validate_detects_nested_cycle():
    root = AbstractJobObject("root", user_dn="CN=u")
    sub = AbstractJobObject("sub", vsite="V")
    a, b = sub.add(make_task("a")), sub.add(make_task("b"))
    sub.add_dependency(a, b)
    sub.add_dependency(b, a)
    root.add(sub)
    with pytest.raises(DependencyCycleError):
        validate_ajo(root)


def test_validate_transfer_to_own_usite_rejected():
    job = AbstractJobObject("j", vsite="V", usite="FZJ", user_dn="CN=u")
    job.add(
        TransferTask(
            "loop", source_path="a", destination_path="b", destination_usite="FZJ"
        )
    )
    with pytest.raises(ValidationError, match="own Usite"):
        validate_ajo(job)


def test_validate_duplicate_ids_across_tree():
    root = AbstractJobObject("root", user_dn="CN=u")
    sub1 = AbstractJobObject("s1", vsite="V")
    sub2 = AbstractJobObject("s2", vsite="V")
    sub1.add(UserTask("t", executable="x", action_id="dup"))
    sub2.add(UserTask("t", executable="x", action_id="dup"))
    root.add(sub1)
    root.add(sub2)
    with pytest.raises(ValidationError, match="duplicate"):
        validate_ajo(root)


# -------------------------------------------------------------- task details
def test_compile_task_object_files():
    from repro.ajo import CompileTask

    t = CompileTask("c", sources=["main.f90", "solver.f", "raw"])
    assert t.object_files() == ["main.o", "solver.o", "raw.o"]


def test_compile_task_software_requirement():
    from repro.ajo import CompileTask, LinkTask

    assert CompileTask("c", sources=["m.f90"]).required_software() == [
        ("compiler", "f90")
    ]
    link = LinkTask("l", objects=["m.o"], output="a.out", libraries=["mpi"])
    assert ("library", "mpi") in link.required_software()


def test_task_constructor_validation():
    from repro.ajo import CompileTask, LinkTask

    with pytest.raises(ValidationError):
        UserTask("t", executable="")
    with pytest.raises(ValidationError):
        ExecuteScriptTask("t", script="")
    with pytest.raises(ValidationError):
        CompileTask("t", sources=[])
    with pytest.raises(ValidationError):
        LinkTask("t", objects=[], output="a.out")
    with pytest.raises(ValidationError):
        LinkTask("t", objects=["m.o"], output="")
    with pytest.raises(ValidationError):
        ImportTask("t", source_path="", destination_path="x")
    with pytest.raises(ValidationError):
        ImportTask("t", source_path="a", destination_path="b", source_space="uspace")
    with pytest.raises(ValidationError):
        TransferTask("t", source_path="a", destination_path="b", destination_usite="")


def test_service_constructor_validation():
    from repro.ajo import ControlService, QueryService

    with pytest.raises(ValidationError):
        ControlService("c", target_job_id="")
    with pytest.raises(ValidationError):
        ControlService("c", target_job_id="x", verb="dance")
    with pytest.raises(ValidationError):
        QueryService("q", target_job_id="x", detail="everything")
