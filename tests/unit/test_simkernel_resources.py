"""Unit tests for Store, Container and SimQueue."""

import pytest

from repro.simkernel import Container, SimQueue, Simulator, Store


# ---------------------------------------------------------------- Store
def test_store_put_get_fifo():
    sim = Simulator()
    store = Store(sim)
    results = []

    def producer(sim):
        for i in range(3):
            yield sim.timeout(1.0)
            store.put(i)

    def consumer(sim):
        for _ in range(3):
            item = yield store.get()
            results.append((sim.now, item))

    sim.process(producer(sim))
    sim.process(consumer(sim))
    sim.run()
    assert results == [(1.0, 0), (2.0, 1), (3.0, 2)]


def test_store_get_before_put_blocks():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim):
        item = yield store.get()
        got.append((sim.now, item))

    def producer(sim):
        yield sim.timeout(5.0)
        store.put("late")

    sim.process(consumer(sim))
    sim.process(producer(sim))
    sim.run()
    assert got == [(5.0, "late")]


def test_store_capacity_blocks_putter():
    sim = Simulator()
    store = Store(sim, capacity=1)
    log = []

    def producer(sim):
        yield store.put("a")
        log.append(("a stored", sim.now))
        yield store.put("b")
        log.append(("b stored", sim.now))

    def consumer(sim):
        yield sim.timeout(10.0)
        item = yield store.get()
        log.append((f"got {item}", sim.now))

    sim.process(producer(sim))
    sim.process(consumer(sim))
    sim.run()
    assert ("a stored", 0.0) in log
    assert ("b stored", 10.0) in log


def test_store_invalid_capacity():
    with pytest.raises(ValueError):
        Store(Simulator(), capacity=0)


def test_store_len():
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    store.put(2)
    assert len(store) == 2


def test_store_multiple_consumers_fifo_service():
    sim = Simulator()
    store = Store(sim)
    winners = []

    def consumer(sim, name):
        item = yield store.get()
        winners.append((name, item))

    sim.process(consumer(sim, "first"))
    sim.process(consumer(sim, "second"))
    store.put("x")
    store.put("y")
    sim.run()
    assert winners == [("first", "x"), ("second", "y")]


# ------------------------------------------------------------- Container
def test_container_acquire_release():
    sim = Simulator()
    nodes = Container(sim, capacity=4)
    log = []

    def job(sim, name, n, hold):
        yield nodes.get(n)
        log.append((sim.now, name, "start"))
        yield sim.timeout(hold)
        nodes.put(n)
        log.append((sim.now, name, "end"))

    sim.process(job(sim, "j1", 3, 10.0))
    sim.process(job(sim, "j2", 2, 5.0))  # must wait for j1 (3+2 > 4)
    sim.run()
    assert (0.0, "j1", "start") in log
    assert (10.0, "j2", "start") in log
    assert nodes.available == 4


def test_container_fifo_head_of_line():
    """A big request at the head blocks a small one behind it (space-sharing)."""
    sim = Simulator()
    nodes = Container(sim, capacity=4)
    starts = {}

    def job(sim, name, n, hold):
        yield nodes.get(n)
        starts[name] = sim.now
        yield sim.timeout(hold)
        nodes.put(n)

    sim.process(job(sim, "running", 3, 10.0))
    sim.process(job(sim, "big", 4, 1.0))
    sim.process(job(sim, "small", 1, 1.0))  # could fit now, but FIFO blocks it
    sim.run()
    assert starts["running"] == 0.0
    assert starts["big"] == 10.0
    assert starts["small"] == 11.0


def test_container_request_exceeding_capacity():
    sim = Simulator()
    nodes = Container(sim, capacity=4)
    with pytest.raises(ValueError):
        nodes.get(5)


def test_container_overfull_put():
    sim = Simulator()
    c = Container(sim, capacity=4)
    with pytest.raises(ValueError):
        c.put(1)


def test_container_init_level():
    sim = Simulator()
    c = Container(sim, capacity=10, init=3)
    assert c.available == 3
    assert c.in_use == 7


def test_container_invalid_args():
    sim = Simulator()
    with pytest.raises(ValueError):
        Container(sim, capacity=0)
    with pytest.raises(ValueError):
        Container(sim, capacity=4, init=5)
    c = Container(sim, capacity=4)
    with pytest.raises(ValueError):
        c.get(0)
    with pytest.raises(ValueError):
        c.put(0)


# ---------------------------------------------------------------- SimQueue
def test_simqueue_push_pop():
    sim = Simulator()
    q = SimQueue(sim)
    out = []

    def consumer(sim):
        while True:
            msg = yield q.pop()
            out.append(msg)
            if msg == "stop":
                break

    sim.process(consumer(sim))
    q.push("a")
    q.push("stop")
    sim.run()
    assert out == ["a", "stop"]
    assert len(q) == 0
