"""Tests for the job-timeline builder and the grid monitor."""

import pytest

from repro.client import JobMonitorController, JobPreparationAgent
from repro.grid import build_grid
from repro.grid.monitor import GridMonitor
from repro.grid.timeline import job_timeline, render_gantt


@pytest.fixture()
def finished_pipeline():
    grid = build_grid({"FZJ": ["FZJ-T3E"]}, seed=79)
    user = grid.add_user("Tim", logins={"FZJ": "tim"})
    session = grid.connect_user(user, "FZJ")
    jpa = JobPreparationAgent(session)
    jmc = JobMonitorController(session)
    grid.usites["FZJ"].xspace.fs.write("/in/data.dat", b"x" * 4096)

    job = jpa.new_job("timed", vsite="FZJ-T3E")
    imp = job.import_from_xspace("/in/data.dat", "data.dat")
    work = job.script_task("crunch", script="#!/bin/sh\nx\n",
                           simulated_runtime_s=120.0)
    exp = job.export_to_xspace("out.dat", "/out/out.dat")
    job.depends(imp, work, files=["data.dat"])
    job.depends(work, exp, files=["out.dat"])

    def scenario(sim):
        job_id = yield from jpa.submit(job)
        yield from jmc.wait_for_completion(job_id)
        return job_id

    p = grid.sim.process(scenario(grid.sim))
    job_id = grid.sim.run(until=p)
    return grid, job_id


# ----------------------------------------------------------------- timeline
def test_timeline_covers_all_timed_actions(finished_pipeline):
    grid, job_id = finished_pipeline
    njs = grid.usites["FZJ"].njs
    entries = job_timeline(njs, job_id)
    labels = [e.label for e in entries]
    assert any("import" in label for label in labels)
    assert any("crunch [run@FZJ-T3E]" in label for label in labels)
    assert any("export" in label for label in labels)
    # Chronological and non-negative durations.
    starts = [e.start for e in entries]
    assert starts == sorted(starts)
    assert all(e.duration >= 0 for e in entries)
    # Execution span matches the simulated runtime.
    run_entry = next(e for e in entries if "[run@" in e.label)
    assert run_entry.duration == pytest.approx(120.0)


def test_timeline_ordering_respects_dependencies(finished_pipeline):
    grid, job_id = finished_pipeline
    njs = grid.usites["FZJ"].njs
    entries = job_timeline(njs, job_id)
    imp = next(e for e in entries if "import" in e.label)
    run = next(e for e in entries if "[run@" in e.label)
    exp = next(e for e in entries if "export" in e.label)
    assert imp.end <= run.start + 1e-9 or imp.end <= run.end
    assert run.end <= exp.start + 1e-9


def test_render_gantt_output(finished_pipeline):
    grid, job_id = finished_pipeline
    njs = grid.usites["FZJ"].njs
    text = render_gantt(job_timeline(njs, job_id))
    assert "#" in text
    assert "crunch" in text
    assert "successful" in text


def test_render_gantt_empty():
    assert render_gantt([]) == "(no timed entries)"


# ------------------------------------------------------------------ monitor
def test_grid_monitor_samples_all_vsites():
    grid = build_grid({"FZJ": ["FZJ-T3E"], "ZIB": ["ZIB-SP2"]}, seed=83)
    monitor = GridMonitor(grid, period_s=100.0, horizon_s=1000.0)
    grid.sim.run()
    vsites = {s.vsite for s in monitor.samples}
    assert vsites == {"FZJ-T3E", "ZIB-SP2"}
    series = monitor.series("FZJ-T3E")
    assert len(series) == 10  # t=0..900
    times = [s.time for s in series]
    assert times == sorted(times)


def test_grid_monitor_sees_load():
    from repro.grid import LocalLoadGenerator, WorkloadProfile
    from repro.simkernel import derive_rng

    grid = build_grid({"DWD": ["DWD-SX4"]}, seed=83)
    batch = grid.usites["DWD"].vsites["DWD-SX4"].batch
    LocalLoadGenerator(
        grid.sim, batch, derive_rng(83, "l"),
        arrival_rate_per_s=1 / 200.0,
        profile=WorkloadProfile(mean_runtime_s=3600.0, max_cpus=32),
        horizon_s=20_000.0,
    )
    monitor = GridMonitor(grid, period_s=500.0, horizon_s=20_000.0)
    grid.sim.run()
    assert monitor.peak_queue_depth()["DWD-SX4"] > 0
    assert 0.0 < monitor.mean_utilization()["DWD-SX4"] <= 1.0


def test_grid_monitor_validates_period():
    grid = build_grid({"FZJ": ["FZJ-T3E"]}, seed=83)
    with pytest.raises(ValueError):
        GridMonitor(grid, period_s=0)
