"""Unit tests for DNs, certificates, the CA, and the trust store."""

import pytest

from repro.security import (
    Certificate,
    CertificateAuthority,
    CertificateError,
    CertificateExpired,
    CertificateRevoked,
    CertificateStore,
    DistinguishedName,
    SignatureInvalid,
    UntrustedIssuer,
    Validity,
)
from repro.security.x509 import CertificateRole


@pytest.fixture(scope="module")
def ca():
    return CertificateAuthority(key_bits=384, seed=11)


@pytest.fixture(scope="module")
def user_cert(ca):
    dn = DistinguishedName(cn="Alice Adams", o="FZ Juelich", c="DE")
    cert, key = ca.issue(dn, role=CertificateRole.USER)
    return cert, key


# ----------------------------------------------------------------- DN
def test_dn_str_roundtrip():
    dn = DistinguishedName(cn="Alice", ou="ZAM", o="FZJ", l="Juelich", c="DE")
    assert DistinguishedName.parse(str(dn)) == dn


def test_dn_str_omits_empty_fields():
    dn = DistinguishedName(cn="Bob")
    assert str(dn) == "CN=Bob"


def test_dn_requires_cn():
    with pytest.raises(CertificateError):
        DistinguishedName(cn="")
    with pytest.raises(CertificateError):
        DistinguishedName.parse("O=FZJ, C=DE")


def test_dn_rejects_separator_chars():
    with pytest.raises(CertificateError):
        DistinguishedName(cn="evil, CN=admin")


def test_dn_parse_malformed():
    with pytest.raises(CertificateError):
        DistinguishedName.parse("CN=a, garbage")


def test_dn_is_hashable_and_ordered():
    a = DistinguishedName(cn="a")
    b = DistinguishedName(cn="b")
    assert len({a, b, DistinguishedName(cn="a")}) == 2
    assert a < b


# -------------------------------------------------------------- Validity
def test_validity_window():
    v = Validity(10.0, 20.0)
    assert v.contains(10.0) and v.contains(20.0) and v.contains(15.0)
    assert not v.contains(9.999) and not v.contains(20.001)
    assert v.lifetime == 10.0


def test_validity_rejects_inverted():
    with pytest.raises(CertificateError):
        Validity(20.0, 10.0)
    with pytest.raises(CertificateError):
        Validity(10.0, 10.0)


# ------------------------------------------------------------ Certificate
def test_issue_and_verify(ca, user_cert):
    cert, key = user_cert
    cert.verify_signature(ca.root_certificate.public_key)
    assert cert.role == CertificateRole.USER
    assert cert.public_key == key.public
    assert not cert.is_self_signed


def test_root_is_self_signed(ca):
    root = ca.root_certificate
    assert root.is_self_signed
    root.verify_signature(root.public_key)


def test_unknown_role_rejected(ca):
    with pytest.raises(CertificateError):
        Certificate(
            serial=1,
            subject=DistinguishedName(cn="x"),
            issuer=ca.dn,
            public_key=ca.root_certificate.public_key,
            validity=Validity(0, 1),
            role="wizard",
        )


def test_tampered_certificate_fails_signature(ca, user_cert):
    cert, _ = user_cert
    forged = Certificate(
        serial=cert.serial,
        subject=DistinguishedName(cn="Mallory"),  # changed subject
        issuer=cert.issuer,
        public_key=cert.public_key,
        validity=cert.validity,
        role=cert.role,
        signature=cert.signature,
    )
    with pytest.raises(SignatureInvalid):
        forged.verify_signature(ca.root_certificate.public_key)


def test_unsigned_certificate_rejected(ca, user_cert):
    cert, _ = user_cert
    unsigned = cert.with_signature(0)
    with pytest.raises(SignatureInvalid):
        unsigned.verify_signature(ca.root_certificate.public_key)


def test_expiry_check(ca):
    dn = DistinguishedName(cn="Shortlived")
    cert, _ = ca.issue(dn, role=CertificateRole.USER, not_before=100.0, lifetime=50.0)
    cert.check_validity(125.0)
    with pytest.raises(CertificateExpired):
        cert.check_validity(99.0)
    with pytest.raises(CertificateExpired):
        cert.check_validity(151.0)


def test_serials_unique(ca):
    c1, _ = ca.issue(DistinguishedName(cn="u1"), role=CertificateRole.USER)
    c2, _ = ca.issue(DistinguishedName(cn="u2"), role=CertificateRole.USER)
    assert c1.serial != c2.serial


def test_deterministic_issuance_per_subject():
    ca1 = CertificateAuthority(key_bits=384, seed=5)
    ca2 = CertificateAuthority(key_bits=384, seed=5)
    dn = DistinguishedName(cn="Determined User")
    cert1, key1 = ca1.issue(dn, role=CertificateRole.USER)
    cert2, key2 = ca2.issue(dn, role=CertificateRole.USER)
    assert key1.public == key2.public
    assert cert1.signature == cert2.signature


def test_extensions_are_signed(ca):
    dn = DistinguishedName(cn="Ext User")
    cert, _ = ca.issue(dn, role=CertificateRole.USER, extensions={"site": "FZJ"})
    tampered = Certificate(
        serial=cert.serial,
        subject=cert.subject,
        issuer=cert.issuer,
        public_key=cert.public_key,
        validity=cert.validity,
        role=cert.role,
        extensions={"site": "ZIB"},
        signature=cert.signature,
    )
    with pytest.raises(SignatureInvalid):
        tampered.verify_signature(ca.root_certificate.public_key)


def test_ca_refuses_direct_sub_ca(ca):
    with pytest.raises(CertificateError):
        ca.issue(DistinguishedName(cn="Evil CA"), role=CertificateRole.CA)


# ------------------------------------------------------------- revocation
def test_revocation(ca):
    cert, _ = ca.issue(DistinguishedName(cn="Revoked User"), role=CertificateRole.USER)
    assert not ca.is_revoked(cert)
    ca.revoke(cert, reason="key compromise")
    assert ca.is_revoked(cert)
    assert ca.crl[cert.serial] == "key compromise"


def test_revoke_foreign_certificate_rejected(ca):
    other_ca = CertificateAuthority(key_bits=384, seed=77)
    cert, _ = other_ca.issue(DistinguishedName(cn="Foreign"), role=CertificateRole.USER)
    with pytest.raises(CertificateError):
        ca.revoke(cert)


# ------------------------------------------------------------- trust store
def test_store_validates_good_certificate(ca, user_cert):
    cert, _ = user_cert
    store = CertificateStore(trusted=[ca])
    store.validate(cert, now=100.0)


def test_store_rejects_untrusted_issuer(user_cert):
    cert, _ = user_cert
    store = CertificateStore()  # trusts nobody
    with pytest.raises(UntrustedIssuer):
        store.validate(cert, now=100.0)


def test_store_rejects_revoked(ca):
    cert, _ = ca.issue(DistinguishedName(cn="ToRevoke"), role=CertificateRole.USER)
    store = CertificateStore(trusted=[ca])
    store.validate(cert, now=1.0)
    ca.revoke(cert)
    with pytest.raises(CertificateRevoked):
        store.validate(cert, now=1.0)


def test_store_rejects_expired(ca):
    cert, _ = ca.issue(
        DistinguishedName(cn="Expired"), role=CertificateRole.USER, lifetime=10.0
    )
    store = CertificateStore(trusted=[ca])
    with pytest.raises(CertificateExpired):
        store.validate(cert, now=11.0)


def test_store_lists_trusted_issuers(ca):
    store = CertificateStore(trusted=[ca])
    assert str(ca.dn) in store.trusted_issuers
