"""Unit + integration tests for the Codine internal job-control layer."""

import pytest

from repro.batch.base import BatchJobSpec, BatchState
from repro.resources import ResourceSet
from repro.server.njs.codine_layer import CodineJobControl


def spec(name="j", queue="batch"):
    return BatchJobSpec(
        name=name, owner="u", queue=queue, script="#$ -N x\n",
        resources=ResourceSet(cpus=4, time_s=600),
    )


def test_register_produces_codine_format():
    control = CodineJobControl()
    record = control.register("U1@FZJ", "act1", "FZJ-T3E", spec(), now=0.0)
    assert record.state == "qw"
    assert "#$ -N j" in record.internal_script
    assert "#$ -q batch" in record.internal_script
    assert "destination: FZJ-T3E" in record.internal_script
    assert record.history == [(0.0, "qw")]


def test_state_transitions_mirror_vendor_lifecycle():
    control = CodineJobControl()
    control.register("U1@FZJ", "act1", "V", spec(), now=0.0)
    assert control.transition("act1", BatchState.RUNNING, 5.0) == "r"
    assert control.transition("act1", BatchState.DONE, 50.0) == "d"
    record = control.for_action("act1")
    assert [s for _, s in record.history] == ["qw", "r", "d"]


def test_failed_and_cancelled_map_to_error_state():
    control = CodineJobControl()
    control.register("U1@FZJ", "a", "V", spec(), now=0.0)
    control.register("U1@FZJ", "b", "V", spec(), now=0.0)
    assert control.transition("a", BatchState.FAILED, 1.0) == "Eqw"
    assert control.transition("b", BatchState.CANCELLED, 1.0) == "Eqw"


def test_qstat_and_in_flight():
    control = CodineJobControl()
    control.register("U1@FZJ", "a", "V1", spec("one"), now=0.0)
    control.register("U2@FZJ", "b", "V2", spec("two"), now=0.0)
    control.transition("a", BatchState.DONE, 9.0)
    listing = control.qstat()
    assert len(listing) == 2
    assert control.in_flight() == 1
    assert len(control) == 2


def test_unknown_action_raises():
    with pytest.raises(KeyError):
        CodineJobControl().for_action("ghost")


def test_vendor_binding():
    control = CodineJobControl()
    control.register("U1@FZJ", "a", "V", spec(), now=0.0)
    control.bind_vendor_job("a", "fzj-t3e.7")
    assert control.for_action("a").vendor_job_id == "fzj-t3e.7"


def test_njs_routes_every_job_through_codine():
    """End to end: the NJS's Codine ledger matches the vendor batch log."""
    from repro.client import JobMonitorController, JobPreparationAgent
    from repro.grid import build_grid

    grid = build_grid({"FZJ": ["FZJ-T3E"]}, seed=53)
    user = grid.add_user("Codine", logins={"FZJ": "cod"})
    session = grid.connect_user(user, "FZJ")
    jpa = JobPreparationAgent(session)
    jmc = JobMonitorController(session)
    job = jpa.new_job("ledgered", vsite="FZJ-T3E")
    a = job.script_task("a", script="#!/bin/sh\nx\n", simulated_runtime_s=10.0)
    b = job.script_task("b", script="#!/bin/sh\nx\n", simulated_runtime_s=10.0)
    job.depends(a, b)

    def scenario(sim):
        job_id = yield from jpa.submit(job)
        yield from jmc.wait_for_completion(job_id)
        return job_id

    p = grid.sim.process(scenario(grid.sim))
    job_id = grid.sim.run(until=p)
    njs = grid.usites["FZJ"].njs
    assert len(njs.codine) == 2
    assert njs.codine.in_flight() == 0
    states = {s for _, _, s, _ in njs.codine.qstat()}
    assert states == {"d"}
    # Vendor ids bound for both.
    assert njs.codine.for_action(a.id).vendor_job_id.startswith("fzj-t3e.")
