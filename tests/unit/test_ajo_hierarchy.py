"""Figure 3 reproduction: assert the exact AJO class hierarchy."""

import pytest

from repro.ajo import (
    AbstractAction,
    AbstractJobObject,
    AbstractService,
    AbstractTaskObject,
    CompileTask,
    ControlService,
    ExecuteScriptTask,
    ExecuteTask,
    ExportTask,
    FileTask,
    ImportTask,
    LinkTask,
    ListService,
    QueryService,
    TransferTask,
    UserTask,
)


def test_figure3_top_level():
    """AbstractAction has exactly the three Figure 3 branches."""
    assert issubclass(AbstractJobObject, AbstractAction)
    assert issubclass(AbstractTaskObject, AbstractAction)
    assert issubclass(AbstractService, AbstractAction)
    # The branches are siblings, not nested.
    assert not issubclass(AbstractTaskObject, AbstractJobObject)
    assert not issubclass(AbstractService, AbstractTaskObject)


def test_figure3_execute_branch():
    for cls in (CompileTask, LinkTask, UserTask, ExecuteScriptTask):
        assert issubclass(cls, ExecuteTask)
        assert issubclass(cls, AbstractTaskObject)
    assert issubclass(ExecuteTask, AbstractTaskObject)


def test_figure3_file_branch():
    for cls in (ImportTask, ExportTask, TransferTask):
        assert issubclass(cls, FileTask)
        assert issubclass(cls, AbstractTaskObject)
    assert not issubclass(FileTask, ExecuteTask)


def test_figure3_service_branch():
    for cls in (ControlService, ListService, QueryService):
        assert issubclass(cls, AbstractService)
        assert not issubclass(cls, AbstractTaskObject)


def test_every_concrete_action_has_distinct_type_tag():
    concrete = [
        AbstractJobObject, UserTask, ExecuteScriptTask, CompileTask, LinkTask,
        ImportTask, ExportTask, TransferTask, ControlService, ListService,
        QueryService,
    ]
    tags = [cls.type_tag for cls in concrete]
    assert len(tags) == len(set(tags))


def test_outcome_association_covers_hierarchy():
    """Section 5.3: Outcome has a subclass associated with each action type."""
    from repro.ajo import (
        AJOOutcome,
        FileOutcome,
        ServiceOutcome,
        TaskOutcome,
        outcome_class_for,
    )

    job = AbstractJobObject("j", vsite="V")
    assert outcome_class_for(job) is AJOOutcome
    assert outcome_class_for(UserTask("t", executable="a.out")) is TaskOutcome
    assert outcome_class_for(CompileTask("c", sources=["m.f90"])) is TaskOutcome
    assert (
        outcome_class_for(ImportTask("i", source_path="a", destination_path="b"))
        is FileOutcome
    )
    assert (
        outcome_class_for(
            TransferTask("t", source_path="a", destination_path="b",
                         destination_usite="ZIB")
        )
        is FileOutcome
    )
    assert outcome_class_for(ListService("l")) is ServiceOutcome
    assert outcome_class_for(QueryService("q", target_job_id="x")) is ServiceOutcome


def test_action_requires_name():
    with pytest.raises(ValueError):
        AbstractJobObject("")


def test_action_ids_unique_and_prefixed():
    a = UserTask("a", executable="x")
    b = UserTask("b", executable="x")
    assert a.id != b.id
    assert a.id.startswith("use")


def test_action_equality_by_payload():
    a = UserTask("same", executable="x", action_id="fixed")
    b = UserTask("same", executable="x", action_id="fixed")
    c = UserTask("same", executable="y", action_id="fixed")
    assert a == b
    assert a != c
