"""Unit tests for the fault-injection subsystem: plans and the breaker."""

import pytest

from repro.faults import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    CircuitOpenError,
    FaultKind,
    FaultPlan,
    FaultTargets,
)
from repro.simkernel import Simulator

TARGETS = FaultTargets(
    wan_links=("gw.a|gw.b", "gw.a|gw.c", "gw.b|gw.c"),
    usites=("A", "B", "C"),
    vsites=("A/A-T3E", "B/B-SP2", "C/C-VPP"),
)


# -- FaultPlan ---------------------------------------------------------------
def test_same_seed_same_schedule():
    p1 = FaultPlan.generate(TARGETS, intensity=1.0, seed=5, horizon_s=7200.0)
    p2 = FaultPlan.generate(TARGETS, intensity=1.0, seed=5, horizon_s=7200.0)
    assert len(p1) > 0
    assert p1.events == p2.events


def test_different_seed_different_schedule():
    p1 = FaultPlan.generate(TARGETS, intensity=1.0, seed=5, horizon_s=7200.0)
    p2 = FaultPlan.generate(TARGETS, intensity=1.0, seed=6, horizon_s=7200.0)
    assert p1.events != p2.events


def test_zero_intensity_is_empty():
    plan = FaultPlan.generate(TARGETS, intensity=0.0, seed=5)
    assert len(plan) == 0


def test_negative_intensity_rejected():
    with pytest.raises(ValueError):
        FaultPlan.generate(TARGETS, intensity=-0.5, seed=5)


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        FaultPlan.generate(TARGETS, seed=5, kinds=["meteor_strike"])


def test_kinds_filter_restricts_schedule():
    plan = FaultPlan.generate(
        TARGETS, intensity=2.0, seed=5, horizon_s=7200.0,
        kinds=[FaultKind.NJS_CRASH],
    )
    assert len(plan) > 0
    assert all(ev.kind == FaultKind.NJS_CRASH for ev in plan)
    # Crash targets are Usites.
    assert all(ev.target in TARGETS.usites for ev in plan)


def test_adding_a_target_preserves_existing_streams():
    """Per-(kind, target) RNG streams: growing the grid is non-perturbing."""
    grown = FaultTargets(
        wan_links=TARGETS.wan_links + ("gw.a|gw.d",),
        usites=TARGETS.usites + ("D",),
        vsites=TARGETS.vsites + ("D/D-SX4",),
    )
    base = FaultPlan.generate(TARGETS, intensity=1.0, seed=5, horizon_s=7200.0)
    more = FaultPlan.generate(grown, intensity=1.0, seed=5, horizon_s=7200.0)
    old_targets = set(TARGETS.wan_links) | set(TARGETS.usites) | set(TARGETS.vsites)
    kept = tuple(ev for ev in more if ev.target in old_targets)
    assert kept == base.events


def test_events_sorted_and_recover_inside_horizon():
    plan = FaultPlan.generate(TARGETS, intensity=2.0, seed=9, horizon_s=3600.0)
    times = [ev.at_s for ev in plan]
    assert times == sorted(times)
    for ev in plan:
        assert 0.0 < ev.at_s < plan.horizon_s
        assert ev.ends_at_s < plan.horizon_s


# -- CircuitBreaker ----------------------------------------------------------
def test_breaker_opens_after_threshold():
    sim = Simulator()
    br = CircuitBreaker(sim, failure_threshold=3, cooldown_s=60.0)
    assert br.state == CLOSED
    br.record_failure()
    br.record_failure()
    assert br.state == CLOSED
    br.check()  # still closed: no exception
    br.record_failure()
    assert br.state == OPEN
    with pytest.raises(CircuitOpenError):
        br.check()
    assert br.rejections == 1


def test_success_resets_consecutive_failures():
    sim = Simulator()
    br = CircuitBreaker(sim, failure_threshold=2)
    br.record_failure()
    br.record_success()
    br.record_failure()
    assert br.state == CLOSED


def test_breaker_half_open_probe_closes_on_success():
    sim = Simulator()
    br = CircuitBreaker(sim, failure_threshold=1, cooldown_s=60.0)
    br.record_failure()
    assert br.state == OPEN
    sim.run(until=61.0)
    br.check()  # cooldown elapsed: probe allowed
    assert br.state == HALF_OPEN
    br.record_success()
    assert br.state == CLOSED
    assert [s for _, s in br.transitions] == [OPEN, HALF_OPEN, CLOSED]


def test_breaker_half_open_probe_reopens_on_failure():
    sim = Simulator()
    br = CircuitBreaker(sim, failure_threshold=1, cooldown_s=60.0)
    br.record_failure()
    sim.run(until=61.0)
    br.check()
    assert br.state == HALF_OPEN
    br.record_failure()
    assert br.state == OPEN
    with pytest.raises(CircuitOpenError):
        br.check()


def test_breaker_transition_timestamps_use_sim_time():
    sim = Simulator()
    br = CircuitBreaker(sim, failure_threshold=1, cooldown_s=10.0)
    sim.run(until=5.0)
    br.record_failure()
    assert br.transitions == [(5.0, OPEN)]
    sim.run(until=20.0)
    br.check()
    assert br.transitions[-1] == (20.0, HALF_OPEN)
