"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.simkernel import Interrupt, ProcessDied, Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_clock_custom_start():
    assert Simulator(start=100.0).now == 100.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(5.0)
    sim.run()
    assert sim.now == 5.0


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    for delay in (3.0, 1.0, 2.0):
        ev = sim.timeout(delay, value=delay)
        ev.callbacks.append(lambda e: order.append(e.value))
    sim.run()
    assert order == [1.0, 2.0, 3.0]


def test_equal_time_events_fifo():
    sim = Simulator()
    order = []
    for i in range(10):
        ev = sim.timeout(1.0, value=i)
        ev.callbacks.append(lambda e: order.append(e.value))
    sim.run()
    assert order == list(range(10))


def test_run_until_time_stops_clock_exactly():
    sim = Simulator()
    fired = []
    sim.timeout(10.0).callbacks.append(lambda e: fired.append(True))
    sim.run(until=4.0)
    assert sim.now == 4.0
    assert not fired
    sim.run(until=20.0)
    assert fired
    assert sim.now == 20.0


def test_run_until_past_time_rejected():
    sim = Simulator()
    sim.run(until=5.0)
    with pytest.raises(ValueError):
        sim.run(until=1.0)


def test_run_until_event_returns_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(2.0)
        return "done"

    p = sim.process(proc(sim))
    assert sim.run(until=p) == "done"
    assert sim.now == 2.0


def test_run_until_never_triggered_event_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(RuntimeError, match="drained"):
        sim.run(until=ev)


def test_process_sequencing():
    sim = Simulator()
    log = []

    def worker(sim, name, delay):
        yield sim.timeout(delay)
        log.append((sim.now, name))

    sim.process(worker(sim, "a", 2.0))
    sim.process(worker(sim, "b", 1.0))
    sim.run()
    assert log == [(1.0, "b"), (2.0, "a")]


def test_process_waits_on_process():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(3.0)
        return 42

    def parent(sim):
        value = yield sim.process(child(sim))
        return value + 1

    p = sim.process(parent(sim))
    assert sim.run(until=p) == 43


def test_process_exception_propagates_to_waiter():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1.0)
        raise ValueError("boom")

    def parent(sim):
        try:
            yield sim.process(bad(sim))
        except ValueError as err:
            return f"caught {err}"

    p = sim.process(parent(sim))
    assert sim.run(until=p) == "caught boom"


def test_unhandled_process_exception_surfaces():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1.0)
        raise ValueError("boom")

    sim.process(bad(sim))
    with pytest.raises(ValueError, match="boom"):
        sim.run()


def test_yield_non_event_is_error():
    sim = Simulator()

    def bad(sim):
        yield 5

    p = sim.process(bad(sim))
    with pytest.raises(TypeError, match="not an.*Event"):
        sim.run(until=p)


def test_process_requires_generator():
    sim = Simulator()

    def not_a_generator(sim):
        return 1

    with pytest.raises(TypeError, match="generator"):
        sim.process(not_a_generator(sim))


def test_event_succeed_once_only():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)


def test_event_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_event_value_before_trigger_is_error():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(RuntimeError):
        _ = ev.value
    with pytest.raises(RuntimeError):
        _ = ev.ok


def test_interrupt_wakes_process_early():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
            log.append("slept full")
        except Interrupt as intr:
            log.append(("interrupted", sim.now, intr.cause))

    def interrupter(sim, victim):
        yield sim.timeout(5.0)
        victim.interrupt(cause="wake up")

    victim = sim.process(sleeper(sim))
    sim.process(interrupter(sim, victim))
    sim.run()
    assert log == [("interrupted", 5.0, "wake up")]


def test_interrupt_dead_process_raises():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1.0)

    p = sim.process(quick(sim))
    sim.run()
    with pytest.raises(ProcessDied):
        p.interrupt()


def test_all_of_waits_for_everything():
    sim = Simulator()

    def proc(sim):
        t1 = sim.timeout(1.0, value="one")
        t2 = sim.timeout(3.0, value="three")
        results = yield t1 & t2
        return sorted(results.values())

    p = sim.process(proc(sim))
    assert sim.run(until=p) == ["one", "three"]
    assert sim.now == 3.0


def test_any_of_fires_on_first():
    sim = Simulator()

    def proc(sim):
        t1 = sim.timeout(1.0, value="fast")
        t2 = sim.timeout(3.0, value="slow")
        results = yield t1 | t2
        return list(results.values())

    p = sim.process(proc(sim))
    assert sim.run(until=p) == ["fast"]
    assert sim.now == 1.0


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    ev = sim.all_of([])
    assert ev.triggered


def test_condition_rejects_foreign_events():
    sim1, sim2 = Simulator(), Simulator()
    with pytest.raises(ValueError):
        sim1.all_of([sim1.timeout(1), sim2.timeout(1)])


def test_schedule_callback():
    sim = Simulator()
    hits = []
    sim.schedule_callback(2.5, hits.append, "x")
    sim.run()
    assert hits == ["x"]
    assert sim.now == 2.5


def test_schedule_callback_counts_as_event():
    sim = Simulator()
    sim.schedule_callback(1.0, lambda: None)
    sim.schedule_callback(2.0, lambda: None)
    sim.run()
    assert sim.processed_events == 2
    assert sim.events_processed == 2


def test_schedule_callback_cancel():
    sim = Simulator()
    hits = []
    slot = sim.schedule_callback(1.0, hits.append, "dropped")
    sim.schedule_callback(2.0, hits.append, "kept")
    slot.cancel()
    sim.run()
    assert hits == ["kept"]
    # A cancelled slot is skipped, not processed.
    assert sim.processed_events == 1


def test_callbacks_interleave_with_events_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule_callback(2.0, order.append, "cb@2")
    ev = sim.timeout(1.0, value="ev@1")
    ev.callbacks.append(lambda e: order.append(e.value))
    sim.schedule_callback(3.0, order.append, "cb@3")
    sim.run()
    assert order == ["ev@1", "cb@2", "cb@3"]


def test_run_until_idle_drains_queue():
    sim = Simulator()
    hits = []

    def reschedule(depth):
        hits.append(depth)
        if depth < 3:
            sim.schedule_callback(1.0, reschedule, depth + 1)

    sim.schedule_callback(1.0, reschedule, 0)
    processed = sim.run_until_idle()
    assert hits == [0, 1, 2, 3]
    assert processed == 4
    assert sim.now == 4.0
    assert sim.peek() == float("inf")


def test_run_until_idle_max_events():
    sim = Simulator()
    for _ in range(10):
        sim.schedule_callback(1.0, lambda: None)
    assert sim.run_until_idle(max_events=4) == 4
    assert sim.run_until_idle() == 6


def test_run_until_idle_runs_processes():
    sim = Simulator()
    log = []

    def worker(sim):
        yield sim.timeout(2.0)
        log.append(sim.now)
        return "ok"

    sim.process(worker(sim))
    sim.run_until_idle()
    assert log == [2.0]


def test_run_until_idle_propagates_failures():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1.0)
        raise ValueError("boom")

    sim.process(bad(sim))
    with pytest.raises(ValueError, match="boom"):
        sim.run_until_idle()


def test_profile_hook():
    sim = Simulator()
    for i in range(4):
        sim.timeout(float(i + 1))
    sim.schedule_callback(5.0, lambda: None)
    prof = sim.profile()
    assert prof["heap_size"] == 5
    assert prof["peak_heap_size"] == 5
    assert prof["events_processed"] == 0
    sim.run()
    prof = sim.profile()
    assert prof["now"] == 5.0
    assert prof["heap_size"] == 0
    assert prof["peak_heap_size"] == 5
    assert prof["events_processed"] == 5
    assert prof["callbacks_run"] == 1


def test_step_on_empty_queue_raises():
    with pytest.raises(RuntimeError):
        Simulator().step()


def test_peek():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(7.0)
    assert sim.peek() == 7.0


def test_processed_events_counter():
    sim = Simulator()
    for _ in range(5):
        sim.timeout(1.0)
    sim.run()
    assert sim.processed_events == 5


def test_yield_already_processed_event():
    sim = Simulator()

    def proc(sim):
        t = sim.timeout(1.0, value="early")
        yield sim.timeout(5.0)
        # t fired long ago; yielding it must return immediately with value
        value = yield t
        return (sim.now, value)

    p = sim.process(proc(sim))
    assert sim.run(until=p) == (5.0, "early")


def test_timeout_carries_value():
    sim = Simulator()

    def proc(sim):
        v = yield sim.timeout(1.0, value=99)
        return v

    p = sim.process(proc(sim))
    assert sim.run(until=p) == 99


def test_repr_smoke():
    sim = Simulator()
    ev = sim.event(name="myevent")
    assert "myevent" in repr(ev)
    assert "Simulator" in repr(sim)
    ev.succeed()
    assert "triggered" in repr(ev)
