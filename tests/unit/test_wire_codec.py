"""The socket framing codec: every payload the protocol sends must
round-trip a frame byte-exact, and garbage must fail as FrameDecodeError
(code ``net.frame_decode``) rather than a bare struct.error."""

import pytest

from repro.net.errors import FrameDecodeError
from repro.net.wire import (
    FTYPE_HELLO,
    FTYPE_MSG,
    HEADER,
    MAGIC,
    MAX_BODY,
    VERSION,
    WireMessage,
    decode_frame,
    encode_hello,
    encode_message,
)
from repro.protocol.messages import Reply, Request


def _roundtrip(payload):
    frame = encode_message(
        msg_id=7, sender="ws", recipient="gw", payload=payload,
        size_bytes=123, channel="ctl", deliver=True,
    )
    magic, version, ftype, length = HEADER.unpack(frame[:HEADER.size])
    assert (magic, version, ftype) == (MAGIC, VERSION, FTYPE_MSG)
    assert length == len(frame) - HEADER.size
    wm = decode_frame(ftype, frame[HEADER.size:])
    assert isinstance(wm, WireMessage)
    assert (wm.msg_id, wm.sender, wm.recipient) == (7, "ws", "gw")
    assert (wm.channel, wm.size_bytes, wm.deliver) == ("ctl", 123, True)
    return wm.payload


@pytest.mark.parametrize("payload", [
    None,
    True,
    False,
    0,
    -1,
    2**40,
    -(2**40),
    3.25,
    "",
    "ünïcode text",
    b"",
    b"\x00\xffbinary",
    [1, "two", None],
    (b"stream", 4, False),
    {"k": [1.5, (True,)], "nested": {"a": None}},
])
def test_scalar_and_container_payloads_roundtrip(payload):
    assert _roundtrip(payload) == payload


def test_tuple_and_list_stay_distinct():
    assert _roundtrip((1, 2)) == (1, 2)
    assert isinstance(_roundtrip((1, 2)), tuple)
    assert isinstance(_roundtrip([1, 2]), list)


def test_request_roundtrips_with_request_id():
    req = Request(
        kind="consign_job", user_dn="CN=Alice", payload=b'{"x": 1}',
        vsite="FZJ-T3E", trace_id="t-1", parent_span_id="s-0",
    )
    got = _roundtrip(req)
    assert isinstance(got, Request)
    # Correlation id must survive the socket, not be re-allocated.
    assert got.request_id == req.request_id
    assert (got.kind, got.user_dn, got.vsite) == (
        req.kind, req.user_dn, req.vsite)
    assert got.payload == b'{"x": 1}'
    assert (got.trace_id, got.parent_span_id) == ("t-1", "s-0")


def test_reply_roundtrips():
    rep = Reply(request_id=99, ok=False, payload=None,
                error="boom", error_code="njs.down")
    got = _roundtrip(rep)
    assert isinstance(got, Reply)
    assert (got.request_id, got.ok) == (99, False)
    assert (got.error, got.error_code) == ("boom", "njs.down")


def test_hello_roundtrips():
    frame = encode_hello("ws:Clara Grid")
    _, _, ftype, _ = HEADER.unpack(frame[:HEADER.size])
    assert ftype == FTYPE_HELLO
    assert decode_frame(ftype, frame[HEADER.size:]) == "ws:Clara Grid"


def test_unencodable_type_is_a_programming_error():
    with pytest.raises(TypeError):
        encode_message(1, "a", "b", object(), 0, "ctl", True)


def test_unknown_tag_raises_frame_decode_error():
    frame = encode_message(1, "a", "b", None, 0, "ctl", True)
    body = bytearray(frame[HEADER.size:])
    body[-1] = 0xEE  # the payload tag byte
    with pytest.raises(FrameDecodeError) as ei:
        decode_frame(FTYPE_MSG, bytes(body))
    assert ei.value.code == "net.frame_decode"


def test_truncated_body_raises_frame_decode_error():
    frame = encode_message(1, "a", "b", b"x" * 32, 0, "ctl", True)
    with pytest.raises(FrameDecodeError):
        decode_frame(FTYPE_MSG, frame[HEADER.size:-5])


def test_trailing_bytes_raise_frame_decode_error():
    frame = encode_message(1, "a", "b", None, 0, "ctl", True)
    with pytest.raises(FrameDecodeError, match="trailing"):
        decode_frame(FTYPE_MSG, frame[HEADER.size:] + b"\x00")


def test_unknown_frame_type_raises():
    with pytest.raises(FrameDecodeError, match="frame type"):
        decode_frame(42, b"")


def test_invalid_hello_utf8_raises():
    with pytest.raises(FrameDecodeError, match="HELLO"):
        decode_frame(FTYPE_HELLO, b"\xff\xfe")


def test_stream_reader_framing():
    """read_frames: back-to-back frames parse; garbage headers raise."""
    import asyncio

    from repro.net.wire import read_frames

    async def collect(data):
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return [frame async for frame in read_frames(reader)]

    hello = encode_hello("ws")
    msg = encode_message(5, "ws", "gw", "ping", 10, "ctl", True)
    frames = asyncio.run(collect(hello + msg))
    assert [f[0] for f in frames] == [FTYPE_HELLO, FTYPE_MSG]

    with pytest.raises(FrameDecodeError, match="magic"):
        asyncio.run(collect(b"XX" + hello[2:]))
    with pytest.raises(FrameDecodeError, match="version"):
        asyncio.run(collect(HEADER.pack(MAGIC, 9, FTYPE_HELLO, 0)))
    with pytest.raises(FrameDecodeError, match="mid-header"):
        asyncio.run(collect(hello[:4]))
    with pytest.raises(FrameDecodeError, match="mid-body"):
        asyncio.run(collect(msg[:-3]))
    with pytest.raises(FrameDecodeError, match="exceeds"):
        asyncio.run(collect(HEADER.pack(MAGIC, VERSION, FTYPE_MSG,
                                        MAX_BODY + 1)))
