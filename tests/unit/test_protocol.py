"""Unit tests for the high-level protocol: async client, sync baseline."""

import pytest

from repro.net import Network, establish_https
from repro.protocol import (
    AsyncProtocolClient,
    Reply,
    ReplyRouter,
    Request,
    RetryExhausted,
    RetryPolicy,
    SyncProtocolClient,
)
from repro.security import CertificateAuthority, CertificateStore, DistinguishedName
from repro.security.x509 import CertificateRole
from repro.simkernel import Simulator


@pytest.fixture(scope="module")
def pki():
    ca = CertificateAuthority(key_bits=384, seed=41)
    store = CertificateStore(trusted=[ca])
    c_cert, c_key = ca.issue(DistinguishedName(cn="Client"), role=CertificateRole.USER)
    s_cert, s_key = ca.issue(
        DistinguishedName(cn="gw.site"), role=CertificateRole.SERVER
    )
    return dict(
        client_cert=c_cert, client_key=c_key,
        server_cert=s_cert, server_key=s_key,
        client_store=store, server_store=store,
    )


def build(pki, loss=0.0, seed=0, **client_kw):
    """A client + trivial ack server over a lossy link."""
    sim = Simulator()
    net = Network(sim, seed=seed)
    net.add_host("client")
    net.add_host("server")
    # Establish on a clean link (TCP retransmits handshake segments on a
    # real network), then inject the application-visible loss rate.
    net.link("client", "server", latency_s=0.01, bandwidth_Bps=1e6)

    state = {}

    def wiring(sim):
        channel = yield from establish_https(sim, net, "client", "server", **pki)
        state["channel"] = channel
        router = ReplyRouter(sim, net.host("client"))
        state["client"] = AsyncProtocolClient(sim, channel, router, **client_kw)

    p = sim.process(wiring(sim))
    sim.run(until=p)
    net.get_link("client", "server").loss_probability = loss
    net.get_link("server", "client").loss_probability = loss

    def server_loop(sim):
        host = net.host("server")
        seen = set()
        while True:
            message = yield host.receive()
            request = message.payload
            if not isinstance(request, Request):
                continue
            if request.request_id in seen:
                continue  # idempotent consign: duplicate suppressed
            seen.add(request.request_id)
            reply = Reply(
                request_id=request.request_id, ok=True,
                payload=b"ack:" + request.payload[:16],
            )
            state["channel"].send(reply, reply.wire_size, to_server=False)

    sim.process(server_loop(sim))
    return sim, net, state["client"]


# -------------------------------------------------------------- messages
def test_request_validates_kind_and_payload():
    with pytest.raises(ValueError):
        Request(kind="teleport", user_dn="CN=x", payload=b"")
    with pytest.raises(TypeError):
        Request(kind="query", user_dn="CN=x", payload="text")


def test_request_ids_increase():
    a = Request(kind="query", user_dn="CN=x", payload=b"")
    b = Request(kind="query", user_dn="CN=x", payload=b"")
    assert b.request_id > a.request_id


def test_wire_size_includes_envelope():
    r = Request(kind="query", user_dn="CN=x", payload=b"12345")
    assert r.wire_size == 256 + 5
    assert Reply(request_id=1, ok=True, payload=b"123").wire_size == 256 + 3


# ------------------------------------------------------------------ retry
def test_retry_policy_backoff_capped():
    p = RetryPolicy(max_attempts=5, base_delay_s=1.0, backoff_factor=2.0,
                    max_delay_s=5.0)
    assert [p.delay_for(i) for i in (1, 2, 3, 4)] == [1.0, 2.0, 4.0, 5.0]


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_factor=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay_s=-1)
    with pytest.raises(ValueError):
        RetryPolicy().delay_for(0)


def test_retry_policy_rejects_non_positive_attempts():
    """Attempt numbering is 1-based; zero and negatives are caller bugs."""
    policy = RetryPolicy()
    for attempt in (0, -1, -3):
        with pytest.raises(ValueError, match="1-based"):
            policy.delay_for(attempt)
    assert policy.delay_for(1) == policy.base_delay_s


# ----------------------------------------------------------------- async
def test_async_interaction_lossless(pki):
    sim, net, client = build(pki)

    def user(sim):
        reply = yield from client.consign(b"AJO-BYTES", user_dn="CN=Client")
        return reply

    p = sim.process(user(sim))
    reply = sim.run(until=p)
    assert reply.ok
    assert reply.payload == b"ack:AJO-BYTES"
    assert client.requests_sent == 1
    assert client.retries == 0


def test_async_interaction_retries_through_loss(pki):
    sim, net, client = build(
        pki, loss=0.4, seed=11,
        retry=RetryPolicy(max_attempts=50, base_delay_s=0.5, max_delay_s=2.0),
    )

    def user(sim):
        reply = yield from client.consign(b"JOB", user_dn="CN=Client")
        return reply

    p = sim.process(user(sim))
    reply = sim.run(until=p)
    assert reply.ok
    assert client.requests_sent >= 1


def test_async_gives_up_after_policy(pki):
    sim, net, client = build(
        pki, loss=0.999, seed=5,
        retry=RetryPolicy(max_attempts=3, base_delay_s=0.1),
    )

    def user(sim):
        yield from client.consign(b"JOB", user_dn="CN=Client")

    p = sim.process(user(sim))
    with pytest.raises(RetryExhausted):
        sim.run(until=p)
    assert client.retries == 3


def test_poll_until_terminal(pki):
    sim, net, client = build(pki, poll_interval_s=1.0)
    polls = []

    def is_done(reply):
        polls.append(reply)
        return len(polls) >= 3  # "terminal" on the third poll

    def user(sim):
        reply = yield from client.poll_until(
            make_query=lambda: b"status?", user_dn="CN=Client", is_done=is_done
        )
        return reply

    p = sim.process(user(sim))
    reply = sim.run(until=p)
    assert reply.ok
    assert len(polls) == 3
    assert client.requests_sent == 3


def test_router_rejects_duplicate_expectation(pki):
    sim, net, client = build(pki)
    client.router.expect(9999)
    with pytest.raises(ValueError):
        client.router.expect(9999)


# ------------------------------------------------------------------- sync
def _sync_client(pki, loss, seed, job_duration=60.0, attempts=3):
    sim = Simulator()
    net = Network(sim, seed=seed)
    net.add_host("client")
    net.add_host("server")
    net.link("client", "server", latency_s=0.01, bandwidth_Bps=1e6)
    state = {}

    def wiring(sim):
        channel = yield from establish_https(sim, net, "client", "server", **pki)
        state["sync"] = SyncProtocolClient(
            sim, channel, retry=RetryPolicy(max_attempts=attempts, base_delay_s=0.1)
        )

    p = sim.process(wiring(sim))
    sim.run(until=p)
    net.get_link("client", "server").loss_probability = loss
    net.get_link("server", "client").loss_probability = loss
    return sim, state["sync"]


def test_sync_completes_on_clean_link(pki):
    sim, sync = _sync_client(pki, loss=0.0, seed=0)

    def user(sim):
        reply = yield from sync.submit_and_hold(
            b"JOB", user_dn="CN=Client", job_duration_s=60.0
        )
        return reply

    p = sim.process(user(sim))
    reply = sim.run(until=p)
    assert reply.ok
    assert sync.interactions_started == 1
    assert sync.interactions_broken == 0
    # Interaction spans the whole job duration.
    assert sim.now >= 60.0


def test_sync_breaks_under_loss_where_async_survives(pki):
    """The paper's robustness claim, in miniature: same loss rate, the
    sync interaction (≈25 messages over 60s) dies while short async
    interactions retried independently get through."""
    loss = 0.10

    sim, sync = _sync_client(pki, loss=loss, seed=3, attempts=2)

    def sync_user(sim):
        yield from sync.submit_and_hold(b"JOB", "CN=Client", job_duration_s=60.0)

    p = sim.process(sync_user(sim))
    with pytest.raises(RetryExhausted):
        sim.run(until=p)
    assert sync.interactions_broken == 2

    sim2, net2, async_client = build(
        pki, loss=loss, seed=3,
        retry=RetryPolicy(max_attempts=20, base_delay_s=0.2, max_delay_s=1.0),
    )

    def async_user(sim):
        reply = yield from async_client.consign(b"JOB", user_dn="CN=Client")
        return reply

    p2 = sim2.process(async_user(sim2))
    assert sim2.run(until=p2).ok
