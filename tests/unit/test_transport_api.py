"""The pluggable transport surface: spec parsing, the backend registry,
facade/backend mismatch guards, and the warn-once shim for the moved
simkernel classes."""

import warnings

import pytest

from repro.api import GridSession
from repro.api.aio import AsyncGridSession
from repro.grid.build import build_grid
from repro.net.errors import NetworkError, TransportMismatch
from repro.net.transport import (
    Transport,
    TransportSpec,
    available_transports,
    register_transport,
    resolve_transport,
)


def _grid(transport=None):
    grid = build_grid({"FZJ": ["FZJ-T3E"]}, seed=3, transport=transport)
    grid.add_user("Alice Debye", logins={"FZJ": "alice"})
    return grid


# -- TransportSpec ------------------------------------------------------------

def test_spec_parse_accepts_none_name_and_spec():
    assert TransportSpec.parse(None) == TransportSpec("sim", {})
    assert TransportSpec.parse("aio").kind == "aio"
    spec = TransportSpec("aio", {"port": 9423})
    assert TransportSpec.parse(spec) is spec


def test_spec_parse_rejects_other_types():
    with pytest.raises(TypeError):
        TransportSpec.parse(42)


# -- registry -----------------------------------------------------------------

def test_builtin_backends_registered():
    assert {"sim", "aio"} <= set(available_transports())


def test_resolve_unknown_kind_raises_network_error():
    from repro.simkernel import Simulator

    with pytest.raises(NetworkError, match="unknown transport"):
        resolve_transport("carrier-pigeon", Simulator())


def test_register_transport_round_trips_options():
    from repro.simkernel import Simulator

    seen = {}

    class Probe(Transport):
        kind = "probe"

    def factory(sim, seed=0, **options):
        seen.update(options, seed=seed)
        return Probe()

    register_transport("probe-test", factory)
    try:
        got = resolve_transport(
            TransportSpec("probe-test", {"port": 7}), Simulator(),
            seed=9,
        )
        assert isinstance(got, Probe)
        assert seen == {"port": 7, "seed": 9}
    finally:
        from repro.net import transport as mod
        del mod._REGISTRY["probe-test"]


def test_build_grid_default_is_sim_backend():
    grid = _grid()
    assert grid.network.kind == "sim"
    assert grid.network.realtime is False


def test_build_grid_aio_backend():
    grid = _grid(transport="aio")
    assert grid.network.kind == "aio"
    assert grid.network.realtime is True


# -- facade/backend mismatch guards ------------------------------------------

def test_blocking_session_refuses_realtime_backend():
    grid = _grid(transport="aio")
    with pytest.raises(TransportMismatch) as ei:
        GridSession(grid, "Alice Debye", "FZJ")
    assert ei.value.code == "net.transport_mismatch"


def test_connect_rejects_wrong_transport_name():
    grid = _grid()  # sim
    with pytest.raises(TransportMismatch):
        GridSession.connect(grid, "Alice Debye", "FZJ", transport="aio")


def test_connect_accepts_matching_transport_name():
    grid = _grid()
    session = GridSession.connect(grid, "Alice Debye", "FZJ",
                                  transport="sim")
    assert session.user.name == "Alice Debye"


def test_async_connect_rejects_wrong_transport_name():
    import asyncio

    grid = _grid()  # sim
    with pytest.raises(TransportMismatch):
        asyncio.run(AsyncGridSession.connect(
            grid, "Alice Debye", "FZJ", transport="aio"))


# -- PEP 562 shim -------------------------------------------------------------

def test_moved_names_warn_once_then_resolve():
    import importlib

    from repro.net import sim_transport
    from repro.net import transport as mod

    mod._warned.discard("Network")
    mod.__dict__.pop("Network", None)
    with pytest.warns(DeprecationWarning, match="sim_transport"):
        net_cls = mod.__getattr__("Network")
    assert net_cls is sim_transport.Network
    # Second access: cached in module globals, no second warning.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert importlib.import_module("repro.net.transport").Network \
            is sim_transport.Network


def test_unknown_attribute_still_raises():
    from repro.net import transport as mod

    with pytest.raises(AttributeError):
        mod.__getattr__("Bogus")


def test_dir_lists_moved_names():
    from repro.net import transport as mod

    listed = dir(mod)
    assert "Transport" in listed and "Message" in listed
