"""Unit tests for the observability layer: spans, traces, metrics."""

import math

import pytest

from repro.grid.metrics import TierTimes
from repro.observability import (
    MetricsRegistry,
    Telemetry,
    Tracer,
    telemetry_for,
)
from repro.observability.metrics import percentile
from repro.simkernel import Simulator


class ManualClock:
    """A settable clock so span arithmetic is exact."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


# ---------------------------------------------------------------- tracer
class TestTracer:
    def test_span_records_clock_times(self):
        clock = ManualClock()
        tracer = Tracer(clock)
        tid = tracer.new_trace("job")
        span = tracer.start_span("work", tid)
        clock.now = 2.5
        tracer.end_span(span)
        assert span.start == 0.0
        assert span.end == 2.5
        assert span.duration == 2.5
        assert span.finished

    def test_open_span_has_zero_duration(self):
        tracer = Tracer(ManualClock())
        tid = tracer.new_trace()
        span = tracer.start_span("open", tid)
        assert not span.finished
        assert span.duration == 0.0

    def test_explicit_parent_nesting(self):
        clock = ManualClock()
        tracer = Tracer(clock)
        tid = tracer.new_trace("job")
        root = tracer.start_span("root", tid)
        child = tracer.start_span("child", tid, parent=root)
        grandchild = tracer.start_span("leaf", tid, parent=child.span_id)
        for s in (grandchild, child, root):
            tracer.end_span(s)

        tree = tracer.trace(tid).tree()
        assert len(tree) == 1
        top, kids = tree[0]
        assert top.name == "root"
        assert kids[0][0].name == "child"
        assert kids[0][1][0][0].name == "leaf"

    def test_end_with_error_marks_status(self):
        tracer = Tracer(ManualClock())
        tid = tracer.new_trace()
        span = tracer.start_span("fails", tid)
        tracer.end_span(span, error=ValueError("boom"))
        assert span.status == "error"
        assert "boom" in span.error

    def test_context_manager_closes_and_propagates(self):
        clock = ManualClock()
        tracer = Tracer(clock)
        tid = tracer.new_trace()
        with tracer.span("ok", tid) as span:
            clock.now = 1.0
        assert span.duration == 1.0
        with pytest.raises(RuntimeError):
            with tracer.span("bad", tid) as span:
                raise RuntimeError("nope")
        assert span.status == "error"

    def test_bind_job_resolves_to_trace(self):
        tracer = Tracer(ManualClock())
        tid = tracer.new_trace("job")
        tracer.bind_job("U00001@FZJ", tid)
        assert tracer.trace_id_for_job("U00001@FZJ") == tid
        assert tracer.trace("U00001@FZJ").trace_id == tid
        with pytest.raises(KeyError):
            tracer.trace("U99999@NONE")

    def test_orphan_parent_renders_as_root(self):
        tracer = Tracer(ManualClock())
        tid = tracer.new_trace()
        span = tracer.start_span("lonely", tid, parent="s-not-recorded")
        tracer.end_span(span)
        trace = tracer.trace(tid)
        assert len(trace.tree()) == 1
        assert "lonely" in trace.render()


# ----------------------------------------------------------------- trace
class TestTrace:
    def _sample(self):
        clock = ManualClock()
        tracer = Tracer(clock)
        tid = tracer.new_trace("job")
        a = tracer.start_span("client.submit", tid, tier="user")
        clock.now = 1.0
        b = tracer.start_span("gateway.request", tid, parent=a, tier="server")
        clock.now = 3.0
        tracer.end_span(b)
        tracer.end_span(a)
        clock.now = 4.0
        c = tracer.start_span("batch.execute", tid, parent=a, tier="batch")
        clock.now = 10.0
        tracer.end_span(c)
        return tracer.trace(tid)

    def test_totals_and_tiers(self):
        trace = self._sample()
        assert trace.total("gateway.request") == 2.0
        assert trace.total("batch.execute") == 6.0
        assert trace.tiers == {"user", "server", "batch"}
        assert trace.duration == 10.0

    def test_causal_order(self):
        trace = self._sample()
        names = [s.name for s in trace.spans]
        assert names == ["client.submit", "gateway.request", "batch.execute"]

    def test_json_round_trip(self):
        import json

        data = self._sample().to_json()
        encoded = json.loads(json.dumps(data))
        assert encoded["span_count"] == 3
        assert encoded["tiers"] == ["batch", "server", "user"]
        assert {s["name"] for s in encoded["spans"]} == {
            "client.submit", "gateway.request", "batch.execute",
        }


# ---------------------------------------------------------------- metrics
class TestMetrics:
    def test_counter(self):
        registry = MetricsRegistry()
        registry.counter("jobs").inc()
        registry.counter("jobs").inc(2)
        assert registry.counter_value("jobs") == 3
        assert registry.counter_value("never") == 0.0
        with pytest.raises(ValueError):
            registry.counter("jobs").inc(-1)

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        h = registry.histogram("waits")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        summary = h.summary()
        assert summary["count"] == 4
        assert summary["mean"] == 2.5
        assert summary["max"] == 4.0
        assert summary["p50"] == 2.5

    def test_percentile_matches_linear_interpolation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == 2.5
        assert math.isnan(percentile([], 50))
        with pytest.raises(ValueError):
            percentile(values, 101)

    def test_name_collision_across_types(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(5)
        registry.histogram("b").observe(1.0)
        snap = registry.snapshot()
        assert snap["counters"] == {"a": 5.0}
        assert snap["histograms"]["b"]["count"] == 1


# -------------------------------------------------------------- telemetry
class TestTelemetryScoping:
    def test_per_sim_isolation(self):
        sim_a, sim_b = Simulator(), Simulator()
        ta, tb = telemetry_for(sim_a), telemetry_for(sim_b)
        assert ta is not tb
        assert telemetry_for(sim_a) is ta
        ta.metrics.counter("only.a").inc()
        assert tb.metrics.counter_value("only.a") == 0.0

    def test_sim_clock_drives_spans(self):
        sim = Simulator()
        telemetry = telemetry_for(sim)
        tid = telemetry.tracer.new_trace()
        span = telemetry.tracer.start_span("step", tid)

        def advance(s):
            yield s.timeout(7.0)

        sim.run(until=sim.process(advance(sim)))
        telemetry.tracer.end_span(span)
        assert span.duration == 7.0

    def test_global_default_uses_wall_clock(self):
        bundle = telemetry_for()
        assert isinstance(bundle, Telemetry)
        tid = bundle.tracer.new_trace()
        with bundle.tracer.span("wall", tid) as span:
            pass
        assert span.duration >= 0.0

    def test_reset_drops_state(self):
        sim = Simulator()
        telemetry = telemetry_for(sim)
        tid = telemetry.tracer.new_trace()
        telemetry.tracer.end_span(telemetry.tracer.start_span("x", tid))
        telemetry.metrics.counter("n").inc()
        telemetry.reset()
        assert telemetry.tracer.traces() == []
        assert telemetry.metrics.counter_value("n") == 0.0


# --------------------------------------------------------------- tiertimes
class TestTierTimesFromTrace:
    def test_span_names_map_to_columns(self):
        clock = ManualClock()
        tracer = Tracer(clock)
        tid = tracer.new_trace("job")

        def timed(name, tier, start, dur):
            clock.now = start
            span = tracer.start_span(name, tid, tier=tier)
            clock.now = start + dur
            tracer.end_span(span)

        timed("client.submit", "user", 0.0, 1.0)
        timed("gateway.auth", "server", 0.1, 0.2)
        timed("njs.incarnate", "server", 1.0, 0.5)
        timed("njs.stage", "server", 1.5, 0.25)
        timed("njs.import", "server", 1.75, 0.25)
        timed("batch.wait", "batch", 2.0, 3.0)
        timed("batch.execute", "batch", 5.0, 60.0)
        timed("client.outcome", "user", 65.0, 0.5)

        times = TierTimes.from_trace(tracer.trace(tid))
        assert times.consign_s == pytest.approx(0.8)
        assert times.gateway_auth_s == pytest.approx(0.2)
        assert times.incarnation_s == pytest.approx(0.5)
        assert times.staging_s == pytest.approx(0.5)
        assert times.batch_wait_s == pytest.approx(3.0)
        assert times.execution_s == pytest.approx(60.0)
        assert times.outcome_return_s == pytest.approx(0.5)
        assert times.handshake_s == 0.0  # no session trace given
        assert times.total() == pytest.approx(
            times.middleware_total() + 63.0
        )
