"""Unit tests for the batch subsystems: dialects, queues, scheduling."""

import pytest

from repro.batch import (
    BackfillScheduler,
    BatchError,
    BatchJobSpec,
    BatchState,
    BatchSystem,
    FileEffect,
    JobRejectedError,
    QueueConfig,
    UnknownJobError,
    UnknownQueueError,
    dialect_for,
    machine,
)
from repro.resources import ResourceSet
from repro.simkernel import Simulator
from repro.vfs import UspaceManager


def make_system(name="FZJ-T3E", queues=None, scheduler=None):
    sim = Simulator()
    system = BatchSystem(sim, machine(name), queues=queues, scheduler=scheduler)
    return sim, system


def spec_for(system, name="job", cpus=1, time_s=100.0, queue="batch", **kw):
    resources = ResourceSet(cpus=cpus, time_s=time_s, memory_mb=64.0)
    script = system.dialect.render_script(name, queue, resources, ["./a.out"])
    return BatchJobSpec(
        name=name, owner="alice", queue=queue, script=script,
        resources=resources, **kw,
    )


# ----------------------------------------------------------------- dialects
@pytest.mark.parametrize("key,prefix", [
    ("nqs", "#QSUB"),
    ("loadleveler", "#@"),
    ("vpp", "#PJM"),
    ("codine", "#$"),
])
def test_dialect_render_and_parse_roundtrip(key, prefix):
    d = dialect_for(key)
    script = d.render_script("myjob", "batch", ResourceSet(cpus=8, time_s=600), ["cmd"])
    assert any(line.startswith(prefix) for line in script.splitlines())
    directives = d.parse_directives(script)
    assert directives  # at least the name/queue directives parsed back


def test_dialect_rejects_foreign_script():
    nqs = dialect_for("nqs")
    ll_script = dialect_for("loadleveler").render_script(
        "j", "batch", ResourceSet(), ["cmd"]
    )
    with pytest.raises(BatchError):
        nqs.parse_directives(ll_script)


def test_dialect_local_states_distinct():
    names = {tuple(dialect_for(k).state_names) for k in
             ("nqs", "loadleveler", "vpp", "codine")}
    assert len(names) == 4  # heterogeneity is the point


def test_dialect_unknown():
    with pytest.raises(BatchError):
        dialect_for("slurm")  # not in 1999


def test_dialect_unknown_phase():
    with pytest.raises(BatchError):
        dialect_for("nqs").local_state("paused")


# ------------------------------------------------------------------ machines
def test_machine_catalogue_covers_paper_systems():
    archs = {m.architecture.split()[0] for m in
             [machine(n) for n in ("FZJ-T3E", "RUKA-SP2", "LRZ-VPP", "DWD-SX4")]}
    assert archs == {"Cray", "IBM", "Fujitsu", "NEC"}


def test_machine_unknown():
    with pytest.raises(KeyError):
        machine("BlueGene")


# ----------------------------------------------------------------- submission
def test_submit_run_complete():
    sim, system = make_system()
    job_id = system.submit(spec_for(system, time_s=50.0))
    record = system.query(job_id)
    # The machine is idle, so the scheduling pass started it immediately.
    assert record.state is BatchState.RUNNING
    sim.run()
    assert record.state is BatchState.DONE
    assert record.exit_code == 0
    assert record.wait_time == 0.0
    assert record.turnaround == 50.0


def test_submit_unknown_queue():
    sim, system = make_system()
    with pytest.raises(UnknownQueueError):
        system.submit(spec_for(system, queue="express"))


def test_submit_rejects_over_limit():
    sim, system = make_system(
        queues=[QueueConfig(name="batch", max_cpus=64, max_time_s=3600)]
    )
    with pytest.raises(JobRejectedError, match="cpus above maximum"):
        system.submit(spec_for(system, cpus=100))
    with pytest.raises(JobRejectedError, match="time limit"):
        system.submit(spec_for(system, time_s=7200))


def test_submit_rejects_wrong_dialect_script():
    sim, system = make_system("FZJ-T3E")  # NQS
    resources = ResourceSet(cpus=1, time_s=10)
    foreign = dialect_for("loadleveler").render_script("j", "batch", resources, ["x"])
    spec = BatchJobSpec(
        name="j", owner="a", queue="batch", script=foreign, resources=resources
    )
    with pytest.raises(BatchError, match="NQS"):
        system.submit(spec)


def test_queue_too_large_for_machine_rejected():
    sim = Simulator()
    with pytest.raises(BatchError):
        BatchSystem(
            sim, machine("DWD-SX4"),
            queues=[QueueConfig(name="big", max_cpus=100, max_time_s=10)],
        )


def test_query_unknown_job():
    sim, system = make_system()
    with pytest.raises(UnknownJobError):
        system.query("ghost.1")


# ------------------------------------------------------------------ execution
def test_fcfs_waits_for_free_cpus():
    sim, system = make_system("DWD-SX4")  # 32 cpus
    a = system.submit(spec_for(system, "a", cpus=32, time_s=100))
    b = system.submit(spec_for(system, "b", cpus=32, time_s=100))
    sim.run()
    ra, rb = system.query(a), system.query(b)
    assert ra.start_time == 0.0
    assert rb.start_time == 100.0
    assert rb.wait_time == 100.0


def test_wallclock_limit_enforced():
    sim, system = make_system()
    job_id = system.submit(spec_for(system, time_s=50.0, wallclock_s=500.0))
    sim.run()
    record = system.query(job_id)
    assert record.state is BatchState.FAILED
    assert record.exit_code == 137
    assert "limit" in record.reason
    assert record.end_time == 50.0  # killed at the limit, not after 500s


def test_nonzero_exit_code_fails():
    sim, system = make_system()
    job_id = system.submit(spec_for(system, exit_code=3, wallclock_s=10.0))
    sim.run()
    record = system.query(job_id)
    assert record.state is BatchState.FAILED
    assert record.exit_code == 3


def test_effects_and_output_collected_in_workdir():
    sim, system = make_system()
    mgr = UspaceManager("FZJ-T3E")
    uspace = mgr.create("job1")
    spec = spec_for(
        system, "solver", wallclock_s=10.0,
        effects=(FileEffect("result.dat", size_bytes=2048),),
        stdout_text="42 iterations\n",
        workdir=uspace,
    )
    job_id = system.submit(spec)
    sim.run()
    assert uspace.read("result.dat") == b"\x00" * 2048
    seq = job_id.rsplit(".", 1)[-1]
    assert uspace.read(f"solver.o{seq}") == b"42 iterations\n"


def test_failed_job_produces_no_effects_but_output():
    sim, system = make_system()
    mgr = UspaceManager("V")
    uspace = mgr.create("job1")
    spec = spec_for(
        system, "bad", wallclock_s=5.0, exit_code=1,
        effects=(FileEffect("result.dat", size_bytes=10),),
        stderr_text="segfault\n", workdir=uspace,
    )
    job_id = system.submit(spec)
    sim.run()
    assert not uspace.exists("result.dat")
    seq = job_id.rsplit(".", 1)[-1]
    assert uspace.read(f"bad.e{seq}") == b"segfault\n"


def test_cancel_queued_job():
    sim, system = make_system("DWD-SX4")
    a = system.submit(spec_for(system, "a", cpus=32, time_s=100))
    b = system.submit(spec_for(system, "b", cpus=32, time_s=100))
    system.cancel(b)
    sim.run()
    assert system.query(b).state is BatchState.CANCELLED
    assert system.query(a).state is BatchState.DONE


def test_cancel_running_job_frees_cpus():
    sim, system = make_system("DWD-SX4")
    a = system.submit(spec_for(system, "a", cpus=32, time_s=1000))
    b = system.submit(spec_for(system, "b", cpus=32, time_s=10))

    def canceller(sim):
        yield sim.timeout(5.0)
        system.cancel(a)

    sim.process(canceller(sim))
    sim.run()
    ra, rb = system.query(a), system.query(b)
    assert ra.state is BatchState.CANCELLED
    assert ra.end_time == 5.0
    assert rb.start_time == 5.0
    assert rb.state is BatchState.DONE


def test_cancel_terminal_job_rejected():
    sim, system = make_system()
    a = system.submit(spec_for(system, time_s=1.0))
    sim.run()
    with pytest.raises(BatchError):
        system.cancel(a)


def test_local_state_names_follow_dialect():
    sim, system = make_system("RUKA-SP2")  # LoadLeveler
    a = system.submit(spec_for(system, cpus=256, time_s=10))
    b = system.submit(spec_for(system, cpus=256, time_s=10))
    assert system.local_state_name(b) == "Idle"
    sim.run(until=1.0)
    assert system.local_state_name(a) == "Running"
    sim.run()
    assert system.local_state_name(a) == "Completed"


def test_completion_event_waitable():
    sim, system = make_system()
    job_id = system.submit(spec_for(system, time_s=30.0))
    record = system.query(job_id)

    def waiter(sim):
        done = yield record.completion_event
        return (sim.now, done.state)

    p = sim.process(waiter(sim))
    assert sim.run(until=p) == (30.0, BatchState.DONE)


def test_utilization_accounting():
    sim, system = make_system("DWD-SX4")  # 32 cpus
    system.submit(spec_for(system, cpus=16, time_s=100))
    sim.run()
    # 16/32 busy for the whole horizon.
    assert system.utilization() == pytest.approx(0.5)


# ------------------------------------------------------------------ backfill
def test_backfill_lets_small_job_jump_without_delaying_head():
    sim, system = make_system("DWD-SX4", scheduler=BackfillScheduler())  # 32 cpus
    # 24 cpus busy until t=100.
    system.submit(spec_for(system, "a", cpus=24, time_s=100))
    # Head needs 32: must wait until t=100.
    b = system.submit(spec_for(system, "b", cpus=32, time_s=50))
    # Small short job fits in the 8 free cpus and ends before t=100.
    c = system.submit(spec_for(system, "c", cpus=8, time_s=50))
    sim.run()
    rb, rc = system.query(b), system.query(c)
    assert rc.start_time == 0.0  # backfilled
    assert rb.start_time == 100.0  # head not delayed


def test_backfill_refuses_job_that_would_delay_head():
    sim, system = make_system("DWD-SX4", scheduler=BackfillScheduler())
    system.submit(spec_for(system, "a", cpus=24, time_s=100))
    b = system.submit(spec_for(system, "b", cpus=32, time_s=50))
    # Fits the free 8 cpus but (requested) runs past t=100 and would
    # steal cpus the head needs.
    c = system.submit(spec_for(system, "c", cpus=8, time_s=500))
    sim.run()
    rb, rc = system.query(b), system.query(c)
    assert rb.start_time == 100.0
    assert rc.start_time >= rb.start_time  # c did not jump the head


def test_fcfs_vs_backfill_makespan():
    """Backfill strictly improves packing on a mixed workload."""

    def run(scheduler):
        sim, system = make_system("DWD-SX4", scheduler=scheduler)
        system.submit(spec_for(system, "wide", cpus=24, time_s=100))
        system.submit(spec_for(system, "full", cpus=32, time_s=50))
        for i in range(4):
            system.submit(spec_for(system, f"s{i}", cpus=2, time_s=40))
        sim.run()
        return max(r.end_time for r in system.all_records())

    from repro.batch import FCFSScheduler

    assert run(BackfillScheduler()) < run(FCFSScheduler())


def test_queue_min_cpus_enforced():
    sim, system = make_system(
        queues=[QueueConfig(name="batch", max_cpus=512, max_time_s=86400,
                            min_cpus=16)]
    )
    with pytest.raises(JobRejectedError, match="below minimum"):
        system.submit(spec_for(system, cpus=4))
    system.submit(spec_for(system, cpus=16, time_s=10))
    sim.run()
