"""Unit tests for the binary frame codec and the data-plane layer."""

import struct
import zlib

import pytest

from repro.errors import FrameError, SerializationError, UnsafePathError
from repro.net.stream import (
    FRAME_HEADER_BYTES,
    FRAME_VERSION,
    Frame,
    FrameType,
    OpenInfo,
    StreamReassembler,
    StreamSender,
    chunk_payload,
    decode_frame,
    encode_frame,
)
from repro.net.transport import Network
from repro.protocol.consignment import (
    decode_consignment,
    decode_consignment_envelope,
    encode_consignment,
    file_entry_for,
    validate_manifest_paths,
)
from repro.protocol.datapath import (
    DataPlaneEndpoint,
    StreamIdAllocator,
    decode_bulk_reply,
    encode_inline_reply,
    encode_stream_reply,
)
from repro.simkernel import Simulator


# ---------------------------------------------------------------- frames
def test_frame_roundtrip_data():
    frame = Frame(stream_id=7, seq=3, payload=b"\x00\x01binary\xff")
    raw = encode_frame(frame)
    assert len(raw) == FRAME_HEADER_BYTES + len(frame.payload)
    back = decode_frame(raw)
    assert back == frame
    assert back.version == FRAME_VERSION


def test_frame_payload_is_raw_not_base64():
    payload = bytes(range(256))
    raw = encode_frame(Frame(stream_id=1, seq=0, payload=payload))
    assert payload in raw  # carried verbatim: no base64 inflation


def test_frame_rejects_truncation_and_corruption():
    raw = encode_frame(Frame(stream_id=1, seq=0, payload=b"hello"))
    with pytest.raises(FrameError):
        decode_frame(raw[: FRAME_HEADER_BYTES - 1])
    with pytest.raises(FrameError):
        decode_frame(raw[:-1])  # payload shorter than header claims
    corrupted = raw[:-1] + bytes([raw[-1] ^ 0xFF])
    with pytest.raises(FrameError):
        decode_frame(corrupted)  # crc mismatch
    with pytest.raises(FrameError):
        decode_frame(b"XX" + raw[2:])  # bad magic


def test_frame_rejects_unknown_version_and_type():
    raw = bytearray(encode_frame(Frame(stream_id=1, seq=0, payload=b"x")))
    bad_version = bytes(raw[:2]) + bytes([99]) + bytes(raw[3:])
    with pytest.raises(FrameError):
        decode_frame(bad_version)
    bad_type = bytes(raw[:3]) + bytes([77]) + bytes(raw[4:])
    with pytest.raises(FrameError):
        decode_frame(bad_type)


def test_frame_range_validation_on_encode():
    with pytest.raises(FrameError):
        encode_frame(Frame(stream_id=1 << 64, seq=0))
    with pytest.raises(FrameError):
        encode_frame(Frame(stream_id=1, seq=-1))
    with pytest.raises(FrameError):
        encode_frame(Frame(stream_id=1, seq=0, ftype=42))


def test_open_info_roundtrip():
    info = OpenInfo(
        total_size=1000, chunk_bytes=256, chunk_count=4,
        total_crc32=zlib.crc32(b"x"), context={"kind": "test", "path": "a"},
    )
    back = OpenInfo.decode(info.encode())
    assert back.total_size == 1000
    assert back.chunk_count == 4
    assert back.context == {"kind": "test", "path": "a"}


def test_chunk_payload_covers_everything():
    data = b"abcdefghij"
    chunks = chunk_payload(data, 3)
    assert b"".join(chunks) == data
    assert [len(c) for c in chunks] == [3, 3, 3, 1]
    assert chunk_payload(b"", 3) == []


# ----------------------------------------------------------- reassembly
def test_sender_reassembler_roundtrip_out_of_order():
    data = bytes(range(251)) * 37
    sender = StreamSender(99, data, 128, {"kind": "t"})
    frames = list(sender.frames())
    open_frame, data_frames = frames[0], frames[1:]
    reassembler = StreamReassembler(decode_frame(encode_frame(open_frame)))
    # Feed in reverse, with a duplicate thrown in.
    for frame in reversed(data_frames):
        reassembler.feed(decode_frame(encode_frame(frame)))
    reassembler.feed(decode_frame(encode_frame(data_frames[0])))  # dup ok
    assert reassembler.complete
    assert reassembler.payload() == data
    assert reassembler.context == {"kind": "t"}


def test_reassembler_next_expected_tracks_lowest_gap():
    sender = StreamSender(5, b"a" * 10, 2, {})
    frames = list(sender.frames())
    reassembler = StreamReassembler(frames[0])
    assert reassembler.next_expected == 0
    reassembler.feed(frames[1])       # seq 0
    reassembler.feed(frames[3])       # seq 2
    assert reassembler.next_expected == 1
    assert not reassembler.complete
    with pytest.raises(FrameError):
        reassembler.payload()


def test_reassembler_rejects_foreign_and_out_of_range_frames():
    sender = StreamSender(5, b"a" * 10, 2, {})
    frames = list(sender.frames())
    reassembler = StreamReassembler(frames[0])
    with pytest.raises(FrameError):
        reassembler.feed(Frame(stream_id=6, seq=0, payload=b"aa"))
    with pytest.raises(FrameError):
        reassembler.feed(Frame(stream_id=5, seq=99, payload=b"aa"))


# ------------------------------------------------------- path validation
def test_validate_rejects_traversal_duplicates_and_control_chars():
    with pytest.raises(UnsafePathError):
        validate_manifest_paths(["a/../b"])
    with pytest.raises(UnsafePathError):
        validate_manifest_paths([".."])
    with pytest.raises(UnsafePathError):
        validate_manifest_paths(["a", "a"])
    with pytest.raises(UnsafePathError):
        validate_manifest_paths([""])
    with pytest.raises(UnsafePathError):
        validate_manifest_paths(["evil\x00name"])


def test_validate_absolute_policy_depends_on_destination():
    # Workstation-namespace manifests legitimately use absolute paths.
    validate_manifest_paths(["/home/alice/solver.f90"])
    # Uspace-destined manifests must be relative.
    with pytest.raises(UnsafePathError):
        validate_manifest_paths(
            ["/etc/passwd"], uspace_destination=True
        )
    validate_manifest_paths(["result.dat"], uspace_destination=True)


def test_unsafe_path_error_code_is_stable():
    assert UnsafePathError.code == "ajo.unsafe_path"
    assert issubclass(UnsafePathError, SerializationError)
    with pytest.raises(SerializationError):
        encode_consignment(b"ajo", {"a/../b": b"x"})


# ----------------------------------------------------------- consignment
def test_consignment_streamed_entries_roundtrip():
    entry = file_entry_for("big.dat", b"\x01" * 1000, stream_id=42)
    payload = encode_consignment(
        b"AJO", {"/home/u/small.txt": b"hi"}, streamed=[entry]
    )
    consignment = decode_consignment_envelope(payload)
    assert consignment.ajo_bytes == b"AJO"
    assert consignment.files == {"/home/u/small.txt": b"hi"}
    assert consignment.streamed == (entry,)
    # The plain decoder refuses envelopes that need a data plane.
    with pytest.raises(SerializationError):
        decode_consignment(payload)


def test_consignment_rejects_trailing_garbage():
    payload = encode_consignment(b"AJO", {"a": b"x"})
    with pytest.raises(SerializationError):
        decode_consignment_envelope(payload + b"junk")


# ------------------------------------------------------------- data plane
def test_stream_id_allocator_is_deterministic_and_origin_scoped():
    a1 = StreamIdAllocator("njs:FZJ")
    a2 = StreamIdAllocator("njs:FZJ")
    b = StreamIdAllocator("njs:ZIB")
    assert a1.next() == a2.next()
    assert a1.next() != b.next()
    assert a1.next() >> 32 == zlib.crc32(b"njs:FZJ")


def test_endpoint_reassembles_and_parks_payload():
    sim = Simulator()
    endpoint = DataPlaneEndpoint(sim)
    data = b"z" * 5000
    sender = StreamSender(11, data, 1024, {"kind": "t"})
    for frame in sender.frames():
        assert endpoint.feed(encode_frame(frame))
    context, payload = endpoint.take(11)
    assert payload == data
    assert context == {"kind": "t"}
    assert endpoint.take(11) is None  # claimed exactly once


def test_endpoint_on_complete_consumes():
    sim = Simulator()
    seen = []
    endpoint = DataPlaneEndpoint(
        sim, on_complete=lambda ctx, data: seen.append((ctx, data)) or True
    )
    sender = StreamSender(3, b"abc", 2, {"kind": "k"})
    for frame in sender.frames():
        endpoint.feed(encode_frame(frame))
    assert seen == [({"kind": "k"}, b"abc")]
    assert endpoint.take(3) is None


def test_endpoint_ignores_non_frame_bytes():
    sim = Simulator()
    endpoint = DataPlaneEndpoint(sim)
    assert not endpoint.feed(b"not a frame at all")


# ------------------------------------------------------------ bulk replies
def test_bulk_reply_inline_roundtrip():
    kind, content = decode_bulk_reply(encode_inline_reply(b"data"))
    assert (kind, content) == ("inline", b"data")


def test_bulk_reply_streamed_roundtrip():
    entry = file_entry_for("", b"payload", stream_id=77)
    kind, ref = decode_bulk_reply(encode_stream_reply(entry))
    assert kind == "stream"
    assert (ref.stream_id, ref.size, ref.crc32) == (
        77, 7, zlib.crc32(b"payload")
    )


def test_bulk_reply_rejects_garbage():
    with pytest.raises(FrameError):
        decode_bulk_reply(b"")
    with pytest.raises(FrameError):
        decode_bulk_reply(struct.pack("!B", 9) + b"x")
    with pytest.raises(FrameError):
        decode_bulk_reply(b"\x01short")


# ------------------------------------------------- per-network message ids
def test_message_ids_are_per_network():
    def run_one():
        sim = Simulator()
        net = Network(sim, seed=7)
        net.add_host("a")
        net.add_host("b")
        net.link("a", "b", latency_s=0.01, bandwidth_Bps=1e6)
        ids = []

        def proc():
            for _ in range(3):
                ev = net.send("a", "b", "ping", 100)
                ids.append(ev)
                yield ev

        sim.process(proc())
        sim.run()
        return ids

    # Two independently built networks assign identical message ids:
    # the counter is per-Network, not a module global.
    first = [getattr(e, "name", "") for e in run_one()]
    second = [getattr(e, "name", "") for e in run_one()]
    assert first == second
    assert first[0] != first[1]
