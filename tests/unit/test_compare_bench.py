"""Unit tests for the perf-trajectory gate (benchmarks/compare_bench.py).

The gate is only useful if it provably fails on a regression, so the
core case here is a synthetic 2x events-per-job regression that must
exit nonzero, alongside the pass/improve/warn classifications and the
``--update`` re-baselining flow.
"""

import json
import os

from benchmarks.compare_bench import (
    FAIL_THRESHOLD,
    MetricSpec,
    compare_experiment,
    compare_metric,
    load_artifact,
    main,
    metric_value,
)

LOWER_FAIL = MetricSpec("throughput.events_per_job", "lower", "fail")
LOWER_WARN = MetricSpec("throughput.wall_s_per_job", "lower", "warn")
HIGHER_FAIL = MetricSpec("jain_fairness", "higher", "fail")


def _e10(events=100.0, wire=1000.0, wall=0.01):
    return {
        "experiment": "e10",
        "throughput": {
            "events_per_job": events,
            "wire_bytes_per_job": wire,
            "wall_s_per_job": wall,
        },
    }


def _write(directory, name, payload):
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, f"BENCH_{name}.json"), "w") as handle:
        json.dump(payload, handle)


# -- metric-level judgments -------------------------------------------------

def test_compare_metric_verdicts():
    # Identical -> ok; small drift within threshold -> ok.
    assert compare_metric(LOWER_FAIL, 100, 100) == ("ok", 0.0)
    assert compare_metric(LOWER_FAIL, 100, 120)[0] == "ok"
    # Better than baseline -> improved.
    assert compare_metric(LOWER_FAIL, 100, 50)[0] == "improved"
    # Past the threshold -> the spec's severity.
    assert compare_metric(LOWER_FAIL, 100, 200) == ("fail", 1.0)
    assert compare_metric(LOWER_WARN, 100, 200)[0] == "warn"
    # Direction-aware: a fairness *drop* is the costly direction.
    assert compare_metric(HIGHER_FAIL, 1.0, 0.5) == ("fail", 0.5)
    assert compare_metric(HIGHER_FAIL, 0.5, 1.0)[0] == "improved"
    # Zero baseline: any appearing cost is infinite regression.
    assert compare_metric(LOWER_FAIL, 0.0, 5.0)[0] == "fail"
    assert compare_metric(LOWER_FAIL, 0.0, 0.0)[0] == "ok"


def test_metric_value_dotted_paths():
    artifact = _e10(events=42.0)
    assert metric_value(artifact, "throughput.events_per_job") == 42.0
    assert metric_value(artifact, "throughput.missing") is None
    assert metric_value(artifact, "nope.deeper") is None


# -- experiment-level comparison --------------------------------------------

def test_synthetic_2x_regression_fails():
    baseline = _e10(events=100.0)
    regressed = _e10(events=200.0)  # 2x the events per job
    rows = compare_experiment("e10", baseline, regressed)
    by_metric = {row["metric"]: row for row in rows}
    assert by_metric["throughput.events_per_job"]["verdict"] == "fail"
    assert by_metric["throughput.events_per_job"]["change"] == 1.0


def test_wall_clock_regression_only_warns():
    baseline = _e10(wall=0.01)
    slower = _e10(wall=0.05)  # 5x wall time, counters unchanged
    rows = compare_experiment("e10", baseline, slower)
    by_metric = {row["metric"]: row for row in rows}
    assert by_metric["throughput.wall_s_per_job"]["verdict"] == "warn"
    assert all(
        row["verdict"] != "fail" for row in rows
    ), "wall clock must never hard-fail"


def test_missing_artifacts_warn_not_fail():
    rows = compare_experiment("e10", None, _e10())
    assert rows[0]["verdict"] == "warn" and "baseline" in rows[0]["note"]
    rows = compare_experiment("e10", _e10(), None)
    assert rows[0]["verdict"] == "warn" and "fresh" in rows[0]["note"]


# -- CLI entry point --------------------------------------------------------

def test_main_passes_on_baseline_and_fails_on_regression(tmp_path, capsys):
    baselines = str(tmp_path / "baselines")
    fresh = str(tmp_path / "fresh")
    _write(baselines, "e10", _e10(events=100.0))
    _write(fresh, "e10", _e10(events=100.0))

    # Baseline vs itself: clean pass.
    assert main(["--fresh", fresh, "--baselines", baselines, "e10"]) == 0
    assert "pass" in capsys.readouterr().out

    # Synthetic 2x regression: the gate exits nonzero.
    _write(fresh, "e10", _e10(events=200.0))
    assert main(["--fresh", fresh, "--baselines", baselines, "e10"]) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out and "events_per_job" in out

    # A custom (huge) threshold lets the same numbers through.
    assert main([
        "--fresh", fresh, "--baselines", baselines,
        "--threshold", "2.0", "e10",
    ]) == 0
    capsys.readouterr()


def test_main_update_blesses_fresh_artifacts(tmp_path, capsys):
    baselines = str(tmp_path / "baselines")
    fresh = str(tmp_path / "fresh")
    _write(baselines, "e10", _e10(events=100.0))
    _write(fresh, "e10", _e10(events=200.0))

    assert main([
        "--fresh", fresh, "--baselines", baselines, "--update", "e10",
    ]) == 0
    capsys.readouterr()
    assert load_artifact(baselines, "e10")["throughput"]["events_per_job"] == 200.0
    # After blessing, the former regression is the new normal.
    assert main(["--fresh", fresh, "--baselines", baselines, "e10"]) == 0
    capsys.readouterr()


def test_committed_baselines_carry_gated_metrics():
    """The real committed baselines must expose every gated metric —
    otherwise the CI gate silently degrades to warnings."""
    from benchmarks.compare_bench import BASELINE_DIR, METRIC_SPECS

    for experiment, specs in METRIC_SPECS.items():
        artifact = load_artifact(BASELINE_DIR, experiment)
        assert artifact is not None, f"missing committed BENCH_{experiment}.json"
        for spec in specs:
            assert metric_value(artifact, spec.path) is not None, (
                experiment, spec.path,
            )
    # The E10 baseline records the pre-subscription (legacy poll)
    # monitoring cost — that is the trajectory the hot path is measured
    # against, and threshold math needs it nonzero.
    e10 = load_artifact(BASELINE_DIR, "e10")
    assert e10["legacy_wait"] is True
    assert metric_value(e10, "throughput.events_per_job") > 0
    assert FAIL_THRESHOLD == 0.25
