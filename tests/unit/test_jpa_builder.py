"""Unit tests for JPA builder details not covered by integration flows."""

import pytest

from repro.ajo import ValidationError
from repro.grid import build_grid


@pytest.fixture()
def session_pair():
    grid = build_grid({"FZJ": ["FZJ-T3E"], "ZIB": ["ZIB-SP2"]}, seed=71)
    user = grid.add_user("Builder", logins={"FZJ": "b", "ZIB": "bb"})
    session = grid.connect_user(user, "FZJ")
    from repro.client import JobPreparationAgent

    return grid, user, session, JobPreparationAgent(session)


def test_live_check_rejects_unavailable_compiler(session_pair):
    grid, user, session, jpa = session_pair
    job = jpa.new_job("bad-compiler", vsite="FZJ-T3E")
    with pytest.raises(ValidationError, match="missing compiler"):
        job.compile_link_execute(
            "app", sources=["a.c"], executable="a.out",
            run_resources=__import__("repro.resources", fromlist=["ResourceRequest"]).ResourceRequest(),
            compiler="hpf",  # the T3E page only lists f90/cc/make
        )


def test_live_check_skips_remote_vsites(session_pair):
    """Tasks for Vsites whose pages this session does not hold are only
    checked by the destination NJS — the builder must not block them."""
    grid, user, session, jpa = session_pair
    job = jpa.new_job("root", vsite="FZJ-T3E")
    sub = job.sub_job("remote", vsite="ZIB-SP2", usite="ZIB")
    # ZIB-SP2's page is not in this FZJ session: no client-side check.
    sub.script_task("t", script="#!/bin/sh\nx\n")


def test_workstation_files_needed_recurses_into_subjobs(session_pair):
    grid, user, session, jpa = session_pair
    job = jpa.new_job("root", vsite="FZJ-T3E")
    job.import_from_workstation("/home/b/top.dat", "top.dat")
    sub = job.sub_job("remote", vsite="ZIB-SP2", usite="ZIB")
    sub.import_from_workstation("/home/b/deep.dat", "deep.dat")
    assert sorted(job.workstation_files_needed()) == [
        "/home/b/deep.dat", "/home/b/top.dat"
    ]


def test_load_job_with_subjobs_reassigns_user(session_pair):
    grid, user, session, jpa = session_pair
    job = jpa.new_job("saved", vsite="FZJ-T3E")
    job.script_task("t", script="#!/bin/sh\nx\n")
    sub = job.sub_job("remote", vsite="ZIB-SP2", usite="ZIB")
    sub.script_task("rt", script="#!/bin/sh\nx\n")
    saved = job.save()

    reloaded = jpa.load_job(saved)
    assert reloaded.ajo.user_dn == session.user_dn
    assert len(reloaded.ajo.sub_jobs()) == 1
    # Reloaded jobs can be modified (section 5.7) — add another task.
    reloaded.script_task("extra", script="#!/bin/sh\ny\n")
    assert len(reloaded.ajo.tasks()) == 2


def test_depends_accepts_builders_and_tasks(session_pair):
    grid, user, session, jpa = session_pair
    job = jpa.new_job("mix", vsite="FZJ-T3E")
    t = job.script_task("t", script="#!/bin/sh\nx\n")
    sub = job.sub_job("g", vsite="ZIB-SP2", usite="ZIB")
    dep = job.depends(t, sub, files=["x.dat"])  # builder as successor
    assert dep.predecessor_id == t.id
    assert dep.successor_id == sub.ajo.id


def test_builder_submit_shortcut(session_pair):
    grid, user, session, jpa = session_pair
    job = jpa.new_job("short", vsite="FZJ-T3E")
    job.script_task("t", script="#!/bin/sh\nx\n", simulated_runtime_s=5.0)

    def scenario(sim):
        job_id = yield from job.submit()
        return job_id

    p = grid.sim.process(scenario(grid.sim))
    assert grid.sim.run(until=p).startswith("U")


def test_stale_client_page_rechecked_by_njs(session_pair):
    """Defense in depth: the JPA validates against the page it downloaded,
    but the NJS re-checks against the *current* page at consign time."""
    grid, user, session, jpa = session_pair
    from repro.resources import ResourcePageEditor, ResourceRequest

    job = jpa.new_job("stale", vsite="FZJ-T3E")
    job.script_task(
        "big", script="#!/bin/sh\nx\n",
        resources=ResourceRequest(cpus=256, time_s=600),
    )  # fine against the downloaded page (max 512)

    # The site administrator shrinks the T3E partition afterwards.
    vsite = grid.usites["FZJ"].vsites["FZJ-T3E"]
    editor = ResourcePageEditor("FZJ-T3E").set_system("Cray T3E", "UNICOS/mk", 460.0)
    for axis, hi in (("cpus", 128), ("time_s", 86400), ("memory_mb", 65536),
                     ("disk_permanent_mb", 1e6), ("disk_temporary_mb", 1e6)):
        editor.set_range(axis, 1 if axis == "cpus" else 0, hi)
    editor.add_compiler("f90")
    vsite.resource_page = editor.publish()

    def scenario(sim):
        yield from jpa.submit(job)

    p = grid.sim.process(scenario(grid.sim))
    with pytest.raises(ValidationError, match="above maximum"):
        grid.sim.run(until=p)
