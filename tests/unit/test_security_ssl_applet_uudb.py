"""Unit tests for the SSL handshake, signed applets, and the UUDB."""

import pytest

from repro.security import (
    AppletBundle,
    AuthenticationError,
    CertificateAuthority,
    CertificateStore,
    DistinguishedName,
    MappingError,
    SignatureInvalid,
    TamperedBundleError,
    UUDB,
    sign_applet,
    ssl_handshake,
    verify_applet,
)
from repro.security.ssl import SSLSession
from repro.security.x509 import CertificateRole


@pytest.fixture(scope="module")
def pki():
    ca = CertificateAuthority(key_bits=384, seed=3)
    store = CertificateStore(trusted=[ca])
    user_cert, user_key = ca.issue(
        DistinguishedName(cn="Alice", o="FZJ", c="DE"), role=CertificateRole.USER
    )
    server_cert, server_key = ca.issue(
        DistinguishedName(cn="gateway.fzj.de", o="FZJ", c="DE"),
        role=CertificateRole.SERVER,
    )
    dev_cert, dev_key = ca.issue(
        DistinguishedName(cn="UNICORE Dev Team", o="Consortium"),
        role=CertificateRole.SOFTWARE,
    )
    return {
        "ca": ca,
        "store": store,
        "user": (user_cert, user_key),
        "server": (server_cert, server_key),
        "dev": (dev_cert, dev_key),
    }


def _handshake(pki, **overrides):
    kwargs = dict(
        client_cert=pki["user"][0],
        client_key=pki["user"][1],
        server_cert=pki["server"][0],
        server_key=pki["server"][1],
        client_store=pki["store"],
        server_store=pki["store"],
        now=100.0,
    )
    kwargs.update(overrides)
    return ssl_handshake(**kwargs)


# -------------------------------------------------------------------- SSL
def test_handshake_mutual_success(pki):
    session = _handshake(pki)
    assert session.client.peer_certificate == pki["server"][0]
    assert session.server.peer_certificate == pki["user"][0]


def test_handshake_rejects_untrusted_server(pki):
    rogue_ca = CertificateAuthority(key_bits=384, seed=666)
    cert, key = rogue_ca.issue(
        DistinguishedName(cn="rogue.example"), role=CertificateRole.SERVER
    )
    with pytest.raises(AuthenticationError, match="server certificate"):
        _handshake(pki, server_cert=cert, server_key=key)


def test_handshake_rejects_untrusted_client(pki):
    rogue_ca = CertificateAuthority(key_bits=384, seed=667)
    cert, key = rogue_ca.issue(
        DistinguishedName(cn="Mallory"), role=CertificateRole.USER
    )
    with pytest.raises(AuthenticationError, match="client certificate"):
        _handshake(pki, client_cert=cert, client_key=key)


def test_handshake_rejects_stolen_certificate(pki):
    # Mallory presents Alice's certificate but does not hold her key.
    mallory_key = pki["server"][1]  # some other key
    with pytest.raises(AuthenticationError, match="client key"):
        _handshake(pki, client_key=mallory_key)


def test_handshake_rejects_revoked_user(pki):
    ca = pki["ca"]
    cert, key = ca.issue(DistinguishedName(cn="Soon Revoked"), role=CertificateRole.USER)
    ca.revoke(cert)
    with pytest.raises(AuthenticationError):
        _handshake(pki, client_cert=cert, client_key=key)


def test_session_record_roundtrip(pki):
    session = _handshake(pki)
    record = session.client.seal(b"consign job 42")
    assert session.server.open(record) == b"consign job 42"


def test_session_detects_tampered_record(pki):
    session = _handshake(pki)
    record = bytearray(session.client.seal(b"payload"))
    record[7] ^= 0x01
    with pytest.raises(AuthenticationError):
        session.server.open(bytes(record))


def test_session_detects_replay(pki):
    session = _handshake(pki)
    record = session.client.seal(b"one")
    assert session.server.open(record) == b"one"
    with pytest.raises(AuthenticationError):  # sequence number advanced
        session.server.open(record)


def test_session_rejects_short_record(pki):
    session = _handshake(pki)
    with pytest.raises(AuthenticationError):
        session.server.open(b"tiny")


def test_record_payload_limit(pki):
    session = _handshake(pki)
    with pytest.raises(ValueError):
        session.client.seal(b"x" * 20000)


def test_wire_byte_accounting():
    assert SSLSession.record_count(0) == 1
    assert SSLSession.record_count(16384) == 1
    assert SSLSession.record_count(16385) == 2
    assert SSLSession.wire_bytes(100) == 100 + 37
    assert SSLSession.wire_bytes(32768) == 32768 + 2 * 37


# ------------------------------------------------------------------ applets
def _bundle():
    b = AppletBundle(name="JPA", version="1.0")
    b.add_file("jpa/Main.class", b"\xca\xfe\xba\xbe main")
    b.add_file("jpa/JobTree.class", b"\xca\xfe\xba\xbe tree")
    return b


def test_applet_sign_verify(pki):
    applet = sign_applet(_bundle(), *pki["dev"])
    verify_applet(applet)  # must not raise


def test_applet_detects_modified_file(pki):
    applet = sign_applet(_bundle(), *pki["dev"])
    applet.bundle.files["jpa/Main.class"] = b"\xca\xfe\xba\xbe evil"
    with pytest.raises(TamperedBundleError):
        verify_applet(applet)


def test_applet_detects_added_file(pki):
    applet = sign_applet(_bundle(), *pki["dev"])
    applet.bundle.files["jpa/Backdoor.class"] = b"boo"
    with pytest.raises(TamperedBundleError):
        verify_applet(applet)


def test_applet_detects_removed_file(pki):
    applet = sign_applet(_bundle(), *pki["dev"])
    del applet.bundle.files["jpa/JobTree.class"]
    with pytest.raises(TamperedBundleError):
        verify_applet(applet)


def test_applet_requires_software_role(pki):
    with pytest.raises(SignatureInvalid):
        sign_applet(_bundle(), *pki["user"])


def test_applet_requires_matching_key(pki):
    dev_cert, _ = pki["dev"]
    _, wrong_key = pki["user"]
    with pytest.raises(SignatureInvalid):
        sign_applet(_bundle(), dev_cert, wrong_key)


def test_bundle_duplicate_file_rejected():
    b = _bundle()
    with pytest.raises(ValueError):
        b.add_file("jpa/Main.class", b"again")


def test_bundle_total_size():
    assert _bundle().total_size == sum(len(v) for v in _bundle().files.values())


# -------------------------------------------------------------------- UUDB
def test_uudb_basic_mapping(pki):
    db = UUDB("FZJ")
    cert, _ = pki["user"]
    db.add_user(cert.subject, login="alice01", gid="zam")
    mapping = db.map_certificate(cert)
    assert mapping.login == "alice01"
    assert mapping.gid == "zam"


def test_uudb_unknown_dn(pki):
    db = UUDB("FZJ")
    cert, _ = pki["user"]
    with pytest.raises(MappingError, match="no local account"):
        db.map_certificate(cert)


def test_uudb_vsite_override(pki):
    db = UUDB("FZJ")
    cert, _ = pki["user"]
    db.add_user(cert.subject, login="alice01")
    db.add_user(cert.subject, login="al_t3e", vsite="T3E")
    assert db.map_certificate(cert).login == "alice01"
    assert db.map_certificate(cert, vsite="T3E").login == "al_t3e"
    assert db.map_certificate(cert, vsite="SP2").login == "alice01"


def test_uudb_vsite_only_mapping_rejects_other_vsites(pki):
    db = UUDB("FZJ")
    cert, _ = pki["user"]
    db.add_user(cert.subject, login="al_t3e", vsite="T3E")
    assert db.map_certificate(cert, vsite="T3E").login == "al_t3e"
    with pytest.raises(MappingError):
        db.map_certificate(cert, vsite="SP2")
    with pytest.raises(MappingError):
        db.map_certificate(cert)


def test_uudb_duplicate_mapping_rejected(pki):
    db = UUDB("FZJ")
    cert, _ = pki["user"]
    db.add_user(cert.subject, login="a")
    with pytest.raises(ValueError):
        db.add_user(cert.subject, login="b")


def test_uudb_disable_enable(pki):
    db = UUDB("FZJ")
    cert, _ = pki["user"]
    db.add_user(cert.subject, login="alice01")
    db.disable(cert.subject)
    with pytest.raises(MappingError, match="disabled"):
        db.map_certificate(cert)
    db.enable(cert.subject)
    assert db.map_certificate(cert).login == "alice01"


def test_uudb_remove(pki):
    db = UUDB("FZJ")
    cert, _ = pki["user"]
    db.add_user(cert.subject, login="alice01")
    db.remove(cert.subject)
    assert len(db) == 0
    with pytest.raises(MappingError):
        db.remove(cert.subject)


def test_uudb_site_check_hook(pki):
    db = UUDB("DWD")  # a smart-card site
    cert, _ = pki["user"]
    db.add_user(cert.subject, login="alice01")
    db.install_site_check(lambda c: False)  # smart card always refused
    with pytest.raises(MappingError, match="site-specific"):
        db.map_certificate(cert)
    db.install_site_check(lambda c: True)
    assert db.map_certificate(cert).login == "alice01"


def test_uudb_lookup_counter(pki):
    db = UUDB("FZJ")
    cert, _ = pki["user"]
    db.add_user(cert.subject, login="alice01")
    for _ in range(3):
        db.map_certificate(cert)
    assert db.lookups == 3


def test_uudb_known_dns(pki):
    db = UUDB("FZJ")
    cert, _ = pki["user"]
    db.add_user(cert.subject, login="x")
    assert db.known_dns() == [str(cert.subject)]
