"""Unit tests for the federation broker: matcher, quotas, advertisement
staleness, and work stealing — plus the NJS advertisement builder and the
deprecation shim left at the broker's old address."""

import warnings

import pytest

from repro.broker import (
    AdvertiseCapacity,
    BrokerJobState,
    BrokerQuotaError,
    CapacityAdvertisement,
    FairSharePolicy,
    NoCapacityError,
    TaskQueueBroker,
)
from repro.observability.metrics import MetricsRegistry
from repro.resources.editor import ResourcePageEditor
from repro.resources.model import ResourceRequest


def make_page(vsite, cpus=512, max_time_s=86_400, memory_mb=100_000,
              compilers=()):
    editor = (
        ResourcePageEditor(vsite)
        .set_system("Test", "TestOS", 1.0)
        .set_range("cpus", 1, cpus)
        .set_range("time_s", 1, max_time_s)
        .set_range("memory_mb", 1, memory_mb)
        .set_range("disk_permanent_mb", 0, 1_000_000)
        .set_range("disk_temporary_mb", 0, 1_000_000)
    )
    for name in compilers:
        editor.add_compiler(name)
    return editor.publish()


def make_ad(vsite, usite="SITE", sent_at=0.0, total_cpus=512, free_cpus=512,
            queued_jobs=0, running_jobs=0, backlog_cpu_s=0.0,
            speed_factor=1.0, **page_kw):
    page_kw.setdefault("cpus", total_cpus)
    return CapacityAdvertisement(
        usite=usite,
        vsite=vsite,
        sent_at=sent_at,
        total_cpus=total_cpus,
        free_cpus=free_cpus,
        queued_jobs=queued_jobs,
        running_jobs=running_jobs,
        backlog_cpu_s=backlog_cpu_s,
        speed_factor=speed_factor,
        page=make_page(vsite, **page_kw),
    )


def observe(broker, *ads, usite="SITE", now=0.0, reclaimable=(), terminal=()):
    broker.observe(
        AdvertiseCapacity(
            usite=usite,
            sent_at=now,
            vsites=tuple(ads),
            reclaimable=tuple(reclaimable),
            terminal=tuple(terminal),
        ),
        now=now,
    )


# -- matching ----------------------------------------------------------------

def test_match_prefers_lowest_estimated_wait():
    broker = TaskQueueBroker()
    observe(
        broker,
        make_ad("busy", backlog_cpu_s=512 * 7200.0),
        make_ad("idle"),
    )
    job = broker.enqueue("u", "j", ResourceRequest(cpus=4, time_s=600))
    assert broker.match(now=0.0) == [job]
    assert job.state is BrokerJobState.DISPATCHED
    assert job.vsite == "idle"


def test_match_respects_resource_feasibility():
    broker = TaskQueueBroker()
    observe(
        broker,
        make_ad("small", total_cpus=32),
        make_ad("large", total_cpus=512, backlog_cpu_s=512 * 3600.0),
    )
    job = broker.enqueue("u", "wide", ResourceRequest(cpus=128, time_s=600))
    broker.match(now=0.0)
    # "small" is idle but can never run 128 cpus; the backlogged large
    # machine is the only legal destination.
    assert job.vsite == "large"


def test_match_respects_software_requirements():
    broker = TaskQueueBroker()
    observe(
        broker,
        make_ad("plain"),
        make_ad("f90site", backlog_cpu_s=512 * 3600.0, compilers=("f90",)),
    )
    job = broker.enqueue(
        "u", "compile", ResourceRequest(cpus=2, time_s=600),
        software=(("compiler", "f90"),),
    )
    broker.match(now=0.0)
    assert job.vsite == "f90site"


def test_match_is_deterministic():
    def run():
        broker = TaskQueueBroker()
        observe(broker, make_ad("a"), make_ad("b", speed_factor=2.0))
        jobs = [
            broker.enqueue(f"u{i % 3}", f"j{i}",
                           ResourceRequest(cpus=1 + i, time_s=600 + 60 * i))
            for i in range(6)
        ]
        broker.match(now=0.0)
        return [(j.seq, j.vsite) for j in jobs]

    assert run() == run()


def test_backpressure_keeps_jobs_in_broker_queue():
    broker = TaskQueueBroker(max_queued_per_vsite=2)
    observe(broker, make_ad("only"))
    jobs = [
        broker.enqueue("u", f"j{i}", ResourceRequest(cpus=1, time_s=600))
        for i in range(5)
    ]
    bound = broker.match(now=0.0)
    # Late binding: only as many as the backpressure window admits leave
    # the broker queue; the rest wait for a fresher advertisement.
    assert len(bound) == 2
    assert broker.queue_depth == 3
    observe(broker, make_ad("only", queued_jobs=0))
    assert len(broker.match(now=0.0)) == 2
    assert jobs[-1].state is BrokerJobState.PENDING


# -- quotas and rejection ----------------------------------------------------

def test_concurrency_quota_rejected_with_stable_code():
    metrics = MetricsRegistry()
    broker = TaskQueueBroker(
        policy=FairSharePolicy(default_max_active=2), metrics=metrics
    )
    for i in range(2):
        broker.enqueue("alice", f"j{i}", ResourceRequest(cpus=1, time_s=60))
    with pytest.raises(BrokerQuotaError) as exc:
        broker.enqueue("alice", "j2", ResourceRequest(cpus=1, time_s=60))
    assert exc.value.code == "broker.quota_exceeded"
    assert metrics.counter_value("broker.rejections") == 1
    # Another user is unaffected.
    broker.enqueue("bob", "b0", ResourceRequest(cpus=1, time_s=60))


def test_per_user_quota_override():
    policy = FairSharePolicy(default_max_active=10, max_active={"greedy": 1})
    broker = TaskQueueBroker(policy=policy)
    broker.enqueue("greedy", "g0", ResourceRequest(cpus=1, time_s=60))
    with pytest.raises(BrokerQuotaError):
        broker.enqueue("greedy", "g1", ResourceRequest(cpus=1, time_s=60))


def test_total_quota_counts_lifetime_submissions():
    broker = TaskQueueBroker(
        policy=FairSharePolicy(default_max_total=2)
    )
    observe(broker, make_ad("v"))
    for i in range(2):
        job = broker.enqueue("u", f"j{i}", ResourceRequest(cpus=1, time_s=60))
        broker.match(now=0.0)
        broker.bind(job, f"id{i}")
        observe(broker, make_ad("v"), terminal=(f"id{i}",))
    # Both jobs finished (no active ones), yet the lifetime quota holds.
    assert broker.active_jobs("u") == 0
    with pytest.raises(BrokerQuotaError):
        broker.enqueue("u", "j2", ResourceRequest(cpus=1, time_s=60))


def test_no_capacity_rejection_when_nothing_could_ever_fit():
    metrics = MetricsRegistry()
    broker = TaskQueueBroker(metrics=metrics)
    observe(broker, make_ad("small", total_cpus=32))
    with pytest.raises(NoCapacityError) as exc:
        broker.enqueue("u", "wide", ResourceRequest(cpus=1024, time_s=60))
    assert exc.value.code == "broker.no_capacity"
    assert metrics.counter_value("broker.rejections") == 1


def test_empty_world_accepts_submissions():
    # No advertisements yet: the job waits rather than being rejected
    # (the broker cannot prove infeasibility without a world view).
    broker = TaskQueueBroker()
    job = broker.enqueue("u", "early", ResourceRequest(cpus=4, time_s=60))
    assert broker.match(now=0.0) == []
    assert job.state is BrokerJobState.PENDING


# -- advertisement staleness and completion feedback -------------------------

def test_stale_advertisements_are_ignored():
    broker = TaskQueueBroker(staleness_s=300.0)
    observe(broker, make_ad("v", sent_at=0.0))
    job = broker.enqueue("u", "j", ResourceRequest(cpus=1, time_s=60))
    assert broker.match(now=1000.0) == []
    assert job.state is BrokerJobState.PENDING
    observe(broker, make_ad("v", sent_at=1000.0), now=1000.0)
    assert broker.match(now=1000.0) == [job]


def test_terminal_feedback_retires_entries_and_frees_quota():
    broker = TaskQueueBroker(policy=FairSharePolicy(default_max_active=1))
    observe(broker, make_ad("v"))
    job = broker.enqueue("u", "j", ResourceRequest(cpus=1, time_s=60))
    broker.match(now=0.0)
    broker.bind(job, "U1@SITE")
    with pytest.raises(BrokerQuotaError):
        broker.enqueue("u", "j2", ResourceRequest(cpus=1, time_s=60))
    observe(broker, make_ad("v"), terminal=("U1@SITE",), now=60.0)
    assert job.state is BrokerJobState.DONE
    assert job in broker.completed
    broker.enqueue("u", "j2", ResourceRequest(cpus=1, time_s=60))


def test_release_requeues_excluding_failed_vsite():
    broker = TaskQueueBroker()
    observe(broker, make_ad("a"), make_ad("b", speed_factor=0.5))
    job = broker.enqueue("u", "j", ResourceRequest(cpus=1, time_s=600))
    broker.match(now=0.0)
    first = job.vsite
    broker.release(job, requeue=True, error="consign timeout")
    assert job.state is BrokerJobState.PENDING
    assert first in job.excluded
    broker.match(now=0.0)
    assert job.vsite != first


# -- fair share --------------------------------------------------------------

def test_fair_share_interleaves_users():
    broker = TaskQueueBroker(max_queued_per_vsite=10)
    observe(broker, make_ad("v"))
    # Hog floods the queue before newcomer submits a single job.
    for i in range(8):
        broker.enqueue("hog", f"h{i}", ResourceRequest(cpus=1, time_s=60))
    late = broker.enqueue("newcomer", "n0", ResourceRequest(cpus=1, time_s=60))
    bound = broker.match(now=0.0)
    # The newcomer must be served within the first two bindings: after
    # the hog's first dispatch, the newcomer is the least-served user.
    assert late in bound[:2]


def test_fair_share_counts_already_dispatched_jobs():
    broker = TaskQueueBroker(max_queued_per_vsite=1)
    observe(broker, make_ad("v"))
    broker.enqueue("hog", "h0", ResourceRequest(cpus=1, time_s=60))
    assert len(broker.match(now=0.0)) == 1
    broker.enqueue("hog", "h1", ResourceRequest(cpus=1, time_s=60))
    late = broker.enqueue("newcomer", "n0", ResourceRequest(cpus=1, time_s=60))
    observe(broker, make_ad("v"))
    # One slot reopens; it must go to the user with nothing dispatched.
    assert broker.match(now=0.0) == [late]


# -- work stealing -----------------------------------------------------------

def _bound_job(broker, vsite="busy", job_id="U1@A"):
    job = broker.enqueue("u", "j", ResourceRequest(cpus=2, time_s=600))
    broker.match(now=0.0)
    assert job.vsite == vsite
    broker.bind(job, job_id)
    return job


def test_steal_candidates_move_queued_work_to_drained_vsite():
    broker = TaskQueueBroker(min_steal_wait_s=600.0)
    observe(broker, make_ad("busy", usite="A"), usite="A")
    job = _bound_job(broker)
    # Next reports: the bound queue is long, another site sits empty,
    # and the NJS confirms the job has not started.
    observe(broker, make_ad("busy", usite="A", queued_jobs=3,
                            backlog_cpu_s=512 * 100_000.0),
            usite="A", reclaimable=("U1@A",))
    observe(broker, make_ad("idle", usite="B"), usite="B")
    candidates = broker.steal_candidates(now=0.0)
    assert [(j.job_id, u, v) for j, u, v in candidates] == [
        ("U1@A", "B", "idle")
    ]
    broker.mark_stolen(job)
    assert job.state is BrokerJobState.PENDING
    assert job.job_id == ""
    assert "busy" in job.excluded
    assert broker.match(now=0.0) == [job]
    assert job.vsite == "idle"
    assert job.steals == 1


def test_no_steal_when_wait_is_short():
    broker = TaskQueueBroker(min_steal_wait_s=600.0)
    observe(broker, make_ad("busy", usite="A"), usite="A")
    _bound_job(broker)
    observe(broker, make_ad("busy", usite="A", queued_jobs=1,
                            backlog_cpu_s=512 * 30.0),
            usite="A", reclaimable=("U1@A",))
    observe(broker, make_ad("idle", usite="B"), usite="B")
    assert broker.steal_candidates(now=0.0) == []


def test_no_steal_without_reclaimable_confirmation():
    broker = TaskQueueBroker(min_steal_wait_s=600.0)
    observe(broker, make_ad("busy", usite="A"), usite="A")
    _bound_job(broker)
    # The job started running: the NJS no longer lists it.
    observe(broker, make_ad("busy", usite="A", queued_jobs=3,
                            backlog_cpu_s=512 * 100_000.0),
            usite="A", reclaimable=())
    observe(broker, make_ad("idle", usite="B"), usite="B")
    assert broker.steal_candidates(now=0.0) == []


# -- NJS advertisement builder ----------------------------------------------

@pytest.fixture(scope="module")
def single_site_run():
    """One consigned job at a one-site grid, for advertisement checks."""
    from repro.api import GridSession
    from repro.grid.build import build_grid

    grid = build_grid({"FZJ": ["FZJ-T3E"]})
    grid.add_user("Alice Debye", organization="FZJ", logins={"FZJ": "alice"})
    session = GridSession(grid, "Alice Debye", "FZJ")
    job = session.new_job("adtest")
    job.script_task("t", "echo hi",
                    resources=ResourceRequest(cpus=4, time_s=600),
                    simulated_runtime_s=86_400)
    handle = session.submit(job)
    return grid, session, handle


def test_njs_build_advertisement_reports_vsites(single_site_run):
    grid, _, handle = single_site_run
    njs = grid.usites["FZJ"].njs
    message = njs.build_advertisement()
    assert message.usite == "FZJ"
    assert message.sent_at == grid.sim.now
    (ad,) = message.vsites
    assert ad.vsite == "FZJ-T3E"
    assert ad.total_cpus == 512
    assert ad.page == grid.usites["FZJ"].vsites["FZJ-T3E"].resource_page
    assert ad.backlog_cpu_s > 0  # our job is on the machine
    assert ad.running_jobs + ad.queued_jobs >= 1


def test_njs_reclaimable_tracks_batch_state(single_site_run):
    grid, session, handle = single_site_run
    njs = grid.usites["FZJ"].njs
    # The 24h task occupies the machine alone, so it is RUNNING — and a
    # running job must never be offered for stealing.
    session.advance(300)
    assert njs.reclaimable_job_ids() == []
    message = njs.build_advertisement()
    assert handle.job_id not in message.reclaimable


def test_njs_consign_quota_crosses_protocol_edge():
    from repro.api import GridSession
    from repro.grid.build import build_grid

    grid = build_grid({"FZJ": ["FZJ-T3E"]}, max_active_per_user=1)
    grid.add_user("Alice Debye", organization="FZJ", logins={"FZJ": "alice"})
    session = GridSession(grid, "Alice Debye", "FZJ")
    first = session.new_job("first")
    first.script_task("t", "x", simulated_runtime_s=86_400)
    session.submit(first)
    second = session.new_job("second")
    second.script_task("t", "x", simulated_runtime_s=60)
    with pytest.raises(BrokerQuotaError) as exc:
        session.submit(second)
    assert exc.value.code == "broker.quota_exceeded"


# -- deprecation shim --------------------------------------------------------

def test_ext_broker_shim_warns_and_resolves():
    import repro.broker.placement as placement
    import repro.ext.broker as legacy

    legacy.__dict__.pop("ResourceBroker", None)
    legacy._warned.discard("ResourceBroker")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        cls = legacy.ResourceBroker
    assert cls is placement.ResourceBroker
    assert any(
        issubclass(w.category, DeprecationWarning)
        and "repro.broker" in str(w.message)
        for w in caught
    )
