"""Unit tests for the resource model, pages, editor, and checking."""

import pytest

from repro.resources import (
    ResourcePage,
    ResourcePageEditor,
    ResourcePageError,
    ResourceRange,
    ResourceRequest,
    ResourceRequestError,
    ResourceSet,
    SoftwareCatalogue,
    SoftwareItem,
    SoftwareKind,
    check_request,
)
from repro.resources.model import RESOURCE_AXES


def t3e_page() -> ResourcePage:
    return (
        ResourcePageEditor("FZJ-T3E")
        .set_system("Cray T3E", "UNICOS/mk", 460.0)
        .set_range("cpus", 1, 512)
        .set_range("time_s", 60, 86400)
        .set_range("memory_mb", 1, 128 * 512)
        .set_range("disk_permanent_mb", 0, 50_000)
        .set_range("disk_temporary_mb", 0, 200_000)
        .add_compiler("f90", version="3.1", invocation="f90")
        .add_library("mpi", version="1.2")
        .add_package("gaussian94")
        .publish()
    )


# ------------------------------------------------------------ ResourceSet
def test_resource_set_defaults():
    rs = ResourceSet()
    assert rs.cpus == 1 and rs.time_s == 3600.0


def test_resource_set_rejects_negative():
    with pytest.raises(ResourceRequestError):
        ResourceSet(cpus=-1)
    with pytest.raises(ResourceRequestError):
        ResourceSet(memory_mb=-5)


def test_resource_set_fits_within():
    small = ResourceSet(cpus=2, time_s=100, memory_mb=64)
    big = ResourceSet(cpus=4, time_s=200, memory_mb=128)
    assert small.fits_within(big)
    assert not big.fits_within(small)


def test_resource_set_add_combines():
    a = ResourceSet(cpus=2, time_s=100, memory_mb=64)
    b = ResourceSet(cpus=3, time_s=50, memory_mb=32)
    c = a + b
    assert c.cpus == 5
    assert c.time_s == 100  # parallel composition: max
    assert c.memory_mb == 96


def test_resource_request_from_dict():
    r = ResourceRequest.from_dict({"cpus": 8, "time_s": 120})
    assert r.cpus == 8 and r.time_s == 120.0


def test_resource_request_from_dict_unknown_axis():
    with pytest.raises(ResourceRequestError):
        ResourceRequest.from_dict({"gpus": 1})


def test_resource_set_as_dict_axes():
    assert set(ResourceSet().as_dict()) == set(RESOURCE_AXES)


# ------------------------------------------------------------- ResourceRange
def test_range_contains_and_clamp():
    r = ResourceRange(10, 20)
    assert r.contains(10) and r.contains(20) and not r.contains(21)
    assert r.clamp(5) == 10 and r.clamp(25) == 20 and r.clamp(15) == 15


def test_range_invalid():
    with pytest.raises(ResourceRequestError):
        ResourceRange(20, 10)
    with pytest.raises(ResourceRequestError):
        ResourceRange(-1, 10)


# ---------------------------------------------------------------- software
def test_catalogue_add_get():
    cat = SoftwareCatalogue()
    cat.add(SoftwareItem(kind=SoftwareKind.COMPILER, name="f90", invocation="xlf90"))
    assert cat.has("compiler", "f90")
    assert cat.get("compiler", "f90").invocation == "xlf90"
    assert len(cat) == 1


def test_catalogue_duplicate_rejected():
    cat = SoftwareCatalogue()
    item = SoftwareItem(kind=SoftwareKind.LIBRARY, name="mpi")
    cat.add(item)
    with pytest.raises(ResourcePageError):
        cat.add(item)


def test_catalogue_missing_get():
    with pytest.raises(ResourcePageError):
        SoftwareCatalogue().get("compiler", "f90")


def test_software_item_validation():
    with pytest.raises(ResourcePageError):
        SoftwareItem(kind="game", name="doom")
    with pytest.raises(ResourcePageError):
        SoftwareItem(kind=SoftwareKind.COMPILER, name="")


def test_catalogue_by_kind_sorted():
    cat = SoftwareCatalogue(
        [
            SoftwareItem(kind=SoftwareKind.COMPILER, name="f90"),
            SoftwareItem(kind=SoftwareKind.COMPILER, name="cc"),
            SoftwareItem(kind=SoftwareKind.LIBRARY, name="mpi"),
        ]
    )
    assert [i.name for i in cat.compilers()] == ["cc", "f90"]


# -------------------------------------------------------------------- page
def test_page_roundtrip_asn1():
    page = t3e_page()
    restored = ResourcePage.from_asn1(page.to_asn1())
    assert restored == page


def test_page_missing_axis_rejected():
    with pytest.raises(ResourcePageError, match="missing axes"):
        ResourcePage(
            vsite="X",
            architecture="a",
            operating_system="o",
            peak_gflops=1.0,
            ranges={"cpus": ResourceRange(1, 4)},
        )


def test_page_unknown_axis_rejected():
    ranges = {axis: ResourceRange(0, 10) for axis in RESOURCE_AXES}
    ranges["gpus"] = ResourceRange(0, 1)
    with pytest.raises(ResourcePageError, match="unknown axes"):
        ResourcePage(
            vsite="X",
            architecture="a",
            operating_system="o",
            peak_gflops=1.0,
            ranges=ranges,
        )


def test_page_from_asn1_garbage():
    with pytest.raises(ResourcePageError):
        ResourcePage.from_asn1(b"\x30\x03\x02\x01\x05")  # a bare sequence


# ------------------------------------------------------------------- editor
def test_editor_requires_system_info():
    ed = ResourcePageEditor("V")
    for axis in RESOURCE_AXES:
        ed.set_range(axis, 0, 10)
    with pytest.raises(ResourcePageError, match="system identification"):
        ed.publish()


def test_editor_requires_all_ranges():
    ed = ResourcePageEditor("V").set_system("a", "o", 1.0)
    with pytest.raises(ResourcePageError, match="lacks ranges"):
        ed.publish()


def test_editor_rejects_unknown_axis():
    with pytest.raises(ResourcePageError):
        ResourcePageEditor("V").set_range("gpus", 0, 1)


def test_editor_rejects_bad_system():
    with pytest.raises(ResourcePageError):
        ResourcePageEditor("V").set_system("", "os", 1.0)
    with pytest.raises(ResourcePageError):
        ResourcePageEditor("V").set_system("arch", "os", 0.0)


def test_editor_requires_vsite_name():
    with pytest.raises(ResourcePageError):
        ResourcePageEditor("")


def test_editor_publish_asn1_decodes():
    ed = ResourcePageEditor("V").set_system("a", "o", 1.0)
    for axis in RESOURCE_AXES:
        ed.set_range(axis, 0, 10)
    page = ResourcePage.from_asn1(ed.publish_asn1())
    assert page.vsite == "V"


# -------------------------------------------------------------------- check
def test_check_acceptable_request():
    result = check_request(t3e_page(), ResourceRequest(cpus=64, time_s=3600))
    assert result.ok
    assert bool(result)
    assert "acceptable" in result.summary()


def test_check_collects_all_violations():
    req = ResourceRequest(cpus=1024, time_s=30, memory_mb=10.0)
    result = check_request(t3e_page(), req)
    assert not result.ok
    assert len(result.violations) == 2  # cpus above max, time below min
    assert any("cpus" in v for v in result.violations)
    assert any("time_s" in v for v in result.violations)


def test_check_software_requirement():
    page = t3e_page()
    ok = check_request(page, ResourceRequest(), [("compiler", "f90")])
    assert ok.ok
    bad = check_request(page, ResourceRequest(), [("compiler", "cc")])
    assert not bad.ok
    assert "missing compiler 'cc'" in bad.summary()
