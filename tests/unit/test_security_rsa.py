"""Unit tests for number theory and RSA signatures."""

import random

import pytest

from repro.security import RSAKeyPair, SignatureInvalid, sign, verify
from repro.security.numbertheory import (
    egcd,
    generate_prime,
    is_probable_prime,
    modinv,
)

KEY = RSAKeyPair.generate(bits=384, seed=7)  # shared; keygen is the slow part


# ----------------------------------------------------------- number theory
def test_egcd_basic():
    g, x, y = egcd(240, 46)
    assert g == 2
    assert 240 * x + 46 * y == 2


def test_modinv():
    assert (3 * modinv(3, 11)) % 11 == 1
    assert (17 * modinv(17, 3120)) % 3120 == 1


def test_modinv_not_coprime():
    with pytest.raises(ValueError):
        modinv(4, 8)


@pytest.mark.parametrize("p", [2, 3, 5, 7, 97, 7919, 104729])
def test_known_primes(p):
    assert is_probable_prime(p, random.Random(0))


@pytest.mark.parametrize("n", [0, 1, 4, 100, 7917, 104730, 561, 41041])
def test_known_composites(n):
    # includes Carmichael numbers 561, 41041
    assert not is_probable_prime(n, random.Random(0))


def test_generate_prime_bit_length():
    rng = random.Random(42)
    for bits in (16, 32, 64):
        p = generate_prime(bits, rng)
        assert p.bit_length() == bits
        assert is_probable_prime(p, rng)


def test_generate_prime_too_small():
    with pytest.raises(ValueError):
        generate_prime(4, random.Random(0))


def test_generate_prime_deterministic():
    assert generate_prime(32, random.Random(5)) == generate_prime(32, random.Random(5))


# ------------------------------------------------------------------- RSA
def test_keygen_deterministic():
    k1 = RSAKeyPair.generate(bits=384, seed=1)
    k2 = RSAKeyPair.generate(bits=384, seed=1)
    assert k1.public == k2.public
    assert k1.d == k2.d


def test_keygen_different_seeds_differ():
    k1 = RSAKeyPair.generate(bits=384, seed=1)
    k2 = RSAKeyPair.generate(bits=384, seed=2)
    assert k1.public != k2.public


def test_keygen_rejects_tiny_modulus():
    with pytest.raises(ValueError):
        RSAKeyPair.generate(bits=64, seed=0)


def test_sign_verify_roundtrip():
    sig = sign(KEY, b"hello unicore")
    verify(KEY.public, b"hello unicore", sig)  # must not raise


def test_verify_rejects_modified_data():
    sig = sign(KEY, b"original")
    with pytest.raises(SignatureInvalid):
        verify(KEY.public, b"originaX", sig)


def test_verify_rejects_modified_signature():
    sig = sign(KEY, b"data")
    with pytest.raises(SignatureInvalid):
        verify(KEY.public, b"data", sig + 1)


def test_verify_rejects_wrong_key():
    other = RSAKeyPair.generate(bits=384, seed=99)
    sig = sign(KEY, b"data")
    with pytest.raises(SignatureInvalid):
        verify(other.public, b"data", sig)


def test_verify_rejects_out_of_range_signature():
    with pytest.raises(SignatureInvalid):
        verify(KEY.public, b"data", 0)
    with pytest.raises(SignatureInvalid):
        verify(KEY.public, b"data", KEY.public.n)
    with pytest.raises(SignatureInvalid):
        verify(KEY.public, b"data", "bogus")


def test_signature_deterministic():
    assert sign(KEY, b"abc") == sign(KEY, b"abc")


def test_empty_message_signs():
    sig = sign(KEY, b"")
    verify(KEY.public, b"", sig)


def test_public_key_fingerprint_stable_and_distinct():
    other = RSAKeyPair.generate(bits=384, seed=99)
    assert KEY.public.fingerprint() == KEY.public.fingerprint()
    assert KEY.public.fingerprint() != other.public.fingerprint()
    assert len(KEY.public.fingerprint()) == 16


def test_public_key_dict_roundtrip():
    from repro.security import RSAPublicKey

    d = KEY.public.to_dict()
    assert RSAPublicKey.from_dict(d) == KEY.public


def test_keypair_sign_method():
    sig = KEY.sign(b"method")
    verify(KEY.public, b"method", sig)


def test_key_bits_property():
    assert KEY.public.bits == 384
