"""Tests for the deterministic RNG plumbing."""

from repro.simkernel import SeedSequenceFactory, derive_rng


def test_same_seed_same_stream():
    a = derive_rng(1, "x").random(16)
    b = derive_rng(1, "x").random(16)
    assert (a == b).all()


def test_different_names_different_streams():
    a = derive_rng(1, "x").random(16)
    b = derive_rng(1, "y").random(16)
    assert not (a == b).all()


def test_different_seeds_different_streams():
    a = derive_rng(1, "x").random(16)
    b = derive_rng(2, "x").random(16)
    assert not (a == b).all()


def test_factory_reissue_is_fresh_stream():
    f = SeedSequenceFactory(7)
    a = f.rng("w").random(8)
    b = f.rng("w").random(8)
    assert (a == b).all()


def test_factory_tracks_issued_names():
    f = SeedSequenceFactory(7)
    f.rng("alpha")
    f.seed_for("beta")
    assert f.issued_names == frozenset({"alpha", "beta"})


def test_seed_for_is_stable_integer():
    f1 = SeedSequenceFactory(3)
    f2 = SeedSequenceFactory(3)
    assert f1.seed_for("link") == f2.seed_for("link")
    assert isinstance(f1.seed_for("link"), int)
