"""The shared PEP 562 deprecation-shim machinery (repro._compat).

Four modules route their moved names through ``deprecated_module_attr``;
this suite pins the machinery's contract directly — warn exactly once
per name, forward to the real home, cache into module globals, report
moved names from ``dir()`` — and then spot-checks one real shim module
end to end.
"""

import warnings

import pytest

from repro._compat import deprecated_module_attr


def make_shim(module_globals=None, **kwargs):
    module_globals = module_globals if module_globals is not None else {}
    getattr_, dir_ = deprecated_module_attr(
        "fake.legacy",
        module_globals,
        homes={"JobJournal": "repro.storage.journal", "pi": "math"},
        **kwargs,
    )
    return getattr_, dir_, module_globals


def test_forwards_attribute_from_its_new_home():
    getattr_, _, _ = make_shim()
    import math

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        assert getattr_("pi") is math.pi

    from repro.storage.journal import JobJournal

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        assert getattr_("JobJournal") is JobJournal


def test_unknown_attribute_raises_attribute_error():
    getattr_, _, _ = make_shim()
    with pytest.raises(AttributeError, match="fake.legacy.*nope"):
        getattr_("nope")


def test_warns_once_per_name_with_new_home_in_message():
    getattr_, _, module_globals = make_shim()
    with pytest.warns(DeprecationWarning, match=r"fake\.legacy\.pi.*math"):
        getattr_("pi")
    # The warn-once set is exposed for tests; the name is now recorded.
    assert "pi" in module_globals["_warned"]
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        getattr_("pi")  # second direct call: resolved silently
    # A different name still warns.
    with pytest.warns(DeprecationWarning, match="JobJournal"):
        getattr_("JobJournal")


def test_hint_is_appended_to_the_warning():
    module_globals = {}
    getattr_, _ = deprecated_module_attr(
        "fake.legacy", module_globals, homes={"pi": "math"},
        hint="(see the migration notes)",
    )
    with pytest.warns(DeprecationWarning, match="migration notes"):
        getattr_("pi")


def test_caches_resolved_value_into_module_globals():
    getattr_, _, module_globals = make_shim()
    assert "pi" not in module_globals
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        value = getattr_("pi")
    # PEP 562: once the name is in the module's globals, the module
    # __getattr__ is never consulted for it again.
    assert module_globals["pi"] is value


def test_dir_reports_moved_names_plus_declared_all():
    _, dir_, _ = make_shim({"__all__": ["existing"]})
    listing = dir_()
    assert listing == sorted(listing)
    assert {"JobJournal", "pi", "existing"} <= set(listing)


def test_public_extends_the_dir_set():
    module_globals = {"__all__": ["declared"]}
    _, dir_ = deprecated_module_attr(
        "fake.legacy", module_globals, homes={"pi": "math"},
        public=["extra"],
    )
    # dir() is the union: public extras + the module's __all__ + homes.
    assert set(dir_()) == {"extra", "declared", "pi"}


def test_real_shim_module_roundtrip():
    """The net.transport shim forwards, warns once, and shows in dir()."""
    import repro.net.transport as legacy

    legacy._warned.discard("Network")
    legacy.__dict__.pop("Network", None)
    with pytest.warns(DeprecationWarning, match="repro.net.sim_transport"):
        first = legacy.Network
    from repro.net.sim_transport import Network

    assert first is Network
    # Cached: attribute access no longer reaches the module __getattr__.
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        assert legacy.Network is Network
    assert "Network" in dir(legacy)
