"""Unit tests for the virtual filesystem and the UNICORE data spaces."""

import pytest

from repro.vfs import (
    FileExistsVFSError,
    FileNotFoundVFSError,
    InMemoryFileSystem,
    QuotaExceededError,
    UspaceManager,
    VFSError,
    Workstation,
    Xspace,
    copy_file,
    copy_tree,
)
from repro.vfs.filesystem import normalize


# -------------------------------------------------------------- normalize
def test_normalize_forms():
    assert normalize("a/b/c") == "/a/b/c"
    assert normalize("/a//b/./c/") == "/a/b/c"
    assert normalize("a/b/../c") == "/a/c"
    assert normalize("/") == "/"


def test_normalize_rejects_escape():
    with pytest.raises(VFSError):
        normalize("../etc/passwd")
    with pytest.raises(VFSError):
        normalize("a/../../b")
    with pytest.raises(VFSError):
        normalize("")


# -------------------------------------------------------------- filesystem
def test_write_read_roundtrip():
    fs = InMemoryFileSystem()
    fs.write("/a/b.txt", b"hello")
    assert fs.read("a/b.txt") == b"hello"
    assert fs.size("/a/b.txt") == 5
    assert fs.is_file("/a/b.txt")
    assert fs.is_dir("/a")


def test_read_missing_raises():
    with pytest.raises(FileNotFoundVFSError):
        InMemoryFileSystem().read("/nope")


def test_overwrite_flag():
    fs = InMemoryFileSystem()
    fs.write("/f", b"one")
    with pytest.raises(FileExistsVFSError):
        fs.write("/f", b"two", overwrite=False)
    fs.write("/f", b"two")
    assert fs.read("/f") == b"two"


def test_quota_enforced_and_accounts_replacement():
    fs = InMemoryFileSystem(quota_bytes=10)
    fs.write("/a", b"12345")
    fs.write("/b", b"12345")
    with pytest.raises(QuotaExceededError):
        fs.write("/c", b"x")
    # Replacing /a with something the same size is fine.
    fs.write("/a", b"abcde")
    # Shrinking frees quota.
    fs.write("/a", b"ab")
    fs.write("/c", b"xyz")
    assert fs.used_bytes == 10
    assert fs.free_bytes == 0


def test_quota_must_be_positive():
    with pytest.raises(VFSError):
        InMemoryFileSystem(quota_bytes=0)


def test_delete_file_frees_quota():
    fs = InMemoryFileSystem(quota_bytes=5)
    fs.write("/a", b"12345")
    fs.delete("/a")
    assert fs.used_bytes == 0
    fs.write("/b", b"12345")


def test_delete_directory_recursive():
    fs = InMemoryFileSystem()
    fs.write("/d/x", b"1")
    fs.write("/d/sub/y", b"22")
    fs.write("/keep", b"3")
    fs.delete("/d")
    assert not fs.exists("/d")
    assert not fs.exists("/d/sub/y")
    assert fs.exists("/keep")
    assert fs.used_bytes == 1


def test_delete_missing_raises():
    with pytest.raises(FileNotFoundVFSError):
        InMemoryFileSystem().delete("/ghost")


def test_delete_root_refused():
    with pytest.raises(VFSError):
        InMemoryFileSystem().delete("/")


def test_mkdir_and_listdir():
    fs = InMemoryFileSystem()
    fs.mkdir("/a/b")
    fs.write("/a/f.txt", b"x")
    fs.write("/a/b/g.txt", b"y")
    assert fs.listdir("/a") == ["b", "f.txt"]
    assert fs.listdir("/a/b") == ["g.txt"]
    assert fs.listdir("/") == ["a"]


def test_listdir_missing():
    with pytest.raises(FileNotFoundVFSError):
        InMemoryFileSystem().listdir("/nope")


def test_file_dir_conflicts():
    fs = InMemoryFileSystem()
    fs.write("/f", b"x")
    with pytest.raises(FileExistsVFSError):
        fs.mkdir("/f")
    with pytest.raises(FileExistsVFSError):
        fs.write("/f/child", b"y")  # /f is a file, not a directory
    fs.mkdir("/d")
    with pytest.raises(FileExistsVFSError):
        fs.write("/d", b"z")


def test_walk_files_sorted_and_scoped():
    fs = InMemoryFileSystem()
    fs.write("/a/2", b"")
    fs.write("/a/1", b"")
    fs.write("/b/3", b"")
    assert list(fs.walk_files("/a")) == ["/a/1", "/a/2"]
    assert list(fs.walk_files()) == ["/a/1", "/a/2", "/b/3"]


def test_append():
    fs = InMemoryFileSystem()
    fs.append("/log", b"one\n")
    fs.append("/log", b"two\n")
    assert fs.read("/log") == b"one\ntwo\n"


def test_write_requires_bytes():
    with pytest.raises(VFSError):
        InMemoryFileSystem().write("/f", "a string")


# ----------------------------------------------------------------- spaces
def test_workstation_stage_for_ajo():
    ws = Workstation("CN=Alice")
    ws.fs.write("/home/alice/input.dat", b"data")
    ws.fs.write("/home/alice/other.dat", b"other")
    staged = ws.stage_for_ajo(["/home/alice/input.dat"])
    assert staged == {"/home/alice/input.dat": b"data"}


def test_uspace_lifecycle():
    mgr = UspaceManager("FZJ-T3E")
    u = mgr.create("job1")
    u.write("input.dat", b"1234")
    assert u.read("input.dat") == b"1234"
    assert u.exists("input.dat")
    assert u.files() == ["input.dat"]
    assert u.used_bytes() == 4
    assert mgr.active_jobs == ["job1"]
    mgr.destroy("job1")
    assert mgr.active_jobs == []
    assert not mgr.fs.exists("/jobs/job1")


def test_uspace_isolation_between_jobs():
    mgr = UspaceManager("V")
    u1, u2 = mgr.create("j1"), mgr.create("j2")
    u1.write("f", b"one")
    u2.write("f", b"two")
    assert u1.read("f") == b"one"
    assert u2.read("f") == b"two"


def test_uspace_duplicate_create_rejected():
    mgr = UspaceManager("V")
    mgr.create("j")
    with pytest.raises(VFSError):
        mgr.create("j")


def test_uspace_get_missing():
    with pytest.raises(VFSError):
        UspaceManager("V").get("ghost")


def test_uspace_absolute_path_treated_as_relative():
    mgr = UspaceManager("V")
    u = mgr.create("j")
    u.write("/abs.txt", b"x")
    assert u.read("abs.txt") == b"x"
    # Must land inside the job directory, not the fs root.
    assert mgr.fs.is_file("/jobs/j/abs.txt")


# ----------------------------------------------------------------- copies
def test_copy_file_between_spaces():
    x = Xspace("FZJ")
    x.fs.write("/arch/input.dat", b"payload")
    mgr = UspaceManager("FZJ-T3E")
    u = mgr.create("j")
    moved = copy_file(x.fs, "/arch/input.dat", u, "input.dat")
    assert moved == 7
    assert u.read("input.dat") == b"payload"


def test_copy_tree():
    src = InMemoryFileSystem()
    src.write("/data/a.txt", b"aa")
    src.write("/data/sub/b.txt", b"bbb")
    dst = InMemoryFileSystem()
    moved = copy_tree(src, "/data", dst, "/backup")
    assert moved == 5
    assert dst.read("/backup/a.txt") == b"aa"
    assert dst.read("/backup/sub/b.txt") == b"bbb"


def test_copy_respects_destination_quota():
    src = InMemoryFileSystem()
    src.write("/big", b"x" * 100)
    dst = InMemoryFileSystem(quota_bytes=10)
    with pytest.raises(QuotaExceededError):
        copy_file(src, "/big", dst, "/big")
