"""Unit tests for the consign-time static analyzer.

One test (at least) per stable diagnostic code — the codes are a wire
contract, so each test pins both the code and the severity — plus the
report/diagnostic model and the ``validate_ajo`` compatibility wrapper.
"""

import pytest

from repro.ajo import (
    AbstractJobObject,
    CompileTask,
    ExportTask,
    ImportTask,
    LinkTask,
    TransferTask,
    UserTask,
)
from repro.ajo.errors import DependencyCycleError, ValidationError
from repro.ajo.validate import validate_ajo
from repro.analysis import (
    AnalysisContext,
    AnalysisError,
    Severity,
    analyze_ajo,
    dataflow_pass,
    feasibility_pass,
    structure_pass,
)
from repro.batch.base import QueueConfig
from repro.resources import ResourceRequest
from repro.resources.editor import ResourcePageEditor


def make_job(name="job", vsite="V", usite="", user_dn="CN=Tester"):
    return AbstractJobObject(name=name, vsite=vsite, usite=usite, user_dn=user_dn)


def make_page(vsite="V", max_cpus=64, compilers=("f90",), libraries=()):
    editor = (
        ResourcePageEditor(vsite)
        .set_system("T3E", "unicos", 100.0)
        .set_range("cpus", 1, max_cpus)
        .set_range("time_s", 0, 86400)
        .set_range("memory_mb", 0, 65536)
        .set_range("disk_permanent_mb", 0, 10**6)
        .set_range("disk_temporary_mb", 0, 10**6)
    )
    for name in compilers:
        editor.add_compiler(name)
    for name in libraries:
        editor.add_library(name)
    return editor.publish()


def codes(diags):
    return [d.code for d in diags]


def find(diags, code):
    matches = [d for d in diags if d.code == code]
    assert matches, f"expected {code} in {codes(diags)}"
    return matches[0]


# ---------------------------------------------------------------- structure


def test_ajo101_missing_user_dn():
    job = make_job(user_dn="")
    job.add(UserTask(name="t", executable="/bin/true"))
    diag = find(structure_pass(job), "AJO101")
    assert diag.severity is Severity.ERROR
    assert "user DN" in diag.message
    # Forwarded sub-AJOs inherit the user from the consignment.
    assert "AJO101" not in codes(structure_pass(job, require_user=False))


def test_ajo102_duplicate_action_id():
    job = make_job()
    job.add(UserTask(name="a", executable="/bin/a", action_id="dup000001"))
    sub = make_job(name="inner", user_dn="")
    sub.add(UserTask(name="b", executable="/bin/b", action_id="dup000001"))
    job.add(sub)
    diag = find(structure_pass(job), "AJO102")
    assert diag.severity is Severity.ERROR
    assert diag.action_id == "dup000001"


def test_ajo103_group_with_tasks_but_no_vsite():
    job = make_job(vsite="")
    job.add(UserTask(name="t", executable="/bin/true"))
    diag = find(structure_pass(job), "AJO103")
    assert diag.severity is Severity.ERROR
    assert "Vsite" in diag.message


def test_ajo104_dependency_cycle():
    job = make_job()
    a = UserTask(name="a", executable="/bin/a")
    b = UserTask(name="b", executable="/bin/b")
    job.add(a)
    job.add(b)
    job.add_dependency(a, b)
    job.add_dependency(b, a)
    diag = find(structure_pass(job), "AJO104")
    assert diag.severity is Severity.ERROR


def test_ajo105_transfer_to_own_usite():
    job = make_job(usite="FZJ")
    job.add(
        TransferTask(
            name="t",
            source_path="f.dat",
            destination_path="f.dat",
            destination_usite="FZJ",
        )
    )
    diag = find(structure_pass(job), "AJO105")
    assert diag.severity is Severity.ERROR
    assert "own Usite" in diag.message


def test_ajo106_empty_group_is_a_note():
    job = make_job()
    job.add(make_job(name="empty", user_dn=""))
    diag = find(structure_pass(job), "AJO106")
    assert diag.severity is Severity.NOTE
    # Notes never block consignment.
    assert analyze_ajo(job).ok


# ----------------------------------------------------------------- dataflow


def test_ajo201_export_of_never_produced_file():
    job = make_job()
    job.add(UserTask(name="work", executable="/bin/true"))
    job.add(
        ExportTask(name="out", source_path="ghost.dat", destination_path="/x/g")
    )
    diag = find(dataflow_pass(job), "AJO201")
    assert diag.severity is Severity.ERROR
    assert "ghost.dat" in diag.message


def test_ajo201_suppressed_when_prestaged():
    job = make_job()
    job.add(
        ExportTask(name="out", source_path="staged.dat", destination_path="/x/s")
    )
    assert "AJO201" in codes(dataflow_pass(job))
    assert "AJO201" not in codes(
        dataflow_pass(job, prestaged=frozenset({"staged.dat"}))
    )


def test_ajo202_read_races_unordered_producer():
    job = make_job()
    a = UserTask(name="a", executable="/bin/a")
    b = UserTask(name="b", executable="/bin/b")
    exp = ExportTask(name="out", source_path="f.dat", destination_path="/x/f")
    job.add(a)
    job.add(b)
    job.add(exp)
    # a produces f.dat (edge to b carries it), but the export has no
    # ordering with a: the read races the write.
    job.add_dependency(a, b, files=["f.dat"])
    diag = find(dataflow_pass(job), "AJO202")
    assert diag.severity is Severity.ERROR
    assert diag.action_id == exp.id


def test_ajo203_concurrent_writers_of_same_path():
    job = make_job()
    job.add(ImportTask(name="i1", source_path="/in/a", destination_path="f.dat"))
    job.add(ImportTask(name="i2", source_path="/in/b", destination_path="f.dat"))
    diag = find(dataflow_pass(job), "AJO203")
    assert diag.severity is Severity.ERROR
    assert "write-write" in diag.message


def test_ajo203_silent_when_writers_are_ordered():
    job = make_job()
    i1 = ImportTask(name="i1", source_path="/in/a", destination_path="f.dat")
    i2 = ImportTask(name="i2", source_path="/in/b", destination_path="f.dat")
    job.add(i1)
    job.add(i2)
    job.add_dependency(i1, i2)
    assert "AJO203" not in codes(dataflow_pass(job))


def test_ajo204_dead_import():
    job = make_job()
    job.add(ImportTask(name="i", source_path="/in/a", destination_path="unused.dat"))
    diag = find(dataflow_pass(job), "AJO204")
    assert diag.severity is Severity.WARNING


def test_ajo205_execute_input_never_staged():
    job = make_job()
    job.add(UserTask(name="run", executable="prog.exe"))
    diag = find(dataflow_pass(job), "AJO205")
    assert diag.severity is Severity.WARNING
    assert "prog.exe" in diag.message
    # Site-installed absolute paths are not Uspace reads.
    clean = make_job()
    clean.add(UserTask(name="run", executable="/usr/bin/prog"))
    assert "AJO205" not in codes(dataflow_pass(clean))


def test_ajo206_subgroup_cannot_keep_its_promise():
    job = make_job()
    sub = make_job(name="inner", user_dn="")
    sub.add(ImportTask(name="i", source_path="/in/a", destination_path="other.dat"))
    job.add(sub)
    consumer = UserTask(name="use", executable="/bin/use")
    job.add(consumer)
    job.add_dependency(sub, consumer, files=["result.dat"])
    diag = find(dataflow_pass(job), "AJO206")
    assert diag.severity is Severity.WARNING
    assert "result.dat" in diag.message


def test_clean_pipeline_has_no_dataflow_findings():
    job = make_job()
    imp = ImportTask(name="in", source_path="/in/a", destination_path="a.dat")
    compile_ = CompileTask(name="cc", sources=["a.dat"])
    link = LinkTask(name="ld", objects=compile_.object_files(), output="prog")
    run = UserTask(name="run", executable="prog")
    exp = ExportTask(name="out", source_path="res.dat", destination_path="/x/r")
    for task in (imp, compile_, link, run, exp):
        job.add(task)
    job.add_dependency(imp, compile_)
    job.add_dependency(compile_, link)
    job.add_dependency(link, run)
    job.add_dependency(run, exp, files=["res.dat"])
    assert dataflow_pass(job) == []


# -------------------------------------------------------------- feasibility


def test_ajo301_unknown_vsite_server_side_only():
    job = make_job(vsite="NOWHERE")
    job.add(UserTask(name="t", executable="/bin/true"))
    strict = AnalysisContext(pages={}, require_vsites=True)
    diag = find(feasibility_pass(job, strict), "AJO301")
    assert diag.severity is Severity.ERROR
    # Client side the destination NJS is the authority: no finding.
    assert feasibility_pass(job, AnalysisContext()) == []


def test_ajo302_resource_request_beyond_page():
    job = make_job()
    job.add(
        UserTask(
            name="big",
            executable="/bin/big",
            resources=ResourceRequest(cpus=128, time_s=60),
        )
    )
    context = AnalysisContext(pages={"V": make_page(max_cpus=64)})
    diag = find(feasibility_pass(job, context), "AJO302")
    assert diag.severity is Severity.ERROR
    assert "above maximum" in diag.message


def test_ajo303_missing_software():
    job = make_job()
    job.add(CompileTask(name="cc", sources=["/src/a.f"], compiler="cray-f90"))
    context = AnalysisContext(pages={"V": make_page(compilers=("gcc",))})
    diag = find(feasibility_pass(job, context), "AJO303")
    assert diag.severity is Severity.ERROR
    assert "cray-f90" in diag.message
    ok = AnalysisContext(pages={"V": make_page(compilers=("cray-f90",))})
    assert "AJO303" not in codes(feasibility_pass(job, ok))


def test_ajo304_forwarded_group_without_route():
    job = make_job(usite="FZJ")
    sub = make_job(name="remote", vsite="ZIB-SP2", usite="ZIB", user_dn="")
    sub.add(UserTask(name="t", executable="/bin/true"))
    job.add(sub)
    context = AnalysisContext(
        pages={"V": make_page()},
        local_usite="FZJ",
        known_usites=frozenset(),
        require_vsites=True,
    )
    diag = find(feasibility_pass(job, context), "AJO304")
    assert diag.severity is Severity.ERROR
    routed = AnalysisContext(
        pages={"V": make_page()},
        local_usite="FZJ",
        known_usites=frozenset({"ZIB"}),
        require_vsites=True,
    )
    assert "AJO304" not in codes(feasibility_pass(job, routed))


def test_ajo305_transfer_without_route_is_a_warning():
    job = make_job(usite="FZJ")
    work = UserTask(name="w", executable="/bin/w")
    transfer = TransferTask(
        name="t",
        source_path="f.dat",
        destination_path="f.dat",
        destination_usite="ELSEWHERE",
    )
    job.add(work)
    job.add(transfer)
    job.add_dependency(work, transfer, files=["f.dat"])
    context = AnalysisContext(
        pages={"V": make_page()},
        local_usite="FZJ",
        known_usites=frozenset({"ZIB"}),
        require_vsites=True,
    )
    diag = find(feasibility_pass(job, context), "AJO305")
    # A route may appear later: the job may still consign.
    assert diag.severity is Severity.WARNING
    assert analyze_ajo(job, context).ok


def test_ajo306_no_queue_admits_is_a_warning():
    job = make_job()
    job.add(
        UserTask(
            name="wide",
            executable="/bin/wide",
            resources=ResourceRequest(cpus=32, time_s=60),
        )
    )
    context = AnalysisContext(
        pages={"V": make_page()},
        queues={"V": (QueueConfig("small", max_cpus=4, max_time_s=3600),)},
    )
    diag = find(feasibility_pass(job, context), "AJO306")
    assert diag.severity is Severity.WARNING


def test_ajo307_unknown_dialect_fails_dry_run():
    job = make_job()
    job.add(UserTask(name="t", executable="/bin/true"))
    context = AnalysisContext(
        pages={"V": make_page()}, dialects={"V": "no-such-batch-system"}
    )
    diag = find(feasibility_pass(job, context), "AJO307")
    assert diag.severity is Severity.ERROR


def test_ajo308_sub_unit_request_truncates_to_zero():
    job = make_job()
    job.add(
        UserTask(
            name="tiny",
            executable="/bin/tiny",
            resources=ResourceRequest(cpus=1, time_s=0.5),
        )
    )
    context = AnalysisContext(pages={"V": make_page()}, dialects={"V": "nqs"})
    diag = find(feasibility_pass(job, context), "AJO308")
    assert diag.severity is Severity.WARNING
    assert "time_s" in diag.message


# ------------------------------------------------- report model & wrapper


def test_report_partitions_and_renders():
    job = make_job(user_dn="")
    job.add(
        ExportTask(name="out", source_path="ghost.dat", destination_path="/x/g")
    )
    job.add(ImportTask(name="i", source_path="/in/a", destination_path="dead.dat"))
    report = analyze_ajo(job)
    assert not report.ok
    assert {d.code for d in report.errors} >= {"AJO101", "AJO201"}
    assert "AJO204" in {d.code for d in report.warnings}
    assert report.summary().startswith(f"job {job.name!r} ({job.id})")
    rendered = report.render()
    for diag in report.diagnostics:
        assert diag.render() in rendered
    payload = report.to_dict()
    assert payload["ok"] is False
    assert payload["errors"] == len(report.errors)
    assert [d["code"] for d in payload["diagnostics"]] == codes(report.diagnostics)


def test_diagnostic_paths_locate_the_action():
    job = make_job()
    sub = make_job(name="inner", user_dn="")
    exp = ExportTask(name="out", source_path="ghost.dat", destination_path="/x/g")
    sub.add(exp)
    job.add(sub)
    diag = find(analyze_ajo(job).diagnostics, "AJO201")
    assert diag.path == (job.id, sub.id, exp.id)
    assert diag.action_id == exp.id


def test_analysis_error_carries_primary_code():
    job = make_job()
    job.add(
        ExportTask(name="out", source_path="ghost.dat", destination_path="/x/g")
    )
    report = analyze_ajo(job)
    err = AnalysisError(report)
    assert isinstance(err, ValidationError)
    assert err.code == "AJO201"
    assert err.report is report


def test_validate_ajo_wrapper_keeps_historical_behaviour():
    job = make_job(user_dn="")
    with pytest.raises(ValidationError, match="user DN"):
        validate_ajo(job)
    validate_ajo(job, require_user=False)  # must not raise

    cyclic = make_job()
    a = UserTask(name="a", executable="/bin/a")
    b = UserTask(name="b", executable="/bin/b")
    cyclic.add(a)
    cyclic.add(b)
    cyclic.add_dependency(a, b)
    cyclic.add_dependency(b, a)
    with pytest.raises(DependencyCycleError):
        validate_ajo(cyclic)

    # Warnings (dead import would be AJO204) never raise.
    warned = make_job()
    warned.add(
        ImportTask(name="i", source_path="/in/a", destination_path="unused.dat")
    )
    validate_ajo(warned)


def test_analyze_ajo_is_deterministic():
    job = make_job(user_dn="")
    job.add(ImportTask(name="i1", source_path="/in/a", destination_path="f.dat"))
    job.add(ImportTask(name="i2", source_path="/in/b", destination_path="f.dat"))
    job.add(
        ExportTask(name="out", source_path="ghost.dat", destination_path="/x/g")
    )
    first = analyze_ajo(job)
    second = analyze_ajo(job)
    assert first.diagnostics == second.diagnostics
