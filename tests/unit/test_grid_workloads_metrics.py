"""Unit tests for workload generation and metrics helpers."""

import numpy as np
import pytest

from repro.batch import BatchSystem, machine
from repro.grid import (
    LocalLoadGenerator,
    WorkloadProfile,
    build_grid,
    synth_job,
)
from repro.grid.metrics import TierTimes, percentiles, summarize_turnarounds
from repro.simkernel import Simulator, derive_rng


# ----------------------------------------------------------------- profile
def test_profile_runtime_distribution_mean():
    profile = WorkloadProfile(mean_runtime_s=1000.0, sigma_runtime=0.5)
    rng = derive_rng(1, "p")
    samples = [profile.sample_runtime(rng) for _ in range(4000)]
    assert np.mean(samples) == pytest.approx(1000.0, rel=0.1)
    assert min(samples) > 0


def test_profile_cpus_are_powers_of_two_within_bounds():
    profile = WorkloadProfile(min_cpus=2, max_cpus=64)
    rng = derive_rng(1, "c")
    for _ in range(200):
        cpus = profile.sample_cpus(rng)
        assert 2 <= cpus <= 64
        assert cpus & (cpus - 1) == 0


# ---------------------------------------------------------------- synth_job
def test_synth_job_builds_valid_pipeline():
    grid = build_grid({"FZJ": ["FZJ-T3E"]}, seed=31)
    user = grid.add_user("W", logins={"FZJ": "w"})
    session = grid.connect_user(user, "FZJ")
    from repro.client import JobPreparationAgent

    jpa = JobPreparationAgent(session)
    rng = derive_rng(31, "wl")
    builder = synth_job(jpa, rng, "job7", vsite="FZJ-T3E")
    from repro.ajo import validate_ajo

    validate_ajo(builder.ajo)
    kinds = {type(t).__name__ for t in builder.ajo.tasks()}
    assert "ImportTask" in kinds and "ExportTask" in kinds
    assert len(builder.ajo.dependencies) >= 2


def test_synth_job_deterministic_per_seed():
    grid = build_grid({"FZJ": ["FZJ-T3E"]}, seed=31)
    user = grid.add_user("W", logins={"FZJ": "w"})
    session = grid.connect_user(user, "FZJ")
    from repro.client import JobPreparationAgent

    jpa = JobPreparationAgent(session)
    a = synth_job(jpa, derive_rng(5, "x"), "j", vsite="FZJ-T3E")
    b = synth_job(jpa, derive_rng(5, "x"), "j", vsite="FZJ-T3E")
    ra = [t.resources for t in a.ajo.tasks()]
    rb = [t.resources for t in b.ajo.tasks()]
    assert ra == rb


# ------------------------------------------------------------- local load
def test_local_load_generator_submits_poisson_stream():
    sim = Simulator()
    batch = BatchSystem(sim, machine("RUKA-SP2"))
    gen = LocalLoadGenerator(
        sim, batch, derive_rng(3, "load"),
        arrival_rate_per_s=1 / 100.0, horizon_s=20_000.0,
        profile=WorkloadProfile(mean_runtime_s=500.0, max_cpus=16),
    )
    sim.run()
    # ~200 expected arrivals; allow wide tolerance.
    assert 120 < len(gen.submitted) < 300
    records = batch.all_records()
    assert all(r.state.is_terminal for r in records)
    assert all(r.spec.origin == "local" for r in records)
    # Scripts are in the machine's dialect.
    assert all("#@" in r.spec.script for r in records)


def test_local_load_generator_stops_at_horizon():
    sim = Simulator()
    batch = BatchSystem(sim, machine("RUKA-SP2"))
    LocalLoadGenerator(
        sim, batch, derive_rng(3, "load2"),
        arrival_rate_per_s=1 / 10.0, horizon_s=1000.0,
    )
    sim.run()
    assert all(
        r.submit_time <= 1000.0 for r in batch.all_records()
    )


# ------------------------------------------------------------------ metrics
def test_tier_times_accounting():
    t = TierTimes(handshake_s=1.0, consign_s=0.5, gateway_auth_s=0.2,
                  incarnation_s=0.1, batch_wait_s=10.0, execution_s=100.0,
                  outcome_return_s=0.2)
    assert t.middleware_total() == pytest.approx(2.0)
    assert t.total() == pytest.approx(112.0)
    labels = [label for label, _ in t.rows()]
    assert "execution" in labels and "batch queue wait" in labels


def test_summarize_turnarounds():
    s = summarize_turnarounds([1.0, 2.0, 3.0, 4.0, 100.0])
    assert s["count"] == 5
    assert s["mean"] == pytest.approx(22.0)
    assert s["p50"] == 3.0
    assert s["max"] == 100.0


def test_summarize_empty():
    s = summarize_turnarounds([])
    assert s["count"] == 0
    assert np.isnan(s["mean"])


def test_percentiles():
    p = percentiles(list(range(101)))
    assert p[50] == 50.0
    assert p[99] == 99.0
    assert np.isnan(percentiles([])[50])
