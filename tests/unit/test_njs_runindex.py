"""Unit + property tests for the NJS run index and job change-log.

The supervisor's bookkeeping moved from linear ``_runs`` scans to the
incremental tables in :mod:`repro.server.njs.runindex`.  These tests pin
the two invariants that make that safe:

1. the index always agrees with a ground-truth rebuild from the run
   table, across every state transition and across crash recovery;
2. a client that replays delta views from seq 0 reconstructs exactly
   the full listing the server would have sent.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid import build_grid
from repro.observability import telemetry_for
from repro.protocol.views import JobListing
from repro.server.njs.runindex import JobChangeLog, RunIndex


# -- RunIndex: direct table bookkeeping ------------------------------------

def test_index_add_note_discard_lifecycle():
    index = RunIndex()
    index.add("j1@A", "CN=alice", "queued", terminal=False)
    index.add("j2@A", "CN=alice", "queued", terminal=False)
    index.add("j3@A", "CN=bob", "successful", terminal=True)

    assert len(index) == 3
    assert index.active_count("CN=alice") == 2
    assert index.active_count("CN=bob") == 0
    assert index.jobs_for("CN=alice") == {"j1@A", "j2@A"}
    assert index.active == {"j1@A", "j2@A"}
    assert index.terminal == {"j3@A"}

    # Intermediate transition: status changes but stays non-terminal.
    assert index.note_status("j1@A", "CN=alice", "executing", terminal=False)
    assert index.status_value("j1@A") == "executing"
    assert index.active_count("CN=alice") == 2

    # A repeated value is a no-op (and reports it did not change).
    assert not index.note_status("j1@A", "CN=alice", "executing", terminal=False)

    # Terminal transition moves the id across the partition.
    assert index.note_status("j1@A", "CN=alice", "successful", terminal=True)
    assert index.active == {"j2@A"}
    assert "j1@A" in index.terminal
    assert index.active_count("CN=alice") == 1

    index.discard("j1@A", "CN=alice")
    assert index.status_value("j1@A") is None
    assert index.jobs_for("CN=alice") == {"j2@A"}

    # Discarding an active job releases the quota slot too.
    index.discard("j2@A", "CN=alice")
    assert index.active_count("CN=alice") == 0
    assert index.jobs_for("CN=alice") == set()
    # Unknown ids are ignored.
    index.discard("j2@A", "CN=alice")
    assert len(index) == 1


class _FakeStatus:
    def __init__(self, value, terminal):
        self.value = value
        self.is_terminal = terminal


class _FakeRun:
    def __init__(self, user_dn, value, terminal):
        self.user_dn = user_dn
        self._status = _FakeStatus(value, terminal)

    def status(self):
        return self._status


def test_index_rebuild_matches_ground_truth():
    runs = {
        "a@X": _FakeRun("CN=u1", "queued", False),
        "b@X": _FakeRun("CN=u1", "successful", True),
        "c@X": _FakeRun("CN=u2", "executing", False),
    }
    index = RunIndex()
    index.rebuild(runs)
    index.verify(runs)
    assert index.active_count("CN=u1") == 1
    assert index.terminal == {"b@X"}

    # verify() must actually catch drift, not rubber-stamp.
    index.active.discard("a@X")
    with pytest.raises(AssertionError):
        index.verify(runs)


_STATES = ("consigned", "queued", "executing", "successful", "failed")
_TERMINAL = {"successful", "failed"}


@settings(max_examples=200, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),   # job number
            st.integers(min_value=0, max_value=2),   # user number
            st.sampled_from(_STATES + ("discard",)),
        ),
        max_size=40,
    )
)
def test_index_consistent_under_random_transitions(ops):
    """Any interleaving of add/transition/discard leaves the index
    agreeing with a ground-truth rebuild of the surviving run table."""
    index = RunIndex()
    runs: dict[str, _FakeRun] = {}
    owner: dict[str, str] = {}
    for job_no, user_no, action in ops:
        job_id, user_dn = f"j{job_no}@S", f"CN=u{user_no}"
        if action == "discard":
            if job_id in runs:
                index.discard(job_id, owner[job_id])
                del runs[job_id]
            continue
        terminal = action in _TERMINAL
        if job_id not in runs:
            runs[job_id] = _FakeRun(user_dn, action, terminal)
            owner[job_id] = user_dn
            index.add(job_id, user_dn, action, terminal)
        else:
            run = runs[job_id]
            if run._status.is_terminal:
                # Real runs never leave a terminal state.
                continue
            # Status notes come from the run's owner, not the random user.
            run._status = _FakeStatus(action, terminal)
            index.note_status(job_id, owner[job_id], action, terminal)
    index.verify(runs)


# -- JobChangeLog: versioned delta views -----------------------------------

def _listing(job_id, status="queued"):
    return JobListing(job_id=job_id, name=job_id, status=status)


def test_changelog_delta_supersedes_and_tombstones():
    log = JobChangeLog()
    log.record(_listing("a@X", "queued"), "CN=u")
    log.record(_listing("a@X", "executing"), "CN=u")
    cursor = log.record(_listing("b@X", "queued"), "CN=u")
    log.record(_listing("b@X", "successful"), "CN=u")
    log.record_removed("a@X", "CN=u")

    # From zero: one row per surviving job, removal tombstone for a@X.
    delta = log.delta_for("CN=u", 0)
    assert not delta.full
    assert [l.job_id for l in delta.listings] == ["b@X"]
    assert [l.status for l in delta.listings] == ["successful"]
    assert delta.removed == ("a@X",)
    assert delta.seq == log.seq

    # From a mid-log cursor: only what changed after it.
    delta = log.delta_for("CN=u", cursor)
    assert [l.job_id for l in delta.listings] == ["b@X"]
    assert delta.removed == ("a@X",)
    # Nothing after the head cursor.
    head = log.delta_for("CN=u", log.seq)
    assert head.listings == () and head.removed == ()

    # Users are isolated.
    assert log.delta_for("CN=other", 0).listings == ()

    fresh = log.next_epoch()
    assert fresh.epoch == log.epoch + 1
    assert fresh.seq == 0


@settings(max_examples=200, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=7),     # job number
            st.sampled_from(_STATES + ("remove",)),
            st.integers(min_value=0, max_value=1),     # user number
        ),
        max_size=50,
    ),
    cut=st.integers(min_value=0, max_value=50),
)
def test_delta_replay_reconstructs_full_listing(ops, cut):
    """A client replaying deltas from seq 0 — in any number of
    installments — ends up with exactly the server's current listing."""
    log = JobChangeLog()
    truth: dict[str, dict[str, JobListing]] = {"CN=u0": {}, "CN=u1": {}}
    mid_seq: dict[str, int] = {}
    for i, (job_no, action, user_no) in enumerate(ops):
        user_dn, job_id = f"CN=u{user_no}", f"j{job_no}@S"
        if action == "remove":
            log.record_removed(job_id, user_dn)
            truth[user_dn].pop(job_id, None)
        else:
            listing = _listing(job_id, action)
            log.record(listing, user_dn)
            truth[user_dn][job_id] = listing
        if i + 1 == cut:
            mid_seq = {dn: log.seq for dn in truth}

    for user_dn, expect in truth.items():
        # Single-shot replay from zero.
        replayed: dict[str, JobListing] = {}
        delta = log.delta_for(user_dn, 0)
        for item in delta.listings:
            replayed[item.job_id] = item
        for job_id in delta.removed:
            replayed.pop(job_id, None)
        assert replayed == expect

        # Two-installment replay (cursor handoff at an arbitrary cut).
        staged: dict[str, JobListing] = {}
        for since in (0, mid_seq.get(user_dn)):
            if since is None:
                continue
            delta = log.delta_for(user_dn, since if since else 0)
            for item in delta.listings:
                staged[item.job_id] = item
            for job_id in delta.removed:
                staged.pop(job_id, None)
        if mid_seq:
            assert staged == expect


# -- Supervisor integration: the index under real transitions ---------------

def _one_job_site():
    grid = build_grid({"FZJ": ["FZJ-T3E"]}, seed=7)
    user = grid.add_user("Index User", logins={"FZJ": "idx"})
    return grid, user


def test_supervisor_index_tracks_job_lifecycle_and_crash_replay():
    from repro.api import GridSession

    grid, user = _one_job_site()
    session = GridSession(grid, user, "FZJ")
    njs = grid.usites["FZJ"].njs

    job = session.new_job("indexed")
    job.script_task("work", "#!/bin/sh\nwork\n", simulated_runtime_s=400.0)
    handle = session.submit(job)
    njs._index.verify(njs._runs)
    assert njs._index.active_count(session.session.user_dn) == 1

    session.advance(30.0)
    njs._index.verify(njs._runs)

    # Crash mid-run: the rebuilt index agrees with the wiped table, the
    # rebuild counter ticks, and the change-log starts a new epoch.
    metrics = telemetry_for(grid.sim).metrics
    rebuilds_before = metrics.counter_value("njs.index.rebuilds")
    epoch_before = njs._changes.epoch
    njs.crash()
    njs._index.verify(njs._runs)
    assert metrics.counter_value("njs.index.rebuilds") == rebuilds_before + 1
    assert njs._changes.epoch == epoch_before + 1

    # Journal replay re-supervises the job; the index follows it all the
    # way to terminal.
    njs.restart()
    njs._index.verify(njs._runs)
    final = session.wait(handle)
    assert final.is_terminal
    njs._index.verify(njs._runs)
    assert njs._index.active_count(session.session.user_dn) == 0

    # Dispose drops the run from the table and the index together.
    session.outcome(handle)
    njs.dispose(handle.job_id)
    njs._index.verify(njs._runs)
    assert njs._index.status_value(handle.job_id) is None
