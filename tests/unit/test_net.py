"""Unit tests for the simulated network and https channels."""

import pytest

from repro.net import (
    ConnectionLost,
    DirectChannel,
    HostUnreachable,
    Network,
    NetworkError,
    establish_https,
)
from repro.net.transport import DEFAULT_TIMEOUT
from repro.security import CertificateAuthority, CertificateStore, DistinguishedName
from repro.security.ssl import HANDSHAKE_ROUND_TRIPS, SSLSession
from repro.security.x509 import CertificateRole
from repro.simkernel import Simulator


def make_net(loss=0.0, latency=0.01, bandwidth=1_000_000.0, seed=0):
    sim = Simulator()
    net = Network(sim, seed=seed)
    net.add_host("client")
    net.add_host("server")
    net.link("client", "server", latency_s=latency, bandwidth_Bps=bandwidth,
             loss_probability=loss)
    return sim, net


# ---------------------------------------------------------------- topology
def test_duplicate_host_rejected():
    sim = Simulator()
    net = Network(sim)
    net.add_host("a")
    with pytest.raises(NetworkError):
        net.add_host("a")


def test_unknown_host_and_link():
    sim, net = make_net()
    with pytest.raises(HostUnreachable):
        net.host("ghost")
    with pytest.raises(HostUnreachable):
        net.send("client", "ghost", "x", 10)
    net.add_host("island")
    with pytest.raises(HostUnreachable):
        net.send("client", "island", "x", 10)


def test_link_parameter_validation():
    sim, net = make_net()
    net.add_host("c")
    with pytest.raises(NetworkError):
        net.link("client", "c", latency_s=-1)
    with pytest.raises(NetworkError):
        net.link("client", "c", bandwidth_Bps=0)
    with pytest.raises(NetworkError):
        net.link("client", "c", loss_probability=1.0)


# ----------------------------------------------------------------- delivery
def test_delivery_time_latency_plus_transmission():
    sim, net = make_net(latency=0.05, bandwidth=1000.0)
    ev = net.send("client", "server", "hello", 500)  # tx = 0.5s
    sim.run(until=ev)
    assert sim.now == pytest.approx(0.55)


def test_message_lands_in_inbox():
    sim, net = make_net()

    def receiver(sim, host):
        msg = yield host.receive()
        return msg.payload

    host = net.host("server")
    p = sim.process(receiver(sim, host))
    net.send("client", "server", {"job": 1}, 100)
    assert sim.run(until=p) == {"job": 1}
    assert host.received_messages == 1
    assert host.received_bytes == 100


def test_deliver_false_skips_inbox():
    sim, net = make_net()
    host = net.host("server")
    ev = net.send("client", "server", "hs", 100, deliver=False)
    sim.run(until=ev)
    assert host.received_messages == 0
    assert net.get_link("client", "server").messages_sent == 1


def test_fifo_link_serialization():
    """Two bulk messages share the link: the second waits for the first."""
    sim, net = make_net(latency=0.0, bandwidth=1000.0)
    e1 = net.send("client", "server", "a", 1000)  # 1s
    e2 = net.send("client", "server", "b", 1000)  # queued behind
    times = []
    e1.callbacks.append(lambda e: times.append(sim.now))
    e2.callbacks.append(lambda e: times.append(sim.now))
    sim.run()
    assert times == [pytest.approx(1.0), pytest.approx(2.0)]


def test_loss_fails_event_after_timeout():
    sim, net = make_net(loss=0.999, seed=1)
    ev = net.send("client", "server", "doomed", 100)
    with pytest.raises(ConnectionLost):
        sim.run(until=ev)
    assert sim.now >= DEFAULT_TIMEOUT
    assert net.total_messages_lost() == 1


def test_loss_is_deterministic_per_seed():
    def run(seed):
        sim, net = make_net(loss=0.5, seed=seed)
        results = []
        for _ in range(20):
            ev = net.send("client", "server", "x", 10)
            ev.callbacks.append(lambda e: results.append(e.ok if e.triggered else None))
            ev.defuse()
        sim.run()
        return net.total_messages_lost()

    assert run(7) == run(7)
    # Not a hard guarantee in general, but with 20 draws at p=.5 two seeds
    # virtually never tie on the exact same loss pattern AND count; accept
    # equality of counts as long as the streams differ somewhere.
    sim_a, net_a = make_net(loss=0.5, seed=1)
    sim_b, net_b = make_net(loss=0.5, seed=2)


def test_symmetric_links_independent_stats():
    sim, net = make_net()
    e = net.send("server", "client", "reply", 42)
    sim.run(until=e)
    assert net.get_link("server", "client").bytes_sent == 42
    assert net.get_link("client", "server").bytes_sent == 0


def test_total_bytes_accounting():
    sim, net = make_net()
    net.send("client", "server", "a", 100)
    net.send("client", "server", "b", 200)
    sim.run()
    assert net.total_bytes_sent() == 300


# ------------------------------------------------------------------- https
@pytest.fixture(scope="module")
def pki():
    ca = CertificateAuthority(key_bits=384, seed=21)
    store = CertificateStore(trusted=[ca])
    c_cert, c_key = ca.issue(DistinguishedName(cn="Client"), role=CertificateRole.USER)
    s_cert, s_key = ca.issue(
        DistinguishedName(cn="server.site"), role=CertificateRole.SERVER
    )
    return dict(
        client_cert=c_cert, client_key=c_key,
        server_cert=s_cert, server_key=s_key,
        client_store=store, server_store=store,
    )


def _establish(sim, net, pki, **kw):
    def proc(sim):
        channel = yield from establish_https(
            sim, net, "client", "server", **pki, **kw
        )
        return channel

    return sim.process(proc(sim))


def test_https_establish_costs_round_trips(pki):
    sim, net = make_net(latency=0.1, bandwidth=1e9)
    p = _establish(sim, net, pki)
    channel = sim.run(until=p)
    # 2 round trips x 2 x latency, transmission negligible at 1 GB/s.
    assert sim.now == pytest.approx(HANDSHAKE_ROUND_TRIPS * 2 * 0.1, rel=0.01)
    assert channel.session.client.peer_certificate == pki["server_cert"]


def test_https_send_includes_framing_and_cpu(pki):
    sim, net = make_net(latency=0.0, bandwidth=1e6)
    p = _establish(sim, net, pki)
    channel = sim.run(until=p)
    start = sim.now
    payload_size = 100_000
    ev = channel.send("bulk", payload_size, deliver=False)
    sim.run(until=ev)
    elapsed = sim.now - start
    records = SSLSession.record_count(payload_size)
    wire = SSLSession.wire_bytes(payload_size)
    expected = wire / 1e6 + 2 * records * channel.per_record_cpu_s
    assert elapsed == pytest.approx(expected, rel=1e-6)
    assert channel.wire_bytes == wire
    assert channel.payload_bytes == payload_size


def test_https_rejects_rogue_server():
    sim, net = make_net()
    good_ca = CertificateAuthority(key_bits=384, seed=31)
    rogue_ca = CertificateAuthority(name="Rogue CA", key_bits=384, seed=32)
    store = CertificateStore(trusted=[good_ca])
    c_cert, c_key = good_ca.issue(
        DistinguishedName(cn="Client"), role=CertificateRole.USER
    )
    s_cert, s_key = rogue_ca.issue(
        DistinguishedName(cn="evil.site"), role=CertificateRole.SERVER
    )
    pki = dict(
        client_cert=c_cert, client_key=c_key,
        server_cert=s_cert, server_key=s_key,
        client_store=store, server_store=store,
    )
    from repro.security import AuthenticationError

    p = _establish(sim, net, pki)
    with pytest.raises(AuthenticationError):
        sim.run(until=p)


def test_direct_channel_setup_and_raw_send():
    sim, net = make_net(latency=0.05, bandwidth=1e6)

    def proc(sim):
        channel = yield from DirectChannel.establish(sim, net, "client", "server")
        setup_done = sim.now
        yield channel.send("bulk", 1_000_000, deliver=False)
        return setup_done, sim.now

    p = sim.process(proc(sim))
    setup_done, total = sim.run(until=p)
    assert setup_done == pytest.approx(2 * 0.05, rel=0.01)  # one RTT
    assert total - setup_done == pytest.approx(1.0 + 0.05, rel=0.01)


def test_https_server_to_client_direction(pki):
    sim, net = make_net()
    p = _establish(sim, net, pki)
    channel = sim.run(until=p)

    def receiver(sim):
        msg = yield net.host("client").receive()
        return msg.payload

    r = sim.process(receiver(sim))
    channel.send("outcome", 500, to_server=False)
    assert sim.run(until=r) == "outcome"
