"""The developer linter (repro.devlint): every RD rule, both ways.

Each rule gets the same treatment the consign-time analyzer's tests
give the AJO rules: a seeded violation must produce exactly the
expected code, and the clean spelling of the same construct must
produce nothing.  On top of the rule packs, the engine machinery is
pinned — inline pragmas, baseline fingerprints, deterministic ordering
— and one acceptance test runs the real rule set over the real repo,
which must stay clean (devlint is a hard CI gate).
"""

import ast
import json
from pathlib import Path

import pytest

import repro.errors
import repro.observability.registry as obs_registry
from repro.devlint import (
    DevDiagnostic,
    Severity,
    default_rules,
    discover_project,
    load_baseline,
    run_devlint,
    write_baseline,
)
from repro.devlint.diagnostics import DevReport
from repro.devlint.engine import Project, SourceFile, _parse_pragmas
from repro.devlint.rules_determinism import determinism_rules
from repro.devlint.rules_observability import (
    DeadRegistryEntryRule,
    MetricNameRule,
    extract_metric_uses,
)
from repro.devlint.rules_protocol import ShimConventionRule, VerbDispatchRule
from repro.devlint.rules_registry import (
    CodeLiteralRule,
    ErrorClassDeclarationRule,
    ReadmeCodeTableRule,
    readme_table_codes,
)


def sf(source: str, rel: str = "src/repro/example.py") -> SourceFile:
    return SourceFile(
        path=Path("/repo") / rel,
        rel=rel,
        source=source,
        tree=ast.parse(source),
        ignores=_parse_pragmas(source),
    )


def project(*files: SourceFile, readme: str = "") -> Project:
    return Project(root=Path("/repo"), files=list(files), readme=readme)


def codes_from(rule, f: SourceFile) -> list[str]:
    return [d.code for d in rule.run(f)]


def rule_by_code(code: str):
    for rule in determinism_rules():
        if rule.code == code:
            return rule
    raise LookupError(code)


# -- RD1xx determinism --------------------------------------------------------

@pytest.mark.parametrize("source", [
    "import time\nt = time.time()\n",
    "import time\nt = time.monotonic()\n",
    "import time\nclock = time.perf_counter\n",          # bare reference
    "from datetime import datetime\nd = datetime.now()\n",
    "import datetime\nd = datetime.date.today()\n",
])
def test_rd101_fires_on_wall_clock(source):
    assert codes_from(rule_by_code("RD101"), sf(source)) == ["RD101"]


def test_rd101_quiet_on_sim_clock():
    clean = "def handler(sim):\n    return sim.now\n"
    assert codes_from(rule_by_code("RD101"), sf(clean)) == []


def test_rd101_allowlists_the_aio_transport():
    source = "import time\nt = time.monotonic()\n"
    f = sf(source, rel="src/repro/net/aio_transport.py")
    assert codes_from(rule_by_code("RD101"), f) == []


@pytest.mark.parametrize("source", [
    "import random\nx = random.random()\n",
    "import random\nrandom.shuffle(items)\n",
    "import random\nrng = random.Random()\n",
])
def test_rd102_fires_on_unseeded_randomness(source):
    assert codes_from(rule_by_code("RD102"), sf(source)) == ["RD102"]


def test_rd102_quiet_on_seeded_rng():
    clean = "import random\nrng = random.Random(seed)\nx = rng.random()\n"
    assert codes_from(rule_by_code("RD102"), sf(clean)) == []


@pytest.mark.parametrize("source", [
    "import os\nkey = os.urandom(16)\n",
    "import uuid\njob = uuid.uuid4()\n",
    "import secrets\ntok = secrets.token_hex(8)\n",
])
def test_rd103_fires_on_os_entropy(source):
    assert codes_from(rule_by_code("RD103"), sf(source)) == ["RD103"]


def test_rd104_fires_on_unsorted_listing_and_quiet_when_sorted():
    dirty = "import os\nfor name in os.listdir(path):\n    use(name)\n"
    clean = "import os\nfor name in sorted(os.listdir(path)):\n    use(name)\n"
    rule = rule_by_code("RD104")
    assert codes_from(rule, sf(dirty)) == ["RD104"]
    assert codes_from(rule, sf(clean)) == []


def test_rd105_fires_on_set_iteration_and_quiet_when_sorted():
    dirty = "for item in {1, 2, 3}:\n    use(item)\n"
    algebra = "xs = [x for x in set(a) | set(b)]\n"
    clean = "for item in sorted({1, 2, 3}):\n    use(item)\n"
    rule = rule_by_code("RD105")
    assert codes_from(rule, sf(dirty)) == ["RD105"]
    assert codes_from(rule, sf(algebra)) == ["RD105"]
    assert codes_from(rule, sf(clean)) == []


def test_rd106_fires_on_id_ordering():
    keyed = "order = sorted(objs, key=id)\n"
    compared = "if id(a) < id(b):\n    swap()\n"
    clean = "order = sorted(objs, key=lambda o: o.name)\n"
    rule = rule_by_code("RD106")
    assert codes_from(rule, sf(keyed)) == ["RD106"]
    # One finding per id() call in the comparison.
    assert set(codes_from(rule, sf(compared))) == {"RD106"}
    assert codes_from(rule, sf(clean)) == []


# -- RD2xx error-code registry ------------------------------------------------

class _FakeBase:
    code = "fake.base"


def _fake_class(name, **ns):
    return type(name, (_FakeBase,), dict({"__qualname__": name}, **ns))


def test_rd201_fires_on_missing_own_code(monkeypatch):
    silent = _fake_class("SilentError")  # inherits fake.base
    monkeypatch.setattr(
        repro.errors, "iter_error_classes", lambda: iter([_FakeBase, silent])
    )
    found = list(ErrorClassDeclarationRule().check_project(project()))
    assert [d.code for d in found] == ["RD201"]
    assert "SilentError" in found[0].message


def test_rd201_fires_on_malformed_code(monkeypatch):
    bad = _fake_class("ShoutyError", code="NOT_DOTTED")
    monkeypatch.setattr(
        repro.errors, "iter_error_classes", lambda: iter([bad])
    )
    found = list(ErrorClassDeclarationRule().check_project(project()))
    assert [d.code for d in found] == ["RD201"]
    assert "NOT_DOTTED" in found[0].message


def test_rd201_exempts_instance_coded_classes(monkeypatch):
    per_instance = _fake_class("PerInstanceError")
    monkeypatch.setattr(
        repro.errors, "iter_error_classes", lambda: iter([per_instance])
    )
    decl = (
        "class PerInstanceError(Base):\n"
        "    def __init__(self, report):\n"
        "        self.code = report.code\n"
    )
    p = project(sf(decl))
    assert list(ErrorClassDeclarationRule().check_project(p)) == []


def test_rd202_fires_on_duplicate_codes(monkeypatch):
    first = _fake_class("FirstError", code="dup.code")
    second = _fake_class("SecondError", code="dup.code")
    monkeypatch.setattr(
        repro.errors, "iter_error_classes", lambda: iter([first, second])
    )
    found = list(ErrorClassDeclarationRule().check_project(project()))
    assert [d.code for d in found] == ["RD202"]


def test_rd203_fires_on_unregistered_code_literal():
    dirty = sf('reply = Reply(ok=False, error_code="no.such_code")\n')
    found = list(CodeLiteralRule().check_project(project(dirty)))
    assert [d.code for d in found] == ["RD203"]


def test_rd203_quiet_on_registered_and_non_code_literals():
    clean = sf(
        'a = Reply(ok=False, error_code="net.error")\n'
        'b = err.code == "faults.circuit_open"\n'
        'c = Diagnostic(code="AJO101")\n'
        'd = make(code="not a code shape")\n'
        'e = Reply(ok=True, error_code="")\n'
    )
    assert list(CodeLiteralRule().check_project(project(clean))) == []


def test_readme_table_codes_only_reads_code_tables():
    readme = (
        "| code | class |\n|---|---|\n| `net.error` | `NetworkError` |\n"
        "\nprose mentioning `другое.имя` and `span.name`\n"
        "| metric | value |\n|---|---|\n| `gateway.requests` | 1 |\n"
    )
    assert [c for _, c in readme_table_codes(readme)] == ["net.error"]


def test_rd204_and_rd205_diff_readme_against_registry(monkeypatch):
    monkeypatch.setattr(
        repro.errors, "error_code_registry",
        lambda: {"net.error": _FakeBase, "extra.code": _FakeBase},
    )
    readme = (
        "| code | class |\n|---|---|\n"
        "| `net.error` | `X` |\n| `bogus.code` | `Y` |\n"
    )
    found = list(ReadmeCodeTableRule().check_project(project(readme=readme)))
    assert sorted(d.code for d in found) == ["RD204", "RD205"]
    by_code = {d.code: d for d in found}
    assert "bogus.code" in by_code["RD204"].message
    assert "extra.code" in by_code["RD205"].message


# -- RD3xx observability registry ---------------------------------------------

@pytest.fixture
def small_registry(monkeypatch):
    monkeypatch.setattr(obs_registry, "COUNTERS", frozenset({"gw.requests"}))
    monkeypatch.setattr(obs_registry, "COUNTER_PREFIXES", frozenset({"fam."}))
    monkeypatch.setattr(obs_registry, "HISTOGRAMS", frozenset({"gw.seconds"}))
    monkeypatch.setattr(obs_registry, "SPANS", frozenset({"gw.request"}))
    monkeypatch.setattr(obs_registry, "SPAN_PREFIXES", frozenset())


def test_extract_metric_uses_reads_literals_and_fstring_prefixes():
    f = sf(
        'm.counter("a.b").inc()\n'
        'm.histogram("c.d").observe(1)\n'
        't.start_span("e.f", parent=None)\n'
        'm.counter(f"fam.{kind}").inc()\n'
        "m.counter(name_variable)\n"  # forwarder: skipped
    )
    uses = extract_metric_uses(f)
    # The variable-name forwarder must be skipped; order is not part of
    # the contract (callers aggregate into sets).
    assert sorted((u.kind, u.name, u.dynamic) for u in uses) == [
        ("counter", "a.b", False),
        ("counter", "fam.", True),
        ("histogram", "c.d", False),
        ("span", "e.f", False),
    ]


def test_rd301_302_303_fire_on_unregistered_names(small_registry):
    f = sf(
        'm.counter("gw.requets").inc()\n'      # typo'd counter
        'm.histogram("gw.secnds").observe(1)\n'
        't.start_span("gw.reqest")\n'
    )
    found = list(MetricNameRule().check_project(project(f)))
    assert sorted(d.code for d in found) == ["RD301", "RD302", "RD303"]


def test_rd304_fires_on_unknown_dynamic_family(small_registry):
    f = sf('m.counter(f"other.{kind}").inc()\n')
    found = list(MetricNameRule().check_project(project(f)))
    assert [d.code for d in found] == ["RD304"]


def test_metric_rules_quiet_on_registered_names(small_registry):
    f = sf(
        'm.counter("gw.requests").inc()\n'
        'm.histogram("gw.seconds").observe(1)\n'
        't.start_span("gw.request")\n'
        'm.counter(f"fam.{kind}").inc()\n'
    )
    assert list(MetricNameRule().check_project(project(f))) == []
    assert list(DeadRegistryEntryRule().check_project(project(f))) == []


def test_rd305_fires_on_dead_registry_entries(small_registry):
    # Nothing emits gw.requests / gw.seconds / gw.request / fam.*
    found = list(DeadRegistryEntryRule().check_project(project(sf("x = 1\n"))))
    assert {d.code for d in found} == {"RD305"}
    assert len(found) == 4


def test_metric_rules_skip_the_observability_layer(small_registry):
    f = sf(
        'self.counter("anything.at_all").inc()\n',
        rel="src/repro/observability/metrics.py",
    )
    assert list(MetricNameRule().check_project(project(f))) == []


# -- RD4xx protocol & shim consistency ----------------------------------------

def _protocol_files(gateway_body: str):
    messages = sf(
        "class RequestKind:\n"
        '    SUBMIT = "submit"\n'
        '    QUERY = "query"\n'
        "    ALL = (SUBMIT, QUERY)\n",
        rel="src/repro/protocol/messages.py",
    )
    gateway = sf(gateway_body, rel="src/repro/server/gateway.py")
    return project(messages, gateway)


def test_verb_dispatch_quiet_on_one_to_one():
    p = _protocol_files(
        "def dispatch(request):\n"
        "    if request.kind == RequestKind.SUBMIT:\n"
        "        return submit(request)\n"
        "    if request.kind == RequestKind.QUERY:\n"
        "        return query(request)\n"
    )
    assert list(VerbDispatchRule().check_project(p)) == []


def test_rd401_fires_on_unhandled_verb():
    p = _protocol_files(
        "def dispatch(request):\n"
        "    if request.kind == RequestKind.SUBMIT:\n"
        "        return submit(request)\n"
    )
    found = list(VerbDispatchRule().check_project(p))
    assert [d.code for d in found] == ["RD401"]
    assert "QUERY" in found[0].message


def test_rd402_fires_on_double_dispatch():
    p = _protocol_files(
        "def dispatch(request):\n"
        "    if request.kind == RequestKind.SUBMIT:\n"
        "        return submit(request)\n"
        "    if request.kind == RequestKind.QUERY:\n"
        "        return query(request)\n"
        "    if request.kind == RequestKind.SUBMIT:\n"
        "        return never_reached(request)\n"
    )
    found = list(VerbDispatchRule().check_project(p))
    assert [d.code for d in found] == ["RD402"]


def test_rd402_pragma_marks_non_dispatch_comparisons():
    p = _protocol_files(
        "def dispatch(request):\n"
        "    if request.kind == RequestKind.SUBMIT:\n"
        "        return submit(request)\n"
        "    if request.kind == RequestKind.QUERY:\n"
        "        return query(request)\n"
        "    # accounting only  # devlint: ignore[RD402]\n"
        "    if request.kind == RequestKind.SUBMIT:\n"
        "        count()\n"
    )
    assert list(VerbDispatchRule().check_project(p)) == []


def test_rd403_fires_on_stale_handler():
    p = _protocol_files(
        "def dispatch(request):\n"
        "    if request.kind == RequestKind.SUBMIT:\n"
        "        return submit(request)\n"
        "    if request.kind == RequestKind.QUERY:\n"
        "        return query(request)\n"
        "    if request.kind == RequestKind.RENAMED_AWAY:\n"
        "        return stale(request)\n"
    )
    found = list(VerbDispatchRule().check_project(p))
    assert [d.code for d in found] == ["RD403"]


def test_rd404_fires_on_hand_rolled_shim():
    f = sf(
        "import warnings\n"
        "def __getattr__(name):\n"
        "    warnings.warn('gone', DeprecationWarning)\n"
        "    raise AttributeError(name)\n",
        rel="src/repro/old_home.py",
    )
    found = list(ShimConventionRule().check_project(project(f)))
    assert [d.code for d in found] == ["RD404"]


def test_rd405_fires_when_dir_hook_is_dropped():
    f = sf(
        "from repro._compat import deprecated_module_attr\n"
        "__getattr__ = deprecated_module_attr(__name__, globals(), {})\n",
        rel="src/repro/old_home.py",
    )
    found = list(ShimConventionRule().check_project(project(f)))
    assert [d.code for d in found] == ["RD405"]


def test_shim_rules_quiet_on_the_blessed_spelling():
    f = sf(
        "from repro._compat import deprecated_module_attr\n"
        "__getattr__, __dir__ = deprecated_module_attr(\n"
        "    __name__, globals(), {'Old': 'repro.new_home'}\n"
        ")\n",
        rel="src/repro/old_home.py",
    )
    assert list(ShimConventionRule().check_project(project(f))) == []


# -- engine: pragmas, baseline, ordering, report ------------------------------

def test_inline_pragma_suppresses_on_line_and_from_line_above():
    same_line = sf(
        "import time\nt = time.time()  # devlint: ignore[RD101]\n"
    )
    line_above = sf(
        "import time\n# devlint: ignore[RD101]\nt = time.time()\n"
    )
    other_code = sf(
        "import time\nt = time.time()  # devlint: ignore[RD104]\n"
    )
    rules = [rule_by_code("RD101")]
    assert run_devlint(rules=rules, project=project(same_line)).ok
    assert run_devlint(rules=rules, project=project(line_above)).ok
    report = run_devlint(rules=rules, project=project(other_code))
    assert [d.code for d in report.diagnostics] == ["RD101"]


def test_bare_pragma_suppresses_every_code():
    f = sf("import time\nt = time.time()  # devlint: ignore\n")
    report = run_devlint(rules=[rule_by_code("RD101")], project=project(f))
    assert report.ok and report.suppressed == 1


def test_pragma_inside_string_literal_does_not_count():
    f = sf('msg = "# devlint: ignore[RD101]"\nimport time\nt = time.time()\n')
    report = run_devlint(rules=[rule_by_code("RD101")], project=project(f))
    assert [d.code for d in report.diagnostics] == ["RD101"]


def test_baseline_roundtrip_suppresses_by_fingerprint(tmp_path):
    f = sf("import time\nt = time.time()\n")
    rules = [rule_by_code("RD101")]
    first = run_devlint(rules=rules, project=project(f))
    assert not first.ok
    path = tmp_path / "baseline.json"
    assert write_baseline(path, first) == 1
    suppressions = load_baseline(path)
    second = run_devlint(rules=rules, project=project(f), baseline=suppressions)
    assert second.ok and second.suppressed == 1
    # Fingerprints are line-independent: edits above the site keep the
    # baseline entry matching.
    shifted = sf("import time\nimport os\n\nt = time.time()\n")
    third = run_devlint(
        rules=rules, project=project(shifted), baseline=suppressions
    )
    assert third.ok and third.suppressed == 1


def test_load_baseline_rejects_malformed_files(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"version": 7}))
    with pytest.raises(ValueError, match="not a devlint baseline"):
        load_baseline(path)


def test_report_orders_diagnostics_and_serializes():
    f = sf(
        "import time\n"
        "b = time.time()\n"
        "import os\n"
        "for x in os.listdir(p):\n"
        "    use(x)\n"
    )
    report = run_devlint(
        rules=[rule_by_code("RD104"), rule_by_code("RD101")],
        project=project(f),
    )
    assert [d.code for d in report.diagnostics] == ["RD101", "RD104"]
    payload = report.to_dict()
    assert payload["ok"] is False and payload["errors"] == 2
    rendered = report.render()
    assert "RD101" in rendered and "error(s)" in rendered


def test_severity_gate_only_counts_errors():
    warn = DevDiagnostic(
        code="RD999", severity=Severity.WARNING, message="m", file="f", line=1
    )
    report = DevReport(diagnostics=(warn,))
    assert report.ok and len(report.warnings) == 1


# -- acceptance: the repo itself is clean -------------------------------------

def test_default_rules_cover_all_four_packs():
    packs = {rule.code[:3] for rule in default_rules()}
    assert packs == {"RD1", "RD2", "RD3", "RD4"}


def test_repo_tree_is_devlint_clean():
    """The hard CI gate, as a test: the shipped tree has zero findings."""
    report = run_devlint()
    assert report.ok, report.render()
    assert report.files_scanned > 100


def test_discover_project_reads_sources_and_readme():
    p = discover_project()
    rels = {f.rel for f in p.files}
    assert "src/repro/devlint/engine.py" in rels
    assert all(rel.startswith("src/repro/") for rel in rels)
    assert "unicore-repro" in p.readme
