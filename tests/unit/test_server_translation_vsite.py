"""Unit tests for translation tables and Vsite assembly."""

import pytest

from repro.batch import machine
from repro.server import IncarnationError, TranslationTable
from repro.server.vsite import Vsite, default_translation_for
from repro.simkernel import Simulator


# ----------------------------------------------------------- translation
def test_map_software_hit_and_miss():
    table = TranslationTable(vsite="V", software={"f90": "xlf90"})
    assert table.map_software("f90") == "xlf90"
    assert table.has_software("f90")
    assert not table.has_software("cc")
    with pytest.raises(IncarnationError, match="no entry"):
        table.map_software("cc")


def test_map_environment_renames_known_passes_unknown():
    table = TranslationTable(
        vsite="V", environment={"UC_THREADS": "OMP_NUM_THREADS"}
    )
    mapped = table.map_environment({"UC_THREADS": "4", "HOME": "/u"})
    assert mapped == {"OMP_NUM_THREADS": "4", "HOME": "/u"}


def test_render_run_with_and_without_prefix():
    with_prefix = TranslationTable(vsite="V", run_prefix="mpprun -n {cpus}")
    assert (
        with_prefix.render_run("app.exe", ["-x"], cpus=8)
        == "mpprun -n 8 ./app.exe -x"
    )
    bare = TranslationTable(vsite="V")
    assert bare.render_run("./app.exe", [], cpus=1) == "./app.exe"


def test_render_copy():
    table = TranslationTable(vsite="V", copy_command="rcp {src} {dst}")
    assert table.render_copy("/a", "/b") == "rcp /a /b"


@pytest.mark.parametrize("name,f90,prefix", [
    ("FZJ-T3E", "f90", "mpprun"),
    ("RUKA-SP2", "xlf90", "poe"),
    ("LRZ-VPP", "frt", "vppexec"),
])
def test_default_translation_matches_architecture(name, f90, prefix):
    table = default_translation_for(machine(name))
    assert table.map_software("f90") == f90
    assert prefix in table.run_prefix


# ------------------------------------------------------------------ vsite
def test_vsite_default_resource_page_mirrors_machine():
    sim = Simulator()
    vsite = Vsite(sim, machine("DWD-SX4"))
    page = vsite.resource_page
    assert page.vsite == "DWD-SX4"
    assert page.architecture == "NEC SX-4"
    assert page.ranges["cpus"].maximum == 32
    assert page.software.has("compiler", "f90")
    # The page's compiler invocation matches the translation table.
    assert (
        page.software.get("compiler", "f90").invocation
        == vsite.translation.map_software("f90")
    )


def test_vsite_page_time_limit_tracks_queues():
    from repro.batch import QueueConfig

    sim = Simulator()
    vsite = Vsite(
        sim, machine("FZJ-T3E"),
        queues=[
            QueueConfig(name="batch", max_cpus=512, max_time_s=7200),
            QueueConfig(name="long", max_cpus=64, max_time_s=86400),
        ],
    )
    assert vsite.resource_page.ranges["time_s"].maximum == 86400


def test_vsite_repr():
    sim = Simulator()
    assert "Cray" in repr(Vsite(sim, machine("FZJ-T3E")))
