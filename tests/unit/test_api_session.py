"""Unit tests for the public GridSession facade."""

import warnings

import pytest

from repro.api import GridSession, JobHandle
from repro.faults import CircuitOpenError
from repro.grid import build_grid
from repro.observability import telemetry_for


def _session(sites=None, seed=3):
    grid = build_grid(sites or {"FZJ": ["FZJ-T3E"]}, seed=seed)
    user = grid.add_user(
        "Api User", organization="Test",
        logins={name: "apiuser" for name in grid.usites},
    )
    return grid, GridSession(grid, user, "FZJ")


def _quick_job(session, name="unit", runtime_s=30.0):
    job = session.new_job(name)
    job.script_task("work", "#!/bin/sh\nwork\n", simulated_runtime_s=runtime_s)
    return job


def test_submit_wait_outcome_happy_path():
    grid, session = _session()
    handle = session.submit(_quick_job(session))
    assert isinstance(handle, JobHandle)
    assert handle.job_id.endswith("@FZJ")
    assert handle.vsite == "FZJ-T3E"
    assert handle.trace_id  # submit binds the per-job trace
    assert not handle.failed_over

    view = session.status(handle)
    assert view.status in ("queued", "executing", "running", "successful")
    assert not view.stale

    final = session.wait(handle)
    assert final.status == "successful"
    assert final.is_terminal
    outcome = session.outcome(handle)
    assert outcome.child is not None  # an AJOOutcome tree, not a dict


def test_status_accepts_raw_job_id():
    grid, session = _session()
    handle = session.submit(_quick_job(session))
    session.wait(handle)
    view = session.status(handle.job_id)
    assert view.status == "successful"


def test_cancel_and_listing():
    grid, session = _session()
    handle = session.submit(_quick_job(session, runtime_s=5000.0))
    session.advance(30.0)
    session.cancel(handle)
    final = session.wait(handle)
    assert final.status in ("killed", "failed")
    rows = session.list_jobs()
    assert [r.job_id for r in rows] == [handle.job_id]
    assert rows[0].status == final.status


def test_breaker_is_armed_on_the_session_client():
    grid, session = _session()
    assert session.session.client.breaker is session.breaker
    # A healthy exchange records successes, keeping the breaker closed.
    session.submit(_quick_job(session))
    assert session.breaker.state == "closed"


def test_stale_status_served_during_gateway_outage():
    grid, session = _session()
    handle = session.submit(_quick_job(session, runtime_s=5000.0))
    live = session.status(handle)
    assert not live.stale

    grid.usites["FZJ"].gateway.crash()
    degraded = session.status(handle)  # allow_stale defaults to True
    assert degraded.stale
    assert degraded.status == live.status
    assert degraded.as_of <= grid.sim.now
    metrics = telemetry_for(grid.sim).metrics
    assert metrics.counter("client.stale_status_serves").value >= 1

    with pytest.raises((Exception,)):  # strict callers still see the fault
        session.status(handle, allow_stale=False)

    grid.usites["FZJ"].gateway.restart()
    recovered = session.status(handle)
    assert not recovered.stale


def test_submit_fails_over_to_alternate_vsite():
    grid, session = _session(
        sites={"FZJ": ["FZJ-T3E"], "RUS": ["RUS-T3E"]}, seed=4
    )
    grid.usites["FZJ"].njs.crash()  # and stays down
    handle = session.submit(_quick_job(session, name="failover"))
    assert handle.failed_over
    assert handle.usite == "RUS"
    assert handle.vsite == "RUS-T3E"
    final = session.wait(handle)
    assert final.status == "successful"
    metrics = telemetry_for(grid.sim).metrics
    assert metrics.counter("api.failovers").value == 1


def test_submit_without_failover_surfaces_the_fault():
    from repro.faults import ServiceUnavailable

    grid = build_grid({"FZJ": ["FZJ-T3E"], "RUS": ["RUS-T3E"]}, seed=4)
    user = grid.add_user("No Failover", logins={"FZJ": "nf", "RUS": "nf"})
    session = GridSession(grid, user, "FZJ", failover=False)
    grid.usites["FZJ"].njs.crash()
    with pytest.raises(ServiceUnavailable):
        session.submit(_quick_job(session))


def test_repro_core_shim_warns_and_resolves():
    import repro.core as core

    core._warned.discard("JobBuilder")
    core.__dict__.pop("JobBuilder", None)  # undo the warn-once cache
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        builder_cls = core.JobBuilder
    assert builder_cls.__name__ == "JobBuilder"
    assert any(
        issubclass(w.category, DeprecationWarning) for w in caught
    )


def test_grid_session_exported_from_top_level():
    import repro

    assert repro.GridSession is GridSession
    assert repro.JobHandle is JobHandle
    with pytest.raises(AttributeError):
        repro.not_a_thing


def test_breaker_open_error_is_a_repro_error_with_code():
    from repro.errors import ReproError

    assert issubclass(CircuitOpenError, ReproError)
    assert CircuitOpenError.code == "faults.circuit_open"
