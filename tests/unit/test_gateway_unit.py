"""Direct unit tests for gateway behaviours hard to reach via clients."""

import pytest

from repro.grid import build_grid
from repro.protocol.messages import Reply, Request, RequestKind


@pytest.fixture()
def wired():
    grid = build_grid({"FZJ": ["FZJ-T3E"]}, seed=59)
    user = grid.add_user("GW User", logins={"FZJ": "gw"})
    session = grid.connect_user(user, "FZJ")
    return grid, user, session


def test_request_from_unregistered_host_is_dropped(wired):
    """A request arriving outside any authenticated channel gets no reply
    and counts as an authentication failure."""
    grid, user, session = wired
    gateway = grid.usites["FZJ"].gateway
    before = gateway.auth_failures
    # Craft a raw request into the gateway inbox from a host that never
    # performed the handshake.
    grid.network.add_host("intruder")
    grid.network.link("intruder", gateway.host.name)
    request = Request(kind=RequestKind.LIST, user_dn="CN=Nobody", payload=b"{}")
    grid.network.send("intruder", gateway.host.name, request, request.wire_size)
    grid.sim.run()
    assert gateway.auth_failures == before + 1
    assert grid.network.host("intruder").received_messages == 0  # no reply


def test_reply_cache_returns_identical_reply(wired):
    grid, user, session = wired
    gateway = grid.usites["FZJ"].gateway
    from repro.ajo import ListService, encode_service

    request = Request(
        kind=RequestKind.LIST, user_dn=session.user_dn,
        payload=encode_service(ListService("l")),
    )
    replies = []

    def scenario(sim):
        r1 = yield from session.client.interact(request)
        replies.append(r1)

    p = grid.sim.process(scenario(grid.sim))
    grid.sim.run(until=p)
    cached = gateway._reply_cache[request.request_id]
    assert isinstance(cached, Reply)
    assert cached.payload == replies[0].payload


def test_revoked_mid_session_certificate_refused_per_request(wired):
    """Revocation takes effect on the *next request*, not just the next
    connection — the gateway re-validates every time."""
    grid, user, session = wired
    from repro.client import JobMonitorController

    jmc = JobMonitorController(session)

    def list_jobs(sim):
        return (yield from jmc.list_jobs())

    p = grid.sim.process(list_jobs(grid.sim))
    assert grid.sim.run(until=p) == []

    grid.ca.revoke(user.browser.user_cert, reason="compromised")

    p2 = grid.sim.process(list_jobs(grid.sim))
    with pytest.raises(RuntimeError, match="authentication failed"):
        grid.sim.run(until=p2)


def test_serve_unknown_applet_raises(wired):
    grid, user, session = wired
    from repro.server import ServerError

    with pytest.raises(ServerError, match="no applet"):
        grid.usites["FZJ"].gateway.serve_applet("Backdoor")


def test_resource_pages_decode_for_all_vsites(wired):
    grid, user, session = wired
    from repro.resources import ResourcePage

    pages = grid.usites["FZJ"].gateway.resource_pages()
    assert set(pages) == {"FZJ-T3E"}
    page = ResourcePage.from_asn1(pages["FZJ-T3E"])
    assert page.vsite == "FZJ-T3E"


def test_malformed_consignment_rejected_cleanly(wired):
    grid, user, session = wired

    def scenario(sim):
        request = Request(
            kind=RequestKind.CONSIGN_JOB, user_dn=session.user_dn,
            payload=b"this is not a consignment",
        )
        reply = yield from session.client.interact(request)
        return reply

    p = grid.sim.process(scenario(grid.sim))
    reply = grid.sim.run(until=p)
    assert not reply.ok
    assert "malformed consignment" in reply.error


def test_ajo_user_mismatch_rejected(wired):
    """An AJO naming a different user than the authenticated one."""
    grid, user, session = wired
    from repro.ajo import AbstractJobObject, ExecuteScriptTask, encode_ajo
    from repro.protocol.consignment import encode_consignment

    ajo = AbstractJobObject(
        "forged", vsite="FZJ-T3E", user_dn="CN=Somebody Else"
    )
    ajo.add(ExecuteScriptTask("t", script="#!/bin/sh\nx\n"))

    def scenario(sim):
        request = Request(
            kind=RequestKind.CONSIGN_JOB, user_dn=session.user_dn,
            payload=encode_consignment(encode_ajo(ajo)),
        )
        reply = yield from session.client.interact(request)
        return reply

    p = grid.sim.process(scenario(grid.sim))
    reply = grid.sim.run(until=p)
    assert not reply.ok
    assert "names user" in reply.error
