"""The AsyncGridSession facade mirrored over the test_api_session
suite: every awaitable verb must behave exactly like its blocking twin
on the deterministic simkernel backend (both drive the same SessionCore
plans, so divergence here means the facade itself drifted)."""

import asyncio

import pytest

from repro.api import AsyncGridSession, AsyncJobHandle, JobHandle
from repro.grid import build_grid
from repro.observability import telemetry_for


def _run(coro):
    return asyncio.run(coro)


async def _session(sites=None, seed=3, **kw):
    grid = build_grid(sites or {"FZJ": ["FZJ-T3E"]}, seed=seed)
    user = grid.add_user(
        "Api User", organization="Test",
        logins={name: "apiuser" for name in grid.usites},
    )
    session = await AsyncGridSession.connect(grid, user, "FZJ", **kw)
    return grid, session


async def _quick_job(session, name="unit", runtime_s=30.0):
    job = await session.new_job(name)
    job.script_task("work", "#!/bin/sh\nwork\n", simulated_runtime_s=runtime_s)
    return job


def test_submit_wait_outcome_happy_path():
    async def scenario():
        grid, session = await _session()
        handle = await session.submit(await _quick_job(session))
        assert isinstance(handle, AsyncJobHandle)
        assert isinstance(handle.handle, JobHandle)
        assert handle.job_id.endswith("@FZJ")
        assert handle.vsite == "FZJ-T3E"
        assert handle.trace_id
        assert not handle.failed_over

        view = await handle.status()
        assert view.status in ("queued", "executing", "running", "successful")
        assert not view.stale

        final = await handle.wait()
        assert final.status == "successful"
        assert final.is_terminal
        outcome = await handle.outcome()
        assert outcome.child is not None

    _run(scenario())


def test_status_accepts_raw_job_id_and_plain_handle():
    async def scenario():
        grid, session = await _session()
        handle = await session.submit(await _quick_job(session))
        await session.wait(handle)
        by_id = await session.status(handle.job_id)
        by_plain = await session.status(handle.handle)
        assert by_id.status == by_plain.status == "successful"

    _run(scenario())


def test_cancel_and_listing():
    async def scenario():
        grid, session = await _session()
        handle = await session.submit(
            await _quick_job(session, runtime_s=5000.0))
        await session.advance(30.0)
        await handle.cancel()
        final = await handle.wait()
        assert final.status in ("killed", "failed")
        rows = await session.list_jobs()
        assert [r.job_id for r in rows] == [handle.job_id]
        assert rows[0].status == final.status

    _run(scenario())


def test_breaker_is_armed_on_the_session_client():
    async def scenario():
        grid, session = await _session()
        assert session.session.client.breaker is session.breaker
        await session.submit(await _quick_job(session))
        assert session.breaker.state == "closed"

    _run(scenario())


def test_stale_status_served_during_gateway_outage():
    async def scenario():
        grid, session = await _session()
        handle = await session.submit(
            await _quick_job(session, runtime_s=5000.0))
        live = await handle.status()
        assert not live.stale

        grid.usites["FZJ"].gateway.crash()
        degraded = await handle.status()
        assert degraded.stale
        assert degraded.status == live.status
        metrics = telemetry_for(grid.sim).metrics
        assert metrics.counter("client.stale_status_serves").value >= 1

        with pytest.raises((Exception,)):
            await session.status(handle, allow_stale=False)

        grid.usites["FZJ"].gateway.restart()
        recovered = await handle.status()
        assert not recovered.stale

    _run(scenario())


def test_submit_fails_over_to_alternate_vsite():
    async def scenario():
        grid, session = await _session(
            sites={"FZJ": ["FZJ-T3E"], "RUS": ["RUS-T3E"]}, seed=4)
        grid.usites["FZJ"].njs.crash()
        handle = await session.submit(
            await _quick_job(session, name="failover"))
        assert handle.failed_over
        assert handle.usite == "RUS"
        assert handle.vsite == "RUS-T3E"
        final = await handle.wait()
        assert final.status == "successful"
        metrics = telemetry_for(grid.sim).metrics
        assert metrics.counter("api.failovers").value == 1

    _run(scenario())


def test_submit_without_failover_surfaces_the_fault():
    from repro.faults import ServiceUnavailable

    async def scenario():
        grid, session = await _session(
            sites={"FZJ": ["FZJ-T3E"], "RUS": ["RUS-T3E"]}, seed=4,
            failover=False)
        grid.usites["FZJ"].njs.crash()
        with pytest.raises(ServiceUnavailable):
            await session.submit(await _quick_job(session))

    _run(scenario())


def test_fetch_file_roundtrip():
    async def scenario():
        grid = build_grid({"FZJ": ["FZJ-T3E"]}, seed=3)
        user = grid.add_user("Api User", logins={"FZJ": "apiuser"})
        content = b"payload " * 512
        user.workstation.fs.write("/home/apiuser/input.dat", content)
        session = await AsyncGridSession.connect(grid, user, "FZJ")
        job = await session.new_job("bulk", vsite="FZJ-T3E")
        imp = job.import_from_workstation("/home/apiuser/input.dat",
                                          "input.dat")
        work = job.script_task("crunch", "#!/bin/sh\nwc input.dat\n",
                               simulated_runtime_s=10.0)
        job.depends(imp, work, files=["input.dat"])
        handle = await session.submit(job, workstation=user.workstation)
        final = await handle.wait()
        assert final.status == "successful"
        assert await handle.fetch_file("input.dat") == content

    _run(scenario())


def test_async_exports_from_top_level_package():
    import repro.api as api

    assert api.AsyncGridSession is AsyncGridSession
    assert api.AsyncJobHandle is AsyncJobHandle
