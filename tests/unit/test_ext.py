"""Unit tests for the section-6 extensions: broker, accounting,
application interfaces, co-allocation."""

import pytest

from repro.batch import BatchJobSpec, BatchSystem, machine
from repro.ext import (
    AccountingLog,
    CoAllocator,
    ResourceBroker,
    STANDARD_PACKAGES,
)
from repro.grid import build_grid
from repro.resources import ResourceRequest, ResourceSet
from repro.simkernel import Simulator


@pytest.fixture()
def grid():
    g = build_grid({"FZJ": ["FZJ-T3E"], "LRZ": ["LRZ-VPP"]}, seed=5)
    g.add_user("Ana", logins={"FZJ": "ana", "LRZ": "ana_m"})
    return g


# ------------------------------------------------------------------ broker
def test_broker_prefers_faster_idle_machine(grid):
    broker = ResourceBroker.for_grid(grid)
    # Both idle; the VPP's 4x speed factor wins on runtime.
    decision = broker.choose(
        ResourceRequest(cpus=4, time_s=7200), baseline_runtime_s=3600.0
    )
    assert decision.vsite == "LRZ-VPP"
    assert decision.estimated_runtime_s == pytest.approx(900.0)


def test_broker_respects_feasibility(grid):
    broker = ResourceBroker.for_grid(grid)
    # 128 cpus: only the T3E (512) qualifies; the VPP has 52.
    decision = broker.choose(ResourceRequest(cpus=128, time_s=3600))
    assert decision.vsite == "FZJ-T3E"


def test_broker_accounts_for_load(grid):
    broker = ResourceBroker.for_grid(grid)
    vpp = grid.usites["LRZ"].vsites["LRZ-VPP"]
    # Saturate the VPP with a long job plus a deep backlog.
    res = ResourceSet(cpus=52, time_s=86400)
    for i in range(3):
        script = vpp.batch.dialect.render_script(f"hog{i}", "batch", res, ["x"])
        vpp.batch.submit(BatchJobSpec(
            name=f"hog{i}", owner="hog", queue="batch", script=script,
            resources=res,
        ))
    decision = broker.choose(
        ResourceRequest(cpus=4, time_s=7200), baseline_runtime_s=3600.0
    )
    assert decision.vsite == "FZJ-T3E"  # slower but idle beats fast-but-jammed


def test_broker_no_candidate_raises(grid):
    broker = ResourceBroker.for_grid(grid)
    with pytest.raises(LookupError):
        broker.choose(ResourceRequest(cpus=4096))
    with pytest.raises(LookupError):
        broker.choose(
            ResourceRequest(cpus=1), required_software=[("package", "doom")]
        )


def test_broker_deadline_picks_cheapest_meeting_it(grid):
    broker = ResourceBroker.for_grid(
        grid, cost_per_cpu_hour={"FZJ-T3E": 1.0, "LRZ-VPP": 10.0}
    )
    # Both idle and both meet a loose deadline: cheap T3E wins despite
    # being slower.
    decision = broker.choose(
        ResourceRequest(cpus=4, time_s=7200),
        baseline_runtime_s=3600.0,
        deadline_s=100_000.0,
    )
    assert decision.vsite == "FZJ-T3E"
    # Tight deadline only the VPP meets.
    decision = broker.choose(
        ResourceRequest(cpus=4, time_s=7200),
        baseline_runtime_s=3600.0,
        deadline_s=1000.0,
    )
    assert decision.vsite == "LRZ-VPP"
    with pytest.raises(LookupError, match="deadline"):
        broker.choose(
            ResourceRequest(cpus=4, time_s=7200),
            baseline_runtime_s=3600.0,
            deadline_s=10.0,
        )


# -------------------------------------------------------------- accounting
def test_accounting_charges_completed_jobs():
    sim = Simulator()
    system = BatchSystem(sim, machine("DWD-SX4"))
    res = ResourceSet(cpus=8, time_s=3600)
    script = system.dialect.render_script("j", "batch", res, ["x"])
    system.submit(BatchJobSpec(
        name="j", owner="kurt", queue="batch", script=script,
        resources=res, wallclock_s=1800.0, origin="unicore",
    ))
    sim.run()
    log = AccountingLog(cost_per_cpu_hour={"DWD-SX4": 2.0})
    billed = log.charge_all("DWD-SX4", system.all_records())
    assert billed == 1
    assert log.cpu_hours_by_user()["kurt"] == pytest.approx(8 * 0.5)
    assert log.cost_by_user()["kurt"] == pytest.approx(8.0)
    assert log.cpu_hours_by_vsite()["DWD-SX4"] == pytest.approx(4.0)


def test_accounting_skips_unstarted_jobs():
    sim = Simulator()
    system = BatchSystem(sim, machine("DWD-SX4"))
    res = ResourceSet(cpus=8, time_s=3600)
    script = system.dialect.render_script("j", "batch", res, ["x"])
    jid = system.submit(BatchJobSpec(
        name="j", owner="kurt", queue="batch", script=script, resources=res,
    ))
    log = AccountingLog()
    assert log.charge("DWD-SX4", system.query(jid)) is None
    assert len(log) == 0


# ------------------------------------------------------- app interfaces
def test_app_template_builds_complete_job(grid):
    # Install the package on the T3E's page.
    user = grid.users["Ana"]
    session = grid.connect_user(user, "FZJ")
    page = session.resource_pages["FZJ-T3E"]
    page.software.add(
        __import__("repro.resources.software", fromlist=["SoftwareItem"]).SoftwareItem(
            kind="package", name="pamcrash", version="97"
        )
    )
    from repro.client import JobPreparationAgent

    jpa = JobPreparationAgent(session)
    user.workstation.fs.write("/home/ana/car.pc", b"MODEL DECK" * 100)
    template = STANDARD_PACKAGES["pamcrash"]
    job = template.build_job(
        jpa, vsite="FZJ-T3E", input_path="/home/ana/car.pc",
        input_size_mb=10.0, cpus=8,
    )
    # One import, one run, two exports, with dependencies wired.
    kinds = [type(t).__name__ for t in job.ajo.tasks()]
    assert kinds.count("ImportTask") == 1
    assert kinds.count("ExecuteScriptTask") == 1
    assert kinds.count("ExportTask") == 2
    assert len(job.ajo.dependencies) == 3
    assert "pamcrash -nproc 8" in job.ajo.tasks()[1].script


def test_app_template_validates_input_and_package(grid):
    user = grid.users["Ana"]
    session = grid.connect_user(user, "FZJ")
    from repro.ajo import ValidationError
    from repro.client import JobPreparationAgent

    jpa = JobPreparationAgent(session)
    template = STANDARD_PACKAGES["ansys"]
    with pytest.raises(ValidationError, match="expects a .db"):
        template.build_job(jpa, "FZJ-T3E", "/home/ana/car.pc", 1.0)
    with pytest.raises(ValidationError, match="does not offer"):
        template.build_job(jpa, "FZJ-T3E", "/home/ana/model.db", 1.0)


# -------------------------------------------------------- co-allocation
def _spec(system, name, cpus, time_s=600.0, runtime=300.0):
    res = ResourceSet(cpus=cpus, time_s=time_s)
    script = system.dialect.render_script(name, "batch", res, ["x"])
    return BatchJobSpec(
        name=name, owner="meta", queue="batch", script=script,
        resources=res, wallclock_s=runtime, origin="unicore",
    )


def test_coallocation_on_idle_systems_achieves_sync():
    sim = Simulator()
    a = BatchSystem(sim, machine("FZJ-T3E"))
    b = BatchSystem(sim, machine("ZIB-SP2"))
    alloc = CoAllocator(sim)

    def scenario(sim):
        result = yield from alloc.co_allocate(
            [(a, _spec(a, "partA", 64)), (b, _spec(b, "partB", 32))]
        )
        return result

    p = sim.process(scenario(sim))
    result = sim.run(until=p)
    assert result.achieved
    assert result.start_skew_s == 0.0
    assert result.polls == 1


def test_coallocation_waits_for_capacity_and_can_be_raced():
    """Site autonomy: a local job can steal the window (the paper's
    reason for excluding synchronous meta-computing)."""
    sim = Simulator()
    a = BatchSystem(sim, machine("DWD-SX4"))  # 32 cpus
    b = BatchSystem(sim, machine("LRZ-VPP"))  # 52 cpus
    # a is busy for 1000s.
    a.submit(_spec(a, "busy", 32, time_s=1200.0, runtime=1000.0))
    alloc = CoAllocator(sim, poll_interval_s=10.0)

    def scenario(sim):
        result = yield from alloc.co_allocate(
            [(a, _spec(a, "partA", 32)), (b, _spec(b, "partB", 32))]
        )
        return result

    p = sim.process(scenario(sim))
    result = sim.run(until=p)
    assert result.achieved
    assert result.polls > 1  # had to wait out the local job
    assert min(result.start_times.values()) >= 1000.0
