#!/usr/bin/env python
"""DWD-style operational forecast: script tasks, imports, exports.

The Deutscher Wetterdienst was one of the six production UNICORE sites
(section 5.7).  This example models an operational weather run on its
NEC SX-4 using *script tasks* — "to include existing batch applications"
— since operational suites are exactly such pre-existing batch scripts:

    observations import -> assimilation -> global model -> local model
    -> products export (two in parallel)

It also shows failure handling: a second cycle with a missing
observations file fails the import, and everything downstream is
reported NOT_ATTEMPTED (grey icons) rather than running on stale data.

Run:  python examples/weather_forecast.py
"""

from repro import GridSession
from repro.grid import build_grid
from repro.resources import ResourceRequest


def build_cycle(session: GridSession, name: str, obs_path: str):
    job = session.new_job(name, vsite="DWD-SX4", account_group="ops")
    obs = job.import_from_xspace(obs_path, "obs.bufr")
    assim = job.script_task(
        "assimilation",
        script="#!/bin/sh\n./3dvar obs.bufr > analysis.grb\n",
        resources=ResourceRequest(cpus=8, time_s=3600, memory_mb=16384),
        simulated_runtime_s=2400.0,
    )
    global_m = job.script_task(
        "global-model",
        script="#!/bin/sh\n./gme analysis.grb > global.grb\n",
        resources=ResourceRequest(cpus=16, time_s=7200, memory_mb=32768),
        simulated_runtime_s=5000.0,
    )
    local_m = job.script_task(
        "local-model",
        script="#!/bin/sh\n./lm global.grb > local.grb\n",
        resources=ResourceRequest(cpus=8, time_s=3600, memory_mb=16384),
        simulated_runtime_s=2000.0,
    )
    exp_global = job.export_to_xspace("global.grb", f"/products/{name}/global.grb")
    exp_local = job.export_to_xspace("local.grb", f"/products/{name}/local.grb")
    job.depends(obs, assim, files=["obs.bufr"])
    job.depends(assim, global_m, files=["analysis.grb"])
    job.depends(global_m, local_m, files=["global.grb"])
    job.depends(global_m, exp_global, files=["global.grb"])
    job.depends(local_m, exp_local, files=["local.grb"])
    return job


def main() -> None:
    grid = build_grid({"DWD": ["DWD-SX4"]}, seed=7)
    forecaster = grid.add_user(
        "Op Forecaster", organization="DWD", logins={"DWD": "opfc"}
    )
    session = GridSession(grid, forecaster, "DWD")

    # This morning's observations are on the DWD Xspace; tomorrow's are not.
    grid.usites["DWD"].xspace.fs.write("/obs/00z.bufr", b"BUFR" * 50_000)

    good = build_cycle(session, "fc-00z", "/obs/00z.bufr")
    bad = build_cycle(session, "fc-12z", "/obs/12z.bufr")  # missing!

    good_handle = session.submit(good)
    bad_handle = session.submit(bad)
    good_final = session.wait(good_handle)
    bad_final = session.wait(bad_handle)

    print(f"00z cycle: {good_final.status}")
    print(session.render(good_final))
    xfs = grid.usites["DWD"].xspace.fs
    print("\nproducts on the DWD Xspace:")
    for path in xfs.walk_files("/products"):
        print(f"  {path}  ({xfs.size(path)} bytes)")

    print(f"\n12z cycle: {bad_final.status}  (observations were missing)")
    print(session.render(bad_final))

    batch = grid.usites["DWD"].vsites["DWD-SX4"].batch
    print(f"\nSX-4 utilization over the window: {batch.utilization():.1%}")


if __name__ == "__main__":
    main()
