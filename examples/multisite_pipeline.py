#!/usr/bin/env python
"""Multi-site pipeline: the paper's motivating scenario.

Section 1: users "have complex pre- and post-processing tasks which run
best on another architecture than the main application".  This example
runs exactly that, across three German centers:

    pre-process  on the LRZ Fujitsu VPP/700  (vector pre-conditioning)
    main solve   on the FZJ Cray T3E          (massively parallel)
    post-process on the ZIB IBM SP-2          (rendering)

with the dependency-file mechanism handing the field data from stage to
stage, NJS-to-NJS over https — the user writes none of that plumbing,
and drives everything through one :class:`repro.api.GridSession`.

Run:  python examples/multisite_pipeline.py
"""

from repro import GridSession
from repro.grid import build_grid
from repro.resources import ResourceRequest


def main() -> None:
    grid = build_grid(
        {"FZJ": ["FZJ-T3E"], "LRZ": ["LRZ-VPP"], "ZIB": ["ZIB-SP2"]}, seed=99
    )
    user = grid.add_user(
        "Clara Schmidt",
        organization="FZ Juelich",
        logins={"FZJ": "clara", "LRZ": "schmidtc", "ZIB": "cschmidt"},
    )
    # She contacts her home site; the rest happens server-to-server.
    session = GridSession(grid, user, "FZJ")

    root = session.new_job(
        "climate-study", vsite="FZJ-T3E", account_group="climate"
    )

    # Stage 1: pre-processing at LRZ (job group destined for another Usite).
    pre = root.sub_job("preprocess@LRZ", vsite="LRZ-VPP", usite="LRZ")
    pre.script_task(
        "precondition",
        script="#!/bin/sh\npreconditioner --grid 1deg > grid.bin\n",
        resources=ResourceRequest(cpus=4, time_s=7200, memory_mb=8192),
        simulated_runtime_s=2400.0,
    )

    # Stage 2: the main solve at FZJ (tasks directly in the root group).
    main_run = root.script_task(
        "solve",
        script="#!/bin/sh\n./climate_model grid.bin > field.dat\n",
        resources=ResourceRequest(cpus=256, time_s=36000, memory_mb=32768),
        simulated_runtime_s=14400.0,
    )

    # Stage 3: post-processing at ZIB.
    post = root.sub_job("render@ZIB", vsite="ZIB-SP2", usite="ZIB")
    post.script_task(
        "render",
        script="#!/bin/sh\nrender field.dat --format mpeg\n",
        resources=ResourceRequest(cpus=16, time_s=7200, memory_mb=4096),
        simulated_runtime_s=1800.0,
    )

    # The dependency-file guarantees (section 5.7).
    root.depends(pre, main_run, files=["grid.bin"])
    root.depends(main_run, post, files=["field.dat"])

    handle = session.submit(root)
    print(f"consigned {handle}; sub-groups forwarded NJS-to-NJS")
    final = session.wait(handle)

    print(f"\nfinal status: {final.status}  "
          f"(t={grid.sim.now/3600:.2f} simulated hours)")
    print("\nJMC job tree:")
    print(session.render(final))

    print("\nwho actually ran what, under which local identity and dialect:")
    for site, vsite in (("LRZ", "LRZ-VPP"), ("FZJ", "FZJ-T3E"), ("ZIB", "ZIB-SP2")):
        for record in grid.usites[site].vsites[vsite].batch.all_records():
            directive = record.spec.script.splitlines()[1].split()[0]
            print(f"  {vsite:8} {record.spec.name:14} as {record.spec.owner:10}"
                  f" [{directive}] wait={record.wait_time:7.1f}s "
                  f"run={record.end_time - record.start_time:7.1f}s")


if __name__ == "__main__":
    main()
