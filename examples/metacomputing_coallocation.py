#!/usr/bin/env python
"""Synchronous meta-computing: the paper's future-work item, sketched.

Section 6: "For the big grand challenge problems the integration of
meta-computing is a topic.  This extends the usage of distributed
systems in one UNICORE job to the synchronous use for a single
application."  And section 5.5 explains the obstacle: UNICORE "has no
means of influencing the scheduling on the destination systems ...
(i.e. to allow for synchronous execution of jobs on different systems)".

This example runs the best-effort co-allocator against two machines:

1. on an idle pair, the two halves of a coupled application start in the
   same simulated instant;
2. with local load on one machine, the co-allocator must wait for a
   window — and the start skew shows how fragile polling-based
   synchronization is without reservations.

Run:  python examples/metacomputing_coallocation.py
"""

from repro.batch import BatchJobSpec, BatchSystem, machine
from repro.ext import CoAllocator
from repro.grid.workloads import LocalLoadGenerator, WorkloadProfile
from repro.resources import ResourceSet
from repro.simkernel import Simulator, derive_rng


def part(system, name, cpus, runtime=600.0):
    res = ResourceSet(cpus=cpus, time_s=runtime * 3)
    script = system.dialect.render_script(name, "batch", res, ["./coupled"])
    return BatchJobSpec(
        name=name, owner="grandchallenge", queue="batch", script=script,
        resources=res, wallclock_s=runtime, origin="unicore",
    )


def scenario(with_load: bool) -> None:
    sim = Simulator()
    t3e = BatchSystem(sim, machine("FZJ-T3E"))
    sp2 = BatchSystem(sim, machine("ZIB-SP2"))
    if with_load:
        LocalLoadGenerator(
            sim, sp2, derive_rng(6, "load"),
            arrival_rate_per_s=1 / 240.0,
            profile=WorkloadProfile(mean_runtime_s=3600.0, max_cpus=192),
            horizon_s=4 * 3600.0,
        )
        sim.run(until=3600.0)  # let the SP-2 fill up

    alloc = CoAllocator(sim, poll_interval_s=60.0)

    def run(sim):
        result = yield from alloc.co_allocate([
            (t3e, part(t3e, "ocean-model", 256)),
            (sp2, part(sp2, "atmosphere-model", 96)),
        ])
        return result

    result = sim.run(until=sim.process(run(sim)))
    label = "loaded SP-2" if with_load else "idle machines"
    print(f"{label}:")
    print(f"  synchronous start achieved: {result.achieved}")
    print(f"  polls before a window opened: {result.polls}")
    print(f"  start skew between the parts: {result.start_skew_s:.1f}s")
    for key, start in sorted(result.start_times.items()):
        print(f"    {key}: started t={start:.0f}s")
    print()


def main() -> None:
    print("Co-allocating a coupled ocean+atmosphere run (T3E + SP-2)\n")
    scenario(with_load=False)
    scenario(with_load=True)
    print("Without reservations this is best-effort polling — exactly why")
    print("the paper postponed synchronous meta-computing (sections 5.5/6).")


if __name__ == "__main__":
    main()
