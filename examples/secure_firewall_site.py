#!/usr/bin/env python
"""The security architecture in action.

Demonstrates every security mechanism of sections 4 and 5.2:

1. mutual authentication — a rogue server and an untrusted user are both
   rejected during the SSL handshake;
2. signed applets — a tampered JPA bundle is detected before it runs;
3. certificate-to-uid mapping — the same user DN maps to different local
   logins at different sites, with no uniform uid/gid anywhere;
4. revocation — a revoked certificate stops authenticating immediately;
5. the firewall split — gateway on the firewall host, NJS inside,
   requests crossing the site-selectable socket.

Run:  python examples/secure_firewall_site.py
"""

from repro.client import JobMonitorController, JobPreparationAgent
from repro.grid import build_grid
from repro.security import (
    AuthenticationError,
    CertificateAuthority,
    CertificateStore,
    TamperedBundleError,
    verify_applet,
)
from repro.security.x509 import CertificateRole, DistinguishedName


def main() -> None:
    grid = build_grid({"FZJ": ["FZJ-T3E"], "ZIB": ["ZIB-SP2"]}, seed=1)
    alice = grid.add_user(
        "Alice Adams", organization="FZJ",
        logins={"FZJ": "alice01", "ZIB": "aadams"},
    )

    # --- 1a. A user from an untrusted CA cannot connect. -----------------
    rogue_ca = CertificateAuthority(name="Rogue CA", key_bits=384, seed=666)
    mallory_cert, mallory_key = rogue_ca.issue(
        DistinguishedName(cn="Mallory"), role=CertificateRole.USER
    )
    from repro.client import Browser

    grid.network.add_host("ws.mallory")
    grid.network.link("ws.mallory", grid.usites["FZJ"].gateway_host.name)
    mallory = Browser(
        grid.sim, grid.network, "ws.mallory",
        user_cert=mallory_cert, user_key=mallory_key,
        trust_store=CertificateStore(trusted=[grid.ca, rogue_ca]),
    )
    p = grid.sim.process(mallory.connect(grid.usites["FZJ"]))
    try:
        grid.sim.run(until=p)
        print("BUG: Mallory connected!")
    except AuthenticationError as err:
        print(f"1a. untrusted user rejected: {str(err)[:72]}...")

    # --- 1b/2. Alice connects; her browser verifies the applets. ----------
    session = grid.connect_user(alice, "FZJ")
    print(f"1b. Alice authenticated at FZJ; applets {sorted(session.applets)} "
          "verified")

    jpa_applet = session.applets["JPA"]
    original = jpa_applet.bundle.files["jpa/JobTree.class"]
    jpa_applet.bundle.files["jpa/JobTree.class"] = b"\xca\xfe evil patch"
    try:
        verify_applet(jpa_applet)
        print("BUG: tampered applet verified!")
    except TamperedBundleError:
        print("2.  tampered JPA applet detected and refused")
    jpa_applet.bundle.files["jpa/JobTree.class"] = original  # undo the attack

    # --- 3. One certificate, different local identities per site. ---------
    session_fzj = grid.connect_user(alice, "FZJ")
    session_zib = grid.connect_user(alice, "ZIB")
    jpa_fzj, jpa_zib = (
        JobPreparationAgent(session_fzj), JobPreparationAgent(session_zib)
    )
    job_f = jpa_fzj.new_job("at-fzj", vsite="FZJ-T3E")
    job_f.script_task("t", script="#!/bin/sh\nwhoami\n", simulated_runtime_s=10.0)
    job_z = jpa_zib.new_job("at-zib", vsite="ZIB-SP2")
    job_z.script_task("t", script="#!/bin/sh\nwhoami\n", simulated_runtime_s=10.0)

    def both(sim):
        fid = yield from jpa_fzj.submit(job_f)
        zid = yield from jpa_zib.submit(job_z)
        jmc_f = JobMonitorController(session_fzj)
        jmc_z = JobMonitorController(session_zib)
        yield from jmc_f.wait_for_completion(fid)
        yield from jmc_z.wait_for_completion(zid)

    grid.sim.run(until=grid.sim.process(both(grid.sim)))
    owner_fzj = grid.usites["FZJ"].vsites["FZJ-T3E"].batch.all_records()[0].spec.owner
    owner_zib = grid.usites["ZIB"].vsites["ZIB-SP2"].batch.all_records()[0].spec.owner
    print(f"3.  same certificate ran as {owner_fzj!r} at FZJ and "
          f"{owner_zib!r} at ZIB — no uniform uid/gid anywhere")

    # --- 4. Revocation takes effect immediately. --------------------------
    grid.ca.revoke(alice.browser.user_cert, reason="smartcard lost")
    p = grid.sim.process(alice.browser.connect(grid.usites["FZJ"]))
    try:
        grid.sim.run(until=p)
        print("BUG: revoked certificate connected!")
    except AuthenticationError as err:
        print(f"4.  revoked certificate refused: {str(err)[:64]}...")

    # --- 5. The firewall split is real: count socket crossings. -----------
    fzj = grid.usites["FZJ"]
    fw_link = grid.network.get_link(
        fzj.gateway_host.name, fzj.njs_host.name
    )
    print(f"5.  firewall socket {fzj.gateway_host.name} -> "
          f"{fzj.njs_host.name} carried {fw_link.messages_sent} messages "
          f"({fw_link.bytes_sent} bytes) — web server outside, NJS inside")


if __name__ == "__main__":
    main()
