#!/usr/bin/env python
"""Real sockets, same grid: concurrent async sessions over TCP loopback.

Every other example drives the deterministic simkernel transport.  This
one builds the identical three-tier stack on the ``"aio"`` backend
(``build_grid(..., transport="aio")``): each user's WAN edge —
workstation to gateway, the leg the paper runs over SSL on the open
Internet — becomes a real TCP connection carrying length-prefixed
frames, while everything behind the gateway stays in-process.

Three users connect through :class:`repro.api.aio.AsyncGridSession` and
run their jobs *concurrently* under ``asyncio.gather``: submits,
status polls, subscription holds, outcome and file fetches all
interleave on live sockets, yet each job behaves exactly as it would in
the simulation — the transport freezes the simulated clock while frames
are in flight, so timeouts and retries keep their modeled semantics.

Run:  python examples/realsocket_quickstart.py
"""

import asyncio

from repro.api.aio import AsyncGridSession
from repro.grid import build_grid

SITE = "FZJ"
MACHINE = "FZJ-T3E"


async def run_user(grid, name: str, login: str) -> str:
    """One user's full lifecycle: connect, submit, wait, fetch."""
    user = grid.add_user(name, logins={SITE: login})
    content = f"data for {name}\n".encode() * 2048
    user.workstation.fs.write(f"/home/{login}/input.dat", content)

    session = await AsyncGridSession.connect(grid, user, SITE)

    job = await session.new_job(f"{login}-job", vsite=MACHINE)
    imp = job.import_from_workstation(f"/home/{login}/input.dat", "input.dat")
    work = job.script_task(
        "crunch", "#!/bin/sh\nwc input.dat\n", simulated_runtime_s=60.0)
    job.depends(imp, work, files=["input.dat"])

    handle = await session.submit(job, workstation=user.workstation)
    final = await handle.wait()
    fetched = await handle.fetch_file("input.dat")
    assert fetched == content, "fetched bytes must round-trip exactly"
    return f"{handle.job_id}: {final.status}, fetched {len(fetched)} B"


async def main() -> None:
    grid = build_grid({SITE: [MACHINE]}, seed=42, transport="aio")
    try:
        results = await asyncio.gather(
            run_user(grid, "Ada Lovelace", "ada"),
            run_user(grid, "Grace Hopper", "grace"),
            run_user(grid, "Mary Shelley", "mary"),
        )
        for line in results:
            print(line)
        net = grid.network
        print(
            f"\nover the wire: {net.socket_frames} TCP frames, "
            f"{net.socket_bytes:,} bytes through port {net.port}"
        )
    finally:
        await grid.network.aclose()


if __name__ == "__main__":
    asyncio.run(main())
