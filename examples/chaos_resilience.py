#!/usr/bin/env python
"""Chaos day on the German grid: faults injected, jobs survive.

The reliability claim behind "seamless access" is only credible if the
middleware rides out the failures a 1999 WAN actually produced.  This
example arms a deterministic :class:`~repro.faults.FaultPlan` against
the six-site production grid — lossy links, latency spikes, gateway and
NJS crash-restarts, Vsite outages, batch-node failures — then submits a
batch of jobs through the :class:`repro.api.GridSession` facade and
shows every one of them completing anyway:

* protocol retries and the circuit breaker absorb gateway crashes;
* the NJS journal replays in-flight jobs after an NJS crash;
* the batch layer resubmits tasks killed by node failures and queues
  through Vsite outages;
* status polls during outages serve the last good view, marked stale.

Same seed, same faults, same outcome — run it twice and diff.

Run:  python examples/chaos_resilience.py
"""

from repro import GridSession
from repro.faults import FaultInjector, FaultPlan, FaultTargets
from repro.grid import build_german_grid
from repro.observability import telemetry_for


def main() -> None:
    grid = build_german_grid(seed=23)
    user = grid.add_user(
        "Chaos Tester", organization="GMD",
        logins={name: "chaos" for name in grid.usites},
    )

    # A deterministic schedule of infrastructure faults over two hours.
    plan = FaultPlan.generate(
        FaultTargets.from_grid(grid), intensity=1.0,
        horizon_s=2 * 3600.0, seed=23,
    )
    FaultInjector(grid, plan).arm()
    print(f"armed {len(plan)} faults over {plan.horizon_s/3600:.0f}h "
          f"(intensity {plan.intensity})")
    for kind in ("channel_drop", "latency_spike", "gateway_crash",
                 "njs_crash", "vsite_outage", "node_failure"):
        print(f"  {kind:14} x{len(plan.of_kind(kind))}")

    session = GridSession(grid, user, "FZJ")
    handles = []
    for i in range(8):
        job = session.new_job(f"chaos-{i}")
        job.script_task("work", "#!/bin/sh\n./app\n",
                        simulated_runtime_s=600.0)
        handles.append(session.submit(job))
        session.advance(300.0)  # spread submissions across the fault window

    outcomes = [session.wait(h) for h in handles]
    done = sum(1 for o in outcomes if o.status == "successful")
    print(f"\ncompleted {done}/{len(handles)} jobs "
          f"(t={grid.sim.now/3600:.2f} simulated hours)")
    for handle, view in zip(handles, outcomes):
        flags = " [failed over]" if handle.failed_over else ""
        print(f"  {handle.job_id:12} {view.status}{flags}")

    recovered = [row for row in session.list_jobs() if row.recovered]
    if recovered:
        print("\njobs re-supervised from the NJS journal:")
        for row in recovered:
            print(f"  {row.job_id:12} {row.status}")

    metrics = telemetry_for(grid.sim).metrics
    print("\nwhat the resilience machinery did:")
    for name in ("faults.injected", "gateway.crashes", "njs.crashes",
                 "njs.journal_replays", "njs.task_resubmissions",
                 "njs.task_retry_waits", "batch.node_failures",
                 "batch.outages", "resilience.breaker_open",
                 "api.failovers", "client.stale_status_serves"):
        value = metrics.counter(name).value
        if value:
            print(f"  {name:28} {value:.0f}")


if __name__ == "__main__":
    main()
