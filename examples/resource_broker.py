#!/usr/bin/env python
"""The section-6 resource broker, with accounting, on a loaded grid.

The paper's outlook: "the broker finds the appropriate execution server
... Together with accounting functions and load information the resource
broker can find the best system for an application with given time
constraints."

This example loads the FZJ T3E with site-local jobs, then lets the broker
place ten UNICORE jobs across the German grid by estimated turnaround.
One :class:`repro.api.GridSession` submits everywhere: the facade opens
sessions to the other gateways on demand.  It prints where each job went
and the accounting totals afterwards.

Run:  python examples/resource_broker.py
"""

from repro import GridSession
from repro.ext import AccountingLog, ResourceBroker
from repro.grid import LocalLoadGenerator, WorkloadProfile, build_german_grid
from repro.resources import ResourceRequest
from repro.simkernel import derive_rng


def main() -> None:
    grid = build_german_grid(seed=17)
    logins = {name: "weiss" for name in grid.usites}
    user = grid.add_user("Dr. Weiss", organization="GMD", logins=logins)

    # Heavy local load on the FZJ T3E — its own users come first.
    fzj_batch = grid.usites["FZJ"].vsites["FZJ-T3E"].batch
    LocalLoadGenerator(
        grid.sim, fzj_batch, derive_rng(17, "local-load"),
        arrival_rate_per_s=1 / 120.0,
        profile=WorkloadProfile(mean_runtime_s=7200.0, max_cpus=256),
        horizon_s=4 * 3600.0,
    )
    grid.sim.run(until=3600.0)  # let the backlog build for an hour

    broker = ResourceBroker.for_grid(
        grid,
        cost_per_cpu_hour={
            "FZJ-T3E": 1.0, "RUS-T3E": 1.0, "RUKA-SP2": 0.6,
            "ZIB-SP2": 0.6, "LRZ-VPP": 3.0, "DWD-SX4": 4.0,
        },
    )
    session = GridSession(grid, user, "FZJ")

    # Submit all ten back to back: each placement sees the backlog the
    # previous ones created (that's the "load information").
    placements = []
    handles = []
    for i in range(10):
        request = ResourceRequest(cpus=16, time_s=7200, memory_mb=2048)
        decision = broker.choose(request, baseline_runtime_s=1800.0)
        placements.append(decision)
        job = session.new_job(
            f"brokered-{i}", vsite=decision.vsite, usite=decision.usite
        )
        job.script_task(
            "work", script="#!/bin/sh\n./app\n",
            resources=request, simulated_runtime_s=1800.0,
        )
        handles.append(session.submit(job))
    for handle in handles:
        session.wait(handle)

    print("broker placements (with the T3E under heavy local load):")
    for i, d in enumerate(placements):
        print(f"  job {i}: {d.vsite:9} est wait {d.estimated_wait_s:8.0f}s  "
              f"est run {d.estimated_runtime_s:6.0f}s  rate {d.cost_rate:.1f}")

    log = AccountingLog(cost_per_cpu_hour=broker._cost)
    for usite in grid.usites.values():
        for vname, vsite in usite.vsites.items():
            log.charge_all(vname, vsite.batch.all_records())
    print("\naccounting: cpu-hours by vsite")
    for vsite, hours in sorted(log.cpu_hours_by_vsite().items()):
        print(f"  {vsite:9} {hours:10.1f}")
    weiss = log.cost_by_user().get("weiss", 0.0)
    print(f"\nDr. Weiss's bill: {weiss:.1f} units "
          f"({log.cpu_hours_by_user().get('weiss', 0):.1f} cpu-hours)")


if __name__ == "__main__":
    main()
