#!/usr/bin/env python
"""Quickstart: one compile-link-execute F90 job at FZ Jülich.

This walks the paper's primary scenario end to end, through the public
:class:`repro.api.GridSession` facade:

1. build a one-site grid (FZ Jülich's Cray T3E);
2. a user with a certificate and a UUDB mapping opens a session: mutual
   https authentication, signed JPA/JMC applets verified, resource page
   loaded — all inside the ``GridSession`` constructor;
3. the builder assembles a compile-link-execute job (the prototype's F90
   path) with an import from the workstation and an export of the result;
4. ``submit`` consigns it; the NJS incarnates each task into NQS
   scripts, sequences them, and collects output;
5. ``wait`` polls asynchronously until completion; ``outcome`` fetches
   the result tree.

Run:  python examples/quickstart.py
"""

from repro import GridSession
from repro.grid import build_grid
from repro.resources import ResourceRequest


def main() -> None:
    # 1. One Usite with the Cray T3E behind it.
    grid = build_grid({"FZJ": ["FZJ-T3E"]}, seed=42)

    # 2. Alice: certificate from the CA, local login in the FZJ UUDB.
    alice = grid.add_user(
        "Alice Adams", organization="FZ Juelich", logins={"FZJ": "alice01"}
    )
    alice.workstation.fs.write(
        "/home/alice/solver.f90", b"program solver\n  print *, 'hi'\nend\n"
    )
    session = GridSession(grid, alice, "FZJ")
    print(f"connected to {session.session.usite} as {session.session.user_dn}")
    print(f"applets verified: {sorted(session.session.applets)}")
    page = session.session.resource_pages["FZJ-T3E"]
    print(f"destination: {page.architecture} / {page.operating_system}, "
          f"cpus {page.ranges['cpus'].minimum:.0f}..{page.ranges['cpus'].maximum:.0f}")

    # 3. Build the job.
    job = session.new_job("quickstart", vsite="FZJ-T3E", account_group="zam")
    src = job.import_from_workstation("/home/alice/solver.f90", "solver.f90")
    compile_t, link_t, run_t = job.compile_link_execute(
        "solver",
        sources=["solver.f90"],
        executable="solver.exe",
        run_resources=ResourceRequest(cpus=32, time_s=7200, memory_mb=2048),
        simulated_runtime_s=1500.0,
    )
    job.depends(src, compile_t, files=["solver.f90"])
    exp = job.export_to_xspace("result.dat", "/archive/quickstart/result.dat")
    job.depends(run_t, exp, files=["result.dat"])

    # 4+5. Consign, poll, harvest — each verb drives the simulation.
    handle = session.submit(job)
    print(f"consigned: {handle}")
    final = session.wait(handle)
    outcome = session.outcome(handle)

    print(f"\nfinal status: {final.status}  (t={grid.sim.now:.1f}s simulated)")
    print("\nJMC job tree:")
    print(session.render(final))

    from repro.grid import job_timeline, render_gantt

    print("\njob timeline (where the time went):")
    njs = grid.usites["FZJ"].njs
    print(render_gantt(job_timeline(njs, handle.job_id)))
    print("\nrun task stdout:", outcome.child(run_t.id).stdout.strip())
    xfs = grid.usites["FZJ"].xspace.fs
    print(f"exported result: {xfs.size('/archive/quickstart/result.dat')} bytes "
          "on the FZJ Xspace")


if __name__ == "__main__":
    main()
