#!/usr/bin/env python
"""Quickstart: one compile-link-execute F90 job at FZ Jülich.

This walks the paper's primary scenario end to end:

1. build a one-site grid (FZ Jülich's Cray T3E);
2. a user with a certificate and a UUDB mapping connects: mutual https
   authentication, signed JPA/JMC applets verified, resource page loaded;
3. the JPA builds a compile-link-execute job (the prototype's F90 path)
   with an import from the workstation and an export of the result;
4. the job is consigned; the NJS incarnates each task into NQS scripts,
   sequences them, and collects output;
5. the JMC polls asynchronously until completion and fetches the outcome.

Run:  python examples/quickstart.py
"""

from repro.client import JobMonitorController, JobPreparationAgent
from repro.grid import build_grid
from repro.resources import ResourceRequest


def main() -> None:
    # 1. One Usite with the Cray T3E behind it.
    grid = build_grid({"FZJ": ["FZJ-T3E"]}, seed=42)

    # 2. Alice: certificate from the CA, local login in the FZJ UUDB.
    alice = grid.add_user(
        "Alice Adams", organization="FZ Juelich", logins={"FZJ": "alice01"}
    )
    alice.workstation.fs.write(
        "/home/alice/solver.f90", b"program solver\n  print *, 'hi'\nend\n"
    )
    session = grid.connect_user(alice, "FZJ")
    print(f"connected to {session.usite} as {session.user_dn}")
    print(f"applets verified: {sorted(session.applets)}")
    page = session.resource_pages["FZJ-T3E"]
    print(f"destination: {page.architecture} / {page.operating_system}, "
          f"cpus {page.ranges['cpus'].minimum:.0f}..{page.ranges['cpus'].maximum:.0f}")

    # 3. Build the job in the JPA.
    jpa = JobPreparationAgent(session)
    jmc = JobMonitorController(session)
    job = jpa.new_job("quickstart", vsite="FZJ-T3E", account_group="zam")
    src = job.import_from_workstation("/home/alice/solver.f90", "solver.f90")
    compile_t, link_t, run_t = job.compile_link_execute(
        "solver",
        sources=["solver.f90"],
        executable="solver.exe",
        run_resources=ResourceRequest(cpus=32, time_s=7200, memory_mb=2048),
        simulated_runtime_s=1500.0,
    )
    job.depends(src, compile_t, files=["solver.f90"])
    exp = job.export_to_xspace("result.dat", "/archive/quickstart/result.dat")
    job.depends(run_t, exp, files=["result.dat"])

    # 4+5. Consign, poll, harvest — all inside the simulation.
    def scenario(sim):
        job_id = yield from jpa.submit(job, workstation=alice.workstation)
        print(f"consigned: {job_id}")
        final = yield from jmc.wait_for_completion(job_id)
        tree = yield from jmc.status(job_id)
        outcome = yield from jmc.outcome(job_id)
        return final, tree, outcome

    process = grid.sim.process(scenario(grid.sim))
    final, tree, outcome = grid.sim.run(until=process)

    print(f"\nfinal status: {final['status']}  (t={grid.sim.now:.1f}s simulated)")
    print("\nJMC job tree:")
    print(JobMonitorController.render_tree(tree))

    from repro.grid import job_timeline, render_gantt

    print("\njob timeline (where the time went):")
    njs = grid.usites["FZJ"].njs
    run_list = njs.list_jobs(session.user_dn)
    print(render_gantt(job_timeline(njs, run_list[0]["job_id"])))
    print("\nrun task stdout:", outcome.child(run_t.id).stdout.strip())
    xfs = grid.usites["FZJ"].xspace.fs
    print(f"exported result: {xfs.size('/archive/quickstart/result.dat')} bytes "
          "on the FZJ Xspace")


if __name__ == "__main__":
    main()
