"""The UNICORE server tier (paper section 4.2).

"The UNICORE server consists of the https Web server ..., the signed
Java applets, resource information about the available execution systems
at the Usite, the user authentication ..., the Java security servlet
(gateway) which maps the user's certificate to the user's id at the
target system, [and] the network job supervisor (NJS) which does the job
management."

- :mod:`repro.server.gateway` — authentication, DN→uid mapping, request
  forwarding, the firewall split;
- :mod:`repro.server.vsite` — a virtual site: batch system + Uspace
  manager + resource page + translation table;
- :mod:`repro.server.translation` — the site-maintained translation
  tables incarnation reads;
- :mod:`repro.server.njs` — the network job supervisor: incarnation,
  DAG-sequenced delivery, data transfers, outcome collection,
  peer-NJS forwarding;
- :mod:`repro.server.usite` — one UNICORE site assembled from the above.
"""

from repro.server.errors import (
    ConsignError,
    IncarnationError,
    ServerError,
    UnknownUnicoreJobError,
)
from repro.server.translation import TranslationTable
from repro.server.vsite import Vsite
from repro.server.gateway import Gateway
from repro.server.njs.supervisor import NetworkJobSupervisor
from repro.server.usite import Usite

__all__ = [
    "ConsignError",
    "Gateway",
    "IncarnationError",
    "NetworkJobSupervisor",
    "ServerError",
    "TranslationTable",
    "UnknownUnicoreJobError",
    "Usite",
    "Vsite",
]
