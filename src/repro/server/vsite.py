"""A Vsite: one virtual site of a Usite.

Paper section 4: "A Vsite (virtual site) consists of systems at one Usite
sharing the same data space."  Operationally a Vsite bundles the batch
system of its execution host, the Uspace manager on its spool filesystem,
the resource page its administrator publishes, and the translation table
the NJS incarnates against.
"""

from __future__ import annotations

import math
from repro.batch.base import BatchSystem, QueueConfig
from repro.batch.machines import MachineConfig
from repro.resources.editor import ResourcePageEditor
from repro.resources.page import ResourcePage
from repro.server.translation import TranslationTable
from repro.simkernel import Simulator
from repro.vfs.spaces import UspaceManager

__all__ = ["Vsite", "default_translation_for", "default_queues_for"]


def default_queues_for(machine: MachineConfig) -> list[QueueConfig]:
    """A realistic size-classed queue layout for one machine.

    ``small`` and ``medium`` cap cpus and time; ``batch`` is the
    catch-all (full machine, 24 h) so every page-admissible request has
    a queue.  The NJS routes each incarnated job to the tightest
    admitting queue.
    """
    return [
        QueueConfig(
            name="small", max_cpus=max(1, machine.cpus // 4),
            max_time_s=3600.0,
        ),
        QueueConfig(
            name="medium", max_cpus=max(1, machine.cpus // 2),
            max_time_s=12 * 3600.0,
        ),
        QueueConfig(name="batch", max_cpus=machine.cpus, max_time_s=86400.0),
    ]

#: Local compiler invocations by architecture family — the heterogeneity
#: the translation tables exist to hide.
_LOCAL_F90 = {
    "nqs": "f90",            # Cray / NEC
    "loadleveler": "xlf90",  # IBM
    "vpp": "frt",            # Fujitsu
    "codine": "f90",
}

_RUN_PREFIX = {
    "nqs": "mpprun -n {cpus}",
    "loadleveler": "poe -procs {cpus}",
    "vpp": "vppexec -p {cpus}",
    "codine": "",
}


def default_translation_for(machine: MachineConfig) -> TranslationTable:
    """A plausible site-administrator-authored table for ``machine``."""
    return TranslationTable(
        vsite=machine.name,
        software={
            "f90": _LOCAL_F90[machine.dialect],
            "cc": "cc",
            "make": "make",
        },
        environment={"UC_THREADS": "OMP_NUM_THREADS"},
        run_prefix=_RUN_PREFIX[machine.dialect],
    )


class Vsite:
    """Execution host + spool space + resource page + translation table."""

    def __init__(
        self,
        sim: Simulator,
        machine: MachineConfig,
        queues: list[QueueConfig] | None = None,
        scheduler=None,
        translation: TranslationTable | None = None,
        resource_page: ResourcePage | None = None,
        uspace_quota_bytes: float = math.inf,
    ) -> None:
        self.sim = sim
        self.machine = machine
        self.name = machine.name
        self.batch = BatchSystem(
            sim, machine,
            queues=queues if queues is not None else default_queues_for(machine),
            scheduler=scheduler,
        )
        self.uspaces = UspaceManager(machine.name, quota_bytes=uspace_quota_bytes)
        self.translation = translation or default_translation_for(machine)
        self.resource_page = resource_page or self._default_page()

    def _default_page(self) -> ResourcePage:
        machine = self.machine
        max_time = max(q.max_time_s for q in self.batch.queues.values())
        editor = (
            ResourcePageEditor(self.name)
            .set_system(
                machine.architecture, machine.operating_system, machine.peak_gflops
            )
            .set_range("cpus", 1, machine.cpus)
            .set_range("time_s", 1, max_time)
            .set_range("memory_mb", 1, machine.total_memory_mb)
            .set_range("disk_permanent_mb", 0, 1_000_000)
            .set_range("disk_temporary_mb", 0, 1_000_000)
        )
        for abstract, local in self.translation.software.items():
            editor.add_compiler(abstract, invocation=local)
        return editor.publish()

    def __repr__(self) -> str:
        return f"<Vsite {self.name} ({self.machine.architecture})>"
