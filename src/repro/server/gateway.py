"""The gateway: https endpoint, security servlet, firewall split.

Paper section 4.2: the UNICORE server includes "the user authentication
provided by https by checking the user's certificate, [and] the Java
security servlet (gateway) which maps the user's certificate to the
user's id at the target system".  Section 5.2: "the two parts of the
UNICORE server, the Web server and the NJS, can be run on different
systems.  The Web server has to be installed on the firewall system and
the NJS on a system inside the firewall.  The communication between the
two components is done via IP socket connection to a site selectable
port."

The :class:`Gateway` therefore:

* terminates client https channels (mutual authentication already done
  by :func:`~repro.net.https.establish_https`);
* re-validates the peer certificate on every request and refuses
  requests whose claimed DN differs from the authenticated certificate;
* maps the DN to the local login via the site's UUDB;
* serves the signed applets and the Vsites' ASN.1 resource pages;
* forwards requests over the firewall socket to the NJS and returns the
  NJS's answers as protocol replies.
"""

from __future__ import annotations

import json
import typing
import zlib

from repro.ajo.errors import SerializationError
from repro.ajo.serialize import decode_ajo, decode_service
from repro.ajo.services import ControlService, ControlVerb, ListService, QueryService
from repro.net.errors import ConnectionLost
from repro.net.https import HttpsChannel
from repro.net.sim_transport import Host, Network
from repro.observability import telemetry_for
from repro.protocol.consignment import (
    FileEntry,
    decode_consignment_envelope,
    file_entry_for,
)
from repro.protocol.datapath import (
    INLINE_FILE_MAX,
    DataPlaneEndpoint,
    StreamIdAllocator,
    encode_inline_reply,
    encode_stream_reply,
    stream_over_channel,
)
from repro.protocol.messages import Reply, Request, RequestKind
from repro.security.applet import SignedApplet
from repro.security.ca import CertificateStore
from repro.security.errors import MappingError, SecurityError
from repro.security.uudb import UUDB
from repro.server.errors import ConsignError, ServerError, UnknownUnicoreJobError
from repro.simkernel import Simulator

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.server.njs.supervisor import NetworkJobSupervisor

__all__ = ["Gateway"]

#: CPU cost of the gateway's per-request certificate re-validation.
AUTH_CPU_S = 0.003

#: Upper bound on how long one subscription QUERY may be parked waiting
#: for job completion.  Clients renew expired holds with a fresh QUERY,
#: so this caps per-request state lifetime without capping the wait.
MAX_SUBSCRIBE_HOLD_S = 24 * 3600.0


class Gateway:
    """The Usite's https front end and security servlet."""

    def __init__(
        self,
        sim: Simulator,
        usite_name: str,
        host: Host,
        network: Network,
        cert_store: CertificateStore,
        uudb: UUDB,
        njs: "NetworkJobSupervisor",
        applets: dict[str, SignedApplet] | None = None,
        auth_cpu_s: float = AUTH_CPU_S,
    ) -> None:
        self.sim = sim
        self.usite_name = usite_name
        self.host = host
        self.network = network
        self.cert_store = cert_store
        self.uudb = uudb
        self.njs = njs
        self.applets = dict(applets or {})
        self.auth_cpu_s = auth_cpu_s
        #: client host name -> authenticated https channel.
        self._channels: dict[str, HttpsChannel] = {}
        #: request id -> cached reply, making retried requests idempotent
        #: (the async protocol resends after reply loss).
        self._reply_cache: dict[int, Reply] = {}
        #: Data-plane intake: consignment uploads stream here ahead of
        #: their control-plane request.  Survives crashes alongside the
        #: reply cache (the process restarts on the same host).
        self.datapath = DataPlaneEndpoint(
            sim, metrics=telemetry_for(sim).metrics
        )
        self._stream_ids = StreamIdAllocator(f"gw:{usite_name}")
        #: request id -> (content, manifest entry) for replies whose
        #: bulk content is pushed on the data plane ahead of the reply.
        #: Kept (not popped) so a retried request re-pushes the stream —
        #: the client-side reassembler deduplicates repeated chunks.
        self._push_streams: dict[int, tuple[bytes, FileEntry]] = {}
        #: Instrumentation.
        self.requests_served = 0
        self.auth_failures = 0
        #: True while crashed: inbound requests are silently dropped (the
        #: client's retry/breaker machinery deals with the dead air).
        self.down = False

        sim.process(self._server_loop(), name=f"gateway:{usite_name}")

    # -- simulated crashes (driven by repro.faults) -------------------------
    def crash(self) -> None:
        """Stop serving.  Channels and the reply cache survive — the
        process restarts on the same host, and the reply cache is what
        keeps retried consigns idempotent across the outage."""
        if not self.down:
            self.down = True
            telemetry_for(self.sim).metrics.counter("gateway.crashes").inc()

    def restart(self) -> None:
        if self.down:
            self.down = False
            telemetry_for(self.sim).metrics.counter("gateway.restarts").inc()

    # -- connection management ---------------------------------------------
    def register_channel(self, client_host: str, channel: HttpsChannel) -> None:
        """Record an established client channel (called post-handshake)."""
        self._channels[client_host] = channel

    # -- content served alongside the applets ------------------------------
    def resource_pages(self) -> dict[str, bytes]:
        """ASN.1 resource pages of all local Vsites (section 5.4)."""
        return {
            name: vsite.resource_page.to_asn1()
            for name, vsite in self.njs.vsites.items()
        }

    def serve_applet(self, name: str) -> SignedApplet:
        try:
            return self.applets[name]
        except KeyError:
            raise ServerError(
                f"{self.usite_name}: no applet {name!r} "
                f"(available: {sorted(self.applets)})"
            ) from None

    # -- request handling --------------------------------------------------------
    def _server_loop(self):
        while True:
            message = yield self.host.receive()
            if isinstance(message.payload, (bytes, bytearray, memoryview)):
                # Data-plane frame from a client channel.
                if self.down:
                    telemetry_for(self.sim).metrics.counter(
                        "gateway.dropped_frames"
                    ).inc()
                else:
                    self.datapath.feed(message.payload)
                continue
            if self.down and isinstance(message.payload, Request):
                telemetry_for(self.sim).metrics.counter(
                    "gateway.dropped_requests"
                ).inc()
                continue
            if isinstance(message.payload, Request):
                self.sim.process(
                    self._handle_request(message.sender, message.payload),
                    name=f"gw-req:{message.payload.request_id}",
                )
            elif self.njs.host.name == self.host.name:
                # Co-located deployment (no firewall split): this host's
                # inbox is shared, and peer NJS traffic lands here too.
                self.njs.dispatch_peer_message(message.payload)
            # Otherwise: NJS peer traffic merely transits this host with
            # deliver=False; anything else is ignored.

    def _handle_request(self, client_host: str, request: Request):
        channel = self._channels.get(client_host)
        if channel is None:
            # No authenticated channel: nothing to reply on; drop.
            self.auth_failures += 1
            telemetry_for(self.sim).metrics.counter("gateway.auth_failures").inc()
            return
        cached = self._reply_cache.get(request.request_id)
        if cached is not None:
            # Retried request (its reply was lost): resend, do not redo.
            # Re-push any bulk stream first — the FIFO channel keeps the
            # frames ahead of the reply, and the client deduplicates.
            if not (yield from self._push_stream_for(channel, request.request_id)):
                return
            channel.send(cached, cached.wire_size, to_server=False)
            return
        reply = yield from self._process(channel, request)
        self._reply_cache[request.request_id] = reply
        self.requests_served += 1
        if not (yield from self._push_stream_for(channel, request.request_id)):
            return
        channel.send(reply, reply.wire_size, to_server=False)

    def _push_stream_for(self, channel: HttpsChannel, request_id: int):
        """Push a reply's bulk content on the data plane.

        Returns False when the stream could not be delivered — the reply
        is then withheld so the client's request retry triggers a fresh
        push from the cache instead of a 10-minute stream-wait timeout.
        """
        pushed = self._push_streams.get(request_id)
        if pushed is None:
            return True
        content, entry = pushed
        try:
            yield from stream_over_channel(
                self.sim, channel, content,
                {"kind": "bulk-reply", "request": request_id},
                stream_id=entry.stream_id, to_server=False,
                metrics=telemetry_for(self.sim).metrics,
            )
        except ConnectionLost:
            telemetry_for(self.sim).metrics.counter(
                "gateway.push_aborts"
            ).inc()
            return False
        return True

    def _process(self, channel: HttpsChannel, request: Request):
        telemetry = telemetry_for(self.sim)
        tracer = telemetry.tracer
        telemetry.metrics.counter("gateway.requests").inc()
        request_span = None
        auth_span = None
        if request.trace_id:
            request_span = tracer.start_span(
                "gateway.request",
                request.trace_id,
                parent=request.parent_span_id or None,
                tier="server",
                kind=request.kind,
            )
            auth_span = tracer.start_span(
                "gateway.auth", request.trace_id, parent=request_span,
                tier="server",
            )

        def refuse(error: str) -> Reply:
            self.auth_failures += 1
            telemetry.metrics.counter("gateway.auth_failures").inc()
            if auth_span is not None:
                tracer.end_span(auth_span, error=error)
                tracer.end_span(request_span, error=error)
            return Reply(request_id=request.request_id, ok=False, error=error)

        # Authentication: the channel's peer certificate is the user's
        # unique UNICORE identification; re-validate and match the claim.
        auth_started = self.sim.now
        yield self.sim.timeout(self.auth_cpu_s)
        certificate = channel.session.server.peer_certificate
        try:
            self.cert_store.validate(certificate, now=self.sim.now)
        except SecurityError as err:
            return refuse(f"authentication failed: {err}")
        if str(certificate.subject) != request.user_dn:
            return refuse(
                f"identity mismatch: request claims {request.user_dn!r} "
                f"but the channel authenticated {certificate.subject}"
            )
        # Certificate-to-uid mapping (the security servlet's job).
        try:
            self.uudb.map_certificate(certificate, vsite=request.vsite)
        except MappingError as err:
            return refuse(str(err))
        telemetry.metrics.histogram("gateway.auth_seconds").observe(
            self.sim.now - auth_started
        )
        if auth_span is not None:
            tracer.end_span(auth_span)

        # Firewall hop: gateway -> NJS socket (section 5.2).  The socket
        # is TCP on the site LAN: model it as reliable (a lost frame is
        # retransmitted below the layer we simulate).  Consignment bytes
        # that arrived on the data plane cross the firewall here too.
        fw_extra = 0
        # Byte accounting for the firewall hop, not a dispatch site:
        # the verb's handler lives in _dispatch.  # devlint: ignore[RD402]
        if request.kind == RequestKind.CONSIGN_JOB:
            try:
                fw_extra = sum(
                    e.size
                    for e in decode_consignment_envelope(request.payload).streamed
                )
            except SerializationError:
                fw_extra = 0
        if self.njs.host.name != self.host.name:
            try:
                yield self.network.send(
                    self.host.name, self.njs.host.name,
                    ("fw", request.request_id),
                    request.wire_size + fw_extra, channel="firewall",
                    deliver=False,
                )
            except ConnectionLost:
                pass

        from repro.broker.errors import BrokerError
        from repro.faults.errors import ServiceUnavailable

        try:
            if request.kind == RequestKind.QUERY:
                reply = yield from self._dispatch_query(request)
            else:
                reply = self._dispatch(request, parent_span=request_span)
        except (
            ConsignError, UnknownUnicoreJobError, SerializationError,
            ServerError, ServiceUnavailable, BrokerError,
        ) as err:
            reply = Reply(
                request_id=request.request_id, ok=False, error=str(err),
                error_code=getattr(err, "code", ""),
            )

        if self.njs.host.name != self.host.name:
            pushed = self._push_streams.get(request.request_id)
            reply_extra = len(pushed[0]) if pushed is not None else 0
            try:
                yield self.network.send(
                    self.njs.host.name, self.host.name,
                    ("fw-reply", request.request_id),
                    reply.wire_size + reply_extra, channel="firewall",
                    deliver=False,
                )
            except ConnectionLost:
                pass
        if request_span is not None:
            tracer.end_span(
                request_span, error=None if reply.ok else reply.error
            )
        return reply

    def _bulk_payload(self, request_id: int, content: bytes) -> bytes:
        """Wrap reply content: inline if small, else push on the data plane."""
        if len(content) <= INLINE_FILE_MAX:
            return encode_inline_reply(content)
        entry = file_entry_for("", content, self._stream_ids.next())
        self._push_streams[request_id] = (content, entry)
        return encode_stream_reply(entry)

    def _dispatch(self, request: Request, parent_span=None) -> Reply:
        if request.kind == RequestKind.CONSIGN_JOB:
            consignment = decode_consignment_envelope(request.payload)
            files = dict(consignment.files)
            for entry in consignment.streamed:
                ready = self.datapath.take(entry.stream_id)
                if ready is None:
                    # The upload never (fully) arrived — e.g. its frames
                    # were dropped while this gateway was down.  Surface
                    # as unavailability so the client fails over and
                    # re-streams, rather than as a validation error.
                    from repro.faults.errors import ServiceUnavailable

                    raise ServiceUnavailable(
                        f"consignment file {entry.path!r} references "
                        f"stream {entry.stream_id}, which never arrived"
                    )
                _context, data = ready
                if len(data) != entry.size or zlib.crc32(data) != entry.crc32:
                    raise ConsignError(
                        f"consignment file {entry.path!r} failed its "
                        "stream integrity check"
                    )
                files[entry.path] = data
            ajo = decode_ajo(consignment.ajo_bytes)
            if ajo.user_dn and ajo.user_dn != request.user_dn:
                raise ConsignError(
                    f"AJO names user {ajo.user_dn!r} but the request was "
                    f"authenticated as {request.user_dn!r}"
                )
            run = self.njs.consign(
                ajo,
                workstation_files=files,
                trace_id=request.trace_id,
                parent_span_id=parent_span.span_id if parent_span else "",
            )
            return Reply(
                request_id=request.request_id, ok=True,
                payload=json.dumps({"job_id": run.job_id}).encode(),
            )

        if request.kind == RequestKind.LIST:
            service = decode_service(request.payload)
            if not isinstance(service, ListService):
                raise SerializationError("LIST request must carry a ListService")
            if service.since_seq >= 0:
                # Cursor-carrying client: answer with the change-log
                # delta (or a cursored full listing on epoch mismatch).
                delta = self.njs.list_jobs_delta(
                    request.user_dn, service.since_seq, service.epoch
                )
                return Reply(
                    request_id=request.request_id, ok=True,
                    payload=json.dumps(delta.to_dict()).encode(),
                )
            jobs = self.njs.list_jobs(request.user_dn)
            return Reply(
                request_id=request.request_id, ok=True,
                payload=json.dumps([j.to_dict() for j in jobs]).encode(),
            )

        if request.kind == RequestKind.CONTROL:
            service = decode_service(request.payload)
            if not isinstance(service, ControlService):
                raise SerializationError("CONTROL request must carry a ControlService")
            self._authorize_job(service.target_job_id, request.user_dn)
            if service.verb == ControlVerb.CANCEL:
                self.njs.cancel(service.target_job_id)
            elif service.verb == ControlVerb.HOLD:
                self.njs.hold(service.target_job_id)
            elif service.verb == ControlVerb.RESUME:
                self.njs.resume(service.target_job_id)
            else:  # pragma: no cover - verbs validated at construction
                raise ServerError(f"control verb {service.verb!r} unsupported")
            return Reply(
                request_id=request.request_id, ok=True,
                payload=json.dumps({"acknowledged": service.verb}).encode(),
            )

        if request.kind == RequestKind.RETRIEVE_OUTCOME:
            job_id = request.payload.decode()
            self._authorize_job(job_id, request.user_dn)
            outcome_bytes = self.njs.retrieve_outcome(job_id)
            return Reply(
                request_id=request.request_id, ok=True,
                payload=self._bulk_payload(request.request_id, outcome_bytes),
            )

        if request.kind == RequestKind.FETCH_FILE:
            spec = json.loads(request.payload)
            self._authorize_job(spec["job_id"], request.user_dn)
            content = self.njs.fetch_uspace_file(spec["job_id"], spec["path"])
            return Reply(
                request_id=request.request_id, ok=True,
                payload=self._bulk_payload(request.request_id, content),
            )

        if request.kind == RequestKind.DISPOSE:
            job_id = request.payload.decode()
            self._authorize_job(job_id, request.user_dn)
            self.njs.dispose(job_id)
            return Reply(
                request_id=request.request_id, ok=True,
                payload=json.dumps({"disposed": job_id}).encode(),
            )

        raise ServerError(f"unhandled request kind {request.kind!r}")

    def _dispatch_query(self, request: Request):
        """Answer a QUERY, parking subscription requests until completion.

        A subscribing client asks the server to hold the request until
        the job reaches a terminal state (or ``hold_s`` elapses) — one
        interaction replaces a poll train.  The park rides the NJS's
        completion watcher; an NJS crash fires the watcher early, and the
        post-wake ``query_status`` then surfaces ``ServiceUnavailable``
        through the normal error-reply path for the client to retry.
        """
        service = decode_service(request.payload)
        if not isinstance(service, QueryService):
            raise SerializationError("QUERY request must carry a QueryService")
        self._authorize_job(service.target_job_id, request.user_dn)
        if service.subscribe and service.hold_s > 0:
            watch = self.njs.watch_completion(service.target_job_id)
            if watch is not None:
                hold = min(service.hold_s, MAX_SUBSCRIBE_HOLD_S)
                telemetry_for(self.sim).metrics.counter(
                    "gateway.subscribe_holds"
                ).inc()
                # Hold deadline as a cancellable slot: when the watcher
                # fires first (the common case) the hours-away timer is
                # cancelled instead of lingering in the event queue.
                hold_ev = self.sim.event(name="subscribe-hold")
                deadline = self.sim.schedule_callback(
                    hold, self._fire_hold, hold_ev
                )
                yield watch | hold_ev
                deadline.cancel()
        view = self.njs.query_status(service.target_job_id, detail=service.detail)
        # Serialization happens here, at the protocol edge, only.
        return Reply(
            request_id=request.request_id, ok=True,
            payload=json.dumps(view.to_dict()).encode(),
        )

    @staticmethod
    def _fire_hold(hold_ev) -> None:
        if not hold_ev.triggered:
            hold_ev.succeed()

    def _authorize_job(self, job_id: str, user_dn: str) -> None:
        """Users may only touch their own jobs."""
        run = self.njs.get_run(job_id)
        if run.user_dn != user_dn:
            raise ServerError(
                f"job {job_id} belongs to another user"
            )
