"""Exceptions for the server tier."""

from repro.errors import ReproError

__all__ = [
    "ServerError",
    "ConsignError",
    "IncarnationError",
    "UnknownUnicoreJobError",
]


class ServerError(ReproError):
    """Base class for server-tier errors."""

    code = "server.error"


class ConsignError(ServerError):
    """A consigned AJO was rejected (validation, resources, mapping)."""

    code = "server.consign"


class IncarnationError(ServerError):
    """An abstract task cannot be translated for the destination system."""

    code = "server.incarnation"


class UnknownUnicoreJobError(ServerError):
    """No UNICORE job with that identifier is known to this NJS."""

    code = "server.unknown_job"
