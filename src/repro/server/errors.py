"""Exceptions for the server tier."""

__all__ = [
    "ServerError",
    "ConsignError",
    "IncarnationError",
    "UnknownUnicoreJobError",
]


class ServerError(Exception):
    """Base class for server-tier errors."""


class ConsignError(ServerError):
    """A consigned AJO was rejected (validation, resources, mapping)."""


class IncarnationError(ServerError):
    """An abstract task cannot be translated for the destination system."""


class UnknownUnicoreJobError(ServerError):
    """No UNICORE job with that identifier is known to this NJS."""
