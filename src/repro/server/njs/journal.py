"""The NJS write-ahead journal: crash-recoverable job state.

Section 4.2 makes the NJS the single stateful component between the
user and the batch systems; losing its in-memory tables used to lose
every job in flight.  The journal fixes that with the classic recipe:
every consignment is recorded *before* supervision starts, every batch
delivery is recorded as it happens, and completed jobs are marked done.
After a crash, :meth:`NetworkJobSupervisor.restart` replays every
incomplete entry — same job id, same AJO bytes, same trace — so clients
polling through the outage simply see their job again (flagged
``recovered`` in listings).

The journal models durable site-local storage (the same disk the Xspace
lives on), so it deliberately survives :meth:`crash` wiping the rest of
the NJS.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["JournalEntry", "JobJournal"]


@dataclass(slots=True)
class JournalEntry:
    """Everything needed to re-supervise one consigned job."""

    job_id: str
    ajo_bytes: bytes
    user_dn: str
    workstation_files: dict[str, bytes] = field(default_factory=dict)
    trace_id: str = ""
    #: Set for forwarded groups (this NJS is the *child* site).
    parent_job_id: str | None = None
    #: ``(corr_id, reply_usite, return_files)`` for forwarded groups, so
    #: a replayed group can still send its GroupResult home.
    forward_meta: tuple | None = None
    #: Batch jobs delivered before the crash: ``action_id -> (vsite,
    #: local_id)``.  Replay cancels the survivors before resubmitting.
    delivered: dict[str, tuple[str, str]] = field(default_factory=dict)
    done: bool = False


class JobJournal:
    """In-order journal of consigned jobs (models durable storage)."""

    def __init__(self) -> None:
        self._entries: dict[str, JournalEntry] = {}
        #: Instrumentation.
        self.records_written = 0

    # -- writes (called on the supervision hot path) ------------------------
    def record_consign(
        self,
        job_id: str,
        ajo_bytes: bytes,
        user_dn: str,
        workstation_files: dict[str, bytes] | None = None,
        trace_id: str = "",
        parent_job_id: str | None = None,
        forward_meta: tuple | None = None,
    ) -> JournalEntry:
        entry = JournalEntry(
            job_id=job_id,
            ajo_bytes=ajo_bytes,
            user_dn=user_dn,
            workstation_files=dict(workstation_files or {}),
            trace_id=trace_id,
            parent_job_id=parent_job_id,
            forward_meta=forward_meta,
        )
        self._entries[job_id] = entry
        self.records_written += 1
        return entry

    def record_delivery(
        self, job_id: str, action_id: str, vsite: str, local_id: str
    ) -> None:
        entry = self._entries.get(job_id)
        if entry is not None:
            entry.delivered[action_id] = (vsite, local_id)
            self.records_written += 1

    def record_done(self, job_id: str) -> None:
        entry = self._entries.get(job_id)
        if entry is not None and not entry.done:
            entry.done = True
            self.records_written += 1

    def forget(self, job_id: str) -> None:
        """Drop a disposed job's entry entirely."""
        self._entries.pop(job_id, None)

    # -- recovery ------------------------------------------------------------
    def incomplete(self) -> list[JournalEntry]:
        """Entries to replay after a crash, in consignment order."""
        return [e for e in self._entries.values() if not e.done]

    def entry(self, job_id: str) -> JournalEntry | None:
        return self._entries.get(job_id)

    def __len__(self) -> int:
        return len(self._entries)
