"""Deprecated home of the NJS write-ahead journal.

The journal became a typed view over the pluggable persistence layer
and moved to :mod:`repro.storage.journal` (same replay semantics, now
over durable backend logs).  The historical names still resolve here
through the shared warn-once PEP 562 shim.
"""

from __future__ import annotations

from repro._compat import deprecated_module_attr

__all__ = ["JournalEntry", "JobJournal"]

__getattr__, __dir__ = deprecated_module_attr(
    __name__, globals(),
    {name: "repro.storage.journal" for name in __all__},
)
