"""Incarnation: abstract task → concrete vendor batch job.

This is the "java translation server" role of the NJS (section 5.5):
"transform the abstract job into a Codine internal format ... translate
the abstract specifications into the local system specific nomenclature
using translation tables, submit the batch jobs to the execution system".

The produced :class:`~repro.batch.base.BatchJobSpec` is fully concrete:
a script in the destination dialect, local compiler invocations, the
local user-id from the gateway's mapping, and the *effects* the task has
on its Uspace (object files, executables, declared result files) so the
simulation materializes real data flow.
"""

from __future__ import annotations

import json

from repro.ajo.tasks import (
    CompileTask,
    ExecuteScriptTask,
    ExecuteTask,
    LinkTask,
    UserTask,
)
from repro.batch.base import BatchJobSpec, FileEffect
from repro.security.uudb import UserMapping
from repro.server.errors import IncarnationError
from repro.server.vsite import Vsite
from repro.vfs.spaces import Uspace

__all__ = ["incarnate_task", "select_queue", "IncarnationCache", "DEFAULT_QUEUE"]

DEFAULT_QUEUE = "batch"


class IncarnationCache:
    """Memoizes the translation work of :func:`incarnate_task`.

    Production workloads incarnate the *same task shapes* over and over
    (section 5.7's mixed workload is a handful of templates at varying
    runtimes).  Queue selection, dialect translation, and script
    rendering depend only on the task's shape and the destination's
    dialect — never on the submitting user or the wallclock — so their
    results are cached under a ``(vsite, dialect, queue, shape)`` key.
    Per-job fields (owner, wallclock, extra outputs, workdir) are applied
    outside the cache.
    """

    __slots__ = ("_entries", "hits", "misses", "max_entries")

    def __init__(self, max_entries: int = 4096) -> None:
        self._entries: dict[tuple, tuple[str, str, tuple[FileEffect, ...]]] = {}
        self.hits = 0
        self.misses = 0
        self.max_entries = max_entries

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def shape_key(task: ExecuteTask, vsite: Vsite, queue: str | None) -> tuple:
        """A hashable key identifying the translation inputs.

        ``simulated_runtime_s`` (ground truth, not part of the script)
        and the action ``id`` (unique per instance) are excluded — two
        tasks differing only there incarnate identically.
        """
        payload = task.to_payload()
        payload.pop("id", None)
        payload.pop("simulated_runtime_s", None)
        return (
            vsite.name,
            type(vsite.batch.dialect).__name__,
            queue,
            type(task).__name__,
            json.dumps(payload, sort_keys=True),
        )

    def get(self, key: tuple) -> tuple[str, str, tuple[FileEffect, ...]] | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def store(
        self, key: tuple, queue: str, script: str,
        effects: tuple[FileEffect, ...],
    ) -> None:
        if len(self._entries) >= self.max_entries:
            # Shape diversity beyond the cap means the cache is not
            # earning its memory; reset rather than track recency.
            self._entries.clear()
        self._entries[key] = (queue, script, effects)


def select_queue(vsite: Vsite, resources) -> str:
    """Pick the tightest queue whose limits admit the request.

    Real sites route jobs into size-classed queues (small/medium/long);
    the NJS must choose one the local system will accept.  Among
    admitting queues the one with the smallest (max_cpus, max_time_s)
    wins, so short jobs land in the short queues.
    """
    admitting = [
        q for q in vsite.batch.queues.values() if not q.admits(resources)
    ]
    if not admitting:
        raise IncarnationError(
            f"Vsite {vsite.name}: no queue admits cpus={resources.cpus}, "
            f"time_s={resources.time_s} "
            f"(queues: {sorted(vsite.batch.queues)})"
        )
    best = min(admitting, key=lambda q: (q.max_cpus, q.max_time_s, q.name))
    return best.name

#: Simulated artifact sizes (bytes) for compile/link products.
OBJECT_FILE_BYTES = 64 * 1024
EXECUTABLE_BYTES = 512 * 1024


def _body_for(task: ExecuteTask, vsite: Vsite) -> tuple[list[str], list[FileEffect]]:
    """Script body lines plus the files the task will create."""
    table = vsite.translation
    if isinstance(task, CompileTask):
        if not table.has_software(task.compiler):
            raise IncarnationError(
                f"Vsite {vsite.name}: no local translation for compiler "
                f"{task.compiler!r}"
            )
        compiler = table.map_software(task.compiler)
        opts = " ".join(task.options)
        lines = [
            f"{compiler} -c {opts} {src}".replace("  ", " ")
            for src in task.sources
        ]
        effects = [
            FileEffect(obj, size_bytes=OBJECT_FILE_BYTES)
            for obj in task.object_files()
        ]
        return lines, effects
    if isinstance(task, LinkTask):
        linker = table.map_software(task.linker)
        libs = " ".join(f"-l{lib}" for lib in task.libraries)
        objs = " ".join(task.objects)
        line = f"{linker} -o {task.output} {objs} {libs}".rstrip()
        return [line], [FileEffect(task.output, size_bytes=EXECUTABLE_BYTES)]
    if isinstance(task, UserTask):
        line = table.render_run(task.executable, task.arguments, task.resources.cpus)
        return [line], []
    if isinstance(task, ExecuteScriptTask):
        # Existing batch application: embedded verbatim under the local
        # interpreter (section 5.7, "script tasks").
        return [f"{task.interpreter} <<'UNICORE_EOF'",
                task.script.rstrip("\n"),
                "UNICORE_EOF"], []
    raise IncarnationError(
        f"cannot incarnate task type {type(task).__name__}"
    )


def incarnate_task(
    task: ExecuteTask,
    vsite: Vsite,
    mapping: UserMapping,
    uspace: Uspace,
    extra_outputs: tuple[FileEffect, ...] = (),
    queue: str | None = None,
    origin: str = "unicore",
    metrics=None,
    cache: IncarnationCache | None = None,
) -> BatchJobSpec:
    """Translate one abstract execute task into a vendor batch job.

    ``extra_outputs`` are result files the NJS knows the task must
    produce (from dependency-file annotations and export sources) beyond
    the task's intrinsic products.  With ``queue=None`` the tightest
    admitting local queue is selected via :func:`select_queue`.  With a
    :class:`~repro.observability.MetricsRegistry` as ``metrics``, the
    size of every produced script is recorded.  With a ``cache``, queue
    selection, translation, and script rendering are memoized by (task
    shape, dialect); per-job fields are always computed fresh.
    """
    if not isinstance(task, ExecuteTask):
        raise IncarnationError(
            f"only execute tasks become batch jobs; {type(task).__name__} "
            "is handled by the NJS itself"
        )
    key = cached = None
    if cache is not None:
        key = IncarnationCache.shape_key(task, vsite, queue)
        cached = cache.get(key)
    if cached is not None:
        queue, script, base_effects = cached
        effects = list(base_effects)
        if metrics is not None:
            metrics.counter("njs.incarnation_cache.hits").inc()
    else:
        if queue is None:
            queue = select_queue(vsite, task.resources)
        body, effects = _body_for(task, vsite)
        env = vsite.translation.map_environment(task.environment)
        env_lines = [f"export {k}={v}" for k, v in sorted(env.items())]
        script = vsite.batch.dialect.render_script(
            job_name=task.name,
            queue=queue,
            resources=task.resources,
            body_lines=env_lines + body,
        )
        if cache is not None and key is not None:
            cache.store(key, queue, script, tuple(effects))
            if metrics is not None:
                metrics.counter("njs.incarnation_cache.misses").inc()
    if metrics is not None:
        metrics.histogram("incarnation.script_bytes").observe(len(script))

    # Ground-truth runtime, scaled by the destination architecture.
    baseline = (
        task.simulated_runtime_s
        if task.simulated_runtime_s is not None
        else task.resources.time_s * 0.5
    )
    wallclock = baseline / vsite.machine.speed_factor

    known = {e.path for e in effects}
    effects.extend(e for e in extra_outputs if e.path not in known)

    return BatchJobSpec(
        name=task.name,
        owner=mapping.login,
        group=mapping.gid,
        queue=queue,
        script=script,
        resources=task.resources,
        wallclock_s=wallclock,
        effects=tuple(effects),
        stdout_text=f"{task.name}: completed on {vsite.machine.architecture}\n",
        workdir=uspace,
        origin=origin,
    )
