"""Indexed NJS run bookkeeping: O(1) lookups and delta status views.

The supervisor's run table used to be a flat ``dict`` that every
bookkeeping question scanned linearly — per-user quota checks at
consign, ``list_jobs``, the broker advertisement's terminal set, and the
reclaimable-job sweep.  At production scale (ROADMAP: 100x-1000x current
job counts) those scans dominate.  This module holds the two structures
that replace them:

:class:`RunIndex`
    Lookup tables keyed by state and user, maintained incrementally from
    job status-change notifications.  A crash wipes in-memory state; the
    index is rebuilt from the surviving run table (counted by the
    ``njs.index.rebuilds`` metric).

:class:`JobChangeLog`
    A monotonically versioned change-log of job listings, so the LIST
    service can answer "changes since seq N" instead of re-sending the
    full listing on every refresh.  The log is in-memory: a crash starts
    a new *epoch*, which tells delta clients their cursor is void and a
    full resync is needed.
"""

from __future__ import annotations

import typing
from bisect import bisect_right
from dataclasses import dataclass

from repro.protocol.views import JobListing, JobListingDelta

__all__ = ["RunIndex", "JobChangeLog", "ChangeRecord"]


class RunIndex:
    """State/user-keyed lookup tables over the NJS run table.

    The index is *notification-driven*: the supervisor calls :meth:`add`
    at consign, :meth:`note_status` whenever a run's rollup status value
    changes, and :meth:`discard` at dispose.  ``active`` and ``terminal``
    partition the indexed job ids; ``active_count`` backs the consign
    quota check without touching run objects.
    """

    __slots__ = ("by_user", "active", "terminal", "active_by_user", "_status")

    def __init__(self) -> None:
        #: user DN -> set of job ids (all states).
        self.by_user: dict[str, set[str]] = {}
        #: job ids whose rollup status is not terminal.
        self.active: set[str] = set()
        #: job ids whose rollup status is terminal.
        self.terminal: set[str] = set()
        #: user DN -> count of active (non-terminal) jobs.
        self.active_by_user: dict[str, int] = {}
        #: job id -> last noted rollup status value.
        self._status: dict[str, str] = {}

    def __len__(self) -> int:
        return len(self._status)

    def add(self, job_id: str, user_dn: str, status_value: str, terminal: bool) -> None:
        """Index a newly consigned run."""
        self.by_user.setdefault(user_dn, set()).add(job_id)
        self._status[job_id] = status_value
        if terminal:
            self.terminal.add(job_id)
        else:
            self.active.add(job_id)
            self.active_by_user[user_dn] = self.active_by_user.get(user_dn, 0) + 1

    def note_status(
        self, job_id: str, user_dn: str, status_value: str, terminal: bool
    ) -> bool:
        """Record a status change; returns True when the value changed."""
        if self._status.get(job_id) == status_value:
            return False
        if job_id not in self._status:  # pragma: no cover - add() precedes notes
            self.add(job_id, user_dn, status_value, terminal)
            return True
        self._status[job_id] = status_value
        if terminal and job_id in self.active:
            self.active.discard(job_id)
            self.terminal.add(job_id)
            remaining = self.active_by_user.get(user_dn, 1) - 1
            if remaining > 0:
                self.active_by_user[user_dn] = remaining
            else:
                self.active_by_user.pop(user_dn, None)
        return True

    def discard(self, job_id: str, user_dn: str) -> None:
        """Drop a disposed run from every table."""
        if job_id not in self._status:
            return
        del self._status[job_id]
        if job_id in self.active:
            self.active.discard(job_id)
            remaining = self.active_by_user.get(user_dn, 1) - 1
            if remaining > 0:
                self.active_by_user[user_dn] = remaining
            else:
                self.active_by_user.pop(user_dn, None)
        self.terminal.discard(job_id)
        jobs = self.by_user.get(user_dn)
        if jobs is not None:
            jobs.discard(job_id)
            if not jobs:
                del self.by_user[user_dn]

    def active_count(self, user_dn: str) -> int:
        """Live (non-terminal) jobs of one user — the consign quota check."""
        return self.active_by_user.get(user_dn, 0)

    def jobs_for(self, user_dn: str) -> set[str]:
        """All indexed job ids of one user (any state)."""
        return self.by_user.get(user_dn, set())

    def status_value(self, job_id: str) -> str | None:
        return self._status.get(job_id)

    def rebuild(self, runs: typing.Mapping[str, typing.Any]) -> None:
        """Recompute every table from scratch (post-crash recovery)."""
        self.by_user.clear()
        self.active.clear()
        self.terminal.clear()
        self.active_by_user.clear()
        self._status.clear()
        for job_id, run in runs.items():
            status = run.status()
            self.add(job_id, run.user_dn, status.value, status.is_terminal)

    def verify(self, runs: typing.Mapping[str, typing.Any]) -> None:
        """Assert the tables agree with a ground-truth scan (test helper)."""
        expect = RunIndex()
        expect.rebuild(runs)
        assert self._status == expect._status, (self._status, expect._status)
        assert self.active == expect.active, (self.active, expect.active)
        assert self.terminal == expect.terminal
        assert self.by_user == expect.by_user
        assert self.active_by_user == expect.active_by_user


@dataclass(frozen=True, slots=True)
class ChangeRecord:
    """One change-log entry: a listing snapshot, or a removal tombstone."""

    seq: int
    user_dn: str
    job_id: str
    #: ``None`` marks a removal (the job was disposed, or wiped by a crash).
    listing: JobListing | None


class JobChangeLog:
    """Append-only, monotonically versioned log of job-listing changes.

    Every recorded change gets the next global ``seq``; per-user record
    lists make ``since`` a bisect plus a tail slice.  Sequence numbers
    are only meaningful within one ``epoch`` — a crash wipes the log, so
    the restarted NJS starts a fresh epoch and clients holding cursors
    from the old one must resync with a full listing.
    """

    __slots__ = ("epoch", "_seq", "_by_user")

    def __init__(self, epoch: int = 0) -> None:
        self.epoch = epoch
        self._seq = 0
        self._by_user: dict[str, list[ChangeRecord]] = {}

    @property
    def seq(self) -> int:
        """The latest assigned sequence number (0 = nothing recorded)."""
        return self._seq

    def record(self, listing: JobListing, user_dn: str) -> int:
        self._seq += 1
        self._by_user.setdefault(user_dn, []).append(
            ChangeRecord(self._seq, user_dn, listing.job_id, listing)
        )
        return self._seq

    def record_removed(self, job_id: str, user_dn: str) -> int:
        self._seq += 1
        self._by_user.setdefault(user_dn, []).append(
            ChangeRecord(self._seq, user_dn, job_id, None)
        )
        return self._seq

    def since(self, user_dn: str, since_seq: int) -> list[ChangeRecord]:
        """Records for ``user_dn`` with ``seq > since_seq``, in order."""
        records = self._by_user.get(user_dn, [])
        start = bisect_right(records, since_seq, key=lambda r: r.seq)
        return records[start:]

    def delta_for(self, user_dn: str, since_seq: int) -> JobListingDelta:
        """The wire answer for "changes since ``since_seq``".

        Later records for the same job supersede earlier ones, so the
        delta carries at most one listing (or one removal) per job.
        """
        latest: dict[str, JobListing | None] = {}
        for record in self.since(user_dn, since_seq):
            latest[record.job_id] = record.listing
        listings = tuple(
            sorted(
                (entry for entry in latest.values() if entry is not None),
                key=lambda entry: entry.job_id,
            )
        )
        removed = tuple(
            sorted(job_id for job_id, entry in latest.items() if entry is None)
        )
        return JobListingDelta(
            seq=self._seq,
            epoch=self.epoch,
            full=False,
            listings=listings,
            removed=removed,
        )

    def next_epoch(self) -> "JobChangeLog":
        """A fresh, empty log in the next epoch (crash recovery)."""
        return JobChangeLog(epoch=self.epoch + 1)
