"""The Codine-based internal job-control layer of the NJS.

Paper section 5.1: one of the basic implementation decisions was "the
use of the resource management system Codine provided by Genias Software
GmbH as part of NJS".  Section 5.5: the NJS must "transform the abstract
job into a Codine internal format" before the per-destination
translation and submission.

This layer is that internal format: every incarnated batch job is first
registered as a Codine-format record (a ``#$`` script plus Codine state
``qw``/``r``/``d``/``Eqw``); state transitions mirror the vendor batch
job's lifecycle.  It gives the NJS a uniform internal ledger across all
destination dialects — which is exactly what the real NJS used Codine
for — and gives operators a single place to inspect everything the NJS
has in flight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count

from repro.batch.base import BatchJobSpec, BatchState
from repro.batch.dialects import CodineDialect

__all__ = ["CodineRecord", "CodineJobControl"]

_DIALECT = CodineDialect()

#: Vendor state -> Codine state.
_STATE_MAP = {
    BatchState.QUEUED: "qw",
    BatchState.RUNNING: "r",
    BatchState.DONE: "d",
    BatchState.FAILED: "Eqw",
    BatchState.CANCELLED: "Eqw",
}


@dataclass(slots=True)
class CodineRecord:
    """One job in the NJS's internal (Codine) format."""

    codine_id: int
    unicore_job_id: str
    action_id: str
    vsite: str
    #: The job re-rendered in Codine's own script format.
    internal_script: str
    state: str = "qw"
    vendor_job_id: str = ""
    history: list[tuple[float, str]] = field(default_factory=list)


class CodineJobControl:
    """The NJS-internal ledger of everything submitted anywhere."""

    def __init__(self) -> None:
        self._records: dict[int, CodineRecord] = {}
        self._by_action: dict[str, int] = {}
        self._ids = count(1)

    def register(
        self,
        unicore_job_id: str,
        action_id: str,
        vsite: str,
        spec: BatchJobSpec,
        now: float,
    ) -> CodineRecord:
        """Transform an incarnated job into the Codine internal format."""
        internal = _DIALECT.render_script(
            spec.name, spec.queue, spec.resources,
            [f"# destination: {vsite}", f"# owner: {spec.owner}"],
        )
        record = CodineRecord(
            codine_id=next(self._ids),
            unicore_job_id=unicore_job_id,
            action_id=action_id,
            vsite=vsite,
            internal_script=internal,
        )
        record.history.append((now, "qw"))
        self._records[record.codine_id] = record
        self._by_action[action_id] = record.codine_id
        return record

    def bind_vendor_job(self, action_id: str, vendor_job_id: str) -> None:
        """Record the destination system's own id for the job."""
        self.for_action(action_id).vendor_job_id = vendor_job_id

    def transition(self, action_id: str, vendor_state: BatchState, now: float) -> str:
        """Mirror a vendor-state change into the Codine state machine."""
        record = self.for_action(action_id)
        new_state = _STATE_MAP[vendor_state]
        if new_state != record.state:
            record.state = new_state
            record.history.append((now, new_state))
        return new_state

    def for_action(self, action_id: str) -> CodineRecord:
        try:
            return self._records[self._by_action[action_id]]
        except KeyError:
            raise KeyError(
                f"no Codine record for action {action_id!r}"
            ) from None

    def qstat(self) -> list[tuple[int, str, str, str]]:
        """The classic queue listing: (id, name-ish, state, vsite)."""
        return [
            (r.codine_id, r.unicore_job_id, r.state, r.vsite)
            for r in self._records.values()
        ]

    def in_flight(self) -> int:
        """Jobs not yet in a terminal Codine state."""
        return sum(1 for r in self._records.values() if r.state in ("qw", "r"))

    def __len__(self) -> int:
        return len(self._records)
