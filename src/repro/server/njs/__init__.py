"""The Network Job Supervisor.

Paper section 5.5: "The NJS consists of two main components, a java
translation server (JTS) and a system for job control and scheduling
which in the current implementation is based on Codine."

- :mod:`repro.server.njs.incarnation` — the JTS role: abstract task →
  vendor batch script via translation tables;
- :mod:`repro.server.njs.jobrun` — per-job state: outcomes, uspaces,
  completion events;
- :mod:`repro.server.njs.supervisor` — the control role: consign, DAG
  sequencing, submission, data transfers, output collection, peer
  forwarding.
"""

from repro.server.njs.incarnation import incarnate_task
from repro.server.njs.jobrun import JobRun
from repro.server.njs.supervisor import NetworkJobSupervisor

__all__ = ["JobRun", "NetworkJobSupervisor", "incarnate_task"]
