"""Per-job runtime state inside an NJS."""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from repro.ajo.job import AbstractJobObject
from repro.ajo.outcome import AJOOutcome, Outcome, new_outcome
from repro.ajo.status import ActionStatus
from repro.simkernel import Event, Simulator
from repro.vfs.spaces import Uspace

__all__ = ["JobRun"]


@dataclass(slots=True)
class JobRun:
    """Everything an NJS tracks about one consigned UNICORE job.

    Attributes
    ----------
    outcomes:
        Flat index ``action_id -> Outcome``; the same objects are linked
        into the nested :class:`AJOOutcome` tree at ``root_outcome``.
    events:
        ``action_id -> Event`` fired (with the final :class:`ActionStatus`)
        when that action reaches a terminal state — the NJS's dependency
        sequencing waits on these.
    uspaces:
        ``group action_id -> Uspace`` job directories created per group.
    batch_jobs:
        ``action_id -> (vsite_name, local_job_id)`` for delivered tasks.
    workstation_files:
        Files that rode along inside the consignment (section 5.6).
    """

    job_id: str
    root: AbstractJobObject
    user_dn: str
    submitted_at: float
    outcomes: dict[str, Outcome] = field(default_factory=dict)
    events: dict[str, Event] = field(default_factory=dict)
    uspaces: dict[str, Uspace] = field(default_factory=dict)
    batch_jobs: dict[str, tuple[str, str]] = field(default_factory=dict)
    workstation_files: dict[str, bytes] = field(default_factory=dict)
    #: Dependency files produced by forwarded (remote) groups, keyed by
    #: the producing group's action id.
    remote_files: dict[str, dict[str, bytes]] = field(default_factory=dict)
    #: Files each group must have produced when it completes (named on
    #: parent-level dependency edges, or requested by the forwarding
    #: parent NJS); the group's sink tasks materialize them.
    group_expected: dict[str, tuple[str, ...]] = field(default_factory=dict)
    done_event: Event | None = None
    cancelled: bool = False
    #: Trace context propagated from the consigning client (may be "").
    trace_id: str = ""
    #: The open ``njs.job`` span covering the whole supervised run.
    job_span: object = None
    #: Held jobs stop *delivering* further parts (running batch jobs are
    #: beyond UNICORE's reach — site autonomy); resume releases them.
    held: bool = False
    hold_released: Event | None = None
    #: True when this run was rebuilt from the NJS journal after a crash.
    recovered: bool = False
    #: Supervision processes spawned for this run; interrupted on crash
    #: so a journal replay never races orphaned supervisors.
    processes: list = field(default_factory=list)
    #: Supervisor hook fired after any action status change, so run
    #: indexes and the job change-log track the rollup without scans.
    on_change: typing.Callable[["JobRun"], None] | None = None

    @classmethod
    def create(
        cls,
        sim: Simulator,
        job_id: str,
        root: AbstractJobObject,
        user_dn: str,
        workstation_files: dict[str, bytes] | None = None,
    ) -> "JobRun":
        run = cls(
            job_id=job_id,
            root=root,
            user_dn=user_dn,
            submitted_at=sim.now,
            workstation_files=dict(workstation_files or {}),
            done_event=sim.event(name=f"job-done:{job_id}"),
        )
        run._build_outcomes(sim, root)
        return run

    def _build_outcomes(self, sim: Simulator, group: AbstractJobObject) -> None:
        if group.id not in self.outcomes:
            self.outcomes[group.id] = new_outcome(group)
            self.events[group.id] = sim.event(name=f"done:{group.id}")
        group_outcome = typing.cast(AJOOutcome, self.outcomes[group.id])
        for child in group.children:
            child_outcome = new_outcome(child)
            self.outcomes[child.id] = child_outcome
            group_outcome.add_child(child_outcome)
            self.events[child.id] = sim.event(name=f"done:{child.id}")
            if isinstance(child, AbstractJobObject):
                self._build_outcomes(sim, child)

    @property
    def root_outcome(self) -> AJOOutcome:
        return typing.cast(AJOOutcome, self.outcomes[self.root.id])

    def status(self) -> ActionStatus:
        """Uniform job status for the JMC."""
        return self.root_outcome.rollup_status()

    def finish_action(self, action_id: str, status: ActionStatus, reason: str = "") -> None:
        """Mark an action terminal and fire its completion event."""
        outcome = self.outcomes[action_id]
        if not outcome.status.is_terminal:
            outcome.mark(status, reason=reason)
        self.notify_change()
        event = self.events[action_id]
        if not event.triggered:
            event.succeed(status)

    def notify_change(self) -> None:
        """Tell the supervisor an action's status (possibly) changed."""
        if self.on_change is not None:
            self.on_change(self)
