"""Finished jobs resurrected from durable storage after a cold start.

A warm NJS :meth:`crash` keeps finished :class:`JobRun` objects alive in
memory, but a *full-site* restart (or a grid restored from a snapshot)
starts from a bare Python heap: everything it knows comes from the
storage backend.  :class:`RestoredRun` duck-types the slice of the
:class:`~repro.server.njs.jobrun.JobRun` surface the NJS services touch
for a terminal job — listings, status queries, outcome retrieval,
Uspace file fetches, disposal — backed by the journal entry (AJO bytes)
and the persisted :class:`~repro.storage.outcomes.OutcomeRecord`.

Decoding is lazy: restoring a thousand finished jobs costs a thousand
table reads, not a thousand AJO decodes — the tree is only rebuilt when
a client actually asks for it.
"""

from __future__ import annotations

import typing

from repro.ajo import ActionStatus, decode_ajo, decode_outcome
from repro.ajo.outcome import AJOOutcome, Outcome
from repro.storage.outcomes import OutcomeRecord

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.ajo import AbstractJobObject

__all__ = ["RestoredRun"]


class _StoredFiles:
    """The Uspace-read surface over a persisted file manifest."""

    def __init__(self, job_id: str, files: dict[str, bytes]) -> None:
        self.job_id = job_id
        self._files = dict(files)

    def exists(self, path: str) -> bool:
        return path in self._files

    def read(self, path: str) -> bytes:
        return self._files[path]

    def files(self) -> list[str]:
        return sorted(self._files)

    def used_bytes(self) -> int:
        return sum(len(content) for content in self._files.values())


class RestoredRun:
    """A terminal job served from storage instead of live supervision."""

    def __init__(self, record: OutcomeRecord, ajo_bytes: bytes) -> None:
        self.job_id = record.job_id
        self.user_dn = record.user_dn
        self.submitted_at = record.submitted_at
        self.recovered = record.recovered
        self.trace_id = record.trace_id
        self.cancelled = False
        self.held = False
        self.hold_released = None
        self.job_span = None
        self.on_change = None
        self.done_event = None
        #: Live-run bookkeeping, all empty: nothing is supervising here.
        self.processes: list = []
        self.batch_jobs: dict[str, tuple[str, str]] = {}
        self.remote_files: dict = {}
        self.group_expected: dict = {}
        self.events: dict = {}
        self.workstation_files: dict[str, bytes] = {}
        #: One pseudo-Uspace holding every persisted file, so
        #: ``fetch_uspace_file`` iterates it exactly like live Uspaces.
        self.uspaces = {"__restored__": _StoredFiles(record.job_id, record.files)}
        self._status = ActionStatus(record.status)
        self._ajo_bytes = ajo_bytes
        self._outcome_bytes = record.outcome_bytes
        self._name = record.name
        self._root: "AbstractJobObject | None" = None
        self._root_outcome: Outcome | None = None
        self._outcome_index: dict[str, Outcome] | None = None

    # -- lazy decoding -------------------------------------------------------
    @property
    def root(self) -> "AbstractJobObject":
        if self._root is None:
            self._root = decode_ajo(self._ajo_bytes)
        return self._root

    @property
    def root_outcome(self) -> Outcome:
        if self._root_outcome is None:
            self._root_outcome = decode_outcome(self._outcome_bytes)
        return self._root_outcome

    @property
    def outcomes(self) -> dict[str, Outcome]:
        """Action id -> outcome, indexed from the persisted tree."""
        if self._outcome_index is None:
            index: dict[str, Outcome] = {}

            def walk(outcome: Outcome) -> None:
                index[outcome.action_id] = outcome
                if isinstance(outcome, AJOOutcome):
                    for child in outcome.children.values():
                        walk(child)

            walk(self.root_outcome)
            self._outcome_index = index
        return self._outcome_index

    # -- JobRun surface ------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    def status(self) -> ActionStatus:
        return self._status

    def finish_action(self, *args, **kw) -> None:  # pragma: no cover
        raise AssertionError("a restored run is terminal; nothing finishes")

    def notify_change(self) -> None:
        """No-op: restored runs never change state again."""

    def __repr__(self) -> str:
        return (
            f"<RestoredRun {self.job_id} {self._status.value} "
            f"files={len(self.uspaces['__restored__'].files())}>"
        )
