"""The Network Job Supervisor (NJS).

Paper section 4.2: "the network job supervisor (NJS) which does the job
management.  The NJS translates the AJO into one or more batch jobs for
the destination system(s), submits the batch jobs, and controls them.
In addition, it transparently transfers data to and from the destination
system for the job and makes sure that the dependent parts of the
UNICORE job are scheduled in the predefined sequence."

Responsibilities implemented here (section 5.5's task list):

* split a consigned AJO into job groups, forwarding those destined for
  other Usites to the peer NJS via the gateways (https route);
* create a UNICORE job directory (Uspace) per job group with tasks;
* sequence dependent parts — delivery only, never influencing the local
  scheduling of destination systems (site autonomy);
* incarnate abstract tasks via the Vsites' translation tables and submit
  them to the vendor batch systems;
* guarantee dependency-annotated files are available to successors;
* perform imports/exports as local copies and Uspace-to-Uspace transfers
  as NJS-to-NJS https traffic;
* collect standard output/error and aggregate Outcomes.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field
from itertools import count

from repro.ajo.errors import UnsafePathError

from repro.ajo.job import AbstractJobObject
from repro.ajo.outcome import AJOOutcome, TaskOutcome
from repro.ajo.serialize import decode_ajo, decode_outcome, encode_ajo, encode_outcome
from repro.ajo.status import ActionStatus
from repro.ajo.tasks import (
    ExecuteTask,
    ExportTask,
    FileSpace,
    ImportTask,
    TransferTask,
)
from repro.analysis import AnalysisContext, analyze_ajo
from repro.batch.base import BatchState, FileEffect
from repro.batch.errors import BatchError, SystemOfflineError, UnknownJobError
from repro.broker.advertise import (
    BROKER_PEER,
    AdvertiseCapacity,
    CapacityAdvertisement,
    ReclaimAck,
    ReclaimJob,
)
from repro.broker.errors import BrokerQuotaError
from repro.faults.errors import ServiceUnavailable
from repro.net.errors import ConnectionLost
from repro.net.stream import FrameType, StreamSender, encode_frame
from repro.net.sim_transport import Host, Network
from repro.observability import telemetry_for
from repro.protocol.consignment import validate_manifest_paths
from repro.protocol.datapath import (
    CHUNK_RETRIES,
    CHUNK_RETRY_DELAY_S,
    DEFAULT_CHUNK_BYTES,
    INLINE_FILE_MAX,
    DataPlaneEndpoint,
    StreamIdAllocator,
)
from repro.protocol.views import JobListing, JobListingDelta, JobStatusView
from repro.resources.check import check_request
from repro.security.errors import MappingError
from repro.security.ssl import HANDSHAKE_ROUND_TRIPS, SSLSession
from repro.security.uudb import UUDB
from repro.server.errors import ConsignError, UnknownUnicoreJobError
from repro.server.njs.codine_layer import CodineJobControl
from repro.server.njs.incarnation import IncarnationCache, incarnate_task
from repro.server.njs.jobrun import JobRun
from repro.server.njs.restored import RestoredRun
from repro.storage.backend import StorageBackend, resolve_storage
from repro.storage.journal import JobJournal, JournalEntry
from repro.storage.outcomes import OutcomeRecord, OutcomeStore
from repro.server.njs.runindex import JobChangeLog, RunIndex
from repro.server.vsite import Vsite
from repro.simkernel import Event, Simulator
from repro.vfs.errors import VFSError
from repro.vfs.spaces import Xspace

__all__ = [
    "NetworkJobSupervisor",
    "ForwardGroup",
    "GroupResult",
    "PeerFrame",
    "TransferFile",
    "TransferAck",
    "CancelGroup",
]

#: Local disk bandwidth for Xspace<->Uspace copies (section 5.6: "a copy
#: process available at the Vsite").
LOCAL_DISK_BANDWIDTH_BPS = 50e6

#: CPU cost of incarnating one task (table lookups + templating).
INCARNATION_CPU_S = 0.005

#: Default size of a dependency-annotated result file when the producing
#: task does not specify otherwise.
RESULT_FILE_BYTES = 1 << 20

#: Handshake flight size on NJS-NJS routes.
_HS_BYTES = 1500


# --------------------------------------------------------- NJS-NJS messages
@dataclass(slots=True)
class ForwardGroup:
    """A job group consigned to a peer NJS (section 4.3: servers exchange
    '(parts of) UNICORE jobs')."""

    corr_id: int
    reply_usite: str
    parent_job_id: str
    user_dn: str
    ajo_bytes: bytes
    #: Workstation + staged dependency files the group needs, path->bytes.
    staged_files: dict[str, bytes] = field(default_factory=dict)
    #: Files the parent needs back when the group completes.
    return_files: tuple[str, ...] = ()
    #: Trace context so the peer NJS extends the same per-job trace.
    trace_id: str = ""
    parent_span_id: str = ""

    @property
    def wire_payload(self) -> int:
        return (
            len(self.ajo_bytes)
            + sum(len(v) for v in self.staged_files.values())
            + 512
        )


@dataclass(slots=True)
class GroupResult:
    """Completion report for a forwarded group."""

    corr_id: int
    ok: bool
    outcome_bytes: bytes = b""
    produced_files: dict[str, bytes] = field(default_factory=dict)
    error: str = ""

    @property
    def wire_payload(self) -> int:
        return (
            len(self.outcome_bytes)
            + sum(len(v) for v in self.produced_files.values())
            + 512
        )


@dataclass(slots=True)
class PeerFrame:
    """One data-plane frame tunnelled on an NJS-NJS https route.

    Bulk bytes (Uspace transfers, forwarded staging, group returns) no
    longer ride whole inside control messages: they travel as chunked
    :mod:`repro.net.stream` frames so control traffic interleaves and a
    lost chunk resumes alone.
    """

    raw: bytes

    @property
    def wire_payload(self) -> int:
        return len(self.raw)


@dataclass(slots=True)
class TransferFile:
    """A Uspace-to-Uspace transfer as one monolithic message.

    Legacy wire shape, kept for comparison benchmarks: live transfers
    now stream chunk-wise as :class:`PeerFrame` traffic (section 5.6's
    https tunnel, split onto the data plane)."""

    corr_id: int
    reply_usite: str
    parent_job_id: str
    destination_path: str
    content: bytes

    @property
    def wire_payload(self) -> int:
        return len(self.content) + 512


@dataclass(slots=True)
class TransferAck:
    corr_id: int
    ok: bool
    error: str = ""

    @property
    def wire_payload(self) -> int:
        return 128 + len(self.error)


@dataclass(slots=True)
class CancelGroup:
    """Cancellation propagated to a peer holding a forwarded group."""

    corr_id: int
    parent_job_id: str

    @property
    def wire_payload(self) -> int:
        return 128


class NetworkJobSupervisor:
    """One NJS, serving all Vsites of its Usite."""

    def __init__(
        self,
        sim: Simulator,
        usite_name: str,
        host: Host,
        network: Network,
        uudb: UUDB,
        xspace: Xspace,
        vsites: dict[str, Vsite],
        local_disk_bandwidth_Bps: float = LOCAL_DISK_BANDWIDTH_BPS,
        incarnation_cpu_s: float = INCARNATION_CPU_S,
        per_record_cpu_s: float = 0.002,
        own_inbox: bool = True,
        accounting=None,
        max_active_per_user: int | None = None,
        storage: StorageBackend | None = None,
    ) -> None:
        self.sim = sim
        self.usite_name = usite_name
        self.host = host
        self.network = network
        self.uudb = uudb
        self.xspace = xspace
        self.vsites = dict(vsites)
        self.local_disk_bandwidth_Bps = local_disk_bandwidth_Bps
        self.incarnation_cpu_s = incarnation_cpu_s
        self.per_record_cpu_s = per_record_cpu_s
        #: Optional :class:`repro.ext.accounting.AccountingLog`; every
        #: completed UNICORE batch record is charged to it (section 6's
        #: "accounting functions").
        self.accounting = accounting
        #: The Codine-based internal job control of section 5.1/5.5:
        #: every incarnated job passes through the Codine internal format.
        self.codine = CodineJobControl()

        self._runs: dict[str, JobRun] = {}
        #: State/user-keyed lookup tables over ``_runs`` (quota checks,
        #: listings, advertisements) — maintained by :meth:`_note_change`.
        self._index = RunIndex()
        #: Versioned change-log backing delta LIST answers.
        self._changes = JobChangeLog()
        #: Completion watchers for subscription-style waits: job id ->
        #: events the gateway parks on.  Fired on terminal transition and
        #: (with the job still unfinished) on :meth:`crash`, so nobody
        #: sleeps through a lost run.
        self._watchers: dict[str, list[Event]] = {}
        #: Incarnation translation cache keyed by (task shape, dialect).
        self.incarnation_cache = IncarnationCache()
        #: forwarded groups indexed by the *parent's* job id, for transfers
        #: and cancellation arriving from the parent site.
        self._foreign_runs: dict[str, JobRun] = {}
        #: files for a foreign job that arrived before its group did.
        self._early_files: dict[str, dict[str, bytes]] = {}
        #: dependency files produced by forwarded groups, pred id -> files.
        self._corr_seq = count(1)
        self._pending: dict[int, object] = {}  # corr_id -> Event
        #: Data-plane receiving endpoint: peer streams reassemble here
        #: and dispatch by context kind (:meth:`_on_stream_complete`).
        self.datapath = DataPlaneEndpoint(
            sim, metrics=telemetry_for(sim).metrics,
            on_complete=self._on_stream_complete,
        )
        self._stream_ids = StreamIdAllocator(f"njs:{usite_name}")
        #: Streamed return files of forwarded groups, corr_id -> files.
        self._returned_files: dict[int, dict[str, bytes]] = {}
        #: Streamed staging files that precede their ForwardGroup,
        #: keyed by the parent job id the group will carry.
        self._pending_forward_files: dict[str, dict[str, bytes]] = {}
        #: peer Usite -> (route hops, handshake_done flag).
        self._peer_routes: dict[str, list[tuple[str, str]]] = {}
        self._peer_sessions: set[str] = set()
        #: Site-local concurrency cap: a consignment from a user who
        #: already has this many live jobs here is refused with the
        #: wire-carried ``broker.quota_exceeded`` code (fair use,
        #: enforced at the site edge — defense in depth under brokering).
        self.max_active_per_user = max_active_per_user
        #: Route to the federation broker hub, when one is attached.
        self._broker_route: list[tuple[str, str]] | None = None
        self._advertising = False
        #: Durable site-local persistence: the write-ahead journal, the
        #: finished-job outcome store, and the job-id cursor all live in
        #: one pluggable backend (``REPRO_STORAGE`` selects the default).
        self.storage = storage if storage is not None else resolve_storage(None)
        self.storage.bind_metrics(telemetry_for(sim).metrics)
        self._meta = self.storage.table(f"{usite_name}.meta")
        #: Write-ahead journal over backend storage: survives
        #: :meth:`crash`, drives :meth:`restart`'s replay.
        self.journal = JobJournal(
            self.storage,
            name=f"{usite_name}.journal",
            metrics=telemetry_for(sim).metrics,
        )
        #: Finished jobs as persisted records (status, outcome bytes,
        #: Uspace manifest) — what a cold start serves terminal queries
        #: from.
        self._outcomes = OutcomeStore(self.storage, f"{usite_name}.outcomes")
        #: True between :meth:`crash` and :meth:`restart`: in-memory
        #: state is gone, every service raises ServiceUnavailable.
        self.crashed = False
        #: Instrumentation.
        self.incarnations = 0
        self.forwarded_groups = 0
        self.transfers_bytes = 0
        self.crashes = 0
        self.replays = 0

        # When the NJS shares the gateway's host (no firewall split), the
        # gateway owns the inbox and forwards peer traffic to
        # :meth:`dispatch_peer_message` instead.
        if own_inbox:
            sim.process(self._server_loop(), name=f"njs:{usite_name}")

    # ------------------------------------------------------------ wiring
    def register_peer(self, usite: str, route: list[tuple[str, str]]) -> None:
        """Register the https route (host hops) to a peer Usite's NJS."""
        self._peer_routes[usite] = list(route)

    def register_broker_route(self, route: list[tuple[str, str]]) -> None:
        """Register the https route to the federation broker hub.

        Kept out of :attr:`_peer_routes` so the pseudo-peer never passes
        AJO destination validation as a consignable Usite.
        """
        self._broker_route = list(route)

    # ------------------------------------------------------------ consign
    def _next_job_id(self) -> str:
        """Allocate the next job id from the durable cursor.

        Persisting the cursor keeps job ids stable across a cold restart
        (a restored site must not re-issue ``U00001`` over a recovered
        job of the same name).
        """
        seq = int(typing.cast(int, self._meta.get("job_seq", 0))) + 1
        self._meta.put("job_seq", seq)
        return f"U{seq:05d}@{self.usite_name}"

    def consign(
        self,
        ajo: AbstractJobObject,
        user_dn: str | None = None,
        workstation_files: dict[str, bytes] | None = None,
        parent_job_id: str | None = None,
        trace_id: str = "",
        parent_span_id: str = "",
        forward_meta: tuple | None = None,
        job_id: str | None = None,
    ) -> JobRun:
        """Accept a job (or a forwarded job group); starts supervision.

        Raises :class:`ConsignError` on validation, mapping, or resource
        failures — the gateway reports these to the client synchronously.

        ``job_id`` is only passed by journal replay: the recovered run
        keeps its original identifier so clients polling through the
        outage keep seeing their job.  ``forward_meta`` rides into the
        journal so a replayed *forwarded* group can still report home.
        """
        if self.crashed:
            raise ServiceUnavailable(
                f"NJS at {self.usite_name} is down; consign refused"
            )
        is_replay = job_id is not None
        tracer = telemetry_for(self.sim).tracer
        consign_span = None
        if trace_id:
            consign_span = tracer.start_span(
                "njs.consign",
                trace_id,
                parent=parent_span_id or None,
                tier="server",
                usite=self.usite_name,
                job=ajo.name,
            )
        try:
            dn = user_dn or ajo.user_dn
            if not dn:
                raise ConsignError("consignment carries no user identity")
            if (
                self.max_active_per_user is not None
                and not is_replay
                and parent_job_id is None
            ):
                active = self._index.active_count(dn)
                telemetry_for(self.sim).metrics.counter("njs.index.hits").inc()
                if active >= self.max_active_per_user:
                    telemetry_for(self.sim).metrics.counter(
                        "broker.rejections"
                    ).inc()
                    raise BrokerQuotaError(
                        f"{self.usite_name}: user {dn!r} already has "
                        f"{active} live jobs (cap {self.max_active_per_user})"
                    )
            self._analyze_arrival(
                ajo,
                is_forward=parent_job_id is not None,
                workstation_files=workstation_files,
                trace_id=trace_id,
                parent_span=consign_span,
            )
            self._check_destinations(ajo, dn)
        except (ConsignError, BrokerQuotaError) as err:
            if consign_span is not None:
                tracer.end_span(consign_span, error=err)
            raise

        # One durable unit: the job-id cursor advance and the journal's
        # consign record land together or not at all.
        with self.storage.batch():
            if job_id is None:
                job_id = self._next_job_id()
            run = JobRun.create(
                self.sim, job_id, ajo, dn, workstation_files=workstation_files
            )
            run.trace_id = trace_id
            self._runs[job_id] = run
            run.on_change = self._note_change
            status = run.status()
            self._index.add(job_id, dn, status.value, status.is_terminal)
            self._changes.record(self._listing_for(run, status.value), dn)
            if parent_job_id is not None:
                self._foreign_runs[parent_job_id] = run
            if not is_replay:
                self.journal.record_consign(
                    job_id,
                    encode_ajo(ajo),
                    dn,
                    workstation_files=workstation_files,
                    trace_id=trace_id,
                    parent_job_id=parent_job_id,
                    forward_meta=forward_meta,
                )
        if consign_span is not None:
            # The job span outlives the consign acknowledgement: it closes
            # in _run_job once supervision finishes.
            run.job_span = tracer.start_span(
                "njs.job", trace_id, parent=consign_span, tier="server",
                job_id=job_id,
            )
            tracer.end_span(consign_span.set(job_id=job_id))
        run.processes.append(
            self.sim.process(self._run_job(run), name=f"job:{job_id}")
        )
        return run

    def _analyze_arrival(
        self,
        ajo: AbstractJobObject,
        *,
        is_forward: bool,
        workstation_files: dict[str, bytes] | None,
        trace_id: str,
        parent_span,
    ) -> None:
        """Re-run the static analyzer on an arriving AJO (never trust the
        client): errors reject the consignment with the primary diagnostic
        code carried over the wire; warnings only count in the metrics.

        Forwarded groups (``is_forward``) arrive with their staged
        dependency files, which the analyzer treats as prestaged Uspace
        content, and without a user DN of their own.
        """
        telemetry = telemetry_for(self.sim)
        context = AnalysisContext.for_njs(
            self,
            prestaged=workstation_files if is_forward else None,
        )
        analyze_span = None
        if trace_id:
            analyze_span = telemetry.tracer.start_span(
                "njs.analyze", trace_id, parent=parent_span,
                tier="server", usite=self.usite_name, job=ajo.name,
            )
        report = analyze_ajo(ajo, context, require_user=not is_forward)
        telemetry.metrics.counter("analysis.errors").inc(len(report.errors))
        telemetry.metrics.counter("analysis.warnings").inc(len(report.warnings))
        if analyze_span is not None:
            analyze_span.set(
                errors=len(report.errors), warnings=len(report.warnings)
            )
        if not report.ok:
            telemetry.metrics.counter("analysis.jobs_rejected").inc()
            err = ConsignError(f"invalid AJO: {report.summary()}")
            # Instance attribute: the gateway reports this stable
            # diagnostic code in Reply.error_code.
            err.code = report.errors[0].code
            if analyze_span is not None:
                telemetry.tracer.end_span(analyze_span, error=err)
            raise err
        if analyze_span is not None:
            telemetry.tracer.end_span(analyze_span)

    def _check_destinations(self, group: AbstractJobObject, dn: str) -> None:
        """Validate vsites, user mapping, and resources for local groups."""
        if group.usite in ("", self.usite_name):
            if group.tasks():
                vsite = self.vsites.get(group.vsite)
                if vsite is None:
                    raise ConsignError(
                        f"{self.usite_name}: unknown Vsite {group.vsite!r} "
                        f"(available: {sorted(self.vsites)})"
                    )
                try:
                    self.uudb.map_dn(dn, vsite=vsite.name)
                except MappingError as err:
                    raise ConsignError(str(err)) from err
                for task in group.tasks():
                    result = check_request(
                        vsite.resource_page,
                        task.resources,
                        task.required_software(),
                    )
                    if not result.ok:
                        raise ConsignError(
                            f"task {task.name!r}: {result.summary()}"
                        )
            for sub in group.sub_jobs():
                self._check_destinations(sub, dn)
        else:
            if group.usite not in self._peer_routes:
                raise ConsignError(
                    f"{self.usite_name}: no route to Usite {group.usite!r}"
                )

    # ------------------------------------------------------- job processes
    def _run_job(self, run: JobRun):
        if self._runs.get(run.job_id) is not run:
            return  # orphaned by a crash that raced the spawn
        yield from self._run_group(run, run.root)
        if run.job_span is not None:
            status = run.status()
            telemetry_for(self.sim).tracer.end_span(
                run.job_span.set(status=status.value),
                error=None if status is ActionStatus.SUCCESSFUL else status.value,
            )
        # Completion and the outcome record are one durable unit: after
        # this batch, even a cold-started successor can serve the job's
        # listing, outcome tree, and Uspace files.
        with self.storage.batch():
            self.journal.record_done(run.job_id)
            self._persist_outcome(run)
        assert run.done_event is not None
        if not run.done_event.triggered:
            run.done_event.succeed(run.status())

    def _persist_outcome(self, run: JobRun) -> None:
        """Write the finished job's durable record (outcome + files)."""
        files: dict[str, bytes] = {}
        for uspace in run.uspaces.values():
            for path in uspace.files():
                files.setdefault(path, uspace.read(path))
        status = run.status()
        self._outcomes.put(OutcomeRecord(
            job_id=run.job_id,
            name=run.root.name,
            user_dn=run.user_dn,
            status=status.value,
            submitted_at=run.submitted_at,
            recovered=run.recovered,
            trace_id=run.trace_id,
            outcome_bytes=encode_outcome(run.root_outcome),
            files=files,
        ))

    def _run_group(self, run: JobRun, group: AbstractJobObject):
        if group.tasks() or group.id == run.root.id:
            vsite = self.vsites.get(group.vsite) if group.vsite else None
            if vsite is None and group.tasks():
                # Validated at consign; only reachable for forwarded jobs
                # racing a site reconfiguration.
                run.finish_action(
                    group.id, ActionStatus.FAILED,
                    reason=f"no Vsite {group.vsite!r}",
                )
                return
            if vsite is not None:
                uspace = vsite.uspaces.create(f"{run.job_id}.{group.id}")
                run.uspaces[group.id] = uspace
                # Early-arrived transfer files and forwarded staging.
                for path, content in self._early_files.pop(run.job_id, {}).items():
                    uspace.write(path, content)

        for child in group.children:
            run.processes.append(
                self.sim.process(
                    self._run_child(run, group, child),
                    name=f"child:{child.id}",
                )
            )
        for child in group.children:
            yield run.events[child.id]
        run.finish_action(group.id, self._group_status(run, group))

    def _group_status(self, run: JobRun, group: AbstractJobObject) -> ActionStatus:
        statuses = {run.outcomes[c.id].status for c in group.children}
        if not statuses:
            return ActionStatus.SUCCESSFUL
        if ActionStatus.FAILED in statuses:
            return ActionStatus.FAILED
        if ActionStatus.KILLED in statuses:
            return ActionStatus.KILLED
        if statuses == {ActionStatus.NOT_ATTEMPTED}:
            return ActionStatus.NOT_ATTEMPTED
        return ActionStatus.SUCCESSFUL

    def _run_child(self, run: JobRun, group: AbstractJobObject, child):
        if self._runs.get(run.job_id) is not run:
            return  # orphaned by a crash that raced the spawn
        # 1. Wait for predecessors (the "predefined sequence").
        deps = [d for d in group.dependencies if d.successor_id == child.id]
        failed_pred = None
        for dep in deps:
            status = yield run.events[dep.predecessor_id]
            if status is not ActionStatus.SUCCESSFUL and failed_pred is None:
                failed_pred = (dep.predecessor_id, status)
        if failed_pred is not None:
            run.finish_action(
                child.id, ActionStatus.NOT_ATTEMPTED,
                reason=f"predecessor {failed_pred[0]} "
                       f"{failed_pred[1].value}",
            )
            return
        if run.cancelled:
            run.finish_action(child.id, ActionStatus.KILLED, reason="job cancelled")
            return
        # A held job delivers nothing further until resumed (or cancelled).
        while run.held:
            if run.hold_released is None or run.hold_released.triggered:
                run.hold_released = self.sim.event(name=f"resume:{run.job_id}")
            yield run.hold_released
            if run.cancelled:
                run.finish_action(
                    child.id, ActionStatus.KILLED, reason="job cancelled"
                )
                return

        # 2. Guarantee dependency-annotated files (section 5.7).
        staged: dict[str, bytes] = {}
        for dep in deps:
            for path in dep.files:
                content = self._locate_dependency_file(run, group, dep.predecessor_id, path)
                if content is None:
                    run.finish_action(
                        child.id, ActionStatus.FAILED,
                        reason=f"dependency file {path!r} from "
                               f"{dep.predecessor_id} not found",
                    )
                    return
                staged[path] = content
        if staged:
            # Local staging copy at disk bandwidth.
            total = sum(len(v) for v in staged.values())
            stage_span = None
            if run.trace_id:
                stage_span = telemetry_for(self.sim).tracer.start_span(
                    "njs.stage", run.trace_id, parent=run.job_span,
                    tier="server", files=len(staged), bytes=total,
                )
            yield self.sim.timeout(total / self.local_disk_bandwidth_Bps)
            if stage_span is not None:
                telemetry_for(self.sim).tracer.end_span(stage_span)

        # 3. Dispatch by action type.
        if isinstance(child, AbstractJobObject):
            # Files that parent-level edges expect this group to produce.
            run.group_expected[child.id] = tuple(
                f
                for dep in group.dependencies
                if dep.predecessor_id == child.id
                for f in dep.files
            )
            if child.usite and child.usite != self.usite_name:
                yield from self._forward_group(run, group, child, staged)
            else:
                self._pre_stage(run, child, staged)
                yield from self._run_group(run, child)
        elif isinstance(child, ExecuteTask):
            yield from self._run_execute(run, group, child, staged)
        elif isinstance(child, ImportTask):
            yield from self._run_import(run, group, child)
        elif isinstance(child, ExportTask):
            yield from self._run_export(run, group, child)
        elif isinstance(child, TransferTask):
            yield from self._run_transfer(run, group, child)
        else:  # pragma: no cover - validated at add()
            run.finish_action(
                child.id, ActionStatus.FAILED,
                reason=f"unsupported action {type(child).__name__}",
            )

    def _pre_stage(
        self, run: JobRun, child_group: AbstractJobObject, staged: dict[str, bytes]
    ) -> None:
        """Queue files to be written into a subgroup's uspace at creation.

        The subgroup's uspace does not exist yet; route through the
        early-files stash (keyed by the run id) that ``_run_group``
        consumes when it creates the uspace.
        """
        if staged:
            self._early_files.setdefault(run.job_id, {}).update(staged)

    def _locate_dependency_file(
        self, run: JobRun, group: AbstractJobObject, pred_id: str, path: str
    ) -> bytes | None:
        """Find a predecessor-produced file (section 5.7's guarantee)."""
        # Files produced by forwarded groups came back in the GroupResult.
        if pred_id in run.remote_files and path in run.remote_files[pred_id]:
            return run.remote_files[pred_id][path]
        # A local subgroup's uspace.
        if pred_id in run.uspaces and run.uspaces[pred_id].exists(path):
            return run.uspaces[pred_id].read(path)
        # A sibling task: same group uspace.
        uspace = run.uspaces.get(group.id)
        if uspace is not None and uspace.exists(path):
            return uspace.read(path)
        return None

    # ------------------------------------------------------------- executors
    #: Bounded resubmission of tasks whose *node* failed (as opposed to
    #: the task itself): delays grow linearly so a whole-Vsite outage of
    #: up to ~3 simulated minutes is ridden out.
    TASK_RETRIES = 4
    TASK_RETRY_DELAY_S = 45.0

    def _run_execute(self, run, group, task, staged: dict[str, bytes]):
        vsite = self.vsites[group.vsite]
        uspace = run.uspaces[group.id]
        outcome = typing.cast(TaskOutcome, run.outcomes[task.id])
        for path, content in staged.items():
            uspace.write(path, content)
        try:
            mapping = self.uudb.map_dn(run.user_dn, vsite=vsite.name)
        except MappingError as err:
            run.finish_action(task.id, ActionStatus.FAILED, reason=str(err))
            return

        # Incarnation (the JTS role).
        telemetry = telemetry_for(self.sim)
        incarnate_span = None
        if run.trace_id:
            incarnate_span = telemetry.tracer.start_span(
                "njs.incarnate", run.trace_id, parent=run.job_span,
                tier="server", task=task.name,
            )
        yield self.sim.timeout(self.incarnation_cpu_s)
        self.incarnations += 1
        telemetry.metrics.counter("njs.incarnations").inc()
        out_files = tuple(
            FileEffect(path=f, size_bytes=RESULT_FILE_BYTES)
            for dep in group.dependencies
            if dep.predecessor_id == task.id
            for f in dep.files
        )
        # Files a later export names with this task as implicit producer.
        export_sources = tuple(
            FileEffect(path=t.source_path, size_bytes=RESULT_FILE_BYTES)
            for t in group.tasks()
            if isinstance(t, (ExportTask, TransferTask))
            and any(
                d.predecessor_id == task.id and d.successor_id == t.id
                for d in group.dependencies
            )
        )
        # Sink tasks materialize what the *group* owes its own successors
        # (parent-level dependency edges, or a forwarding parent's
        # return_files request).
        group_owes: tuple[FileEffect, ...] = ()
        has_successor = any(
            d.predecessor_id == task.id for d in group.dependencies
        )
        if not has_successor:
            group_owes = tuple(
                FileEffect(path=f, size_bytes=RESULT_FILE_BYTES)
                for f in run.group_expected.get(group.id, ())
            )
        spec = incarnate_task(
            task, vsite, mapping, uspace,
            extra_outputs=out_files + export_sources + group_owes,
            metrics=telemetry.metrics,
            cache=self.incarnation_cache,
        )
        spec.trace_id = run.trace_id
        spec.parent_span_id = run.job_span.span_id if run.job_span else ""
        if incarnate_span is not None:
            telemetry.tracer.end_span(
                incarnate_span.set(queue=spec.queue, script_bytes=len(spec.script))
            )
        # "Transform the abstract job into a Codine internal format"
        # (section 5.5) before delivery to the destination system.
        self.codine.register(run.job_id, task.id, vsite.name, spec, self.sim.now)
        record = None
        for attempt in range(1, self.TASK_RETRIES + 2):
            try:
                local_id = vsite.batch.submit(spec)
            except SystemOfflineError as err:
                # Transient: the Vsite is down right now; wait it out.
                if attempt <= self.TASK_RETRIES and not run.cancelled:
                    telemetry.metrics.counter("njs.task_retry_waits").inc()
                    yield self.sim.timeout(self.TASK_RETRY_DELAY_S * attempt)
                    continue
                self.codine.transition(task.id, BatchState.FAILED, self.sim.now)
                run.finish_action(task.id, ActionStatus.FAILED, reason=str(err))
                return
            except BatchError as err:
                self.codine.transition(task.id, BatchState.FAILED, self.sim.now)
                run.finish_action(task.id, ActionStatus.FAILED, reason=str(err))
                return
            self.codine.bind_vendor_job(task.id, local_id)
            run.batch_jobs[task.id] = (vsite.name, local_id)
            self.journal.record_delivery(
                run.job_id, task.id, vsite.name, local_id
            )
            outcome.submitted_at = self.sim.now
            if not outcome.status.is_terminal:
                outcome.mark(ActionStatus.QUEUED)
                run.notify_change()

            record = yield vsite.batch.query(local_id).completion_event
            if (
                record.state is BatchState.FAILED
                and record.reason.startswith("node failure")
                and attempt <= self.TASK_RETRIES
                and not run.cancelled
            ):
                # The *node* died, not the job: resubmit (bounded),
                # leaving a recovery mark in the per-job trace.
                telemetry.metrics.counter("njs.task_resubmissions").inc()
                if run.trace_id:
                    telemetry.tracer.end_span(
                        telemetry.tracer.start_span(
                            "njs.resubmit", run.trace_id,
                            parent=run.job_span, tier="server",
                            task=task.name, attempt=attempt,
                            reason=record.reason,
                        )
                    )
                yield self.sim.timeout(self.TASK_RETRY_DELAY_S * attempt)
                continue
            break
        assert record is not None
        self.codine.transition(task.id, record.state, self.sim.now)
        outcome.completed_at = self.sim.now
        outcome.exit_code = record.exit_code
        if self.accounting is not None:
            self.accounting.charge(vsite.name, record)
        if record.state is BatchState.DONE:
            outcome.stdout = record.spec.stdout_text
            run.finish_action(task.id, ActionStatus.SUCCESSFUL)
        elif record.state is BatchState.CANCELLED:
            run.finish_action(task.id, ActionStatus.KILLED, reason=record.reason)
        else:
            outcome.stdout = record.spec.stdout_text
            outcome.stderr = record.spec.stderr_text
            run.finish_action(task.id, ActionStatus.FAILED, reason=record.reason)

    def _run_import(self, run, group, task: ImportTask):
        uspace = run.uspaces[group.id]
        outcome = run.outcomes[task.id]
        outcome.submitted_at = self.sim.now
        if task.source_space == FileSpace.WORKSTATION:
            content = run.workstation_files.get(task.source_path)
            if content is None:
                run.finish_action(
                    task.id, ActionStatus.FAILED,
                    reason=f"workstation file {task.source_path!r} was not "
                           "included in the consignment",
                )
                return
        else:
            try:
                content = self.xspace.fs.read(task.source_path)
            except VFSError as err:
                run.finish_action(task.id, ActionStatus.FAILED, reason=str(err))
                return
        telemetry = telemetry_for(self.sim)
        import_span = None
        if run.trace_id:
            import_span = telemetry.tracer.start_span(
                "njs.import", run.trace_id, parent=run.job_span,
                tier="server", path=task.destination_path, bytes=len(content),
            )
        yield self.sim.timeout(len(content) / self.local_disk_bandwidth_Bps)
        try:
            uspace.write(task.destination_path, content)
        except VFSError as err:
            if import_span is not None:
                telemetry.tracer.end_span(import_span, error=err)
            run.finish_action(task.id, ActionStatus.FAILED, reason=str(err))
            return
        if import_span is not None:
            telemetry.tracer.end_span(import_span)
        outcome.bytes_moved = len(content)
        outcome.completed_at = self.sim.now
        run.finish_action(task.id, ActionStatus.SUCCESSFUL)

    def _run_export(self, run, group, task: ExportTask):
        uspace = run.uspaces[group.id]
        outcome = run.outcomes[task.id]
        outcome.submitted_at = self.sim.now
        if not uspace.exists(task.source_path):
            run.finish_action(
                task.id, ActionStatus.FAILED,
                reason=f"uspace file {task.source_path!r} does not exist",
            )
            return
        content = uspace.read(task.source_path)
        telemetry = telemetry_for(self.sim)
        export_span = None
        if run.trace_id:
            export_span = telemetry.tracer.start_span(
                "njs.export", run.trace_id, parent=run.job_span,
                tier="server", path=task.destination_path, bytes=len(content),
            )
        yield self.sim.timeout(len(content) / self.local_disk_bandwidth_Bps)
        try:
            self.xspace.fs.write(task.destination_path, content)
        except VFSError as err:
            if export_span is not None:
                telemetry.tracer.end_span(export_span, error=err)
            run.finish_action(task.id, ActionStatus.FAILED, reason=str(err))
            return
        if export_span is not None:
            telemetry.tracer.end_span(export_span)
        outcome.bytes_moved = len(content)
        outcome.completed_at = self.sim.now
        run.finish_action(task.id, ActionStatus.SUCCESSFUL)

    def _run_transfer(self, run, group, task: TransferTask):
        uspace = run.uspaces[group.id]
        outcome = run.outcomes[task.id]
        outcome.submitted_at = self.sim.now
        if not uspace.exists(task.source_path):
            run.finish_action(
                task.id, ActionStatus.FAILED,
                reason=f"uspace file {task.source_path!r} does not exist",
            )
            return
        if task.destination_usite not in self._peer_routes:
            run.finish_action(
                task.id, ActionStatus.FAILED,
                reason=f"no route to Usite {task.destination_usite!r}",
            )
            return
        content = uspace.read(task.source_path)
        corr_id = next(self._corr_seq)
        # The file travels on the data plane: chunked frames whose
        # context tells the peer where the bytes belong.  The receiver
        # acks the whole transfer once it is reassembled and stored.
        context = {
            "kind": "uspace-file",
            "job": run.job_id,
            "path": task.destination_path,
            "reply": self.usite_name,
            "corr": corr_id,
        }
        started = self.sim.now
        reply_ev = self.sim.event(name=f"transfer-ack:{corr_id}")
        self._pending[corr_id] = reply_ev
        telemetry = telemetry_for(self.sim)
        transfer_span = None
        if run.trace_id:
            transfer_span = telemetry.tracer.start_span(
                "njs.transfer", run.trace_id, parent=run.job_span,
                tier="server", usite=task.destination_usite,
                bytes=len(content),
            )
        try:
            yield from self._stream_to_peer(
                task.destination_usite, content, context
            )
        except ConnectionLost as err:
            self._pending.pop(corr_id, None)
            if transfer_span is not None:
                telemetry.tracer.end_span(transfer_span, error=err)
            run.finish_action(
                task.id, ActionStatus.FAILED,
                reason=f"transfer lost after retries: {err}",
            )
            return
        ack = yield reply_ev
        elapsed = self.sim.now - started
        if transfer_span is not None:
            telemetry.tracer.end_span(
                transfer_span, error=None if ack.ok else ack.error
            )
        if ack.ok:
            outcome.bytes_moved = len(content)
            outcome.effective_bandwidth = (
                len(content) / elapsed if elapsed > 0 else float("inf")
            )
            outcome.completed_at = self.sim.now
            self.transfers_bytes += len(content)
            telemetry.metrics.counter("njs.transfer_bytes").inc(len(content))
            run.finish_action(task.id, ActionStatus.SUCCESSFUL)
        else:
            run.finish_action(task.id, ActionStatus.FAILED, reason=ack.error)

    # --------------------------------------------------------- peer traffic
    def _forward_group(self, run, group, sub: AbstractJobObject, staged):
        self.forwarded_groups += 1
        telemetry = telemetry_for(self.sim)
        telemetry.metrics.counter("njs.forwarded_groups").inc()
        forward_span = None
        if run.trace_id:
            forward_span = telemetry.tracer.start_span(
                "njs.forward", run.trace_id, parent=run.job_span,
                tier="server", usite=sub.usite, group=sub.name,
            )
        return_files = tuple(
            f
            for dep in group.dependencies
            if dep.predecessor_id == sub.id
            for f in dep.files
        )
        # Ship the workstation files the subtree imports.
        needed_ws = {
            t.source_path
            for a in sub.walk()
            if isinstance(a, ImportTask)
            and a.source_space == FileSpace.WORKSTATION
            for t in [a]
        }
        ws_files = {
            p: c for p, c in run.workstation_files.items() if p in needed_ws
        }
        ws_files.update(staged)
        corr_id = next(self._corr_seq)
        # Control/data-plane split: small staging files ride inside the
        # ForwardGroup; large ones stream ahead of it on the same FIFO
        # route, so they are reassembled at the peer before the group
        # message arrives.
        inline_files = {
            p: c for p, c in ws_files.items() if len(c) <= INLINE_FILE_MAX
        }
        streamed_files = {
            p: c for p, c in ws_files.items() if len(c) > INLINE_FILE_MAX
        }
        message = ForwardGroup(
            corr_id=corr_id,
            reply_usite=self.usite_name,
            parent_job_id=run.job_id,
            user_dn=run.user_dn,
            ajo_bytes=encode_ajo(sub),
            staged_files=inline_files,
            return_files=return_files,
            trace_id=run.trace_id,
            parent_span_id=forward_span.span_id if forward_span else "",
        )
        reply_ev = self.sim.event(name=f"group-result:{corr_id}")
        self._pending[corr_id] = reply_ev
        try:
            for path, blob in sorted(streamed_files.items()):
                yield from self._stream_to_peer(
                    sub.usite, blob,
                    {"kind": "forward-stage", "job": run.job_id, "path": path},
                )
            yield from self._send_via_route(
                sub.usite, message, message.wire_payload
            )
        except ConnectionLost as err:
            self._pending.pop(corr_id, None)
            if forward_span is not None:
                telemetry.tracer.end_span(forward_span, error=err)
            run.finish_action(
                sub.id, ActionStatus.FAILED,
                reason=f"job group lost in transit after retries: {err}",
            )
            return
        result = yield reply_ev
        returned_files = self._returned_files.pop(corr_id, {})
        if forward_span is not None:
            telemetry.tracer.end_span(
                forward_span, error=None if result.ok else result.error
            )
        if not result.ok:
            # The whole group was rejected remotely: none of its children
            # were attempted.
            for action in sub.walk():
                if action.id != sub.id:
                    outcome = run.outcomes[action.id]
                    if not outcome.status.is_terminal:
                        outcome.mark(
                            ActionStatus.NOT_ATTEMPTED,
                            reason="group rejected by remote NJS",
                        )
            run.finish_action(sub.id, ActionStatus.FAILED, reason=result.error)
            return
        sub_outcome = typing.cast(AJOOutcome, decode_outcome(result.outcome_bytes))
        self._merge_outcome(run, group, sub, sub_outcome)
        if result.produced_files or returned_files:
            # Small return files ride inside the GroupResult; large ones
            # streamed ahead and were collected under this corr_id.
            merged = dict(returned_files)
            merged.update(result.produced_files)
            run.remote_files[sub.id] = merged
        status = sub_outcome.rollup_status()
        if not status.is_terminal:
            status = ActionStatus.FAILED
        run.finish_action(sub.id, status)

    def _merge_outcome(
        self, run, parent_group, sub: AbstractJobObject, sub_outcome: AJOOutcome
    ) -> None:
        """Splice a remote group's outcome tree into the job's tree."""
        sub_outcome.action_id = sub.id
        parent_outcome = typing.cast(AJOOutcome, run.outcomes[parent_group.id])
        parent_outcome.children[sub.id] = sub_outcome
        # Refresh the flat index for the whole subtree.
        def _index(outcome) -> None:
            run.outcomes[outcome.action_id] = outcome
            if isinstance(outcome, AJOOutcome):
                for child in outcome.children.values():
                    _index(child)
        # Keep the run's terminal-event object for sub.id; only the
        # OUTCOME objects are replaced.
        old_event = run.events.get(sub.id)
        _index(sub_outcome)
        if old_event is not None:
            run.events[sub.id] = old_event

    #: Bounded resend attempts for NJS-NJS messages on unreliable links
    #: (the same asynchronous-protocol philosophy as the client tier).
    PEER_RETRIES = 6
    PEER_RETRY_DELAY_S = 5.0

    def _stream_to_peer(self, usite: str, data: bytes, context: dict,
                        chunk_bytes: int = DEFAULT_CHUNK_BYTES):
        """Stream a bulk payload to a peer NJS, one chunked frame at a time.

        Each chunk travels as its own :class:`PeerFrame` hop sequence, so
        control messages sharing the route's links wait for at most one
        chunk's serialization.  A chunk lost mid-route is retransmitted
        *alone* — the stream resumes from the last acknowledged chunk
        (``stream.resumes``) instead of restarting, which is what makes
        WAN-drop faults survivable for multi-megabyte transfers.
        """
        telemetry = telemetry_for(self.sim)
        sender = StreamSender(
            self._stream_ids.next(), data, chunk_bytes, context
        )
        for frame in sender.frames():
            raw = encode_frame(frame)
            payload = PeerFrame(raw)
            for attempt in range(1 + CHUNK_RETRIES):
                telemetry.metrics.counter("stream.wire_bytes").inc(len(raw))
                try:
                    # retries=0: a loss surfaces here (per-chunk resume)
                    # instead of being hidden inside the hop machinery.
                    yield from self._send_via_route(
                        usite, payload, len(raw), retries=0
                    )
                    break
                except ConnectionLost:
                    telemetry.metrics.counter("stream.resumes").inc()
                    if attempt >= CHUNK_RETRIES:
                        raise
                    yield self.sim.timeout(CHUNK_RETRY_DELAY_S)
            telemetry.metrics.counter(
                "stream.chunks" if frame.ftype == FrameType.DATA
                else "stream.opens"
            ).inc()
        return sender

    def _send_via_route(
        self, usite: str, payload, payload_size: int,
        retries: int | None = None,
    ):
        """Send via the https route (NJS -> gateway -> peer gateway -> NJS).

        First use of a route pays the SSL handshake round trips end to
        end.  Every hop carries the record-framed byte count; endpoint
        seal/open CPU is charged once.  Lost messages are resent up to
        :data:`PEER_RETRIES` times (``retries`` overrides the budget);
        after that :class:`ConnectionLost` propagates to the caller,
        which fails the affected action.
        """
        if usite == BROKER_PEER:
            assert self._broker_route is not None, "no broker route registered"
            route = self._broker_route
        else:
            route = self._peer_routes[usite]
        if usite not in self._peer_sessions:
            for _ in range(HANDSHAKE_ROUND_TRIPS):
                for src, dst in route:
                    yield from self._reliable_hop(
                        src, dst, ("hs",), _HS_BYTES, "njs-handshake", False
                    )
                for src, dst in [(b, a) for a, b in reversed(route)]:
                    yield from self._reliable_hop(
                        src, dst, ("hs-ack",), _HS_BYTES, "njs-handshake", False
                    )
            self._peer_sessions.add(usite)
        records = SSLSession.record_count(payload_size)
        wire = SSLSession.wire_bytes(payload_size)
        yield self.sim.timeout(records * self.per_record_cpu_s)  # seal
        last = len(route) - 1
        for i, (src, dst) in enumerate(route):
            yield from self._reliable_hop(
                src, dst, payload, wire, "njs-njs", i == last,
                retries=retries,
            )
        yield self.sim.timeout(records * self.per_record_cpu_s)  # open

    def _reliable_hop(
        self, src: str, dst: str, payload, wire: int, channel: str,
        deliver: bool, retries: int | None = None,
    ):
        """One hop with bounded retransmission."""
        budget = self.PEER_RETRIES if retries is None else retries
        last_error: Exception | None = None
        for attempt in range(1 + budget):
            try:
                yield self.network.send(
                    src, dst, payload, wire, channel=channel, deliver=deliver
                )
                return
            except ConnectionLost as err:
                last_error = err
                if attempt < budget:
                    yield self.sim.timeout(self.PEER_RETRY_DELAY_S)
        assert last_error is not None
        raise last_error

    # ------------------------------------------------------------ server loop
    def _server_loop(self):
        while True:
            message = yield self.host.receive()
            self.dispatch_peer_message(message.payload)

    def dispatch_peer_message(self, payload: object) -> bool:
        """Handle one NJS-to-NJS message; returns True if it was ours."""
        if self.crashed and isinstance(
            payload, (ForwardGroup, GroupResult, TransferFile, TransferAck,
                      CancelGroup, PeerFrame, ReclaimJob)
        ):
            # A dead process reads nothing: the message is simply lost
            # (senders retry or fail their action, as with a lost frame).
            telemetry_for(self.sim).metrics.counter(
                "njs.dropped_peer_messages"
            ).inc()
            return True
        if isinstance(payload, PeerFrame):
            self.datapath.feed(payload.raw)
            return True
        if isinstance(payload, ForwardGroup):
            self.sim.process(self._handle_forward(payload))
        elif isinstance(payload, TransferFile):
            self.sim.process(self._handle_transfer(payload))
        elif isinstance(payload, CancelGroup):
            self._handle_cancel_group(payload)
        elif isinstance(payload, ReclaimJob):
            self.sim.process(self._handle_reclaim(payload))
        elif isinstance(payload, (GroupResult, TransferAck)):
            waiter = self._pending.pop(payload.corr_id, None)
            if waiter is not None:
                waiter.succeed(payload)
        else:
            return False
        return True

    def _handle_forward(self, message: ForwardGroup):
        # Large staging files streamed ahead of the group on the same
        # FIFO route; they are already reassembled under the parent id.
        staged_files = dict(message.staged_files)
        staged_files.update(
            self._pending_forward_files.pop(message.parent_job_id, {})
        )
        try:
            validate_manifest_paths(staged_files, what="forwarded staging")
            sub = decode_ajo(message.ajo_bytes)
            run = self.consign(
                sub,
                user_dn=message.user_dn,
                workstation_files=staged_files,
                parent_job_id=message.parent_job_id,
                trace_id=message.trace_id,
                parent_span_id=message.parent_span_id,
                forward_meta=(
                    message.corr_id,
                    message.reply_usite,
                    tuple(message.return_files),
                ),
            )
        except Exception as err:  # noqa: BLE001 - reported back to the peer
            reply = GroupResult(
                corr_id=message.corr_id, ok=False, error=str(err)
            )
            try:
                yield from self._send_via_route(
                    message.reply_usite, reply, reply.wire_payload
                )
            except ConnectionLost:
                pass
            return
        # Also stash staged files into the group uspace on creation
        # (handled by _early_files in _run_group).
        self._early_files.setdefault(run.job_id, {}).update(staged_files)
        # The parent expects these files back: the group's sink tasks
        # must produce them.
        run.group_expected[run.root.id] = tuple(message.return_files)
        yield from self._finish_forward(
            run, message.corr_id, message.reply_usite, message.return_files
        )

    def _finish_forward(
        self,
        run: JobRun,
        corr_id: int,
        reply_usite: str,
        return_files: typing.Iterable[str],
    ):
        """Await a forwarded group and report home (also used by replay)."""
        yield run.done_event
        produced: dict[str, bytes] = {}
        for path in return_files:
            for uspace in run.uspaces.values():
                if uspace.exists(path):
                    produced[path] = uspace.read(path)
                    break
        # Big result files stream home on the data plane, keyed by this
        # correlation id; small ones ride inside the GroupResult.
        inline_produced = {
            p: c for p, c in produced.items() if len(c) <= INLINE_FILE_MAX
        }
        streamed_produced = {
            p: c for p, c in produced.items() if len(c) > INLINE_FILE_MAX
        }
        reply = GroupResult(
            corr_id=corr_id,
            ok=True,
            outcome_bytes=encode_outcome(run.root_outcome),
            produced_files=inline_produced,
        )
        try:
            for path, blob in sorted(streamed_produced.items()):
                yield from self._stream_to_peer(
                    reply_usite, blob,
                    {"kind": "group-return", "corr": corr_id, "path": path},
                )
            yield from self._send_via_route(
                reply_usite, reply, reply.wire_payload
            )
        except ConnectionLost:
            pass  # the parent NJS will surface the missing result

    def _handle_transfer(self, message: TransferFile):
        run = self._foreign_runs.get(message.parent_job_id) or self._runs.get(
            message.parent_job_id
        )
        stored = False
        if run is not None:
            for uspace in run.uspaces.values():
                uspace.write(message.destination_path, message.content)
                stored = True
                break
        if not stored:
            # Group not consigned here (yet): stash for arrival, keyed by
            # the parent job id every ForwardGroup of this job carries.
            self._early_files.setdefault(message.parent_job_id, {})[
                message.destination_path
            ] = message.content
            stored = True
        yield self.sim.timeout(
            len(message.content) / self.local_disk_bandwidth_Bps
        )
        ack = TransferAck(corr_id=message.corr_id, ok=stored)
        try:
            yield from self._send_via_route(
                message.reply_usite, ack, ack.wire_payload
            )
        except ConnectionLost:
            pass  # sender retries are exhausted; it reports the failure

    # ------------------------------------------------------ data-plane intake
    def _on_stream_complete(self, context: dict, data: bytes) -> bool:
        """Route a reassembled peer stream by its context kind."""
        kind = context.get("kind")
        if kind == "uspace-file":
            # A Uspace-to-Uspace transfer: store + ack (its own process,
            # because storing charges disk time and the ack travels back).
            self.sim.process(
                self._complete_transfer(context, data),
                name=f"transfer-in:{context.get('corr', 0)}",
            )
            return True
        if kind == "forward-stage":
            # Staging for a ForwardGroup still in flight behind us.
            path = str(context.get("path", ""))
            try:
                validate_manifest_paths([path], what="forwarded staging")
            except UnsafePathError:
                telemetry_for(self.sim).metrics.counter(
                    "njs.rejected_paths"
                ).inc()
                return True
            self._pending_forward_files.setdefault(
                str(context.get("job", "")), {}
            )[path] = data
            return True
        if kind == "group-return":
            self._returned_files.setdefault(
                int(context.get("corr", 0)), {}
            )[str(context.get("path", ""))] = data
            return True
        return False

    def _complete_transfer(self, context: dict, data: bytes):
        """Store one streamed transfer and acknowledge it."""
        corr_id = int(context.get("corr", 0))
        reply_usite = str(context.get("reply", ""))
        parent_job_id = str(context.get("job", ""))
        path = str(context.get("path", ""))
        try:
            # Strict policy: this path is written into a Uspace, so
            # absolute paths are refused along with traversal segments.
            validate_manifest_paths(
                [path], uspace_destination=True, what="transfer destination"
            )
        except UnsafePathError as err:
            telemetry_for(self.sim).metrics.counter("njs.rejected_paths").inc()
            nack = TransferAck(corr_id=corr_id, ok=False, error=str(err))
            try:
                yield from self._send_via_route(
                    reply_usite, nack, nack.wire_payload
                )
            except ConnectionLost:
                pass
            return
        run = self._foreign_runs.get(parent_job_id) or self._runs.get(
            parent_job_id
        )
        stored = False
        if run is not None:
            for uspace in run.uspaces.values():
                uspace.write(path, data)
                stored = True
                break
        if not stored:
            # Group not consigned here (yet): stash for arrival, keyed by
            # the parent job id every ForwardGroup of this job carries.
            self._early_files.setdefault(parent_job_id, {})[path] = data
            stored = True
        yield self.sim.timeout(len(data) / self.local_disk_bandwidth_Bps)
        ack = TransferAck(corr_id=corr_id, ok=stored)
        try:
            yield from self._send_via_route(
                reply_usite, ack, ack.wire_payload
            )
        except ConnectionLost:
            pass  # sender retries are exhausted; it reports the failure

    def _handle_cancel_group(self, message: CancelGroup) -> None:
        run = self._foreign_runs.get(message.parent_job_id)
        if run is not None:
            self.cancel(run.job_id)

    # ------------------------------------------------------- crash / recovery
    def crash(self, cold: bool = False) -> None:
        """Kill the NJS process: all in-memory state is gone.

        Supervision processes are interrupted (their process events
        defused so the simulator does not treat orphan failures as
        crashes), run tables and peer correlation state are wiped, and
        every service raises :class:`ServiceUnavailable` until
        :meth:`restart`.  The journal and outcome store — durable
        backend storage — survive.  A *warm* crash additionally keeps
        finished runs' Python objects (their outcomes live in Uspaces on
        the site disk, so a crash after completion must not make the job
        unknowable to later queries); ``cold=True`` models a full site
        power loss where even those objects are gone and :meth:`restart`
        must rebuild them from the storage backend.
        """
        if self.crashed:
            return
        self.crashed = True
        self.crashes += 1
        telemetry_for(self.sim).metrics.counter("njs.crashes").inc()
        finished = {} if cold else {
            job_id: run
            for job_id, run in self._runs.items()
            if (entry := self.journal.entry(job_id)) is not None and entry.done
        }
        for run in list(self._runs.values()):
            if run.job_id in finished:
                continue
            for proc in run.processes:
                if proc.is_alive and proc.target is not None:
                    proc.defuse()
                    proc.interrupt(cause="njs-crash")
        self._runs.clear()
        self._runs.update(finished)
        # Wake every parked completion subscriber: the run it watched is
        # either finished (answer immediately) or gone (the client must
        # observe the outage and re-subscribe after the replay).
        for watchers in self._watchers.values():
            for watcher in watchers:
                if not watcher.triggered:
                    watcher.succeed(None)
        self._watchers.clear()
        # The in-memory index dies with the process; rebuild from the
        # surviving (finished) runs and start a fresh change-log epoch so
        # delta cursors from the old life are refused with a full resync.
        self._index.rebuild(self._runs)
        telemetry_for(self.sim).metrics.counter("njs.index.rebuilds").inc()
        self._changes = self._changes.next_epoch()
        for run in self._runs.values():
            self._changes.record(
                self._listing_for(run, run.status().value), run.user_dn
            )
        self._foreign_runs.clear()
        self._early_files.clear()
        self._pending.clear()
        # In-flight stream reassembly dies with the process.
        self.datapath.clear()
        self._returned_files.clear()
        self._pending_forward_files.clear()
        # SSL sessions to peers died with the process: re-handshake.
        self._peer_sessions.clear()
        if cold:
            # Process memory is gone entirely: caches included.
            self.incarnation_cache = IncarnationCache()

    def restart(self) -> None:
        """Come back up from durable storage and resume every job.

        The journal is re-read from the backend (warm restarts find the
        same entries; cold ones rebuild the table from the log), jobs
        that finished before the outage are resurrected from the outcome
        store, and every incomplete entry is replayed.
        """
        if not self.crashed:
            return
        self.crashed = False
        telemetry_for(self.sim).metrics.counter("njs.restarts").inc()
        self.journal.reload()
        self.recover()

    def recover(self) -> None:
        """Rebuild run state from storage (shared by restart and grid
        restore, where the NJS instance itself is brand new)."""
        self._restore_finished()
        for entry in self.journal.incomplete():
            self._replay(entry)

    def _restore_finished(self) -> None:
        """Resurrect finished jobs that exist only in the outcome store."""
        telemetry = telemetry_for(self.sim)
        for entry in self.journal.entries():
            if not entry.done or entry.job_id in self._runs:
                continue
            record = self._outcomes.get(entry.job_id)
            if record is None:
                continue  # journaled done but record disposed mid-write
            run = typing.cast(JobRun, RestoredRun(record, entry.ajo_bytes))
            self._runs[entry.job_id] = run
            status = run.status()
            self._index.add(
                entry.job_id, run.user_dn, status.value, status.is_terminal
            )
            self._changes.record(
                self._listing_for(run, status.value), run.user_dn
            )
            telemetry.metrics.counter("njs.restored_runs").inc()

    def _replay(self, entry: JournalEntry) -> None:
        """Re-supervise one journaled job under its original id."""
        telemetry = telemetry_for(self.sim)
        # Orphaned batch jobs of the previous life: cancel the survivors
        # (their supervisor is gone; the replay resubmits from scratch).
        for vsite_name, local_id in entry.delivered.values():
            vsite = self.vsites.get(vsite_name)
            if vsite is None:
                continue
            try:
                record = vsite.batch.query(local_id)
                if not record.state.is_terminal:
                    vsite.batch.cancel(local_id)
            except (BatchError, UnknownJobError):
                pass
        entry.delivered.clear()
        # Stale job directories would collide with the replay's creates.
        prefix = f"{entry.job_id}."
        for vsite in self.vsites.values():
            for name in list(vsite.uspaces.active_jobs):
                if name.startswith(prefix):
                    vsite.uspaces.destroy(name)
        try:
            run = self.consign(
                decode_ajo(entry.ajo_bytes),
                user_dn=entry.user_dn,
                workstation_files=entry.workstation_files,
                parent_job_id=entry.parent_job_id,
                trace_id=entry.trace_id,
                job_id=entry.job_id,
            )
        except Exception as err:  # noqa: BLE001 - a replay must not kill restart
            telemetry.metrics.counter("njs.replay_failures").inc()
            telemetry.metrics.counter("njs.journal_replays").inc()
            if entry.trace_id:
                telemetry.tracer.end_span(
                    telemetry.tracer.start_span(
                        "njs.replay", entry.trace_id, tier="server",
                        job_id=entry.job_id, usite=self.usite_name,
                    ),
                    error=err,
                )
            return
        run.recovered = True
        self.replays += 1
        telemetry.metrics.counter("njs.journal_replays").inc()
        if run.trace_id:
            # A visible recovery marker in the per-job trace.
            telemetry.tracer.end_span(
                telemetry.tracer.start_span(
                    "njs.replay", run.trace_id, tier="server",
                    job_id=run.job_id, usite=self.usite_name,
                )
            )
        if entry.forward_meta is not None:
            # A forwarded group must still report to its parent site.
            corr_id, reply_usite, return_files = entry.forward_meta
            self._early_files.setdefault(run.job_id, {}).update(
                entry.workstation_files
            )
            run.group_expected[run.root.id] = tuple(return_files)
            run.processes.append(
                self.sim.process(
                    self._finish_forward(run, corr_id, reply_usite, return_files),
                    name=f"replay-forward:{run.job_id}",
                )
            )

    # ------------------------------------------------- index & change-log
    def _listing_for(self, run: JobRun, status_value: str) -> JobListing:
        return JobListing(
            job_id=run.job_id,
            name=run.root.name,
            status=status_value,
            submitted_at=run.submitted_at,
            recovered=run.recovered,
        )

    def _note_change(self, run: JobRun) -> None:
        """Status-change hook: keep index, change-log, watchers current.

        Fired by :meth:`JobRun.notify_change` after any action status
        change.  Only rollup-value changes append to the change-log, so
        the log stays proportional to *visible* transitions.
        """
        if self._runs.get(run.job_id) is not run:
            return  # orphaned by a crash that raced supervision
        status = run.status()
        changed = self._index.note_status(
            run.job_id, run.user_dn, status.value, status.is_terminal
        )
        if not changed:
            return
        self._changes.record(self._listing_for(run, status.value), run.user_dn)
        if status.is_terminal:
            for watcher in self._watchers.pop(run.job_id, ()):
                if not watcher.triggered:
                    watcher.succeed(status)

    def watch_completion(self, job_id: str) -> Event | None:
        """An event that fires when the job turns terminal (subscription).

        Returns ``None`` when the job is already terminal — the caller
        should answer immediately.  Watcher events are owned by the
        *caller* (the gateway), never by the run: a crash fires them all
        (waking subscribers to observe the outage) without disturbing
        the run's own completion events.
        """
        run = self.get_run(job_id)
        if run.status().is_terminal:
            return None
        ev = self.sim.event(name=f"watch:{job_id}")
        self._watchers.setdefault(job_id, []).append(ev)
        return ev

    # ---------------------------------------------------------------- services
    def get_run(self, job_id: str) -> JobRun:
        if self.crashed:
            raise ServiceUnavailable(
                f"NJS at {self.usite_name} is down"
            )
        try:
            return self._runs[job_id]
        except KeyError:
            raise UnknownUnicoreJobError(
                f"{self.usite_name}: unknown UNICORE job {job_id!r}"
            ) from None

    def list_jobs(self, user_dn: str) -> list[JobListing]:
        """The ListService answer: the user's jobs at this NJS.

        Indexed: touches only the user's own runs, not the whole table.
        """
        if self.crashed:
            raise ServiceUnavailable(f"NJS at {self.usite_name} is down")
        telemetry_for(self.sim).metrics.counter("njs.index.hits").inc()
        return [
            self._listing_for(run, run.status().value)
            for job_id in sorted(self._index.jobs_for(user_dn))
            if (run := self._runs.get(job_id)) is not None
        ]

    def list_jobs_delta(
        self, user_dn: str, since_seq: int, epoch: int
    ) -> JobListingDelta:
        """The versioned ListService answer: changes since the cursor.

        A cursor from another epoch (the change-log restarted after a
        crash), or no cursor at all, gets a full listing tagged with the
        current epoch so the client can resync and resume deltas.
        """
        if self.crashed:
            raise ServiceUnavailable(f"NJS at {self.usite_name} is down")
        if epoch != self._changes.epoch or since_seq < 0:
            return JobListingDelta(
                seq=self._changes.seq,
                epoch=self._changes.epoch,
                full=True,
                listings=tuple(self.list_jobs(user_dn)),
            )
        telemetry_for(self.sim).metrics.counter("njs.index.hits").inc()
        return self._changes.delta_for(user_dn, since_seq)

    def query_status(self, job_id: str, detail: str = "tasks") -> JobStatusView:
        """The QueryService answer: the status tree at the chosen detail."""
        run = self.get_run(job_id)

        def render(group: AbstractJobObject) -> JobStatusView:
            rollup = typing.cast(
                AJOOutcome, run.outcomes[group.id]
            ).rollup_status()
            children: list[JobStatusView] = []
            if detail in ("groups", "tasks"):
                for child in group.children:
                    if isinstance(child, AbstractJobObject):
                        children.append(render(child))
                    elif detail == "tasks":
                        outcome = run.outcomes[child.id]
                        children.append(
                            JobStatusView(
                                id=child.id,
                                name=child.name,
                                status=outcome.status.value,
                                color=outcome.status.display_color,
                            )
                        )
            return JobStatusView(
                id=group.id,
                name=group.name,
                status=rollup.value,
                color=rollup.display_color,
                children=tuple(children),
                as_of=self.sim.now,
            )

        return render(run.root)

    def retrieve_outcome(self, job_id: str) -> bytes:
        """The full outcome tree (stdout/stderr included), encoded."""
        return encode_outcome(self.get_run(job_id).root_outcome)

    def fetch_uspace_file(self, job_id: str, path: str) -> bytes:
        """One Uspace file, for sending back to the user's workstation.

        Section 5.6: result data returns to the workstation "only on user
        request while the user is working with the JMC".
        """
        run = self.get_run(job_id)
        for uspace in run.uspaces.values():
            if uspace.exists(path):
                return uspace.read(path)
        raise UnknownUnicoreJobError(
            f"job {job_id} has no Uspace file {path!r} at {self.usite_name}"
        )

    def dispose(self, job_id: str) -> None:
        """Release a terminal job: destroy its Uspaces, forget its state.

        The NJS "create[s] a UNICORE job directory" per job (section 5.5);
        disposal is the matching cleanup once the user is done with the
        outcome.
        """
        run = self.get_run(job_id)
        if not run.status().is_terminal:
            raise ConsignError(
                f"job {job_id} is {run.status().value}; cancel it before "
                "disposing"
            )
        for group_id, uspace in run.uspaces.items():
            group = next(
                (a for a in run.root.walk() if a.id == group_id), None
            )
            if group is not None and getattr(group, "vsite", ""):
                vsite = self.vsites.get(group.vsite)
                if vsite is not None and uspace.job_id in vsite.uspaces.active_jobs:
                    vsite.uspaces.destroy(uspace.job_id)
        del self._runs[job_id]
        self._index.discard(job_id, run.user_dn)
        self._changes.record_removed(job_id, run.user_dn)
        with self.storage.batch():
            self.journal.forget(job_id)
            self._outcomes.forget(job_id)
        for parent_id, foreign in list(self._foreign_runs.items()):
            if foreign is run:
                del self._foreign_runs[parent_id]

    def hold(self, job_id: str) -> None:
        """Stop delivering further parts of the job (already-submitted
        batch jobs keep running — UNICORE cannot influence them)."""
        run = self.get_run(job_id)
        if run.status().is_terminal:
            raise ConsignError(f"job {job_id} already terminal; cannot hold")
        run.held = True

    def resume(self, job_id: str) -> None:
        """Release a held job's delivery."""
        run = self.get_run(job_id)
        run.held = False
        if run.hold_released is not None and not run.hold_released.triggered:
            run.hold_released.succeed()

    def cancel(self, job_id: str) -> None:
        """Cancel a job: kill batch jobs, propagate to forwarded groups."""
        run = self.get_run(job_id)
        if run.cancelled:
            return
        run.cancelled = True
        # A held job's waiters must wake up to observe the cancellation.
        if run.held:
            self.resume(run.job_id)
            run.cancelled = True
        for vsite_name, local_id in run.batch_jobs.values():
            batch = self.vsites[vsite_name].batch
            record = batch.query(local_id)
            if not record.state.is_terminal:
                batch.cancel(local_id)
        for sub in run.root.sub_jobs():
            if sub.usite and sub.usite != self.usite_name and sub.usite in self._peer_routes:
                message = CancelGroup(
                    corr_id=next(self._corr_seq), parent_job_id=run.job_id
                )
                self.sim.process(
                    self._send_as_process(sub.usite, message, message.wire_payload)
                )

    def _send_as_process(self, usite, message, size):
        try:
            yield from self._send_via_route(usite, message, size)
        except ConnectionLost:
            pass  # fire-and-forget (cancellation is best-effort)

    # -------------------------------------------------- federation broker
    def build_advertisement(self) -> AdvertiseCapacity:
        """Snapshot this site's advertisable state for the broker.

        Everything here is legitimately middleware-visible: batch record
        queries, the published resource pages, and this NJS's own run
        table.  Site autonomy holds — the broker learns load, it never
        steers local scheduling.
        """
        now = self.sim.now
        ads = []
        for name in sorted(self.vsites):
            vsite = self.vsites[name]
            backlog = 0.0
            queued = running = busy_cpus = 0
            for record in vsite.batch.all_records():
                if record.state is BatchState.QUEUED:
                    queued += 1
                    backlog += (
                        record.spec.resources.cpus * record.spec.resources.time_s
                    )
                elif record.state is BatchState.RUNNING:
                    running += 1
                    busy_cpus += record.spec.resources.cpus
                    elapsed = now - (record.start_time or now)
                    backlog += record.spec.resources.cpus * max(
                        0.0, record.spec.resources.time_s - elapsed
                    )
            ads.append(CapacityAdvertisement(
                usite=self.usite_name,
                vsite=name,
                sent_at=now,
                total_cpus=vsite.machine.cpus,
                free_cpus=max(0, vsite.machine.cpus - busy_cpus),
                queued_jobs=queued,
                running_jobs=running,
                backlog_cpu_s=backlog,
                speed_factor=vsite.machine.speed_factor,
                page=vsite.resource_page,
            ))
        telemetry_for(self.sim).metrics.counter("njs.index.hits").inc()
        terminal = tuple(sorted(self._index.terminal))
        return AdvertiseCapacity(
            usite=self.usite_name,
            sent_at=now,
            vsites=tuple(ads),
            reclaimable=tuple(self.reclaimable_job_ids()),
            terminal=terminal,
        )

    def reclaimable_job_ids(self) -> list[str]:
        """Jobs the broker may steal: consigned here, every submitted
        batch record still QUEUED, nothing started or cancelled.

        Walks only the *active* index partition — terminal runs (the
        bulk of a long-lived run table) are never touched.
        """
        telemetry_for(self.sim).metrics.counter("njs.index.hits").inc()
        out = []
        for job_id in sorted(self._index.active):
            run = self._runs.get(job_id)
            if run is None or run.cancelled or run.held or run.status().is_terminal:
                continue
            if not run.batch_jobs:
                continue
            still_queued = True
            for vsite_name, local_id in run.batch_jobs.values():
                vsite = self.vsites.get(vsite_name)
                if vsite is None:
                    still_queued = False
                    break
                try:
                    record = vsite.batch.query(local_id)
                except (BatchError, UnknownJobError):
                    still_queued = False
                    break
                if record.state is not BatchState.QUEUED:
                    still_queued = False
                    break
            if still_queued:
                out.append(job_id)
        return out

    def start_advertising(
        self, interval_s: float = 60.0, offset_s: float = 0.0
    ) -> None:
        """Begin periodic capacity advertisements to the broker hub."""
        if self._advertising:
            return
        self._advertising = True
        self.sim.process(
            self._advertise_loop(interval_s, offset_s),
            name=f"advertise:{self.usite_name}",
        )

    def _advertise_loop(self, interval_s: float, offset_s: float):
        if offset_s:
            yield self.sim.timeout(offset_s)
        while True:
            if not self.crashed and self._broker_route is not None:
                message = self.build_advertisement()
                try:
                    yield from self._send_via_route(
                        BROKER_PEER, message, message.wire_payload
                    )
                    telemetry_for(self.sim).metrics.counter(
                        "njs.advertisements"
                    ).inc()
                except ConnectionLost:
                    pass  # the next interval's report supersedes this one
            yield self.sim.timeout(interval_s)

    def _handle_reclaim(self, message: ReclaimJob):
        """Steal endpoint: cancel the job iff it still has not started.

        The broker acts on advertised (stale) state; this re-check
        against live batch records is the authoritative one.
        """
        ok = message.job_id in self.reclaimable_job_ids()
        if ok:
            self.cancel(message.job_id)
            telemetry_for(self.sim).metrics.counter("njs.reclaimed_jobs").inc()
        ack = ReclaimAck(corr_id=message.corr_id, ok=ok)
        try:
            yield from self._send_via_route(
                BROKER_PEER, ack, ack.wire_payload
            )
        except ConnectionLost:
            pass  # the broker's ack timeout leaves the job where it is

    @property
    def job_count(self) -> int:
        return len(self._runs)
