"""Site-maintained translation tables.

Paper section 5.5: the NJS must "translate the abstract specifications
into the local system specific nomenclature using translation tables"
and "the UNICORE site administrator together with the Vsite system
administrator establishes the environment for running UNICORE.  This
includes setting up the translation tables".

A :class:`TranslationTable` maps abstract software names to local
invocations (``f90`` → ``xlf90`` on the SP-2), abstract environment
variables to local ones, and supplies the local commands for the copy
operations imports/exports boil down to.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.server.errors import IncarnationError

__all__ = ["TranslationTable"]


@dataclass(slots=True)
class TranslationTable:
    """Abstract-to-local nomenclature for one Vsite."""

    vsite: str
    #: abstract compiler/tool name -> local invocation.
    software: dict[str, str] = field(default_factory=dict)
    #: abstract environment variable -> local name.
    environment: dict[str, str] = field(default_factory=dict)
    #: local command templates.
    copy_command: str = "cp {src} {dst}"
    run_prefix: str = ""  # e.g. "mpprun -n {cpus}" on the T3E

    def map_software(self, abstract_name: str) -> str:
        """Local invocation for an abstract software name."""
        try:
            return self.software[abstract_name]
        except KeyError:
            raise IncarnationError(
                f"translation table for {self.vsite!r} has no entry for "
                f"software {abstract_name!r}"
            ) from None

    def has_software(self, abstract_name: str) -> bool:
        return abstract_name in self.software

    def map_environment(self, env: dict[str, str]) -> dict[str, str]:
        """Rename abstract environment variables to local names."""
        return {self.environment.get(k, k): v for k, v in env.items()}

    def render_run(self, executable: str, arguments: list[str], cpus: int) -> str:
        """The command line that runs a user executable on this system."""
        prefix = self.run_prefix.format(cpus=cpus) if self.run_prefix else ""
        parts = ([prefix] if prefix else []) + [f"./{executable.lstrip('./')}"]
        parts.extend(arguments)
        return " ".join(parts)

    def render_copy(self, src: str, dst: str) -> str:
        return self.copy_command.format(src=src, dst=dst)
