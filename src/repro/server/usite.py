"""A Usite: one UNICORE site assembled end to end.

Paper section 4: "a UNICORE site (Usite) is defined as a computer center
offering a UNICORE server and execution hosts grouped in so called
Vsites."  A :class:`Usite` builds the whole Figure 1 stack for one
center: gateway host (on the firewall), NJS host (inside), the firewall
socket between them, the Vsites with their batch systems, the Xspace,
the UUDB, and the site's server certificate.
"""

from __future__ import annotations

from repro.batch.machines import MachineConfig
from repro.net.sim_transport import Network
from repro.resources.page import ResourcePage
from repro.security.applet import SignedApplet
from repro.security.ca import CertificateAuthority, CertificateStore
from repro.security.uudb import UUDB, UserMapping
from repro.security.x509 import CertificateRole, DistinguishedName
from repro.server.gateway import Gateway
from repro.server.njs.supervisor import NetworkJobSupervisor
from repro.server.vsite import Vsite
from repro.simkernel import Simulator
from repro.storage.backend import StorageBackend, resolve_storage
from repro.vfs.spaces import Xspace

__all__ = ["Usite"]

#: Firewall-socket link between web server and NJS (section 5.2).
INTERNAL_LATENCY_S = 0.0005
INTERNAL_BANDWIDTH_BPS = 12_500_000.0  # 100 Mbit/s site LAN


class Usite:
    """One computer center running UNICORE."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        name: str,
        ca: CertificateAuthority,
        machines: list[MachineConfig],
        applets: dict[str, SignedApplet] | None = None,
        schedulers: dict[str, object] | None = None,
        firewall_split: bool = True,
        gateway_count: int = 1,
        max_active_per_user: int | None = None,
        storage: StorageBackend | None = None,
    ) -> None:
        """``firewall_split`` separates the web server (on the firewall
        host) from the NJS (inside), joined by the section 5.2 IP socket;
        with ``False`` both run on one host (the no-firewall deployment).

        ``gateway_count`` > 1 deploys additional gateways on their own
        hosts, all fronting the same NJS — the production pattern of
        load-balancing one Usite behind several web servers.  Peer and
        WAN wiring stays on the primary (``self.gateway``).
        ``max_active_per_user`` is the site-local fair-use concurrency
        cap enforced at consign time.  ``storage`` is the site's durable
        backend (UUDB mappings, resource pages, the NJS journal and
        outcome store); the default resolves ``REPRO_STORAGE``.
        """
        self.sim = sim
        self.network = network
        self.name = name
        self.firewall_split = firewall_split
        self.gateway_host = network.add_host(f"{name}.gateway")
        if firewall_split:
            self.njs_host = network.add_host(f"{name}.njs")
            network.link(
                self.gateway_host.name,
                self.njs_host.name,
                latency_s=INTERNAL_LATENCY_S,
                bandwidth_Bps=INTERNAL_BANDWIDTH_BPS,
            )
        else:
            self.njs_host = self.gateway_host
        #: All gateway hosts, primary first.
        self.gateway_hosts = [self.gateway_host]
        for i in range(1, gateway_count):
            extra = network.add_host(f"{name}.gw{i}")
            network.link(
                extra.name,
                self.njs_host.name,
                latency_s=INTERNAL_LATENCY_S,
                bandwidth_Bps=INTERNAL_BANDWIDTH_BPS,
            )
            self.gateway_hosts.append(extra)

        self.storage = storage if storage is not None else resolve_storage(None)
        self.xspace = Xspace(name)
        self.uudb = UUDB(name, storage=self.storage)
        self.cert_store = CertificateStore(trusted=[ca])
        self.server_cert, self.server_key = ca.issue(
            DistinguishedName(cn=f"gateway.{name.lower()}.de", o=name, c="DE"),
            role=CertificateRole.SERVER,
        )

        schedulers = schedulers or {}
        self.vsites: dict[str, Vsite] = {
            m.name: Vsite(sim, m, scheduler=schedulers.get(m.name))
            for m in machines
        }
        #: Durable copy of each Vsite's published resource page — a site
        #: cold start serves the pages the administrator last published,
        #: not freshly regenerated defaults.
        self._resource_table = self.storage.table(f"{name}.resources")
        self._sync_resource_pages()

        from repro.ext.accounting import AccountingLog

        #: Section 6 "accounting functions": every UNICORE batch record
        #: at this site is charged here.
        self.accounting = AccountingLog()

        self.njs = NetworkJobSupervisor(
            sim=sim,
            usite_name=name,
            host=self.njs_host,
            network=network,
            uudb=self.uudb,
            xspace=self.xspace,
            vsites=self.vsites,
            own_inbox=firewall_split,
            accounting=self.accounting,
            max_active_per_user=max_active_per_user,
            storage=self.storage,
        )
        #: All gateways (one per gateway host), sharing the NJS, UUDB,
        #: and certificate store; ``self.gateway`` is the primary.
        self.gateways = [
            Gateway(
                sim=sim,
                usite_name=name,
                host=host,
                network=network,
                cert_store=self.cert_store,
                uudb=self.uudb,
                njs=self.njs,
                applets=applets,
            )
            for host in self.gateway_hosts
        ]
        self.gateway = self.gateways[0]

    # -- resource page persistence ------------------------------------------
    def _sync_resource_pages(self) -> None:
        """Restore stored pages, or persist the freshly generated ones."""
        for vsite_name, vsite in self.vsites.items():
            stored = self._resource_table.get(vsite_name)
            if stored is not None:
                vsite.resource_page = ResourcePage.from_asn1(bytes(stored))
            else:
                self._resource_table.put(
                    vsite_name, vsite.resource_page.to_asn1()
                )

    def publish_resource_page(self, vsite_name: str, page: ResourcePage) -> None:
        """Publish an updated page (section 5.4) and persist it durably."""
        self.vsites[vsite_name].resource_page = page
        self._resource_table.put(vsite_name, page.to_asn1())

    # -- full-site failure (driven by repro.faults) -------------------------
    def crash_site(self) -> None:
        """Power-fail the whole site: every gateway plus a *cold* NJS.

        Unlike a bare ``njs.crash()`` (process restart, warm Python
        heap), this models losing the machine room: the only state that
        survives is whatever the storage backend holds.
        """
        for gateway in self.gateways:
            gateway.crash()
        self.njs.crash(cold=True)

    def restart_site(self) -> None:
        """Cold-start the site from durable storage.

        The UUDB re-reads its mapping table, resource pages come back
        from the administrator's last publish, the gateways resume
        serving, and the NJS reloads its journal — finished jobs
        reappear as restored listings, incomplete ones are replayed.
        """
        self.uudb.reload()
        self._sync_resource_pages()
        for gateway in self.gateways:
            gateway.restart()
        self.njs.restart()

    # -- administration -----------------------------------------------------
    def add_user(
        self, dn: DistinguishedName | str, login: str, gid: str = "users",
        vsite: str = "",
    ) -> UserMapping:
        """Register a local account mapping (the site administration's job)."""
        return self.uudb.add_user(dn, login, gid=gid, vsite=vsite)

    def connect_to(self, other: "Usite", latency_s: float = 0.015,
                   bandwidth_Bps: float = 1_250_000.0,
                   loss_probability: float = 0.0) -> None:
        """Join two Usites: WAN link between gateways plus NJS peer routes.

        NJS-to-NJS traffic travels "via the gateway" (section 5.6):
        NJS → own gateway → peer gateway → peer NJS.
        """
        try:
            self.network.get_link(self.gateway_host.name, other.gateway_host.name)
        except Exception:
            self.network.link(
                self.gateway_host.name,
                other.gateway_host.name,
                latency_s=latency_s,
                bandwidth_Bps=bandwidth_Bps,
                loss_probability=loss_probability,
            )
        def _route(hops: list[tuple[str, str]]) -> list[tuple[str, str]]:
            # Co-located gateway/NJS collapses that hop.
            return [(a, b) for a, b in hops if a != b]

        self.njs.register_peer(
            other.name,
            route=_route([
                (self.njs_host.name, self.gateway_host.name),
                (self.gateway_host.name, other.gateway_host.name),
                (other.gateway_host.name, other.njs_host.name),
            ]),
        )
        other.njs.register_peer(
            self.name,
            route=_route([
                (other.njs_host.name, other.gateway_host.name),
                (other.gateway_host.name, self.gateway_host.name),
                (self.gateway_host.name, self.njs_host.name),
            ]),
        )

    def __repr__(self) -> str:
        return f"<Usite {self.name} vsites={sorted(self.vsites)}>"
