"""The asynchronous protocol client (the paper's design).

Interactions are kept short: one request, one acknowledging reply.  Job
progress is observed by *polling* with QUERY requests, never by holding a
connection open.  Lost messages are retried with bounded backoff; because
each interaction is idempotent at the server (consigns are deduplicated
by request id), retries are safe.
"""

from __future__ import annotations

import typing

from repro.net.errors import ConnectionLost
from repro.net.https import HttpsChannel
from repro.net.sim_transport import Host
from repro.observability import telemetry_for
from repro.protocol.messages import Reply, Request
from repro.protocol.retry import PollBudgetExhausted, RetryExhausted, RetryPolicy
from repro.simkernel import Event, Simulator

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.faults.breaker import CircuitBreaker

__all__ = ["ReplyRouter", "AsyncProtocolClient"]


class ReplyRouter:
    """Demultiplexes inbound :class:`Reply` messages by request id.

    One router consumes a host's inbox; interaction coroutines register a
    request id and receive an event that fires with the matching reply.
    Non-reply messages are passed to ``fallback`` (for hosts that also
    serve other traffic).
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        fallback: typing.Callable[[object], None] | None = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self._waiting: dict[int, Event] = {}
        self._fallback = fallback
        self._process = sim.process(self._run(), name=f"reply-router:{host.name}")

    def expect(self, request_id: int) -> Event:
        """Event that fires with the :class:`Reply` for ``request_id``."""
        if request_id in self._waiting:
            raise ValueError(f"already waiting for request {request_id}")
        ev = self.sim.event(name=f"reply:{request_id}")
        self._waiting[request_id] = ev
        return ev

    def forget(self, request_id: int) -> None:
        """Stop waiting (used when a retry supersedes an older attempt)."""
        self._waiting.pop(request_id, None)

    def _run(self):
        while True:
            message = yield self.host.receive()
            payload = message.payload
            if isinstance(payload, Reply):
                waiter = self._waiting.pop(payload.request_id, None)
                if waiter is not None:
                    waiter.succeed(payload)
                # Unmatched replies (late duplicates) are dropped.
            elif self._fallback is not None:
                self._fallback(payload)


class AsyncProtocolClient:
    """Consign-and-poll over an established https channel."""

    def __init__(
        self,
        sim: Simulator,
        channel: HttpsChannel,
        router: ReplyRouter,
        retry: RetryPolicy | None = None,
        poll_interval_s: float = 30.0,
        response_timeout_s: float = 60.0,
        breaker: "CircuitBreaker | None" = None,
    ) -> None:
        self.sim = sim
        self.channel = channel
        self.router = router
        self.retry = retry or RetryPolicy()
        self.poll_interval_s = poll_interval_s
        self.response_timeout_s = response_timeout_s
        #: Optional circuit breaker: open means interactions fast-fail
        #: with :class:`~repro.faults.errors.CircuitOpenError` instead of
        #: burning the full retry budget against a dead gateway.
        self.breaker = breaker
        #: Instrumentation for experiment E4.
        self.requests_sent = 0
        self.retries = 0

    @staticmethod
    def _fire_deadline(timer: Event) -> None:
        if not timer.triggered:
            timer.succeed()

    # Each public operation is a generator to ``yield from`` inside a
    # simulation process; it returns the reply payload.
    def interact(
        self, request: Request, response_timeout_s: float | None = None
    ) -> typing.Generator[Event, object, Reply]:
        """One short request/reply interaction with retries.

        ``response_timeout_s`` overrides the client default for this one
        interaction — subscription QUERYs that the server deliberately
        parks need a window covering the requested hold.  Raises
        :class:`RetryExhausted` when the policy gives up, and re-raises
        server-side errors as-is inside the failed Reply.
        """
        timeout_s = (
            self.response_timeout_s
            if response_timeout_s is None
            else response_timeout_s
        )
        if self.breaker is not None:
            self.breaker.check()
        telemetry = telemetry_for(self.sim)
        tracer = telemetry.tracer
        interact_span = None
        if request.trace_id:
            interact_span = tracer.start_span(
                "protocol.interact",
                request.trace_id,
                parent=request.parent_span_id or None,
                tier="user",
                kind=request.kind,
                wire_bytes=request.wire_size,
            )
        last_error: BaseException | None = None
        for attempt in range(1, self.retry.max_attempts + 1):
            reply_ev = self.router.expect(request.request_id)
            self.requests_sent += 1
            telemetry.metrics.counter("protocol.requests_sent").inc()
            attempt_span = None
            if interact_span is not None:
                attempt_span = tracer.start_span(
                    "protocol.attempt",
                    request.trace_id,
                    parent=interact_span,
                    tier="user",
                    attempt=attempt,
                )
            try:
                yield self.channel.send(request, request.wire_size)
                # The reply itself may be lost in transit, so race the
                # expectation against a response timeout.  The deadline is
                # a cancellable callback slot rather than a Timeout: when
                # the reply wins (the common case) the loser is cancelled
                # and never charged to the event queue.
                timer = self.sim.event(name="response-deadline")
                deadline = self.sim.schedule_callback(
                    timeout_s, self._fire_deadline, timer
                )
                fired = yield reply_ev | timer
                deadline.cancel()
                if reply_ev in fired:
                    if attempt_span is not None:
                        tracer.end_span(attempt_span)
                        tracer.end_span(interact_span)
                    if self.breaker is not None:
                        self.breaker.record_success()
                    return typing.cast(Reply, fired[reply_ev])
                last_error = ConnectionLost(
                    f"no reply to request {request.request_id} within "
                    f"{timeout_s}s"
                )
            except ConnectionLost as err:
                # The request was lost on the way out.
                last_error = err
            if attempt_span is not None:
                tracer.end_span(attempt_span, error=last_error)
            # Back off and resend the same idempotent request.
            self.router.forget(request.request_id)
            self.retries += 1
            telemetry.metrics.counter("protocol.retries").inc()
            if attempt < self.retry.max_attempts:
                yield self.sim.timeout(self.retry.delay_for(attempt))
        assert last_error is not None
        if interact_span is not None:
            tracer.end_span(interact_span, error=last_error)
        if self.breaker is not None:
            self.breaker.record_failure()
        raise RetryExhausted(self.retry.max_attempts, last_error)

    def consign(
        self,
        ajo_bytes: bytes,
        user_dn: str,
        vsite: str = "",
        trace_id: str = "",
        parent_span_id: str = "",
    ) -> typing.Generator[Event, object, Reply]:
        """Consign a job; returns the acknowledgement reply (job id inside)."""
        request = Request(
            kind="consign_job",
            user_dn=user_dn,
            payload=ajo_bytes,
            vsite=vsite,
            trace_id=trace_id,
            parent_span_id=parent_span_id,
        )
        reply = yield from self.interact(request)
        return reply

    def query(
        self,
        query_bytes: bytes,
        user_dn: str,
        response_timeout_s: float | None = None,
    ) -> typing.Generator[Event, object, Reply]:
        request = Request(kind="query", user_dn=user_dn, payload=query_bytes)
        reply = yield from self.interact(
            request, response_timeout_s=response_timeout_s
        )
        return reply

    def poll_until(
        self,
        make_query: typing.Callable[[], bytes],
        user_dn: str,
        is_done: typing.Callable[[Reply], bool],
        max_polls: int = 10_000,
    ) -> typing.Generator[Event, object, Reply]:
        """Poll with fresh QUERY requests until ``is_done(reply)``.

        This is the paper's asynchronous monitoring pattern: many short
        interactions instead of one long-held connection.
        """
        for _ in range(max_polls):
            reply = yield from self.query(make_query(), user_dn)
            if is_done(reply):
                return reply
            yield self.sim.timeout(self.poll_interval_s)
        raise PollBudgetExhausted(
            max_polls, TimeoutError("job never reached a terminal state")
        )
