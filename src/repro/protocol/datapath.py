"""The data plane of the high-level protocol.

The control plane (small :class:`~repro.protocol.messages.Request` /
``Reply`` envelopes) keeps the paper's semantics untouched; bulk bytes
— consignment uploads, NJS staging, Uspace-to-Uspace transfers, outcome
and export fetches — travel here instead, as the chunked binary frames
of :mod:`repro.net.stream`.  Chunks share the FIFO links one frame at a
time, so a control message queued behind a bulk transfer waits for at
most one chunk's serialization instead of the whole payload; a dropped
chunk is retransmitted alone (``stream.resumes``) instead of restarting
the transfer from byte zero.

Pieces:

* :class:`StreamIdAllocator` — deterministic 64-bit stream ids, unique
  across senders (origin hash in the high bits, a counter below);
* :class:`DataPlaneEndpoint` — the receiving side: feed raw frame
  bytes off a host inbox, reassemble streams, hand completed payloads
  to an application callback or park them for :meth:`~DataPlaneEndpoint.take`
  / :meth:`~DataPlaneEndpoint.wait`;
* :func:`stream_over_channel` — the sending side for client↔gateway
  channels: one ``channel.send`` per frame, per-chunk retransmission;
* the bulk-reply wrapper (:func:`encode_inline_reply` /
  :func:`encode_stream_reply` / :func:`fetch_bulk_payload`) the gateway
  and JMC use for FETCH_FILE / RETRIEVE_OUTCOME replies whose content
  travels on the data plane.

Everything is deterministic: stream ids derive from the sender's name,
retries from the simulated network's named RNG streams.
"""

from __future__ import annotations

import struct
import typing
import zlib
from itertools import count

from repro.net.errors import ConnectionLost, FrameError
from repro.net.stream import (
    Frame,
    FrameType,
    StreamReassembler,
    StreamSender,
    decode_frame,
    encode_frame,
)
from repro.protocol.consignment import FileEntry
from repro.simkernel import Simulator

__all__ = [
    "CHUNK_RETRIES",
    "CHUNK_RETRY_DELAY_S",
    "DEFAULT_CHUNK_BYTES",
    "INLINE_FILE_MAX",
    "DataPlaneEndpoint",
    "StreamIdAllocator",
    "decode_bulk_reply",
    "encode_inline_reply",
    "encode_stream_reply",
    "fetch_bulk_payload",
    "stream_over_channel",
]

#: Default chunk size.  Small enough that a control message sharing the
#: link is delayed by at most ~one chunk's serialization (256 KiB at
#: 10 Mbit/s is ~0.2 s), large enough that the 24-byte frame header and
#: per-record SSL overhead stay well under the 5% overhead budget.
DEFAULT_CHUNK_BYTES = 256 * 1024

#: Files at or below this size stay inline in control-plane envelopes;
#: only larger payloads are worth a stream's OPEN/manifest round trip.
INLINE_FILE_MAX = 64 * 1024

#: Bounded per-chunk retransmission (the same asynchronous-protocol
#: philosophy as the control plane's request retries).
CHUNK_RETRIES = 6
CHUNK_RETRY_DELAY_S = 5.0

#: How long a receiver waits for a streamed reply's frames before
#: concluding the stream died with its sender.
STREAM_WAIT_TIMEOUT_S = 600.0


class StreamIdAllocator:
    """Deterministic 64-bit stream ids, collision-free across senders.

    The high 32 bits hash the sender's origin name; the low 32 bits
    count up.  Two endpoints fed by the same inbox can therefore key
    streams by id alone.
    """

    def __init__(self, origin: str) -> None:
        self.origin = origin
        self._base = zlib.crc32(origin.encode()) << 32
        self._seq = count(1)

    def next(self) -> int:
        return self._base | (next(self._seq) & 0xFFFFFFFF)


class DataPlaneEndpoint:
    """The receiving half of the data plane on one host.

    ``on_complete(context, data) -> bool`` is consulted when a stream
    finishes; returning True means the application consumed the payload
    (the NJS writing a Uspace file).  Otherwise the payload parks until
    :meth:`take` or :meth:`wait` claims it (the gateway pulling consign
    uploads, the JMC awaiting a fetched file).
    """

    def __init__(
        self,
        sim: Simulator,
        metrics=None,
        on_complete: typing.Callable[[dict, bytes], bool] | None = None,
    ) -> None:
        self.sim = sim
        self.metrics = metrics
        self.on_complete = on_complete
        self._open: dict[int, StreamReassembler] = {}
        self._done: dict[int, tuple[dict, bytes]] = {}
        self._waiters: dict[int, object] = {}

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    # -- intake --------------------------------------------------------------
    def feed(self, raw: bytes | Frame) -> bool:
        """Absorb one inbound frame; returns False for non-frame bytes."""
        try:
            frame = raw if isinstance(raw, Frame) else decode_frame(bytes(raw))
        except FrameError:
            self._count("stream.bad_frames")
            return False
        try:
            if frame.ftype == FrameType.OPEN:
                if frame.stream_id not in self._open:
                    reassembler = StreamReassembler(frame)
                    self._open[frame.stream_id] = reassembler
                    if reassembler.complete:  # zero-chunk stream
                        self._finish(frame.stream_id)
            elif frame.ftype == FrameType.DATA:
                reassembler = self._open.get(frame.stream_id)
                if reassembler is not None and reassembler.feed(frame):
                    self._finish(frame.stream_id)
                # DATA for an unknown or finished stream: late duplicate.
            # ACK frames carry no payload state on this side.
        except FrameError:
            self._open.pop(frame.stream_id, None)
            self._count("stream.bad_frames")
        return True

    def _finish(self, stream_id: int) -> None:
        reassembler = self._open.pop(stream_id)
        data = reassembler.payload()  # verifies the whole-payload crc
        context = reassembler.context
        self._count("stream.completed")
        if self.on_complete is not None and self.on_complete(context, data):
            return
        waiter = self._waiters.pop(stream_id, None)
        if waiter is not None:
            waiter.succeed((context, data))
        else:
            self._done[stream_id] = (context, data)

    # -- retrieval -----------------------------------------------------------
    def take(self, stream_id: int) -> tuple[dict, bytes] | None:
        """Claim a completed stream's (context, payload), or None."""
        return self._done.pop(stream_id, None)

    def pending(self, stream_id: int) -> bool:
        """True while the stream is mid-reassembly."""
        return stream_id in self._open

    def wait(
        self, stream_id: int, timeout_s: float = STREAM_WAIT_TIMEOUT_S
    ) -> typing.Generator:
        """Await a stream's completion (``yield from`` in a process).

        Raises :class:`~repro.net.errors.ConnectionLost` if no complete
        stream materializes within ``timeout_s``.
        """
        ready = self.take(stream_id)
        if ready is not None:
            return ready
        ev = self.sim.event(name=f"stream-complete:{stream_id}")
        self._waiters[stream_id] = ev
        timer = self.sim.timeout(timeout_s)
        fired = yield ev | timer
        if ev in fired:
            return typing.cast(tuple, fired[ev])
        self._waiters.pop(stream_id, None)
        raise ConnectionLost(
            f"stream {stream_id} did not complete within {timeout_s}s"
        )

    def clear(self) -> None:
        """Drop all reassembly state (a crashed process reads nothing)."""
        self._open.clear()
        self._done.clear()
        self._waiters.clear()


def stream_over_channel(
    sim: Simulator,
    channel,
    data: bytes,
    context: dict,
    *,
    stream_id: int,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    to_server: bool = True,
    metrics=None,
    tracer=None,
    trace_id: str = "",
    parent_span=None,
    max_chunk_retries: int = CHUNK_RETRIES,
    retry_delay_s: float = CHUNK_RETRY_DELAY_S,
) -> typing.Generator:
    """Stream ``data`` over an https channel, one frame per send.

    Each chunk's delivery event is its acknowledgement; a lost chunk is
    retransmitted alone after the transport timeout — the resume point
    is the lost chunk, never byte zero (``stream.resumes`` counts the
    retransmissions).  Raises
    :class:`~repro.net.errors.ConnectionLost` only once a single chunk
    exhausts its retry budget.
    """
    sender = StreamSender(stream_id, data, chunk_bytes, context)
    span = None
    if tracer is not None and trace_id:
        span = tracer.start_span(
            "stream.send", trace_id, parent=parent_span, tier="user",
            bytes=len(data), chunks=len(sender.chunks),
            kind=context.get("kind", ""),
        )
    resumes = 0
    try:
        for frame in sender.frames():
            raw = encode_frame(frame)
            for attempt in range(1 + max_chunk_retries):
                if metrics is not None:
                    metrics.counter("stream.wire_bytes").inc(len(raw))
                try:
                    yield channel.send(raw, len(raw), to_server=to_server)
                    break
                except ConnectionLost:
                    resumes += 1
                    if metrics is not None:
                        metrics.counter("stream.resumes").inc()
                    if attempt >= max_chunk_retries:
                        raise
                    yield sim.timeout(retry_delay_s)
            if metrics is not None:
                metrics.counter(
                    "stream.chunks" if frame.ftype == FrameType.DATA
                    else "stream.opens"
                ).inc()
    except BaseException as err:
        if span is not None:
            tracer.end_span(span.set(resumes=resumes), error=err)
        raise
    if span is not None:
        tracer.end_span(span.set(resumes=resumes))
    return sender


# ---------------------------------------------------------- bulk replies
# FETCH_FILE / RETRIEVE_OUTCOME replies either carry their content
# inline (tag 0) or reference a stream the gateway pushed ahead of the
# reply on the same FIFO channel (tag 1).

_BULK_INLINE = 0
_BULK_STREAMED = 1
_BULK_REF = struct.Struct("!BQQI")  # tag, stream_id, size, crc32


def encode_inline_reply(content: bytes) -> bytes:
    return bytes([_BULK_INLINE]) + content


def encode_stream_reply(entry: FileEntry) -> bytes:
    return _BULK_REF.pack(_BULK_STREAMED, entry.stream_id, entry.size,
                          entry.crc32)


def decode_bulk_reply(payload: bytes) -> tuple[str, bytes | FileEntry]:
    """Returns ``("inline", content)`` or ``("stream", FileEntry)``."""
    if not payload:
        raise FrameError("empty bulk reply")
    tag = payload[0]
    if tag == _BULK_INLINE:
        return "inline", payload[1:]
    if tag == _BULK_STREAMED:
        if len(payload) != _BULK_REF.size:
            raise FrameError("malformed streamed-reply reference")
        _, stream_id, size, crc = _BULK_REF.unpack(payload)
        return "stream", FileEntry(path="", size=size, crc32=crc,
                                   stream_id=stream_id)
    raise FrameError(f"unknown bulk-reply tag {tag}")


def fetch_bulk_payload(
    endpoint: DataPlaneEndpoint | None,
    payload: bytes,
    timeout_s: float = STREAM_WAIT_TIMEOUT_S,
) -> typing.Generator:
    """Resolve a bulk reply to its content bytes (``yield from``).

    Inline replies return immediately; streamed ones await the pushed
    stream on ``endpoint`` and verify size and checksum.
    """
    kind, value = decode_bulk_reply(payload)
    if kind == "inline":
        return typing.cast(bytes, value)
    entry = typing.cast(FileEntry, value)
    if endpoint is None:
        raise FrameError(
            "reply references a streamed payload but this client has no "
            "data-plane endpoint"
        )
    _context, data = yield from endpoint.wait(entry.stream_id, timeout_s)
    if len(data) != entry.size or zlib.crc32(data) != entry.crc32:
        raise FrameError(
            f"streamed reply {entry.stream_id} failed integrity check"
        )
    return data
