"""The UNICORE high-level protocol.

Paper section 5.3: "The UNICORE protocols define the form of requests for
some action to be performed (high-level protocol) ... It defines a
client-server type of communication.  JPA/JMC act as client while NJS
(resp. the gateway) acts as both client and server ... It is an
asynchronous protocol.  This design is suitable for batch processing ...
and it is more robust than a synchronous protocol.  By minimizing the
length of time that an interaction takes the asynchronous protocol
protects against any unreliability of the underlying communication
mechanism."

- :mod:`repro.protocol.messages` — request/reply envelopes;
- :mod:`repro.protocol.client` — the asynchronous consign-then-poll
  client of the paper;
- :mod:`repro.protocol.sync` — a synchronous hold-the-connection client,
  implemented solely as the comparison baseline for experiment E4;
- :mod:`repro.protocol.retry` — bounded-retry policies.
"""

from repro.protocol.messages import Reply, Request, RequestKind
from repro.protocol.retry import RetryExhausted, RetryPolicy
from repro.protocol.client import AsyncProtocolClient, ReplyRouter
from repro.protocol.sync import SyncProtocolClient, SyncInteractionBroken

__all__ = [
    "AsyncProtocolClient",
    "Reply",
    "ReplyRouter",
    "Request",
    "RequestKind",
    "RetryExhausted",
    "RetryPolicy",
    "SyncInteractionBroken",
    "SyncProtocolClient",
]
