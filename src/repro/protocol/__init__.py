"""The UNICORE high-level protocol.

Paper section 5.3: "The UNICORE protocols define the form of requests for
some action to be performed (high-level protocol) ... It defines a
client-server type of communication.  JPA/JMC act as client while NJS
(resp. the gateway) acts as both client and server ... It is an
asynchronous protocol.  This design is suitable for batch processing ...
and it is more robust than a synchronous protocol.  By minimizing the
length of time that an interaction takes the asynchronous protocol
protects against any unreliability of the underlying communication
mechanism."

- :mod:`repro.protocol.messages` — request/reply envelopes;
- :mod:`repro.protocol.client` — the asynchronous consign-then-poll
  client of the paper;
- :mod:`repro.protocol.sync` — a synchronous hold-the-connection client,
  implemented solely as the comparison baseline for experiment E4;
- :mod:`repro.protocol.retry` — bounded-retry policies;
- :mod:`repro.protocol.consignment` — the binary consignment envelope
  (AJO + inline files + streamed-file manifest);
- :mod:`repro.protocol.datapath` — the streaming data plane: chunked,
  checksummed, resumable bulk transfers kept out of the control plane.
"""

from repro.protocol.messages import Reply, Request, RequestKind
from repro.protocol.retry import RetryExhausted, RetryPolicy
from repro.protocol.client import AsyncProtocolClient, ReplyRouter
from repro.protocol.sync import SyncProtocolClient, SyncInteractionBroken
from repro.protocol.consignment import (
    Consignment,
    FileEntry,
    decode_consignment,
    decode_consignment_envelope,
    encode_consignment,
    file_entry_for,
    validate_manifest_paths,
)
from repro.protocol.datapath import (
    DEFAULT_CHUNK_BYTES,
    INLINE_FILE_MAX,
    DataPlaneEndpoint,
    StreamIdAllocator,
    decode_bulk_reply,
    encode_inline_reply,
    encode_stream_reply,
    fetch_bulk_payload,
    stream_over_channel,
)

__all__ = [
    "AsyncProtocolClient",
    "Consignment",
    "DEFAULT_CHUNK_BYTES",
    "DataPlaneEndpoint",
    "FileEntry",
    "INLINE_FILE_MAX",
    "Reply",
    "ReplyRouter",
    "Request",
    "RequestKind",
    "RetryExhausted",
    "RetryPolicy",
    "StreamIdAllocator",
    "SyncInteractionBroken",
    "SyncProtocolClient",
    "decode_bulk_reply",
    "decode_consignment",
    "decode_consignment_envelope",
    "encode_consignment",
    "encode_inline_reply",
    "encode_stream_reply",
    "fetch_bulk_payload",
    "file_entry_for",
    "stream_over_channel",
    "validate_manifest_paths",
]
