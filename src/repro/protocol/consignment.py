"""The consignment payload: an AJO plus its workstation files.

Section 5.6: "Files from the user's workstation needed in a job are put
into the AJO.  They are transferred together with the job to a UNICORE
server on the https connection."  The consignment envelope carries the
encoded AJO and those files in one payload.

Since the control/data-plane split the envelope is binary (version 2):
the AJO bytes and small files ride inline *raw* — no base64, killing
the ~33% inflation of the old JSON envelope — while large files travel
ahead of the request on the streaming data plane
(:mod:`repro.protocol.datapath`) and appear here only as slim
:class:`FileEntry` manifests (path, size, checksum, stream id).

Envelope layout (network byte order)::

    "UCON" | ver u8 | flags u8 | ajo_len u32 | ajo bytes | count u32 |
    entry*
    entry: mode u8 | path_len u16 | path utf-8 |
           mode 0 (inline):   content_len u32 | content bytes
           mode 1 (streamed): size u64 | crc32 u32 | stream_id u64

Every decoder validates the file manifest before anything can reach a
Uspace: duplicate paths, ``..`` traversal segments, empty paths, and
control characters are refused with :class:`UnsafePathError` (a
:class:`SerializationError` with the stable code ``ajo.unsafe_path``).
Consignment file keys are *workstation-namespace* paths — they name
where the file came from on the user's machine, and legitimately start
with ``/`` — so absolute paths are additionally refused only for
manifests whose paths will be *written into* a Uspace (transfers,
forwarded staging); see :func:`validate_manifest_paths`.
"""

from __future__ import annotations

import struct
import typing
import zlib
from dataclasses import dataclass

from repro.ajo.errors import SerializationError, UnsafePathError

__all__ = [
    "Consignment",
    "FileEntry",
    "decode_consignment",
    "decode_consignment_envelope",
    "encode_consignment",
    "file_entry_for",
    "validate_manifest_paths",
]

_MAGIC = b"UCON"
_VERSION = 2

_HEAD = struct.Struct("!4sBBI")        # magic, version, flags, ajo_len
_COUNT = struct.Struct("!I")
_ENTRY_HEAD = struct.Struct("!BH")     # mode, path_len
_INLINE_LEN = struct.Struct("!I")
_STREAM_REF = struct.Struct("!QIQ")    # size, crc32, stream_id

_MODE_INLINE = 0
_MODE_STREAMED = 1


@dataclass(slots=True, frozen=True)
class FileEntry:
    """Manifest entry for one file travelling on the data plane."""

    path: str
    size: int
    crc32: int
    stream_id: int


@dataclass(slots=True, frozen=True)
class Consignment:
    """A decoded envelope: the AJO plus inline and streamed files."""

    ajo_bytes: bytes
    files: dict[str, bytes]
    streamed: tuple[FileEntry, ...] = ()


def validate_manifest_paths(
    paths: typing.Iterable[str],
    *,
    uspace_destination: bool = False,
    what: str = "file manifest",
) -> None:
    """Refuse unsafe paths before anything is written anywhere.

    ``uspace_destination=True`` applies the strict policy for paths a
    Uspace will be asked to write (no absolute paths); without it the
    paths are workstation-namespace source names, where a leading ``/``
    is the norm.  Raises :class:`UnsafePathError` (code
    ``ajo.unsafe_path``) on the first offending entry.
    """
    seen: set[str] = set()
    for path in paths:
        if not path:
            raise UnsafePathError(f"{what}: empty path")
        if any(ord(ch) < 0x20 or ch == "\x7f" for ch in path):
            raise UnsafePathError(
                f"{what}: path {path!r} contains control characters"
            )
        if any(segment == ".." for segment in path.split("/")):
            raise UnsafePathError(
                f"{what}: path {path!r} contains a '..' traversal segment"
            )
        if uspace_destination and path.startswith("/"):
            raise UnsafePathError(
                f"{what}: absolute path {path!r} refused for a Uspace "
                "destination"
            )
        if path in seen:
            raise UnsafePathError(f"{what}: duplicate entry {path!r}")
        seen.add(path)


def encode_consignment(
    ajo_bytes: bytes,
    files: dict[str, bytes] | None = None,
    metrics=None,
    streamed: typing.Sequence[FileEntry] = (),
) -> bytes:
    """Bundle an encoded AJO with workstation file contents.

    ``files`` ride inline, raw; ``streamed`` entries reference payloads
    already sent over the data plane.  With a
    :class:`~repro.observability.MetricsRegistry` as ``metrics``,
    records the bundled file count and total payload size.
    """
    inline = dict(sorted((files or {}).items()))
    entries = sorted(streamed, key=lambda e: e.path)
    validate_manifest_paths(
        list(inline) + [e.path for e in entries], what="consignment"
    )
    parts = [_HEAD.pack(_MAGIC, _VERSION, 0, len(ajo_bytes)), ajo_bytes,
             _COUNT.pack(len(inline) + len(entries))]
    for path, content in inline.items():
        encoded_path = path.encode("utf-8")
        parts.append(_ENTRY_HEAD.pack(_MODE_INLINE, len(encoded_path)))
        parts.append(encoded_path)
        parts.append(_INLINE_LEN.pack(len(content)))
        parts.append(content)
    for entry in entries:
        encoded_path = entry.path.encode("utf-8")
        parts.append(_ENTRY_HEAD.pack(_MODE_STREAMED, len(encoded_path)))
        parts.append(encoded_path)
        parts.append(_STREAM_REF.pack(entry.size, entry.crc32, entry.stream_id))
    payload = b"".join(parts)
    if metrics is not None:
        metrics.counter("consignment.files").inc(len(inline) + len(entries))
        metrics.counter("consignment.bytes").inc(len(payload))
    return payload


def decode_consignment_envelope(data: bytes) -> Consignment:
    """Parse the binary envelope; validates the file manifest."""
    try:
        view = memoryview(bytes(data))
        if len(view) < _HEAD.size:
            raise ValueError("truncated header")
        magic, version, _flags, ajo_len = _HEAD.unpack_from(view, 0)
        if magic != _MAGIC:
            raise ValueError(f"bad consignment magic {bytes(magic)!r}")
        if version != _VERSION:
            raise ValueError(f"unsupported consignment version {version}")
        offset = _HEAD.size
        if offset + ajo_len + _COUNT.size > len(view):
            raise ValueError("truncated AJO section")
        ajo_bytes = bytes(view[offset:offset + ajo_len])
        offset += ajo_len
        (count,) = _COUNT.unpack_from(view, offset)
        offset += _COUNT.size
        files: dict[str, bytes] = {}
        streamed: list[FileEntry] = []
        for _ in range(count):
            if offset + _ENTRY_HEAD.size > len(view):
                raise ValueError("truncated file entry")
            mode, path_len = _ENTRY_HEAD.unpack_from(view, offset)
            offset += _ENTRY_HEAD.size
            if offset + path_len > len(view):
                raise ValueError("truncated file path")
            path = bytes(view[offset:offset + path_len]).decode("utf-8")
            offset += path_len
            if mode == _MODE_INLINE:
                if offset + _INLINE_LEN.size > len(view):
                    raise ValueError(f"truncated length for {path!r}")
                (content_len,) = _INLINE_LEN.unpack_from(view, offset)
                offset += _INLINE_LEN.size
                if offset + content_len > len(view):
                    raise ValueError(f"truncated content for {path!r}")
                files[path] = bytes(view[offset:offset + content_len])
                offset += content_len
            elif mode == _MODE_STREAMED:
                if offset + _STREAM_REF.size > len(view):
                    raise ValueError(f"truncated stream reference for {path!r}")
                size, crc, stream_id = _STREAM_REF.unpack_from(view, offset)
                offset += _STREAM_REF.size
                streamed.append(
                    FileEntry(path=path, size=size, crc32=crc,
                              stream_id=stream_id)
                )
            else:
                raise ValueError(f"unknown file entry mode {mode}")
        if offset != len(view):
            raise ValueError(f"{len(view) - offset} trailing bytes")
    except UnicodeDecodeError as err:
        raise SerializationError(f"malformed consignment: {err}") from err
    except (ValueError, struct.error) as err:
        raise SerializationError(f"malformed consignment: {err}") from err
    validate_manifest_paths(
        list(files) + [e.path for e in streamed], what="consignment"
    )
    return Consignment(
        ajo_bytes=ajo_bytes, files=files, streamed=tuple(streamed)
    )


def decode_consignment(data: bytes) -> tuple[bytes, dict[str, bytes]]:
    """Unbundle a fully-inline envelope; returns ``(ajo_bytes, files)``.

    Envelopes with streamed entries need the data-plane endpoint that
    holds their payloads — callers with one use
    :func:`decode_consignment_envelope` instead.
    """
    consignment = decode_consignment_envelope(data)
    if consignment.streamed:
        raise SerializationError(
            "consignment references streamed files; decoding requires a "
            "data-plane endpoint"
        )
    return consignment.ajo_bytes, consignment.files


def file_entry_for(path: str, content: bytes, stream_id: int) -> FileEntry:
    """Build the manifest entry for one streamed payload."""
    return FileEntry(
        path=path, size=len(content), crc32=zlib.crc32(content),
        stream_id=stream_id,
    )
