"""The consignment payload: an AJO plus its workstation files.

Section 5.6: "Files from the user's workstation needed in a job are put
into the AJO.  They are transferred together with the job to a UNICORE
server on the https connection."  The consignment envelope carries the
encoded AJO and those files in one payload.
"""

from __future__ import annotations

import base64
import json

from repro.ajo.errors import SerializationError

__all__ = ["encode_consignment", "decode_consignment"]


def encode_consignment(
    ajo_bytes: bytes, files: dict[str, bytes] | None = None, metrics=None
) -> bytes:
    """Bundle an encoded AJO with workstation file contents.

    With a :class:`~repro.observability.MetricsRegistry` as ``metrics``,
    records the bundled file count and total payload size.
    """
    envelope = {
        "unicore_consignment": 1,
        "ajo": base64.b64encode(ajo_bytes).decode("ascii"),
        "files": {
            path: base64.b64encode(content).decode("ascii")
            for path, content in sorted((files or {}).items())
        },
    }
    payload = json.dumps(envelope, sort_keys=True, separators=(",", ":")).encode()
    if metrics is not None:
        metrics.counter("consignment.files").inc(len(files or {}))
        metrics.counter("consignment.bytes").inc(len(payload))
    return payload


def decode_consignment(data: bytes) -> tuple[bytes, dict[str, bytes]]:
    """Unbundle; returns ``(ajo_bytes, files)``."""
    try:
        envelope = json.loads(data)
        if envelope.get("unicore_consignment") != 1:
            raise ValueError("bad consignment version")
        ajo_bytes = base64.b64decode(envelope["ajo"], validate=True)
        files = {
            path: base64.b64decode(content, validate=True)
            for path, content in envelope["files"].items()
        }
    except (ValueError, KeyError, TypeError) as err:
        raise SerializationError(f"malformed consignment: {err}") from err
    return ajo_bytes, files
