"""A synchronous hold-the-connection client: the E4 comparison baseline.

The paper argues (section 5.3) that an asynchronous protocol "is more
robust than a synchronous protocol.  By minimizing the length of time
that an interaction takes the asynchronous protocol protects against any
unreliability of the underlying communication mechanism."

To *measure* that claim we need the alternative the designers rejected: a
client that consigns a job and holds the connection open — exchanging a
keepalive every few seconds — until the result comes back.  If any
message of the interaction is lost, the whole interaction is broken and
must restart from scratch (resubmitting the job).  The interaction
length scales with job duration, so its survival probability collapses
as loss rates or job runtimes grow.
"""

from __future__ import annotations

import typing

from repro.net.errors import ConnectionLost
from repro.net.https import HttpsChannel
from repro.protocol.messages import Reply, Request
from repro.protocol.retry import RetryExhausted, RetryPolicy
from repro.simkernel import Event, Simulator

__all__ = ["SyncProtocolClient", "SyncInteractionBroken"]

KEEPALIVE_BYTES = 64


class SyncInteractionBroken(Exception):
    """The held connection broke mid-interaction; everything is lost."""


class SyncProtocolClient:
    """Submit-and-hold: one interaction spans the job's whole lifetime."""

    def __init__(
        self,
        sim: Simulator,
        channel: HttpsChannel,
        retry: RetryPolicy | None = None,
        keepalive_interval_s: float = 5.0,
    ) -> None:
        self.sim = sim
        self.channel = channel
        self.retry = retry or RetryPolicy()
        self.keepalive_interval_s = keepalive_interval_s
        #: Instrumentation for experiment E4.
        self.interactions_started = 0
        self.interactions_broken = 0

    def submit_and_hold(
        self,
        ajo_bytes: bytes,
        user_dn: str,
        job_duration_s: float,
        result_size_bytes: int = 4096,
    ) -> typing.Generator[Event, object, Reply]:
        """One full synchronous interaction, retried whole on breakage.

        The model: consign travels to the server; the connection then
        carries a keepalive each ``keepalive_interval_s`` for the job's
        duration; finally the result travels back.  *Any* lost message
        breaks the interaction (state on both sides is discarded, as with
        a broken TCP connection), and the retry resubmits from zero.
        """
        last_error: BaseException | None = None
        for attempt in range(1, self.retry.max_attempts + 1):
            self.interactions_started += 1
            try:
                reply = yield from self._one_interaction(
                    ajo_bytes, user_dn, job_duration_s, result_size_bytes
                )
                return reply
            except SyncInteractionBroken as err:
                self.interactions_broken += 1
                last_error = err
                if attempt < self.retry.max_attempts:
                    yield self.sim.timeout(self.retry.delay_for(attempt))
        assert last_error is not None
        raise RetryExhausted(self.retry.max_attempts, last_error)

    def _one_interaction(
        self,
        ajo_bytes: bytes,
        user_dn: str,
        job_duration_s: float,
        result_size_bytes: int,
    ) -> typing.Generator[Event, object, Reply]:
        request = Request(kind="consign_job", user_dn=user_dn, payload=ajo_bytes)
        try:
            # Consign travels to the server.
            yield self.channel.send(request, request.wire_size, deliver=False)
            # Hold the connection for the job's lifetime.
            elapsed = 0.0
            while elapsed < job_duration_s:
                step = min(self.keepalive_interval_s, job_duration_s - elapsed)
                yield self.sim.timeout(step)
                elapsed += step
                yield self.channel.send(
                    ("keepalive", request.request_id), KEEPALIVE_BYTES, deliver=False
                )
                yield self.channel.send(
                    ("keepalive-ack", request.request_id),
                    KEEPALIVE_BYTES,
                    to_server=False,
                    deliver=False,
                )
            # Result travels back on the same connection.
            yield self.channel.send(
                ("result", request.request_id),
                result_size_bytes,
                to_server=False,
                deliver=False,
            )
        except ConnectionLost as err:
            raise SyncInteractionBroken(
                f"held connection broke after {self.sim.now:.1f}s: {err}"
            ) from err
        return Reply(request_id=request.request_id, ok=True, payload=b"result")
