"""Typed read-model views crossing the query/list protocol edge.

:meth:`NetworkJobSupervisor.query_status` and
:meth:`~repro.server.njs.supervisor.NetworkJobSupervisor.list_jobs`
used to hand ad-hoc ``dict`` trees straight to the gateway, which
``json.dumps``-ed whatever happened to be inside.  These frozen
dataclasses pin the schema down: the NJS builds views, the *gateway*
serializes them at the protocol edge (and only there), and facade
clients reconstruct them from the wire form with :meth:`from_dict`.

``stale`` / ``as_of`` support graceful degradation: a client that cannot
reach the gateway may re-serve its last good view, marked stale so the
user-facing layer can color it accordingly.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, replace

__all__ = ["JobStatusView", "JobListing", "JobListingDelta"]


@dataclass(frozen=True, slots=True)
class JobStatusView:
    """One node of the status tree the JMC displays.

    The root node describes the job; ``children`` nest job groups and
    (at task detail) tasks, mirroring the AJO structure.
    """

    id: str
    name: str
    status: str
    color: str
    children: tuple["JobStatusView", ...] = ()
    #: True when this view was served from a client-side cache because
    #: the gateway was unreachable (graceful degradation).
    stale: bool = False
    #: Simulated time the view was assembled (0.0 = not recorded).
    as_of: float = 0.0

    @property
    def is_terminal(self) -> bool:
        return self.status in ("successful", "failed", "killed", "not_attempted")

    def to_dict(self) -> dict:
        """The wire form (what the gateway serializes into the Reply)."""
        out: dict = {
            "id": self.id,
            "name": self.name,
            "status": self.status,
            "color": self.color,
        }
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        if self.stale:
            out["stale"] = True
            out["as_of"] = self.as_of
        return out

    @classmethod
    def from_dict(cls, data: typing.Mapping) -> "JobStatusView":
        return cls(
            id=data.get("id", ""),
            name=data.get("name", ""),
            status=data["status"],
            color=data.get("color", ""),
            children=tuple(
                cls.from_dict(c) for c in data.get("children", ())
            ),
            stale=bool(data.get("stale", False)),
            as_of=float(data.get("as_of", 0.0)),
        )

    def marked_stale(self, as_of: float) -> "JobStatusView":
        """A copy flagged as served-from-cache at simulated time ``as_of``."""
        return replace(self, stale=True, as_of=as_of)


@dataclass(frozen=True, slots=True)
class JobListing:
    """One row of the user's job list."""

    job_id: str
    name: str
    status: str
    submitted_at: float = 0.0
    #: Set on jobs re-supervised from the journal after an NJS crash.
    recovered: bool = False

    def to_dict(self) -> dict:
        out: dict = {
            "job_id": self.job_id,
            "name": self.name,
            "status": self.status,
            "submitted_at": self.submitted_at,
        }
        if self.recovered:
            out["recovered"] = True
        return out

    @classmethod
    def from_dict(cls, data: typing.Mapping) -> "JobListing":
        return cls(
            job_id=data["job_id"],
            name=data.get("name", ""),
            status=data["status"],
            submitted_at=float(data.get("submitted_at", 0.0)),
            recovered=bool(data.get("recovered", False)),
        )


@dataclass(frozen=True, slots=True)
class JobListingDelta:
    """The LIST service's versioned answer: changes since a cursor.

    ``seq`` is the server's change-log position after this answer;
    passing it back as ``since_seq`` on the next LIST yields only what
    changed in between.  ``epoch`` identifies one life of the change-log
    — after an NJS crash the log restarts in a new epoch, the server
    answers with ``full=True``, and any old cursor must be discarded.
    """

    seq: int
    epoch: int
    #: True when ``listings`` is the complete list (fresh client cursor,
    #: epoch mismatch, or a server that compacted past the cursor).
    full: bool
    listings: tuple[JobListing, ...] = ()
    #: Job ids removed (disposed) since the cursor; empty on full answers.
    removed: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "epoch": self.epoch,
            "full": self.full,
            "listings": [item.to_dict() for item in self.listings],
            "removed": list(self.removed),
        }

    @classmethod
    def from_dict(cls, data: typing.Mapping) -> "JobListingDelta":
        return cls(
            seq=int(data["seq"]),
            epoch=int(data["epoch"]),
            full=bool(data.get("full", False)),
            listings=tuple(
                JobListing.from_dict(item) for item in data.get("listings", ())
            ),
            removed=tuple(data.get("removed", ())),
        )

