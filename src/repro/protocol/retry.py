"""Bounded retry with backoff for protocol interactions."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError

__all__ = ["RetryPolicy", "RetryExhausted", "PollBudgetExhausted"]


class RetryExhausted(ReproError):
    """All attempts failed; carries the last underlying error."""

    code = "protocol.retry_exhausted"

    def __init__(self, attempts: int, last_error: BaseException) -> None:
        super().__init__(f"gave up after {attempts} attempts: {last_error}")
        self.attempts = attempts
        self.last_error = last_error


class PollBudgetExhausted(RetryExhausted):
    """``poll_until`` used up ``max_polls`` without meeting its predicate.

    Distinct from plain :class:`RetryExhausted` (every poll may have been
    answered — the *condition* never held), so callers can separate "the
    road is out" from "the job just isn't done yet".
    """

    code = "protocol.poll_budget_exhausted"


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How many times to retry a lost protocol message, and how patiently.

    ``delay_for(attempt)`` gives the pause before retry number ``attempt``
    (1-based), growing geometrically and capped.
    """

    max_attempts: int = 5
    base_delay_s: float = 1.0
    backoff_factor: float = 2.0
    max_delay_s: float = 60.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff factor must be >= 1")

    def delay_for(self, attempt: int) -> float:
        """Backoff before retry ``attempt``; rejects non-positive attempts."""
        if attempt < 1:
            raise ValueError(
                f"attempt numbering is 1-based, got {attempt}"
            )
        return min(
            self.base_delay_s * self.backoff_factor ** (attempt - 1),
            self.max_delay_s,
        )
