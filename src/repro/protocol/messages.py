"""Protocol envelopes: requests and replies.

Every request crossing a tier boundary wraps a serialized AJO (or a
service query) with routing and identity metadata.  Wire sizes are
explicit so the simulated network can charge for them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count

__all__ = ["RequestKind", "Request", "Reply"]

#: Bytes of envelope metadata around the payload (ids, DN, kind).
ENVELOPE_OVERHEAD_BYTES = 256

_request_ids = count(1)


class RequestKind:
    """The request vocabulary of the high-level protocol."""

    #: Consign a UNICORE job (payload: encoded AJO).
    CONSIGN_JOB = "consign_job"
    #: Query status/outcomes of a job (payload: encoded QueryService).
    QUERY = "query"
    #: List the user's jobs (payload: encoded ListService).
    LIST = "list"
    #: Control a job (payload: encoded ControlService).
    CONTROL = "control"
    #: Fetch a finished job's full outcome including output files.
    RETRIEVE_OUTCOME = "retrieve_outcome"
    #: Fetch one file from the job's Uspace back to the workstation
    #: ("sends data back to the workstation only on user request while
    #: the user is working with the JMC", section 5.6).
    FETCH_FILE = "fetch_file"
    #: Release a finished job: destroy its Uspaces and forget it.
    DISPOSE = "dispose"

    ALL = (CONSIGN_JOB, QUERY, LIST, CONTROL, RETRIEVE_OUTCOME, FETCH_FILE,
           DISPOSE)


@dataclass(slots=True)
class Request:
    """A client-to-server protocol message."""

    kind: str
    user_dn: str
    payload: bytes
    #: Target Vsite for user mapping at the gateway (may be empty).
    vsite: str = ""
    request_id: int = field(default_factory=lambda: next(_request_ids))
    #: Trace context carried across the tier boundary (empty = untraced).
    trace_id: str = ""
    parent_span_id: str = ""

    def __post_init__(self) -> None:
        if self.kind not in RequestKind.ALL:
            raise ValueError(f"unknown request kind {self.kind!r}")
        if not isinstance(self.payload, (bytes, bytearray)):
            raise TypeError("request payload must be bytes")

    @property
    def wire_size(self) -> int:
        return ENVELOPE_OVERHEAD_BYTES + len(self.payload)


@dataclass(slots=True)
class Reply:
    """A server-to-client protocol message, correlated by request id."""

    request_id: int
    ok: bool
    payload: bytes = b""
    error: str = ""
    #: Stable machine-readable code of the server-side exception (the
    #: :attr:`repro.errors.ReproError.code` contract), e.g.
    #: ``"faults.unavailable"``.  Empty for successes and legacy errors.
    error_code: str = ""

    @property
    def wire_size(self) -> int:
        return ENVELOPE_OVERHEAD_BYTES + len(self.payload) + len(self.error)
