"""The Job Monitor Controller.

Paper section 5.7: "The JMC shows the job status of the user's UNICORE
jobs in a display similar to the one of the JPA.  The icons are colored
to reflect the job status in a seamless way.  Depending on the chosen
level of detail the status is displayed for job groups and/or tasks.
The standard output and error files can be listed and/or saved for
tasks."
"""

from __future__ import annotations

import json

from repro.ajo.outcome import AJOOutcome, Outcome, TaskOutcome
from repro.ajo.serialize import decode_outcome, encode_service
from repro.ajo.services import ControlService, ControlVerb, ListService, QueryService
from repro.client.browser import UnicoreSession
from repro.errors import WaitTimeout
from repro.faults.errors import CircuitOpenError, ServiceUnavailable
from repro.observability import telemetry_for
from repro.protocol.datapath import fetch_bulk_payload
from repro.protocol.messages import Request, RequestKind
from repro.protocol.retry import PollBudgetExhausted, RetryExhausted
from repro.protocol.views import JobStatusView
from repro.vfs.spaces import Workstation

__all__ = ["JobMonitorController"]

_TERMINAL = {"successful", "failed", "killed", "not_attempted"}


class JobMonitorController:
    """The JMC applet: monitor, control, and harvest job results."""

    #: Subscription hold ladder for :meth:`wait_for_completion`: the
    #: first QUERY parks briefly (many jobs finish quickly, and a short
    #: first hold keeps the JMC responsive for them), renewals park much
    #: longer — a held-open request costs no wire traffic.
    SUBSCRIBE_FIRST_HOLD_S = 7200.0
    SUBSCRIBE_RENEW_HOLD_S = 7200.0
    #: Extra response-timeout slack over the requested hold, covering
    #: transit and gateway processing before the reply is declared lost.
    SUBSCRIBE_REPLY_GRACE_S = 120.0

    def __init__(self, session: UnicoreSession) -> None:
        self.session = session
        #: Last good status tree per job as ``(sim_time, tree)``, for
        #: stale-but-served display during gateway outages.
        self._status_cache: dict[str, tuple[float, dict]] = {}
        #: Delta-listing state: the server change-log cursor and the
        #: merged rows (``job_id -> listing dict``) it is valid against.
        self._list_cursor: tuple[int, int] | None = None
        self._list_rows: dict[str, dict] = {}

    # -- monitoring (each method is a generator: yield from in a process) ----
    def list_jobs(self):
        """The user's jobs at this Usite, fetched incrementally.

        The first call bootstraps a change-log cursor (``since_seq=0``
        forces a versioned full answer); later calls send the cursor and
        receive only the listings that changed, merged into the cached
        rows client-side.  An epoch change (the NJS crashed and restarted
        its log) or a plain-list answer (pre-delta server) resyncs.
        """
        if self._list_cursor is None:
            service = ListService("list my jobs", since_seq=0, epoch=-1)
        else:
            seq, epoch = self._list_cursor
            service = ListService("list my jobs", since_seq=seq, epoch=epoch)
        reply = yield from self.session.client.interact(
            Request(
                kind=RequestKind.LIST,
                user_dn=self.session.user_dn,
                payload=encode_service(service),
            )
        )
        if not reply.ok:
            raise RuntimeError(f"list failed: {reply.error}")
        data = json.loads(reply.payload)
        if isinstance(data, list):
            # Pre-delta server: a plain full listing, no cursor to keep.
            self._list_cursor = None
            self._list_rows = {row["job_id"]: row for row in data}
            return data
        full = bool(data.get("full", False))
        if full:
            self._list_rows = {
                row["job_id"]: row for row in data.get("listings", ())
            }
        else:
            telemetry_for(self.session.client.sim).metrics.counter(
                "jmc.delta_views"
            ).inc()
            for row in data.get("listings", ()):
                self._list_rows[row["job_id"]] = row
            for job_id in data.get("removed", ()):
                self._list_rows.pop(job_id, None)
        self._list_cursor = (int(data["seq"]), int(data["epoch"]))
        return [self._list_rows[job_id] for job_id in sorted(self._list_rows)]

    def status(
        self,
        job_id: str,
        detail: str = QueryService.DETAIL_TASKS,
        allow_stale: bool = False,
    ):
        """The job's status tree; optionally degrade gracefully.

        With ``allow_stale``, an unreachable gateway (retry budget
        exhausted, or the circuit breaker open) does not raise: the last
        good tree is re-served, flagged ``stale`` with the simulated
        time it was cached — the JMC keeps showing *something* through
        the outage instead of a blank display.
        """
        service = QueryService("status", target_job_id=job_id, detail=detail)
        try:
            reply = yield from self.session.client.query(
                encode_service(service), user_dn=self.session.user_dn
            )
        except (RetryExhausted, CircuitOpenError):
            cached = self._status_cache.get(job_id)
            if not allow_stale or cached is None:
                raise
            telemetry_for(self.session.client.sim).metrics.counter(
                "client.stale_status_serves"
            ).inc()
            cached_at, tree = cached
            return JobStatusView.from_dict(tree).marked_stale(cached_at).to_dict()
        if not reply.ok:
            raise RuntimeError(f"query failed: {reply.error}")
        tree = json.loads(reply.payload)
        self._status_cache[job_id] = (self.session.client.sim.now, tree)
        return tree

    def wait_for_completion(
        self, job_id: str, max_polls: int = 10_000, subscribe: bool = True
    ):
        """Block until the job reaches a terminal state.

        The default path *subscribes*: each QUERY asks the gateway to
        park the request until the job completes (or the hold elapses),
        so one interaction replaces a whole poll train.  A server that
        answers a subscribe immediately (no hold support) degrades to
        the classic poll cadence.  ``subscribe=False`` forces the
        paper's original bounded poll loop.

        Exhausting ``max_polls`` raises :class:`~repro.errors.WaitTimeout`
        (code ``api.wait_timeout``): the job is not failed, just not
        terminal within the caller's patience.
        """
        if not subscribe:
            service = QueryService("poll", target_job_id=job_id)
            query_bytes = encode_service(service)
            try:
                reply = yield from self.session.client.poll_until(
                    make_query=lambda: query_bytes,
                    user_dn=self.session.user_dn,
                    is_done=lambda r: r.ok
                    and json.loads(r.payload)["status"] in _TERMINAL,
                    max_polls=max_polls,
                )
            except PollBudgetExhausted:
                raise WaitTimeout(job_id, max_polls) from None
            return json.loads(reply.payload)

        client = self.session.client
        for round_no in range(max_polls):
            hold = (
                self.SUBSCRIBE_FIRST_HOLD_S
                if round_no == 0
                else self.SUBSCRIBE_RENEW_HOLD_S
            )
            service = QueryService(
                "wait", target_job_id=job_id, subscribe=True, hold_s=hold
            )
            asked_at = client.sim.now
            reply = yield from client.query(
                encode_service(service),
                user_dn=self.session.user_dn,
                response_timeout_s=hold + self.SUBSCRIBE_REPLY_GRACE_S,
            )
            if not reply.ok:
                if reply.error_code == ServiceUnavailable.code:
                    # The NJS crashed under the parked request; surface
                    # as an outage so the facade's wait loop retries
                    # once the journal replay brings the site back.
                    raise ServiceUnavailable(reply.error)
                raise RuntimeError(f"wait failed: {reply.error}")
            tree = json.loads(reply.payload)
            self._status_cache[job_id] = (client.sim.now, tree)
            if tree["status"] in _TERMINAL:
                return tree
            if client.sim.now - asked_at < hold * 0.5:
                # The server answered well before the hold expired
                # without a terminal status: it does not park requests.
                # Fall back to the poll cadence so renewals don't spin.
                yield client.sim.timeout(client.poll_interval_s)
        raise WaitTimeout(job_id, max_polls)

    def outcome(self, job_id: str):
        """Fetch the full Outcome tree (stdout/stderr included)."""
        # Completes the per-job trace: outcome return is the last leg of
        # client -> gateway -> NJS -> batch -> outcome return.
        tracer = telemetry_for(self.session.client.sim).tracer
        trace_id = tracer.trace_id_for_job(job_id) or ""
        outcome_span = None
        if trace_id:
            outcome_span = tracer.start_span(
                "client.outcome", trace_id, tier="user", job_id=job_id
            )
        try:
            reply = yield from self.session.client.interact(
                Request(
                    kind=RequestKind.RETRIEVE_OUTCOME,
                    user_dn=self.session.user_dn,
                    payload=job_id.encode(),
                    trace_id=trace_id,
                    parent_span_id=outcome_span.span_id if outcome_span else "",
                )
            )
            if reply.ok:
                # Large outcomes travel on the data plane: the gateway
                # pushed the stream ahead of this slim reply.
                payload = yield from fetch_bulk_payload(
                    getattr(self.session, "datapath", None), reply.payload
                )
        except BaseException as err:
            if outcome_span is not None:
                tracer.end_span(outcome_span, error=err)
            raise
        if not reply.ok:
            if outcome_span is not None:
                tracer.end_span(outcome_span, error=reply.error)
            raise RuntimeError(f"outcome retrieval failed: {reply.error}")
        if outcome_span is not None:
            tracer.end_span(outcome_span.set(outcome_bytes=len(payload)))
        return decode_outcome(payload)

    # -- control -----------------------------------------------------------------
    def control(self, job_id: str, verb: str):
        """Send a ControlService (cancel / hold / resume)."""
        service = ControlService(verb, target_job_id=job_id, verb=verb)
        reply = yield from self.session.client.interact(
            Request(
                kind=RequestKind.CONTROL,
                user_dn=self.session.user_dn,
                payload=encode_service(service),
            )
        )
        if not reply.ok:
            raise RuntimeError(f"{verb} failed: {reply.error}")
        return json.loads(reply.payload)

    def cancel(self, job_id: str):
        return (yield from self.control(job_id, ControlVerb.CANCEL))

    def hold(self, job_id: str):
        """Pause delivery of the job's remaining parts."""
        return (yield from self.control(job_id, ControlVerb.HOLD))

    def resume(self, job_id: str):
        """Release a held job."""
        return (yield from self.control(job_id, ControlVerb.RESUME))

    def fetch_file(self, job_id: str, path: str, workstation=None,
                   save_as: str | None = None):
        """Bring a Uspace file back to the workstation (section 5.6).

        Returns the content; with ``workstation`` also saves it there.
        """
        reply = yield from self.session.client.interact(
            Request(
                kind=RequestKind.FETCH_FILE,
                user_dn=self.session.user_dn,
                payload=json.dumps({"job_id": job_id, "path": path}).encode(),
            )
        )
        if not reply.ok:
            raise RuntimeError(f"fetch failed: {reply.error}")
        content = yield from fetch_bulk_payload(
            getattr(self.session, "datapath", None), reply.payload
        )
        if workstation is not None:
            workstation.fs.write(save_as or f"/downloads/{path}", content)
        return content

    def dispose(self, job_id: str):
        """Release a finished job's Uspaces on the server."""
        reply = yield from self.session.client.interact(
            Request(
                kind=RequestKind.DISPOSE,
                user_dn=self.session.user_dn,
                payload=job_id.encode(),
            )
        )
        if not reply.ok:
            raise RuntimeError(f"dispose failed: {reply.error}")
        return json.loads(reply.payload)

    # -- output handling (pure client-side helpers) --------------------------
    @staticmethod
    def list_task_outputs(outcome: AJOOutcome) -> dict[str, tuple[str, str]]:
        """``action_id -> (stdout, stderr)`` for every task in the tree."""
        outputs: dict[str, tuple[str, str]] = {}

        def walk(node: Outcome) -> None:
            if isinstance(node, TaskOutcome):
                outputs[node.action_id] = (node.stdout, node.stderr)
            if isinstance(node, AJOOutcome):
                for child in node.children.values():
                    walk(child)

        walk(outcome)
        return outputs

    @staticmethod
    def save_output(
        outcome: TaskOutcome, workstation: Workstation, path: str
    ) -> None:
        """Save a task's standard output to the user's workstation.

        Section 5.6: "The current implementation sends data back to the
        workstation only on user request while the user is working with
        the JMC" — this is that request.
        """
        workstation.fs.write(path, outcome.stdout.encode())

    @staticmethod
    def render_tree(tree: dict, indent: int = 0) -> str:
        """The JMC display: the job tree with status colors."""
        line = (
            " " * indent
            + f"[{tree['color']:>6}] {tree['name']} ({tree['status']})"
        )
        lines = [line]
        for child in tree.get("children", []):
            lines.append(JobMonitorController.render_tree(child, indent + 2))
        return "\n".join(lines)
