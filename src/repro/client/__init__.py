"""The user tier: browser, Job Preparation Agent, Job Monitor Controller.

Paper section 4.1: "The UNICORE user interface takes advantage of
existing Web browsers and the https protocol ...  The signed applet for
the job preparation agent (JPA) or the job monitor controller (JMC) is
loaded from the server into the Web browser only in case of successful
user authentication.  The applet certificate is checked to assure the
user that the software has not been tampered with."

- :mod:`repro.client.browser` — connects to a Usite, performs the
  mutual-authentication handshake, downloads and verifies the signed
  applets, yielding a :class:`~repro.client.browser.UnicoreSession`;
- :mod:`repro.client.jpa` — programmatic JPA: build jobs (script tasks,
  compile-link-execute, imports/exports/transfers, dependencies with
  file annotations), validate against resource pages, consign;
- :mod:`repro.client.jmc` — monitor job status (colored tree), list
  jobs, fetch outcomes, save outputs, cancel.
"""

from repro.client.browser import Browser, UnicoreSession
from repro.client.jpa import JobBuilder, JobPreparationAgent
from repro.client.jmc import JobMonitorController

__all__ = [
    "Browser",
    "JobBuilder",
    "JobMonitorController",
    "JobPreparationAgent",
    "UnicoreSession",
]
