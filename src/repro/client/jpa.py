"""The Job Preparation Agent.

Paper section 5.2: "The job preparation agent (JPA) to create and submit
UNICORE jobs".  Section 5.7 lists its functions: "creation of a new
UNICORE job, loading of an old UNICORE job for resubmission, and loading
and modification of an old UNICORE job", with "support for the creation
of jobs containing script tasks (to include existing batch applications)
and compile-link-execute tasks (for new applications).  At this point in
time the compile is implemented for F90."

:class:`JobBuilder` is the programmatic face of the GUI: it assembles
the AJO, checks resource requests against the destination's resource
page as the user edits (the GUI's live validation), and packages the
workstation files for consignment.
"""

from __future__ import annotations

import json
import typing

from repro.ajo.job import AbstractJobObject, Dependency
from repro.ajo.serialize import decode_ajo, encode_ajo
from repro.ajo.tasks import (
    AbstractTaskObject,
    CompileTask,
    ExecuteScriptTask,
    ExportTask,
    FileSpace,
    ImportTask,
    LinkTask,
    TransferTask,
    UserTask,
)
from repro.ajo.errors import ValidationError
from repro.analysis import AnalysisContext, AnalysisError, analyze_ajo
from repro.client.browser import UnicoreSession
from repro.faults.errors import ServiceUnavailable


def _broker_error_for(code: str):
    """The typed broker exception class for a wire-carried error code."""
    from repro.broker.errors import BrokerError, BrokerQuotaError, NoCapacityError

    for cls in (BrokerQuotaError, NoCapacityError):
        if code == cls.code:
            return cls
    return BrokerError
from repro.observability import telemetry_for
from repro.resources.check import check_request
from repro.resources.model import ResourceRequest

__all__ = ["JobPreparationAgent", "JobBuilder"]


class JobBuilder:
    """Fluent assembly of one UNICORE job (or job group)."""

    def __init__(
        self,
        agent: "JobPreparationAgent",
        name: str,
        vsite: str,
        usite: str,
        account_group: str = "",
    ) -> None:
        self._agent = agent
        self.ajo = AbstractJobObject(
            name,
            vsite=vsite,
            usite=usite,
            user_dn=agent.session.user_dn,
            account_group=account_group,
        )
        self._workstation_imports: list[str] = []

    # -- tasks ---------------------------------------------------------------
    def _check(self, task: AbstractTaskObject) -> None:
        """Live validation against the destination's resource page."""
        page = self._agent.session.resource_pages.get(self.ajo.vsite)
        if page is None:
            return  # remote Vsite: checked by the destination NJS
        result = check_request(page, task.resources, task.required_software())
        if not result.ok:
            raise ValidationError(result.summary())

    def add(self, task: AbstractTaskObject) -> AbstractTaskObject:
        self._check(task)
        self.ajo.add(task)
        if isinstance(task, ImportTask) and task.source_space == FileSpace.WORKSTATION:
            self._workstation_imports.append(task.source_path)
        return task

    def import_from_workstation(
        self, local_path: str, uspace_path: str, name: str | None = None
    ) -> ImportTask:
        return typing.cast(ImportTask, self.add(
            ImportTask(
                name or f"import {uspace_path}",
                source_path=local_path,
                destination_path=uspace_path,
                source_space=FileSpace.WORKSTATION,
            )
        ))

    def import_from_xspace(
        self, xspace_path: str, uspace_path: str, name: str | None = None
    ) -> ImportTask:
        return typing.cast(ImportTask, self.add(
            ImportTask(
                name or f"import {uspace_path}",
                source_path=xspace_path,
                destination_path=uspace_path,
                source_space=FileSpace.XSPACE,
            )
        ))

    def script_task(
        self,
        name: str,
        script: str,
        resources: ResourceRequest | None = None,
        simulated_runtime_s: float | None = None,
    ) -> ExecuteScriptTask:
        """Include an existing batch application (section 5.7)."""
        return typing.cast(ExecuteScriptTask, self.add(
            ExecuteScriptTask(
                name, script=script, resources=resources,
                simulated_runtime_s=simulated_runtime_s,
            )
        ))

    def compile_link_execute(
        self,
        name: str,
        sources: list[str],
        executable: str,
        run_resources: ResourceRequest,
        compiler: str = "f90",
        libraries: list[str] | None = None,
        arguments: list[str] | None = None,
        simulated_runtime_s: float | None = None,
    ) -> tuple[CompileTask, LinkTask, UserTask]:
        """The paper's compile-link-execute pattern for new applications.

        Creates the three tasks with the object/executable file
        dependencies already wired.
        """
        # Compile and link are serial front-end steps: one CPU, minutes.
        build_resources = ResourceRequest(cpus=1, time_s=900.0, memory_mb=256.0)
        compile_task = typing.cast(CompileTask, self.add(
            CompileTask(
                f"{name}-compile", sources=sources, compiler=compiler,
                resources=build_resources,
                simulated_runtime_s=30.0 * len(sources),
            )
        ))
        link_task = typing.cast(LinkTask, self.add(
            LinkTask(
                f"{name}-link",
                objects=compile_task.object_files(),
                output=executable,
                libraries=libraries or [],
                linker=compiler,
                resources=build_resources,
                simulated_runtime_s=20.0,
            )
        ))
        run_task = typing.cast(UserTask, self.add(
            UserTask(
                f"{name}-run",
                executable=executable,
                arguments=arguments or [],
                resources=run_resources,
                simulated_runtime_s=simulated_runtime_s,
            )
        ))
        self.depends(compile_task, link_task, files=compile_task.object_files())
        self.depends(link_task, run_task, files=[executable])
        return compile_task, link_task, run_task

    def export_to_xspace(
        self, uspace_path: str, xspace_path: str, name: str | None = None
    ) -> ExportTask:
        return typing.cast(ExportTask, self.add(
            ExportTask(
                name or f"export {uspace_path}",
                source_path=uspace_path,
                destination_path=xspace_path,
            )
        ))

    def transfer_to_usite(
        self, uspace_path: str, destination_usite: str,
        destination_path: str | None = None, name: str | None = None,
    ) -> TransferTask:
        return typing.cast(TransferTask, self.add(
            TransferTask(
                name or f"transfer {uspace_path}",
                source_path=uspace_path,
                destination_path=destination_path or uspace_path,
                destination_usite=destination_usite,
            )
        ))

    # -- structure ------------------------------------------------------------
    def sub_job(
        self, name: str, vsite: str, usite: str, account_group: str = ""
    ) -> "JobBuilder":
        """A job group destined for another system (possibly another site)."""
        sub = JobBuilder(self._agent, name, vsite, usite, account_group)
        sub.ajo.user_dn = ""  # the root carries the identity
        self.ajo.add(sub.ajo)
        # Workstation files imported by the subgroup still come from this
        # user's workstation: track on the root builder via the agent.
        self._agent._register_sub_builder(self, sub)
        return sub

    def depends(
        self, predecessor, successor, files: typing.Iterable[str] = ()
    ) -> Dependency:
        """Sequence two children, optionally naming the files to hand over."""
        pred = predecessor.ajo if isinstance(predecessor, JobBuilder) else predecessor
        succ = successor.ajo if isinstance(successor, JobBuilder) else successor
        return self.ajo.add_dependency(pred, succ, files=files)

    # -- persistence (section 5.7: load old jobs for resubmission) -----------
    def save(self) -> bytes:
        return encode_ajo(self.ajo)

    # -- consignment -------------------------------------------------------------
    def workstation_files_needed(self) -> list[str]:
        paths = list(self._workstation_imports)
        for sub in self._agent._sub_builders.get(id(self), []):
            paths.extend(sub.workstation_files_needed())
        return paths

    def submit(self):
        """Consign (``yield from`` inside a process); returns the job id."""
        return self._agent.submit(self)


class JobPreparationAgent:
    """The JPA applet: builds and consigns jobs over a session."""

    def __init__(self, session: UnicoreSession) -> None:
        self.session = session
        self._sub_builders: dict[int, list[JobBuilder]] = {}

    def _register_sub_builder(self, parent: JobBuilder, sub: JobBuilder) -> None:
        self._sub_builders.setdefault(id(parent), []).append(sub)

    def new_job(
        self, name: str, vsite: str, account_group: str = ""
    ) -> JobBuilder:
        """Create a new UNICORE job bound for a Vsite of this session's Usite."""
        return JobBuilder(
            self, name, vsite=vsite, usite=self.session.usite,
            account_group=account_group,
        )

    def load_job(self, saved: bytes) -> JobBuilder:
        """Load a previously saved job for (modification and) resubmission."""
        ajo = decode_ajo(saved)
        builder = JobBuilder(
            self, ajo.name, vsite=ajo.vsite, usite=ajo.usite,
            account_group=ajo.account_group,
        )
        builder.ajo = ajo
        builder.ajo.user_dn = self.session.user_dn
        builder._workstation_imports = [
            t.source_path
            for t in ajo.walk()
            if isinstance(t, ImportTask) and t.source_space == FileSpace.WORKSTATION
        ]
        return builder

    def submit(self, builder: JobBuilder, workstation=None):
        """Generator: validate, package workstation files, consign.

        Returns the UNICORE job id assigned by the NJS.  Raises
        :class:`~repro.analysis.AnalysisError` (a ValidationError)
        client-side when static analysis finds errors, and surfaces
        server-side rejections from the failed Reply.
        """
        telemetry = telemetry_for(self.session.client.sim)
        # Lint before consigning: errors block here (orders of magnitude
        # cheaper than a rejection — or a failure — at the batch host),
        # warnings ride along in the metrics.  The NJS re-runs the same
        # analysis on arrival with its own knowledge of the destination.
        report = analyze_ajo(
            builder.ajo, AnalysisContext.for_session(self.session)
        )
        telemetry.metrics.counter("analysis.errors").inc(len(report.errors))
        telemetry.metrics.counter("analysis.warnings").inc(len(report.warnings))
        if not report.ok:
            telemetry.metrics.counter("analysis.jobs_rejected").inc()
            raise AnalysisError(report)
        files: dict[str, bytes] = {}
        needed = builder.workstation_files_needed()
        if needed:
            ws = workstation
            if ws is None:
                raise ValidationError(
                    "job imports workstation files but no workstation given"
                )
            files = ws.stage_for_ajo(needed)
        from repro.protocol.consignment import encode_consignment, file_entry_for
        from repro.protocol.datapath import INLINE_FILE_MAX, stream_over_channel

        # Control/data-plane split (section 5.6): small files ride inside
        # the consignment envelope; large ones stream ahead of it in
        # chunked frames and appear in the envelope only as a manifest.
        stream_ids = getattr(self.session, "stream_ids", None)
        inline: dict[str, bytes] = {}
        large: list[tuple[str, bytes]] = []
        for path, content in files.items():
            if stream_ids is None or len(content) <= INLINE_FILE_MAX:
                inline[path] = content
            else:
                large.append((path, content))

        # Root of the per-job trace: everything downstream (gateway auth,
        # NJS incarnation, batch execution) hangs off this span.
        tracer = telemetry.tracer
        trace_id = tracer.new_trace("job")
        submit_span = tracer.start_span(
            "client.submit",
            trace_id,
            tier="user",
            job=builder.ajo.name,
            vsite=builder.ajo.vsite,
        )
        try:
            entries = []
            for path, content in large:
                stream_id = stream_ids.next()
                yield from stream_over_channel(
                    self.session.client.sim, self.session.channel, content,
                    {"kind": "consign-file", "path": path},
                    stream_id=stream_id, metrics=telemetry.metrics,
                    tracer=tracer, trace_id=trace_id,
                    parent_span=submit_span,
                )
                entries.append(file_entry_for(path, content, stream_id))
            payload = encode_consignment(
                encode_ajo(builder.ajo), inline, metrics=telemetry.metrics,
                streamed=entries,
            )
            submit_span.set(
                payload_bytes=len(payload),
                streamed_bytes=sum(len(c) for _, c in large),
            )
            reply = yield from self.session.client.consign(
                payload,
                user_dn=self.session.user_dn,
                vsite=builder.ajo.vsite,
                trace_id=trace_id,
                parent_span_id=submit_span.span_id,
            )
        except BaseException as err:
            tracer.end_span(submit_span, error=err)
            raise
        if not reply.ok:
            tracer.end_span(submit_span, error=reply.error)
            if reply.error_code == ServiceUnavailable.code:
                # The NJS is down, not the job bad: let resilient callers
                # (GridSession failover) treat this as a transport fault.
                raise ServiceUnavailable(f"consignment refused: {reply.error}")
            if reply.error_code.startswith("broker."):
                # Fair-use refusals keep their typed identity client-side.
                raise _broker_error_for(reply.error_code)(
                    f"consignment rejected: {reply.error}"
                )
            raise ValidationError(f"consignment rejected: {reply.error}")
        job_id = json.loads(reply.payload)["job_id"]
        tracer.end_span(submit_span)
        tracer.bind_job(job_id, trace_id)
        return job_id
