"""The user's web browser: connection, authentication, applet loading."""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from repro.net.https import HttpsChannel, establish_https
from repro.net.transport import Transport
from repro.observability import telemetry_for
from repro.protocol.client import AsyncProtocolClient, ReplyRouter
from repro.protocol.datapath import DataPlaneEndpoint, StreamIdAllocator
from repro.protocol.retry import RetryPolicy
from repro.resources.page import ResourcePage
from repro.security.applet import SignedApplet, verify_applet
from repro.security.ca import CertificateStore
from repro.security.errors import TamperedBundleError
from repro.security.rsa import RSAKeyPair
from repro.security.x509 import Certificate
from repro.server.usite import Usite
from repro.simkernel import Simulator
from repro.vfs.spaces import Workstation

__all__ = ["Browser", "UnicoreSession"]


@dataclass(slots=True)
class UnicoreSession:
    """An authenticated session with one Usite, applets loaded.

    Carries the protocol client the JPA/JMC use, the resource pages the
    gateway served (decoded from ASN.1), and the verified applets.
    """

    usite: str
    user_dn: str
    channel: HttpsChannel
    client: AsyncProtocolClient
    resource_pages: dict[str, ResourcePage]
    applets: dict[str, SignedApplet] = field(default_factory=dict)
    #: Trace of the connect sequence (handshake, applet load, pages).
    trace_id: str = ""
    #: The client's data-plane endpoint (streamed replies land here) and
    #: its stream-id allocator for uploads.
    datapath: DataPlaneEndpoint | None = None
    stream_ids: StreamIdAllocator | None = None


class Browser:
    """The paper's user access mechanism: a standard web browser.

    "Zero administration": all software arrives as signed applets from
    the server; the browser only holds the user's certificate and the
    trusted CA list.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Transport,
        host_name: str,
        user_cert: Certificate,
        user_key: RSAKeyPair,
        trust_store: CertificateStore,
        workstation: Workstation | None = None,
        retry: RetryPolicy | None = None,
        poll_interval_s: float = 30.0,
    ) -> None:
        self.sim = sim
        self.network = network
        self.host = network.host(host_name)
        self.user_cert = user_cert
        self.user_key = user_key
        self.trust_store = trust_store
        self.workstation = workstation or Workstation(str(user_cert.subject))
        self.retry = retry or RetryPolicy()
        self.poll_interval_s = poll_interval_s
        self._router: ReplyRouter | None = None
        #: Data plane: one endpoint and one stream-id space per browser,
        #: shared across sessions (failover reconnects reuse them).
        self.datapath = DataPlaneEndpoint(
            sim, metrics=telemetry_for(sim).metrics
        )
        self.stream_ids = StreamIdAllocator(f"client:{host_name}")

    @property
    def user_dn(self) -> str:
        return str(self.user_cert.subject)

    def connect(
        self, usite: Usite, applet_names: typing.Iterable[str] = ("JPA", "JMC"),
        gateway=None,
    ) -> typing.Generator:
        """Connect to a Usite (``yield from`` inside a process).

        Performs the section 4.1 sequence: mutual https authentication,
        then applet download + signature verification, then resource-page
        retrieval.  Returns a :class:`UnicoreSession`.

        ``gateway`` selects one of a load-balanced Usite's gateways (any
        :class:`~repro.server.gateway.Gateway` of that Usite); the
        session sticks to it for its lifetime.
        """
        gateway = gateway if gateway is not None else usite.gateway
        tracer = telemetry_for(self.sim).tracer
        session_trace = tracer.new_trace("session")
        handshake_span = tracer.start_span(
            "client.handshake", session_trace, tier="user", usite=usite.name
        )
        channel = yield from establish_https(
            self.sim,
            self.network,
            self.host.name,
            gateway.host.name,
            client_cert=self.user_cert,
            client_key=self.user_key,
            server_cert=usite.server_cert,
            server_key=usite.server_key,
            client_store=self.trust_store,
            server_store=usite.cert_store,
        )
        tracer.end_span(handshake_span)
        gateway.register_channel(self.host.name, channel)

        # Applets load "from the server into the Web browser only in case
        # of successful user authentication".
        applet_span = tracer.start_span(
            "client.applet_load", session_trace, tier="user"
        )
        applets: dict[str, SignedApplet] = {}
        for name in applet_names:
            applet = gateway.serve_applet(name)
            # Download cost over the authenticated channel.
            yield channel.send(
                ("applet", name), applet.bundle.total_size,
                to_server=False, deliver=False,
            )
            # "The applet certificate is checked to assure the user that
            # the software has not been tampered with."
            self.trust_store.validate(applet.signer_certificate, now=self.sim.now)
            try:
                verify_applet(applet)
            except TamperedBundleError:
                raise
            applets[name] = applet
        tracer.end_span(
            applet_span.set(
                applets=len(applets),
                bytes=sum(a.bundle.total_size for a in applets.values()),
            )
        )

        # Resource pages ship with the applet (section 5.4).
        pages_span = tracer.start_span(
            "client.resource_pages", session_trace, tier="user"
        )
        pages_asn1 = gateway.resource_pages()
        total = sum(len(b) for b in pages_asn1.values())
        if total:
            yield channel.send(
                ("resource-pages",), total, to_server=False, deliver=False
            )
        pages = {
            vsite: ResourcePage.from_asn1(blob)
            for vsite, blob in pages_asn1.items()
        }
        tracer.end_span(pages_span.set(vsites=len(pages), bytes=total))

        if self._router is None:
            # Non-Reply payloads on this host are data-plane frames the
            # gateway pushed (streamed FETCH_FILE / outcome content).
            self._router = ReplyRouter(
                self.sim, self.host, fallback=self.datapath.feed
            )
        client = AsyncProtocolClient(
            self.sim, channel, self._router,
            retry=self.retry, poll_interval_s=self.poll_interval_s,
        )
        return UnicoreSession(
            usite=usite.name,
            user_dn=self.user_dn,
            channel=channel,
            client=client,
            resource_pages=pages,
            applets=applets,
            trace_id=session_trace,
            datapath=self.datapath,
            stream_ids=self.stream_ids,
        )
