"""Deterministic fault plans.

A :class:`FaultPlan` is a *schedule* of failures — which component
breaks, when, for how long, and how badly — generated entirely from the
simulation's named RNG streams (:func:`~repro.simkernel.rng.derive_rng`).
The same ``(targets, intensity, seed, horizon)`` always produces the
same schedule, so a chaos experiment is as reproducible as any other
simulation in this repo: a failure seen once can be replayed exactly.

Streams are keyed per ``(kind, target)``, so adding a fault kind or a
site to the grid never perturbs the schedules of the existing ones —
the same property the rest of the simulation gets from named streams.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.simkernel.rng import derive_rng

__all__ = ["FaultKind", "FaultEvent", "FaultTargets", "FaultPlan"]


class FaultKind:
    """The failure modes the injector knows how to apply."""

    #: A WAN link turns lossy for a while (severity = loss probability).
    CHANNEL_DROP = "channel_drop"
    #: A WAN link's latency multiplies for a while (severity = factor).
    LATENCY_SPIKE = "latency_spike"
    #: A gateway stops serving requests, then restarts.  Established
    #: channels and the reply cache survive (the process restarts on the
    #: same host; clients retry through the outage).
    GATEWAY_CRASH = "gateway_crash"
    #: An NJS loses its in-memory state, then restarts and replays its
    #: journal (the tentpole recovery path).
    NJS_CRASH = "njs_crash"
    #: A whole Vsite goes offline: running jobs die, submissions are
    #: refused until it comes back.
    VSITE_OUTAGE = "vsite_outage"
    #: One batch node dies, killing a single running job (no downtime).
    NODE_FAILURE = "node_failure"
    #: The whole site power-fails — every gateway down plus a *cold*
    #: NJS (bare heap) — then cold-starts from its storage backend.
    #: Deliberately not in :attr:`ALL`: it models machine-room loss, a
    #: class above the per-process failures default chaos sweeps arm.
    #: Opt in with ``kinds=[..., FaultKind.SITE_RESTART]``.
    SITE_RESTART = "site_restart"

    ALL: typing.ClassVar[tuple[str, ...]] = (
        CHANNEL_DROP,
        LATENCY_SPIKE,
        GATEWAY_CRASH,
        NJS_CRASH,
        VSITE_OUTAGE,
        NODE_FAILURE,
    )


#: Expected events per target per 1000 simulated seconds at intensity 1.0.
_RATES: dict[str, float] = {
    FaultKind.CHANNEL_DROP: 0.8,
    FaultKind.LATENCY_SPIKE: 0.8,
    FaultKind.GATEWAY_CRASH: 0.3,
    FaultKind.NJS_CRASH: 0.3,
    FaultKind.VSITE_OUTAGE: 0.25,
    FaultKind.NODE_FAILURE: 0.6,
    FaultKind.SITE_RESTART: 0.15,
}


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One scheduled failure."""

    at_s: float
    kind: str
    target: str
    #: Outage length; 0 for instantaneous faults (node failures).
    duration_s: float = 0.0
    #: Kind-specific magnitude (loss probability, latency factor, ...).
    severity: float = 0.0

    @property
    def ends_at_s(self) -> float:
        return self.at_s + self.duration_s


@dataclass(frozen=True, slots=True)
class FaultTargets:
    """What a plan may break, extracted from a built grid.

    Targets are plain strings so plans stay serializable and comparable:
    links are ``"hostA|hostB"`` (both directions), sites are the Usite
    name, Vsites are ``"usite/vsite"``.
    """

    wan_links: tuple[str, ...] = ()
    usites: tuple[str, ...] = ()
    vsites: tuple[str, ...] = ()

    @classmethod
    def from_grid(cls, grid) -> "FaultTargets":
        names = sorted(grid.usites)
        links = tuple(
            f"{grid.usites[a].gateway_host.name}|{grid.usites[b].gateway_host.name}"
            for i, a in enumerate(names)
            for b in names[i + 1:]
        )
        vsites = tuple(
            f"{u}/{v}" for u in names for v in sorted(grid.usites[u].vsites)
        )
        return cls(wan_links=links, usites=tuple(names), vsites=vsites)

    def for_kind(self, kind: str) -> tuple[str, ...]:
        if kind in (FaultKind.CHANNEL_DROP, FaultKind.LATENCY_SPIKE):
            return self.wan_links
        if kind in (
            FaultKind.GATEWAY_CRASH, FaultKind.NJS_CRASH, FaultKind.SITE_RESTART,
        ):
            return self.usites
        return self.vsites


def _draw(
    kind: str, rng, horizon_s: float, target: str, intensity: float
) -> list[FaultEvent]:
    """All events of one kind against one target (its own RNG stream)."""
    events: list[FaultEvent] = []
    count = int(rng.poisson(_RATES[kind] * intensity * horizon_s / 1000.0))
    for _ in range(count):
        # Keep faults off the warm-up and cool-down edges of the run so
        # every outage also *recovers* inside the horizon.
        at = float(rng.uniform(0.05, 0.80) * horizon_s)
        if kind == FaultKind.CHANNEL_DROP:
            duration = float(min(max(rng.exponential(45.0), 5.0), 120.0))
            severity = float(rng.uniform(0.4, 0.95))
        elif kind == FaultKind.LATENCY_SPIKE:
            duration = float(min(max(rng.exponential(60.0), 10.0), 180.0))
            severity = float(rng.uniform(4.0, 20.0))
        elif kind == FaultKind.GATEWAY_CRASH:
            duration = float(rng.uniform(15.0, 75.0))
            severity = 0.0
        elif kind == FaultKind.NJS_CRASH:
            duration = float(rng.uniform(20.0, 90.0))
            severity = 0.0
        elif kind == FaultKind.VSITE_OUTAGE:
            duration = float(rng.uniform(45.0, 180.0))
            severity = 0.0
        elif kind == FaultKind.SITE_RESTART:
            # A full power cycle takes longer than any one process crash.
            duration = float(rng.uniform(60.0, 180.0))
            severity = 0.0
        else:  # NODE_FAILURE
            duration = 0.0
            severity = 0.0
        events.append(
            FaultEvent(
                at_s=at, kind=kind, target=target,
                duration_s=duration, severity=severity,
            )
        )
    return events


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """A deterministic, immutable schedule of :class:`FaultEvent`\\ s."""

    seed: int
    intensity: float
    horizon_s: float
    events: tuple[FaultEvent, ...] = ()

    @classmethod
    def generate(
        cls,
        targets: FaultTargets,
        intensity: float = 1.0,
        seed: int = 0,
        horizon_s: float = 3600.0,
        kinds: typing.Iterable[str] | None = None,
    ) -> "FaultPlan":
        """Build the schedule; ``intensity`` scales all event rates.

        ``intensity=0`` yields an empty plan (the control arm of a chaos
        sweep); 1.0 is "moderate" in the E13 benchmark's terms.
        """
        if intensity < 0:
            raise ValueError(f"intensity must be >= 0, got {intensity}")
        events: list[FaultEvent] = []
        for kind in kinds if kinds is not None else FaultKind.ALL:
            if kind not in _RATES:
                raise ValueError(f"unknown fault kind {kind!r}")
            for target in targets.for_kind(kind):
                rng = derive_rng(seed, f"fault:{kind}:{target}")
                events.extend(_draw(kind, rng, horizon_s, target, intensity))
        events.sort(key=lambda ev: (ev.at_s, ev.kind, ev.target))
        return cls(
            seed=seed, intensity=intensity, horizon_s=horizon_s,
            events=tuple(events),
        )

    def of_kind(self, kind: str) -> tuple[FaultEvent, ...]:
        return tuple(ev for ev in self.events if ev.kind == kind)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> typing.Iterator[FaultEvent]:
        return iter(self.events)
