"""Exceptions for the fault-injection and resilience layer."""

from repro.errors import ReproError

__all__ = ["FaultError", "CircuitOpenError", "ServiceUnavailable"]


class FaultError(ReproError):
    """Base class for fault-injection errors."""

    code = "faults.error"


class CircuitOpenError(FaultError):
    """Fast-fail: the circuit breaker is open, the call was not attempted."""

    code = "faults.circuit_open"


class ServiceUnavailable(FaultError):
    """A crashed server component refused the operation.

    Raised by an NJS whose in-memory state is gone (between
    :meth:`~repro.server.njs.supervisor.NetworkJobSupervisor.crash` and
    the journal replay on restart) and by an offline batch system; the
    gateway reports it to the client, whose polling loop simply tries
    again later.
    """

    code = "faults.unavailable"
