"""Deterministic fault injection and resilience primitives.

This package is the chaos side of the reproduction: seeded
:class:`FaultPlan` schedules (channel drops, latency spikes, server
crashes, Vsite outages, node failures), the :class:`FaultInjector` that
applies them to a built grid, and the :class:`CircuitBreaker` the
protocol client uses to stop hammering a dead gateway.  The recovery
mechanisms themselves live with the components they protect (NJS
journal replay in :mod:`repro.server.njs`, task resubmission in the
supervisor, stale-status serving in the JMC).
"""

from repro.faults.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.faults.errors import CircuitOpenError, FaultError, ServiceUnavailable
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan, FaultTargets

__all__ = [
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "CircuitBreaker",
    "CircuitOpenError",
    "FaultError",
    "ServiceUnavailable",
    "FaultInjector",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "FaultTargets",
]
