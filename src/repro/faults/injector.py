"""Applies a :class:`~repro.faults.plan.FaultPlan` to a built grid.

The injector schedules one simulator callback per fault and one per
recovery, so the chaos unfolds inside the normal event loop — faults
interleave deterministically with the workload they disturb.  Every
injection is recorded as a span in a dedicated ``chaos`` trace (outage
spans last exactly the outage) and counted per kind in the metrics
registry, so a chaos run can be audited after the fact.

Overlapping faults on the same link compose: loss probability takes the
maximum of the active drops, latency the largest active factor, and the
baseline is restored only when the last overlapping fault ends.
"""

from __future__ import annotations

import typing

from repro.faults.plan import FaultEvent, FaultKind, FaultPlan, FaultTargets
from repro.observability import telemetry_for

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.grid.build import Grid

__all__ = ["FaultInjector"]


class FaultInjector:
    """Arms a fault plan against a running grid."""

    def __init__(self, grid: "Grid", plan: FaultPlan) -> None:
        self.grid = grid
        self.plan = plan
        self.sim = grid.sim
        #: Events actually applied (node failures with nothing to kill
        #: are recorded with severity -1 and skipped).
        self.applied: list[FaultEvent] = []
        self.chaos_trace_id = ""
        self._armed = False
        # Per-link baselines captured at arm() time plus active-fault
        # bookkeeping for overlap-safe restore.
        self._baseline_loss: dict[tuple[str, str], float] = {}
        self._baseline_latency: dict[tuple[str, str], float] = {}
        self._active_drops: dict[tuple[str, str], list[float]] = {}
        self._active_spikes: dict[tuple[str, str], list[float]] = {}

    def arm(self) -> None:
        """Schedule every event of the plan relative to ``sim.now``."""
        if self._armed:
            raise RuntimeError("injector already armed")
        self._armed = True
        telemetry = telemetry_for(self.sim)
        self.chaos_trace_id = telemetry.tracer.new_trace("chaos")
        base = self.sim.now
        for event in self.plan:
            self.sim.schedule_callback(
                base + event.at_s - self.sim.now,
                lambda ev=event: self._apply(ev),
            )

    # ------------------------------------------------------------- dispatch
    def _apply(self, event: FaultEvent) -> None:
        telemetry = telemetry_for(self.sim)
        handler = {
            FaultKind.CHANNEL_DROP: self._channel_drop,
            FaultKind.LATENCY_SPIKE: self._latency_spike,
            FaultKind.GATEWAY_CRASH: self._gateway_crash,
            FaultKind.NJS_CRASH: self._njs_crash,
            FaultKind.VSITE_OUTAGE: self._vsite_outage,
            FaultKind.NODE_FAILURE: self._node_failure,
            FaultKind.SITE_RESTART: self._site_restart,
        }[event.kind]
        applied = handler(event)
        if not applied:
            telemetry.metrics.counter("faults.skipped").inc()
            return
        self.applied.append(event)
        telemetry.metrics.counter("faults.injected").inc()
        telemetry.metrics.counter(f"faults.{event.kind}").inc()
        span = telemetry.tracer.start_span(
            f"fault.{event.kind}",
            self.chaos_trace_id,
            tier="chaos",
            target=event.target,
            severity=event.severity,
        )
        if event.duration_s > 0:
            self.sim.schedule_callback(
                event.duration_s,
                lambda: telemetry.tracer.end_span(span),
            )
        else:
            telemetry.tracer.end_span(span)

    # ------------------------------------------------------------- handlers
    def _link_pairs(self, target: str) -> list[tuple[str, str]]:
        a, b = target.split("|", 1)
        return [(a, b), (b, a)]

    def _channel_drop(self, event: FaultEvent) -> bool:
        for pair in self._link_pairs(event.target):
            link = self.grid.network.get_link(*pair)
            self._baseline_loss.setdefault(pair, link.loss_probability)
            active = self._active_drops.setdefault(pair, [])
            active.append(event.severity)
            link.loss_probability = min(max(active), 0.99)
        self.sim.schedule_callback(
            event.duration_s, lambda: self._restore_drop(event)
        )
        return True

    def _restore_drop(self, event: FaultEvent) -> None:
        for pair in self._link_pairs(event.target):
            link = self.grid.network.get_link(*pair)
            active = self._active_drops[pair]
            active.remove(event.severity)
            link.loss_probability = (
                min(max(active), 0.99) if active else self._baseline_loss[pair]
            )

    def _latency_spike(self, event: FaultEvent) -> bool:
        for pair in self._link_pairs(event.target):
            link = self.grid.network.get_link(*pair)
            self._baseline_latency.setdefault(pair, link.latency_s)
            active = self._active_spikes.setdefault(pair, [])
            active.append(event.severity)
            link.latency_s = self._baseline_latency[pair] * max(active)
        self.sim.schedule_callback(
            event.duration_s, lambda: self._restore_spike(event)
        )
        return True

    def _restore_spike(self, event: FaultEvent) -> None:
        for pair in self._link_pairs(event.target):
            link = self.grid.network.get_link(*pair)
            active = self._active_spikes[pair]
            active.remove(event.severity)
            base = self._baseline_latency[pair]
            link.latency_s = base * max(active) if active else base
        return None

    def _gateway_crash(self, event: FaultEvent) -> bool:
        gateway = self.grid.usites[event.target].gateway
        if gateway.down:
            return False  # already down from an overlapping crash
        gateway.crash()
        self.sim.schedule_callback(event.duration_s, gateway.restart)
        return True

    def _njs_crash(self, event: FaultEvent) -> bool:
        njs = self.grid.usites[event.target].njs
        if njs.crashed:
            return False
        njs.crash()
        self.sim.schedule_callback(event.duration_s, njs.restart)
        return True

    def _site_restart(self, event: FaultEvent) -> bool:
        """Power-cycle a whole Usite: cold NJS, storage-backed restart."""
        usite = self.grid.usites[event.target]
        if usite.njs.crashed or usite.gateway.down:
            return False  # already failing from an overlapping fault
        usite.crash_site()
        self.sim.schedule_callback(event.duration_s, usite.restart_site)
        return True

    def _vsite_outage(self, event: FaultEvent) -> bool:
        usite, vsite_name = event.target.split("/", 1)
        batch = self.grid.usites[usite].vsites[vsite_name].batch
        if batch.offline:
            return False
        batch.set_offline(True)
        self.sim.schedule_callback(
            event.duration_s, lambda: batch.set_offline(False)
        )
        return True

    def _node_failure(self, event: FaultEvent) -> bool:
        usite, vsite_name = event.target.split("/", 1)
        batch = self.grid.usites[usite].vsites[vsite_name].batch
        running = sorted(batch.running_job_ids())
        if not running:
            return False  # idle node: the failure goes unnoticed
        batch.fail_job(running[0], reason="node failure")
        return True
