"""A circuit breaker for the asynchronous protocol client.

The paper's protocol already retries lost messages; what it lacks is a
way to stop *hammering* a gateway that is plainly down.  The breaker
adds that: after ``failure_threshold`` consecutive exhausted
interactions it opens and fast-fails every call for ``cooldown_s``
simulated seconds, then lets a single probe through (half-open) and
closes again once the probe succeeds.

State transitions are recorded (with simulated timestamps) for tests
and counted in the metrics registry.
"""

from __future__ import annotations

from repro.faults.errors import CircuitOpenError
from repro.observability import telemetry_for
from repro.simkernel import Simulator

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with a half-open probe state."""

    def __init__(
        self,
        sim: Simulator,
        failure_threshold: int = 3,
        cooldown_s: float = 90.0,
        half_open_successes: int = 1,
        name: str = "client",
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.sim = sim
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.half_open_successes = half_open_successes
        self.name = name
        self.state = CLOSED
        self._failures = 0
        self._probe_successes = 0
        self._opened_at = 0.0
        #: ``(sim_time, new_state)`` history, oldest first.
        self.transitions: list[tuple[float, str]] = []
        #: Calls fast-failed while open.
        self.rejections = 0

    # -- the three touch points the client calls ----------------------------
    def check(self) -> None:
        """Gate a call: raises :class:`CircuitOpenError` while open."""
        if self.state == OPEN:
            if self.sim.now - self._opened_at >= self.cooldown_s:
                self._transition(HALF_OPEN)
            else:
                self.rejections += 1
                telemetry_for(self.sim).metrics.counter(
                    "resilience.breaker_rejections"
                ).inc()
                remaining = self.cooldown_s - (self.sim.now - self._opened_at)
                raise CircuitOpenError(
                    f"circuit {self.name!r} open for another {remaining:.0f}s"
                )

    def record_success(self) -> None:
        if self.state == HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.half_open_successes:
                self._transition(CLOSED)
        else:
            self._failures = 0

    def record_failure(self) -> None:
        if self.state == HALF_OPEN:
            # The probe failed: the service is still down.
            self._transition(OPEN)
            return
        self._failures += 1
        if self.state == CLOSED and self._failures >= self.failure_threshold:
            self._transition(OPEN)

    # -- internals ----------------------------------------------------------
    def _transition(self, new_state: str) -> None:
        self.state = new_state
        self._failures = 0
        self._probe_successes = 0
        if new_state == OPEN:
            self._opened_at = self.sim.now
        self.transitions.append((self.sim.now, new_state))
        telemetry_for(self.sim).metrics.counter(
            f"resilience.breaker_{new_state}"
        ).inc()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CircuitBreaker {self.name} {self.state}>"
