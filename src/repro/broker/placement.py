"""The one-shot placement broker of section 6 (formerly ``repro.ext.broker``).

This is the *immediate* half of brokering: rank every Vsite right now
and pick one.  The federated, late-binding half lives in
:mod:`repro.broker.matcher` / :mod:`repro.broker.service`, which hold
jobs unbound and match them against capacity advertisements over time.

"A resource broker which supports the users in a way that they can
specify the needed resources on a more abstract level and the broker
finds the appropriate execution server for it.  Together with accounting
functions and load information the resource broker can find the best
system for an application with given time constraints."

The broker ranks candidate Vsites by *estimated turnaround*:

    est_wait (from live queue load) + est_runtime (scaled by the
    machine's speed factor) [+ cost tie-breaking]

It only uses information legitimately available to the middleware —
resource pages, queue depths from query calls, and its own accounting —
never any influence over site scheduling (site autonomy preserved).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.batch.base import BatchState
from repro.resources.check import check_request
from repro.resources.model import ResourceRequest
from repro.server.vsite import Vsite

__all__ = ["BrokerDecision", "ResourceBroker"]


@dataclass(frozen=True, slots=True)
class BrokerDecision:
    """One ranked candidate."""

    usite: str
    vsite: str
    estimated_wait_s: float
    estimated_runtime_s: float
    cost_rate: float

    @property
    def estimated_turnaround_s(self) -> float:
        return self.estimated_wait_s + self.estimated_runtime_s


class ResourceBroker:
    """Chooses the destination Vsite for an abstract resource request."""

    def __init__(
        self,
        vsites: dict[str, tuple[str, Vsite]],
        cost_per_cpu_hour: dict[str, float] | None = None,
    ) -> None:
        """``vsites`` maps vsite name → (usite name, Vsite)."""
        self._vsites = dict(vsites)
        self._cost = dict(cost_per_cpu_hour or {})

    @classmethod
    def for_grid(cls, grid, **kw) -> "ResourceBroker":
        """Build from a :class:`~repro.grid.build.Grid`."""
        vsites = {
            vname: (uname, vsite)
            for uname, usite in grid.usites.items()
            for vname, vsite in usite.vsites.items()
        }
        return cls(vsites, **kw)

    # -- load estimation ----------------------------------------------------
    @staticmethod
    def _estimated_wait(vsite: Vsite, request: ResourceRequest) -> float:
        """Backlog-based wait estimate from observable queue state.

        Sum of (cpus x remaining-limit) over queued and running jobs,
        divided by machine capacity: the classic backlog heuristic.  The
        paper notes UNICORE "can neither estimate the turnaround time for
        a job nor influence the scheduling" — the broker can only
        *estimate from outside*, which is exactly what this does.
        """
        backlog_cpu_s = 0.0
        now = vsite.sim.now
        for record in vsite.batch.all_records():
            if record.state is BatchState.QUEUED:
                backlog_cpu_s += (
                    record.spec.resources.cpus * record.spec.resources.time_s
                )
            elif record.state is BatchState.RUNNING:
                elapsed = now - (record.start_time or now)
                remaining = max(0.0, record.spec.resources.time_s - elapsed)
                backlog_cpu_s += record.spec.resources.cpus * remaining
        return backlog_cpu_s / vsite.machine.cpus

    def candidates(
        self,
        request: ResourceRequest,
        required_software: list[tuple[str, str]] | None = None,
        baseline_runtime_s: float | None = None,
    ) -> list[BrokerDecision]:
        """All feasible Vsites, ranked by estimated turnaround."""
        runtime = (
            baseline_runtime_s
            if baseline_runtime_s is not None
            else request.time_s * 0.5
        )
        out: list[BrokerDecision] = []
        for vname, (uname, vsite) in self._vsites.items():
            result = check_request(
                vsite.resource_page, request, required_software
            )
            if not result.ok:
                continue
            out.append(
                BrokerDecision(
                    usite=uname,
                    vsite=vname,
                    estimated_wait_s=self._estimated_wait(vsite, request),
                    estimated_runtime_s=runtime / vsite.machine.speed_factor,
                    cost_rate=self._cost.get(vname, 1.0),
                )
            )
        out.sort(key=lambda d: (d.estimated_turnaround_s, d.cost_rate, d.vsite))
        return out

    def choose(
        self,
        request: ResourceRequest,
        required_software: list[tuple[str, str]] | None = None,
        baseline_runtime_s: float | None = None,
        deadline_s: float | None = None,
    ) -> BrokerDecision:
        """The best feasible Vsite; raises ``LookupError`` if none fits.

        With ``deadline_s``, only candidates whose estimated turnaround
        meets the deadline are considered ("an application with given
        time constraints"); among those the *cheapest* wins.
        """
        ranked = self.candidates(request, required_software, baseline_runtime_s)
        if not ranked:
            raise LookupError(
                "no Vsite satisfies the request "
                f"(cpus={request.cpus}, software={required_software})"
            )
        if deadline_s is not None:
            meeting = [d for d in ranked if d.estimated_turnaround_s <= deadline_s]
            if not meeting:
                raise LookupError(
                    f"no Vsite can meet the {deadline_s}s deadline; best "
                    f"estimate is {ranked[0].estimated_turnaround_s:.0f}s on "
                    f"{ranked[0].vsite}"
                )
            return min(meeting, key=lambda d: (d.cost_rate, d.estimated_turnaround_s))
        return ranked[0]
