"""The federation broker service: the simulation half of late binding.

One :class:`FederationBroker` per grid.  It owns a network host (the
"broker hub"), linked to every Usite's primary gateway, and runs three
concerns on the simulation clock:

* **advertisement intake** — each NJS gets a route to the hub and a
  periodic :meth:`~repro.server.njs.supervisor.NetworkJobSupervisor.start_advertising`
  loop; reports fold into the matcher;
* **dispatch** — on a timer, :meth:`TaskQueueBroker.match` binds pending
  jobs and each binding's *dispatch factory* (a caller-supplied
  ``(usite, vsite) -> generator -> job_id``, typically closing over a
  JPA) consigns the job through the normal client protocol;
* **work stealing** — confirmed reclaimable jobs sitting in a
  backlogged queue are cancelled at their site (authoritative re-check
  there) and requeued when another feasible Vsite drains.

Counters: ``broker.matches``, ``broker.steals``, ``broker.rejections``;
``broker.queue_depth`` is observed as a histogram each dispatch tick.
Every dispatch and steal runs under a ``broker.*`` span.
"""

from __future__ import annotations

import typing
from itertools import count

from repro.broker.advertise import (
    BROKER_PEER,
    AdvertiseCapacity,
    ReclaimAck,
    ReclaimJob,
)
from repro.broker.errors import BrokerError
from repro.broker.fairshare import FairSharePolicy
from repro.broker.matcher import BrokerJob, BrokerJobState, TaskQueueBroker
from repro.errors import ReproError
from repro.net.errors import ConnectionLost
from repro.observability import telemetry_for
from repro.resources.model import ResourceRequest
from repro.security.ssl import HANDSHAKE_ROUND_TRIPS, SSLSession

if typing.TYPE_CHECKING:
    from repro.grid.build import Grid

__all__ = ["FederationBroker", "attach_broker"]

_HS_BYTES = 1500

#: WAN link from each gateway to the broker hub (same class of link as
#: gateway-to-gateway traffic).
HUB_LATENCY_S = 0.015
HUB_BANDWIDTH_BPS = 1_250_000.0


class FederationBroker:
    """Central task-queue broker for one grid."""

    #: A dispatch whose consignment fails this many times is FAILED.
    MAX_ATTEMPTS = 3
    ACK_TIMEOUT_S = 120.0
    RETRIES = 4
    RETRY_DELAY_S = 5.0

    def __init__(
        self,
        grid: "Grid",
        policy: FairSharePolicy | None = None,
        staleness_s: float = 300.0,
        advertise_interval_s: float = 60.0,
        dispatch_interval_s: float = 30.0,
        max_queued_per_vsite: int = 4,
        min_steal_wait_s: float = 600.0,
        host_name: str = "broker.hub",
    ) -> None:
        self.grid = grid
        self.sim = grid.sim
        self.network = grid.network
        telemetry = telemetry_for(self.sim)
        self.metrics = telemetry.metrics
        self.tracer = telemetry.tracer
        self.matcher = TaskQueueBroker(
            policy=policy,
            staleness_s=staleness_s,
            max_queued_per_vsite=max_queued_per_vsite,
            min_steal_wait_s=min_steal_wait_s,
            metrics=self.metrics,
        )
        self.dispatch_interval_s = dispatch_interval_s
        self.host = self.network.add_host(host_name)
        #: usite -> hub-to-NJS route (reverse of the advertisement path).
        self._routes: dict[str, list[tuple[str, str]]] = {}
        self._sessions: set[str] = set()
        self._corr = count(1)
        self._pending_acks: dict[int, object] = {}
        self._stealing: set[int] = set()

        for index, name in enumerate(sorted(grid.usites)):
            usite = grid.usites[name]
            self.network.link(
                host_name,
                usite.gateway_host.name,
                latency_s=HUB_LATENCY_S,
                bandwidth_Bps=HUB_BANDWIDTH_BPS,
            )
            up = [
                (usite.njs_host.name, usite.gateway_host.name),
                (usite.gateway_host.name, host_name),
            ]
            usite.njs.register_broker_route([(a, b) for a, b in up if a != b])
            self._routes[name] = [
                (b, a) for a, b in reversed([(a, b) for a, b in up if a != b])
            ]
            # Stagger sites so their reports do not synchronise.
            usite.njs.start_advertising(
                interval_s=advertise_interval_s,
                offset_s=index * advertise_interval_s / max(1, len(grid.usites)),
            )
        self.sim.process(self._inbox_loop(), name="broker:inbox")
        self.sim.process(self._dispatch_loop(), name="broker:dispatch")

    # -- submission ---------------------------------------------------------
    def submit(
        self,
        user_dn: str,
        name: str,
        request: ResourceRequest,
        software: tuple[tuple[str, str], ...] = (),
        dispatch=None,
        bind_timeout_s: float | None = None,
    ) -> BrokerJob:
        """Enqueue one late-bound job.

        ``dispatch(usite, vsite)`` must return a generator that consigns
        the job at the chosen destination and returns the NJS job id; it
        is invoked (possibly more than once, under stealing) inside the
        simulation.  Raises quota/capacity errors synchronously — a
        rejected job never enters the queue.

        The returned entry's ``bound`` event triggers at the first
        successful consignment (value: the job id), or with ``None`` if
        the job failed or timed out unbound.
        """
        if dispatch is None:
            raise TypeError("submit() requires a dispatch factory")
        job = self.matcher.enqueue(
            user_dn, name, request, software=tuple(software), now=self.sim.now
        )
        job.dispatch = dispatch
        job.bound = self.sim.event(name=f"broker-bound:{job.seq}")
        if bind_timeout_s is not None:
            self.sim.process(self._bind_timeout(job, bind_timeout_s))
        return job

    def _bind_timeout(self, job: BrokerJob, timeout_s: float):
        yield self.sim.any_of(
            [job.bound, self.sim.timeout(timeout_s)]
        )
        if not job.bound.triggered:
            if job.state is BrokerJobState.PENDING:
                self.matcher.withdraw(
                    job, error=f"not bound within {timeout_s:.0f}s"
                )
            if not job.bound.triggered:
                job.bound.succeed(None)

    def drain(self, jobs: list[BrokerJob], poll_s: float = 60.0):
        """Generator: wait until every entry reaches a terminal state."""
        while any(not j.state.is_terminal for j in jobs):
            yield self.sim.timeout(poll_s)

    # -- simulation loops ---------------------------------------------------
    def _inbox_loop(self):
        while True:
            message = yield self.host.receive()
            payload = message.payload
            if isinstance(payload, AdvertiseCapacity):
                self.matcher.observe(payload, now=self.sim.now)
            elif isinstance(payload, ReclaimAck):
                waiter = self._pending_acks.pop(payload.corr_id, None)
                if waiter is not None and not waiter.triggered:
                    waiter.succeed(payload)

    def _dispatch_loop(self):
        while True:
            yield self.sim.timeout(self.dispatch_interval_s)
            self.metrics.histogram("broker.queue_depth").observe(
                float(self.matcher.queue_depth)
            )
            for job in self.matcher.match(self.sim.now):
                self.sim.process(
                    self._dispatch(job), name=f"broker-dispatch:{job.seq}"
                )
            for job, to_usite, to_vsite in self.matcher.steal_candidates(
                self.sim.now
            ):
                if job.seq in self._stealing:
                    continue
                self._stealing.add(job.seq)
                self.sim.process(
                    self._steal(job, to_usite, to_vsite),
                    name=f"broker-steal:{job.seq}",
                )

    def _dispatch(self, job: BrokerJob):
        span = self.tracer.start_span(
            "broker.dispatch",
            self.tracer.new_trace(f"broker:{job.name}"),
            tier="server",
            job=job.name,
            user=job.user_dn,
            usite=job.usite,
            vsite=job.vsite,
            attempt=job.attempts,
        )
        try:
            job_id = yield from job.dispatch(job.usite, job.vsite)
        except ReproError as err:
            self.tracer.end_span(span, error=err)
            requeue = (
                job.attempts < self.MAX_ATTEMPTS
                and job.state is BrokerJobState.DISPATCHED
            )
            self.matcher.release(job, requeue=requeue, error=str(err))
            if job.state is BrokerJobState.FAILED and not job.bound.triggered:
                job.bound.succeed(None)
            return
        self.matcher.bind(job, job_id)
        if not job.bound.triggered:
            job.bound.succeed(job_id)
        self.tracer.end_span(span.set(job_id=job_id))

    def _steal(self, job: BrokerJob, to_usite: str, to_vsite: str):
        span = self.tracer.start_span(
            "broker.steal",
            self.tracer.new_trace(f"steal:{job.name}"),
            tier="server",
            job_id=job.job_id,
            from_vsite=job.vsite,
            to_vsite=to_vsite,
        )
        corr_id = next(self._corr)
        waiter = self.sim.event(name=f"reclaim-ack:{corr_id}")
        self._pending_acks[corr_id] = waiter
        message = ReclaimJob(corr_id=corr_id, job_id=job.job_id)
        try:
            try:
                yield from self._routed_send(
                    job.usite, message, message.wire_payload
                )
            except ConnectionLost as err:
                self.tracer.end_span(span, error=err)
                return
            yield self.sim.any_of(
                [waiter, self.sim.timeout(self.ACK_TIMEOUT_S)]
            )
            if not waiter.triggered:
                self.tracer.end_span(span.set(outcome="ack-timeout"))
                return
            ack = typing.cast(ReclaimAck, waiter.value)
            if not ack.ok:
                # The job started in the meantime: leave it where it runs.
                self.tracer.end_span(span.set(outcome="refused"))
                return
            if job.state is BrokerJobState.DISPATCHED:
                self.matcher.mark_stolen(job)
            self.tracer.end_span(span.set(outcome="stolen"))
        finally:
            self._pending_acks.pop(corr_id, None)
            self._stealing.discard(job.seq)

    # -- hub-side transport -------------------------------------------------
    def _routed_send(self, usite: str, payload, size: int):
        """Reliable routed send hub -> gateway -> NJS, mirroring the NJS
        peer transport (first use pays the SSL handshake)."""
        route = self._routes[usite]
        if usite not in self._sessions:
            for _ in range(HANDSHAKE_ROUND_TRIPS):
                for src, dst in route:
                    yield from self._hop(src, dst, ("hs",), _HS_BYTES, False)
                for src, dst in [(b, a) for a, b in reversed(route)]:
                    yield from self._hop(src, dst, ("hs-ack",), _HS_BYTES, False)
            self._sessions.add(usite)
        wire = SSLSession.wire_bytes(size)
        last = len(route) - 1
        for i, (src, dst) in enumerate(route):
            yield from self._hop(src, dst, payload, wire, i == last)

    def _hop(self, src: str, dst: str, payload, wire: int, deliver: bool):
        last_error: Exception | None = None
        for attempt in range(1 + self.RETRIES):
            try:
                yield self.network.send(
                    src, dst, payload, wire, channel="broker", deliver=deliver
                )
                return
            except ConnectionLost as err:
                last_error = err
                if attempt < self.RETRIES:
                    yield self.sim.timeout(self.RETRY_DELAY_S)
        assert last_error is not None
        raise last_error

    # -- introspection ------------------------------------------------------
    def counters(self) -> dict[str, int]:
        return {
            name: int(self.metrics.counter_value(f"broker.{name}"))
            for name in ("matches", "steals", "rejections")
        }


def attach_broker(grid: "Grid", **kw) -> FederationBroker:
    """Create a :class:`FederationBroker` for ``grid`` and remember it as
    ``grid.broker`` (the :meth:`GridSession.submit(..., broker=True)
    <repro.api.GridSession.submit>` path looks it up there)."""
    if getattr(grid, "broker", None) is not None:
        raise BrokerError("grid already has a federation broker attached")
    broker = FederationBroker(grid, **kw)
    grid.broker = broker
    return broker
