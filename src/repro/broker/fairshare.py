"""Fair-share policy: per-user quotas and concurrency caps.

Modelled on production batch limits ("limits and fair use"): every user
gets a default concurrency cap with per-user overrides, and optionally a
total-submission quota.  Over-limit submissions are rejected cleanly at
enqueue time with :class:`~repro.broker.errors.BrokerQuotaError` — they
never enter the queue, so a greedy user cannot crowd out others.

The *ordering* half of fair share lives in the matcher: at each
dispatch tick pending jobs are served lowest-active-user first, so any
user with remaining quota always receives the next available slot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["FairSharePolicy"]


@dataclass(frozen=True)
class FairSharePolicy:
    """Quota source for the task-queue broker.

    ``default_max_active`` caps jobs a user may have queued-or-dispatched
    at once; ``max_active`` holds per-user overrides.  ``max_total``
    (optional, with ``total`` overrides) caps lifetime submissions
    through this broker.
    """

    default_max_active: int = 100
    max_active: Mapping[str, int] = field(default_factory=dict)
    default_max_total: int | None = None
    max_total: Mapping[str, int | None] = field(default_factory=dict)

    def active_cap(self, user_dn: str) -> int:
        return self.max_active.get(user_dn, self.default_max_active)

    def total_cap(self, user_dn: str) -> int | None:
        return self.max_total.get(user_dn, self.default_max_total)
