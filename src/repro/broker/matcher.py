"""The late-binding task queue: submitted-but-unbound jobs and matching.

DIRAC-style layering: submissions land in a central queue *without* a
destination; binding to a Vsite happens at dispatch time against the
freshest capacity advertisements.  The matcher is deliberately pure —
no clock, no network, no randomness — so matching is deterministic
(stable sorts over stable sequence numbers) and directly property-
testable.  The :class:`~repro.broker.service.FederationBroker` owns the
simulation side: timers, advertisement transport, and consignment.

Feasibility reuses the exact check the analysis tier applies at consign
time (:func:`repro.resources.check.check_request` against the advertised
page), so the broker never binds a job a Vsite would reject.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from itertools import count

from repro.broker.advertise import AdvertiseCapacity, CapacityAdvertisement
from repro.broker.errors import BrokerQuotaError, NoCapacityError
from repro.broker.fairshare import FairSharePolicy
from repro.observability import MetricsRegistry
from repro.resources.check import check_request
from repro.resources.model import ResourceRequest

__all__ = ["BrokerJob", "BrokerJobState", "TaskQueueBroker"]


class BrokerJobState(enum.Enum):
    PENDING = "pending"
    DISPATCHED = "dispatched"
    DONE = "done"
    FAILED = "failed"

    @property
    def is_terminal(self) -> bool:
        return self in (BrokerJobState.DONE, BrokerJobState.FAILED)


@dataclass
class BrokerJob:
    """One queue entry: an abstract job awaiting (re)binding."""

    seq: int
    user_dn: str
    name: str
    request: ResourceRequest
    software: tuple[tuple[str, str], ...] = ()
    enqueued_at: float = 0.0
    state: BrokerJobState = BrokerJobState.PENDING
    #: Where the job is currently bound (empty while PENDING).
    usite: str = ""
    vsite: str = ""
    #: NJS job id after a successful consignment.
    job_id: str = ""
    #: Vsites this entry must not be bound to again (failed dispatches,
    #: stolen-from queues).
    excluded: tuple[str, ...] = ()
    attempts: int = 0
    steals: int = 0
    bound_at: float = 0.0
    done_at: float = 0.0
    error: str = ""
    #: Service-layer attachments (bind event, dispatch factory); the
    #: matcher never touches these.
    bound: object = None
    dispatch: object = None
    #: Extra per-entry metadata for callers (e.g. benchmark user index).
    meta: dict = field(default_factory=dict)


class TaskQueueBroker:
    """Holds unbound jobs; matches them to advertised capacity.

    Parameters
    ----------
    policy:
        Fair-share quota source (defaults to the stock policy).
    staleness_s:
        Advertisements older than this are ignored — a silent NJS must
        not keep attracting work.
    max_queued_per_vsite:
        Dispatch backpressure: a Vsite whose advertised queue depth
        (plus bindings made since that advertisement) reaches this is
        closed until a fresher advertisement reopens it.  This is what
        keeps jobs *in the broker queue* — late binding — instead of
        pushing everything into remote batch queues immediately.
    min_steal_wait_s:
        Only steal from a queue whose estimated wait exceeds this.
    """

    def __init__(
        self,
        policy: FairSharePolicy | None = None,
        staleness_s: float = 300.0,
        max_queued_per_vsite: int = 4,
        min_steal_wait_s: float = 600.0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.policy = policy or FairSharePolicy()
        self.staleness_s = staleness_s
        self.max_queued_per_vsite = max_queued_per_vsite
        self.min_steal_wait_s = min_steal_wait_s
        self.metrics = metrics
        self._seq = count(1)
        self._pending: list[BrokerJob] = []
        self._dispatched: dict[int, BrokerJob] = {}
        self._done: list[BrokerJob] = []
        self._ads: dict[str, CapacityAdvertisement] = {}
        #: Per-Usite job ids the NJS reported as still-queued (stealable).
        self._reclaimable: dict[str, frozenset[str]] = {}
        #: Per-Vsite [jobs, cpu_s] bound since its last advertisement.
        self._overlay: dict[str, list[float]] = {}
        #: Lifetime submissions per user (for total quotas).
        self._submitted: dict[str, int] = {}

    # -- observability ------------------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    @property
    def queue_depth(self) -> int:
        return len(self._pending)

    @property
    def pending(self) -> tuple[BrokerJob, ...]:
        return tuple(self._pending)

    @property
    def dispatched(self) -> tuple[BrokerJob, ...]:
        return tuple(self._dispatched.values())

    @property
    def completed(self) -> tuple[BrokerJob, ...]:
        return tuple(self._done)

    # -- advertisement intake ----------------------------------------------
    def observe(self, message: AdvertiseCapacity, now: float) -> None:
        """Fold one NJS advertisement into the broker's world view."""
        for ad in message.vsites:
            self._ads[ad.vsite] = ad
            # Fresh truth from the site supersedes the dispatch overlay.
            self._overlay[ad.vsite] = [0, 0.0]
        self._reclaimable[message.usite] = frozenset(message.reclaimable)
        terminal = set(message.terminal)
        for job in list(self._dispatched.values()):
            if job.usite == message.usite and job.job_id in terminal:
                job.state = BrokerJobState.DONE
                job.done_at = now
                del self._dispatched[job.seq]
                self._done.append(job)

    def fresh_ads(self, now: float) -> dict[str, CapacityAdvertisement]:
        return {
            vsite: ad
            for vsite, ad in self._ads.items()
            if now - ad.sent_at <= self.staleness_s
        }

    # -- submission ---------------------------------------------------------
    def active_jobs(self, user_dn: str) -> int:
        return sum(1 for j in self._pending if j.user_dn == user_dn) + sum(
            1 for j in self._dispatched.values() if j.user_dn == user_dn
        )

    def enqueue(
        self,
        user_dn: str,
        name: str,
        request: ResourceRequest,
        software: tuple[tuple[str, str], ...] = (),
        now: float = 0.0,
    ) -> BrokerJob:
        """Admit one job to the queue, or reject it cleanly.

        Raises :class:`BrokerQuotaError` when the user is over their
        concurrency cap or total quota, :class:`NoCapacityError` when
        advertisements exist and none could ever fit the request.
        """
        active = self.active_jobs(user_dn)
        cap = self.policy.active_cap(user_dn)
        if active >= cap:
            self._count("broker.rejections")
            raise BrokerQuotaError(
                f"user {user_dn!r} already has {active} active brokered "
                f"jobs (concurrency cap {cap})"
            )
        total_cap = self.policy.total_cap(user_dn)
        if total_cap is not None and self._submitted.get(user_dn, 0) >= total_cap:
            self._count("broker.rejections")
            raise BrokerQuotaError(
                f"user {user_dn!r} reached the total submission quota "
                f"({total_cap})"
            )
        if self._ads and not any(
            self._feasible(ad, request, software) for ad in self._ads.values()
        ):
            self._count("broker.rejections")
            raise NoCapacityError(
                f"no advertised Vsite satisfies the request "
                f"(cpus={request.cpus}, software={list(software)})"
            )
        job = BrokerJob(
            seq=next(self._seq),
            user_dn=user_dn,
            name=name,
            request=request,
            software=tuple(software),
            enqueued_at=now,
        )
        self._pending.append(job)
        self._submitted[user_dn] = self._submitted.get(user_dn, 0) + 1
        return job

    def withdraw(self, job: BrokerJob, error: str = "withdrawn") -> None:
        """Remove a still-pending entry (bind timeout, user abort)."""
        if job in self._pending:
            self._pending.remove(job)
            job.state = BrokerJobState.FAILED
            job.error = error
            self._done.append(job)

    # -- matching -----------------------------------------------------------
    @staticmethod
    def _feasible(
        ad: CapacityAdvertisement,
        request: ResourceRequest,
        software: tuple[tuple[str, str], ...],
    ) -> bool:
        return check_request(ad.page, request, list(software)).ok

    def _wait_estimate(self, vsite: str) -> float:
        ad = self._ads.get(vsite)
        if ad is None:
            return float("inf")
        overlay = self._overlay.get(vsite, [0, 0.0])
        return (ad.backlog_cpu_s + overlay[1]) / max(1, ad.total_cpus)

    def _best_vsite(
        self, job: BrokerJob, ads: dict[str, CapacityAdvertisement]
    ) -> str | None:
        best: tuple[float, str] | None = None
        for vsite in sorted(ads):
            if vsite in job.excluded:
                continue
            ad = ads[vsite]
            overlay = self._overlay.setdefault(vsite, [0, 0.0])
            if ad.queued_jobs + overlay[0] >= self.max_queued_per_vsite:
                continue
            if not self._feasible(ad, job.request, job.software):
                continue
            runtime = (job.request.time_s * 0.5) / ad.speed_factor
            key = (self._wait_estimate(vsite) + runtime, vsite)
            if best is None or key < best:
                best = key
        return best[1] if best else None

    def match(self, now: float) -> list[BrokerJob]:
        """Bind pending jobs to Vsites; returns the newly bound entries.

        Fair-share order: after every single binding the pending set is
        re-ranked by (user's dispatched count, arrival sequence), so the
        least-served user with a feasible job always gets the next slot
        — no user with remaining quota can be starved by another's
        backlog.
        """
        ads = self.fresh_ads(now)
        assigned: list[BrokerJob] = []
        if not ads or not self._pending:
            return assigned
        active: dict[str, int] = {}
        for job in self._dispatched.values():
            active[job.user_dn] = active.get(job.user_dn, 0) + 1
        while True:
            ranked = sorted(
                self._pending, key=lambda j: (active.get(j.user_dn, 0), j.seq)
            )
            bound = None
            for job in ranked:
                vsite = self._best_vsite(job, ads)
                if vsite is None:
                    continue
                ad = ads[vsite]
                job.state = BrokerJobState.DISPATCHED
                job.vsite = vsite
                job.usite = ad.usite
                job.bound_at = now
                job.attempts += 1
                overlay = self._overlay.setdefault(vsite, [0, 0.0])
                overlay[0] += 1
                overlay[1] += job.request.cpus * job.request.time_s
                self._pending.remove(job)
                self._dispatched[job.seq] = job
                active[job.user_dn] = active.get(job.user_dn, 0) + 1
                self._count("broker.matches")
                assigned.append(job)
                bound = job
                break
            if bound is None:
                return assigned

    def bind(self, job: BrokerJob, job_id: str) -> None:
        """Record the NJS job id after a successful consignment."""
        job.job_id = job_id

    def release(self, job: BrokerJob, requeue: bool, error: str = "") -> None:
        """A dispatch attempt failed at ``job.vsite``."""
        self._dispatched.pop(job.seq, None)
        job.excluded = (*job.excluded, job.vsite)
        job.vsite = job.usite = job.job_id = ""
        job.error = error
        if requeue:
            job.state = BrokerJobState.PENDING
            self._pending.append(job)
        else:
            job.state = BrokerJobState.FAILED
            self._done.append(job)

    # -- work stealing ------------------------------------------------------
    def steal_candidates(
        self, now: float
    ) -> list[tuple[BrokerJob, str, str]]:
        """Dispatched-but-still-queued jobs worth moving to a drained Vsite.

        Returns ``(job, target_usite, target_vsite)`` triples.  A job
        qualifies when its NJS advertised it as reclaimable (nothing
        started), its bound queue's estimated wait exceeds
        ``min_steal_wait_s``, and some *other* feasible Vsite sits
        drained (no queue, free processors, nothing bound this tick).
        """
        ads = self.fresh_ads(now)
        drained = [
            vsite
            for vsite in sorted(ads)
            if ads[vsite].queued_jobs == 0
            and ads[vsite].free_cpus > 0
            and self._overlay.get(vsite, [0, 0.0])[0] == 0
        ]
        if not drained:
            return []
        out: list[tuple[BrokerJob, str, str]] = []
        taken: set[str] = set()
        for job in sorted(self._dispatched.values(), key=lambda j: j.seq):
            if not job.job_id:
                continue
            if job.job_id not in self._reclaimable.get(job.usite, frozenset()):
                continue
            if self._wait_estimate(job.vsite) < self.min_steal_wait_s:
                continue
            targets = [
                vsite
                for vsite in drained
                if vsite != job.vsite
                and vsite not in taken
                and vsite not in job.excluded
                and self._feasible(ads[vsite], job.request, job.software)
            ]
            if targets:
                out.append((job, ads[targets[0]].usite, targets[0]))
                taken.add(targets[0])
        return out

    def mark_stolen(self, job: BrokerJob) -> None:
        """The old NJS confirmed the reclaim: requeue for rebinding."""
        self._dispatched.pop(job.seq, None)
        job.excluded = (*job.excluded, job.vsite)
        job.vsite = job.usite = job.job_id = ""
        job.state = BrokerJobState.PENDING
        job.steals += 1
        self._pending.append(job)
        self._count("broker.steals")
