"""Capacity advertisements and broker peer messages.

The federation broker never scrapes batch systems directly — that would
violate site autonomy (paper section 4: UNICORE "can neither estimate
the turnaround time for a job nor influence the scheduling").  Instead
each NJS *advertises* what it legitimately knows about its own Vsites —
queue depths, backlog, free processors, the published resource page —
on a timer, and the broker matches against the last advertisement it
holds.  Advertisements therefore carry their send time so the matcher
can discard stale ones.

Like the other NJS peer messages (``ForwardGroup`` et al.) these are
plain dataclasses with a ``wire_payload`` size estimate; they travel
NJS → gateway → broker hub over the same reliable-hop machinery as
server-to-server traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.resources.page import ResourcePage

__all__ = [
    "BROKER_PEER",
    "AdvertiseCapacity",
    "CapacityAdvertisement",
    "ReclaimAck",
    "ReclaimJob",
]

#: Reserved pseudo-Usite name the NJS routes broker traffic under.  A
#: real Usite can never collide with it (site names come from the grid
#: builder and are plain identifiers).
BROKER_PEER = "__broker__"

#: Modelled wire size of one per-Vsite advertisement (resource page
#: summary plus counters).
_AD_WIRE_BYTES = 2048


@dataclass(frozen=True, slots=True)
class CapacityAdvertisement:
    """One Vsite's self-reported state at ``sent_at``."""

    usite: str
    vsite: str
    sent_at: float
    total_cpus: int
    free_cpus: int
    queued_jobs: int
    running_jobs: int
    #: Sum of cpus x remaining-time over queued and running jobs — the
    #: same backlog heuristic the one-shot placement broker uses.
    backlog_cpu_s: float
    speed_factor: float
    #: The published page, so the matcher can run the identical
    #: feasibility check the analysis tier applies at consign time.
    page: ResourcePage

    def wait_estimate_s(self) -> float:
        return self.backlog_cpu_s / max(1, self.total_cpus)


@dataclass(frozen=True, slots=True)
class AdvertiseCapacity:
    """NJS → broker: periodic capacity report for one whole Usite.

    ``reclaimable`` lists jobs the NJS would let the broker steal (every
    submitted batch record still QUEUED, nothing started); ``terminal``
    feeds completions back so the broker can retire queue entries and
    release fair-share slots without polling.
    """

    usite: str
    sent_at: float
    vsites: tuple[CapacityAdvertisement, ...]
    reclaimable: tuple[str, ...] = ()
    terminal: tuple[str, ...] = ()

    @property
    def wire_payload(self) -> int:
        return (
            512
            + _AD_WIRE_BYTES * len(self.vsites)
            + 40 * (len(self.reclaimable) + len(self.terminal))
        )


@dataclass(frozen=True, slots=True)
class ReclaimJob:
    """Broker → NJS: cancel ``job_id`` if it has not started, so the
    broker can rebind it elsewhere (work stealing)."""

    corr_id: int
    job_id: str

    @property
    def wire_payload(self) -> int:
        return 256


@dataclass(frozen=True, slots=True)
class ReclaimAck:
    """NJS → broker: outcome of a :class:`ReclaimJob`.

    ``ok`` is False when the job started (or finished) between the
    advertisement and the steal — the authoritative check happens at the
    NJS, never from stale broker state.
    """

    corr_id: int
    ok: bool
    detail: str = ""

    @property
    def wire_payload(self) -> int:
        return 128 + len(self.detail)
