"""Stable error codes for the federation broker tier.

Same contract as the rest of the hierarchy (see ``repro.errors``): every
class carries a machine-readable ``code`` that survives the protocol
edge — the gateway copies it into ``Reply.error_code`` and the JPA
re-raises the typed exception client-side.
"""

from __future__ import annotations

from repro.errors import ReproError

__all__ = ["BrokerError", "BrokerQuotaError", "NoCapacityError"]


class BrokerError(ReproError):
    """Base class for federation-broker failures."""

    code = "broker.error"


class BrokerQuotaError(BrokerError):
    """A submission exceeded the user's fair-share quota or concurrency cap."""

    code = "broker.quota_exceeded"


class NoCapacityError(BrokerError):
    """No advertised Vsite can ever satisfy the request."""

    code = "broker.no_capacity"
