"""The federation broker subsystem: late-binding scheduling across Usites.

The paper's section-6 outlook names a resource broker as the piece that
stops users placing jobs "at the site and on the system they know".
This package supplies both halves of that broker:

* :mod:`repro.broker.placement` — the original one-shot ranking broker
  (formerly ``repro.ext.broker``): rank every Vsite now, pick one.
* the federated tier — :mod:`~repro.broker.advertise` capacity
  advertisements from each NJS, the :class:`TaskQueueBroker` matcher
  holding submitted-but-unbound jobs, a :class:`FairSharePolicy` with
  per-user quotas, and the :class:`FederationBroker` service that runs
  dispatch and cross-Vsite work stealing on the simulation clock.

Typical use::

    from repro.broker import attach_broker, FairSharePolicy

    broker = attach_broker(grid, policy=FairSharePolicy(default_max_active=8))
    session = GridSession(grid, user, "FZJ")
    handle = session.submit(job, broker=True)   # late-bound
"""

from repro.broker.advertise import (
    BROKER_PEER,
    AdvertiseCapacity,
    CapacityAdvertisement,
    ReclaimAck,
    ReclaimJob,
)
from repro.broker.errors import BrokerError, BrokerQuotaError, NoCapacityError
from repro.broker.fairshare import FairSharePolicy
from repro.broker.matcher import BrokerJob, BrokerJobState, TaskQueueBroker
from repro.broker.placement import BrokerDecision, ResourceBroker
from repro.broker.service import FederationBroker, attach_broker

__all__ = [
    "BROKER_PEER",
    "AdvertiseCapacity",
    "BrokerDecision",
    "BrokerError",
    "BrokerJob",
    "BrokerJobState",
    "BrokerQuotaError",
    "CapacityAdvertisement",
    "FairSharePolicy",
    "FederationBroker",
    "NoCapacityError",
    "ReclaimAck",
    "ReclaimJob",
    "ResourceBroker",
    "TaskQueueBroker",
    "attach_broker",
]
