"""Whole-grid checkpointing: freeze a deployment, thaw it later.

A :class:`GridSnapshot` is everything needed to rebuild a grid that
*continues* the original run rather than starting over:

* the **build recipe** (sites, seed, WAN shape, gateway counts) — the
  deterministic part, re-executed on restore so hosts, certificates, and
  links come back identical;
* the **storage dump** — every durable table and log (NJS journals,
  outcome stores, UUDB mappings, resource pages, job-id cursors);
* the **simkernel cursors** — virtual clock, per-link loss-RNG states,
  and the network message-id counter, so the resumed run draws the exact
  sequences the uninterrupted run would have;
* the **user recipes** and their workstation files, re-registered
  without touching the UUDB (the mappings are already in the dump).

What a snapshot deliberately does *not* carry: in-flight simulation
events and live client sessions.  Jobs caught mid-run are journaled, so
:func:`repro.grid.build.build_grid` with ``restore_from=`` recovers them
the same way a crashed NJS does — replay — while finished jobs come back
as restored listings.  Take snapshots at quiescent points (no pending
events) when byte-identical continuation matters.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from repro.storage.codec import decode_value, encode_value
from repro.storage.errors import SnapshotError

__all__ = ["GridSnapshot", "SNAPSHOT_VERSION"]

#: Bump when the on-disk layout changes incompatibly.
SNAPSHOT_VERSION = 1


@dataclass(slots=True)
class GridSnapshot:
    """A point-in-time image of a whole grid deployment."""

    clock: float
    build: dict
    users: list = field(default_factory=list)
    workstation_files: dict = field(default_factory=dict)
    storage: dict = field(default_factory=dict)
    network: dict = field(default_factory=dict)
    gateway_rr: dict = field(default_factory=dict)
    version: int = SNAPSHOT_VERSION

    # -- serialization -------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Canonical encoding (the storage codec, so bytes survive JSON)."""
        return encode_value({
            "version": self.version,
            "clock": self.clock,
            "build": self.build,
            "users": self.users,
            "workstation_files": self.workstation_files,
            "storage": self.storage,
            "network": self.network,
            "gateway_rr": self.gateway_rr,
        })

    @classmethod
    def from_bytes(cls, raw: bytes) -> "GridSnapshot":
        try:
            plain = typing.cast(dict, decode_value(raw))
        except Exception as exc:
            raise SnapshotError(f"unreadable grid snapshot: {exc}") from exc
        version = plain.get("version")
        if version != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"snapshot version {version!r} not supported "
                f"(expected {SNAPSHOT_VERSION})"
            )
        return cls(
            clock=float(plain["clock"]),
            build=dict(plain["build"]),
            users=list(plain["users"]),
            workstation_files=dict(plain["workstation_files"]),
            storage=dict(plain["storage"]),
            network=dict(plain["network"]),
            gateway_rr=dict(plain.get("gateway_rr", {})),
            version=int(typing.cast(int, version)),
        )

    def save(self, path: str) -> None:
        with open(path, "wb") as fh:
            fh.write(self.to_bytes())

    @classmethod
    def load(cls, path: str) -> "GridSnapshot":
        with open(path, "rb") as fh:
            return cls.from_bytes(fh.read())

    # -- introspection -------------------------------------------------------
    def site_names(self) -> list[str]:
        return sorted(typing.cast(dict, self.build.get("sites", {})))

    def __repr__(self) -> str:
        return (
            f"<GridSnapshot v{self.version} clock={self.clock:.3f} "
            f"sites={self.site_names()} users={len(self.users)}>"
        )
