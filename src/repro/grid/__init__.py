"""Grid runtime: assembling and driving multi-site UNICORE deployments.

- :mod:`repro.grid.build` — construct grids (including the six-site
  German deployment of paper section 5.7), users, browsers;
- :mod:`repro.grid.workloads` — synthetic job and local-load generators;
- :mod:`repro.grid.metrics` — turnaround/latency/utilization collection.
"""

from repro.grid.build import Grid, GridUser, build_german_grid, build_grid
from repro.grid.snapshot import GridSnapshot
from repro.grid.workloads import LocalLoadGenerator, WorkloadProfile, synth_job
from repro.grid.metrics import TierTimes, summarize_turnarounds
from repro.grid.figures import figure1, figure2
from repro.grid.monitor import GridMonitor
from repro.grid.timeline import job_timeline, render_gantt

__all__ = [
    "Grid",
    "GridSnapshot",
    "GridUser",
    "LocalLoadGenerator",
    "TierTimes",
    "WorkloadProfile",
    "build_german_grid",
    "build_grid",
    "GridMonitor",
    "figure1",
    "figure2",
    "job_timeline",
    "render_gantt",
    "summarize_turnarounds",
    "synth_job",
]
