"""Grid monitoring: periodic sampling of site state.

A :class:`GridMonitor` runs as a simulation process, sampling each
Vsite's queue depth, running jobs, and free CPUs on a fixed period —
the load-information feed the section-6 resource broker needs, and the
raw material of utilization plots.
"""

from __future__ import annotations

import math
import typing
from dataclasses import dataclass

from repro.simkernel import Simulator

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.grid.build import Grid

__all__ = ["Sample", "GridMonitor"]


@dataclass(frozen=True, slots=True)
class Sample:
    """One observation of one Vsite."""

    time: float
    usite: str
    vsite: str
    queued: int
    running: int
    free_cpus: int
    utilization: float


class GridMonitor:
    """Samples every Vsite of a grid on a fixed period."""

    def __init__(
        self, grid: "Grid", period_s: float = 300.0, horizon_s: float = math.inf
    ) -> None:
        if period_s <= 0:
            raise ValueError("period must be positive")
        self.grid = grid
        self.period_s = period_s
        self.horizon_s = horizon_s
        self.samples: list[Sample] = []
        grid.sim.process(self._run(), name="grid-monitor")

    def _run(self):
        sim: Simulator = self.grid.sim
        while sim.now < self.horizon_s:
            self._sample()
            yield sim.timeout(self.period_s)

    def _sample(self) -> None:
        now = self.grid.sim.now
        for usite_name, usite in self.grid.usites.items():
            for vsite_name, vsite in usite.vsites.items():
                batch = vsite.batch
                self.samples.append(Sample(
                    time=now,
                    usite=usite_name,
                    vsite=vsite_name,
                    queued=batch.pending_count,
                    running=batch.running_count,
                    free_cpus=batch.free_cpus,
                    utilization=batch.utilization(),
                ))

    # -- queries ---------------------------------------------------------
    def series(self, vsite: str) -> list[Sample]:
        """All samples of one Vsite, in time order."""
        return [s for s in self.samples if s.vsite == vsite]

    def peak_queue_depth(self) -> dict[str, int]:
        """Per-Vsite maximum observed backlog."""
        out: dict[str, int] = {}
        for s in self.samples:
            out[s.vsite] = max(out.get(s.vsite, 0), s.queued)
        return out

    def mean_utilization(self) -> dict[str, float]:
        sums: dict[str, list[float]] = {}
        for s in self.samples:
            sums.setdefault(s.vsite, []).append(s.utilization)
        return {v: sum(u) / len(u) for v, u in sums.items()}
