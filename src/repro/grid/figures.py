"""Render the paper's architecture figures from a *live* grid.

Figures 1 and 2 of the paper are wiring diagrams.  The strongest form of
structural reproduction is to generate those diagrams from the running
system itself: what you see is what is actually instantiated — hosts,
links, tiers, certificates, Vsites — not a drawing that could drift from
the code.
"""

from __future__ import annotations

from repro.server.usite import Usite

__all__ = ["figure1", "figure2"]


def figure1(usite: Usite) -> str:
    """The detailed single-site architecture (paper Figure 1).

    Renders the three tiers of one Usite as currently wired: gateway
    host (with its server certificate), the firewall socket if split,
    the NJS with its Vsites, batch systems, and data spaces.
    """
    lines = []
    lines.append(f"Usite {usite.name}")
    lines.append("=" * (6 + len(usite.name)))
    lines.append("user tier:")
    lines.append("  [Web browser + signed JPA/JMC applets]")
    lines.append("        | https (mutual X.509 authentication)")
    lines.append("        v")
    lines.append("UNICORE server tier:")
    gw = usite.gateway
    lines.append(
        f"  [gateway @ {usite.gateway_host.name}]  cert={usite.server_cert.subject}"
    )
    lines.append(
        f"      applets: {sorted(gw.applets)}  "
        f"resource pages: {sorted(gw.resource_pages())}"
    )
    lines.append(f"      UUDB: {len(usite.uudb)} mapping(s)")
    if usite.firewall_split:
        lines.append("        | firewall socket (site-selectable port)")
        lines.append(f"  [NJS @ {usite.njs_host.name}]")
    else:
        lines.append(f"  [NJS co-located @ {usite.njs_host.name}]")
    lines.append("        | incarnation via translation tables")
    lines.append("        v")
    lines.append("batch subsystem tier:")
    for name, vsite in sorted(usite.vsites.items()):
        m = vsite.machine
        lines.append(
            f"  [Vsite {name}: {m.architecture}, {m.cpus} cpus, "
            f"{vsite.batch.dialect.display_name}; queues "
            f"{sorted(vsite.batch.queues)}]"
        )
        lines.append(
            f"      Uspace spool: {len(vsite.uspaces.active_jobs)} active "
            f"job dir(s)"
        )
    lines.append(f"  [Xspace {usite.xspace.fs.name}: "
                 f"{usite.xspace.fs.file_count()} file(s)]")
    return "\n".join(lines)


def figure2(grid) -> str:
    """The multi-site overview (paper Figure 2), from live peer routes."""
    lines = ["UNICORE grid", "============"]
    for name in sorted(grid.usites):
        usite = grid.usites[name]
        machines = ", ".join(
            v.machine.architecture for v in usite.vsites.values()
        )
        lines.append(f"  Usite {name}: {machines}")
    lines.append("")
    lines.append("server-to-server connections (job groups / data / control):")
    seen = set()
    for name in sorted(grid.usites):
        njs = grid.usites[name].njs
        for peer, route in sorted(njs._peer_routes.items()):
            key = frozenset((name, peer))
            if key in seen:
                continue
            seen.add(key)
            hops = " -> ".join([route[0][0]] + [dst for _, dst in route])
            lines.append(f"  {name} <-> {peer}: {hops}")
    lines.append("")
    lines.append(
        f"users: {sorted(grid.users)} (one X.509 certificate each, "
        f"CA: {grid.ca.dn})"
    )
    return "\n".join(lines)
