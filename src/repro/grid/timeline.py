"""Per-job timelines: what happened when, across all tiers.

Builds a chronological account of one UNICORE job from the data the
architecture already keeps — outcome timestamps, batch records, and the
NJS's Codine ledger — and renders it as a text Gantt chart.  This is the
operational "where did my job spend its time" view the E1 experiment
aggregates.
"""

from __future__ import annotations

import math
import typing
from dataclasses import dataclass

from repro.ajo.outcome import AJOOutcome, FileOutcome, Outcome, TaskOutcome

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.server.njs.supervisor import NetworkJobSupervisor

__all__ = ["TimelineEntry", "job_timeline", "render_gantt"]


@dataclass(frozen=True, slots=True)
class TimelineEntry:
    """One span in a job's life."""

    action_id: str
    label: str
    kind: str  # "task" | "file" | "group"
    start: float
    end: float
    status: str

    @property
    def duration(self) -> float:
        return self.end - self.start


def _entry_for(outcome: Outcome, label: str, njs=None) -> TimelineEntry | None:
    start, end = outcome.submitted_at, outcome.completed_at
    if math.isnan(start) or math.isnan(end):
        return None
    kind = "file" if isinstance(outcome, FileOutcome) else "task"
    return TimelineEntry(
        action_id=outcome.action_id,
        label=label,
        kind=kind,
        start=start,
        end=end,
        status=outcome.status.value,
    )


def job_timeline(njs: "NetworkJobSupervisor", job_id: str) -> list[TimelineEntry]:
    """Chronological spans of every timed action of one job.

    For tasks that went through the batch tier, the batch record refines
    the span into queue-wait and execution using the Codine ledger's
    vendor binding.
    """
    run = njs.get_run(job_id)
    entries: list[TimelineEntry] = []
    labels = {a.id: a.name for a in run.root.walk()}

    for action_id, outcome in run.outcomes.items():
        if isinstance(outcome, AJOOutcome):
            continue
        label = labels.get(action_id, action_id)
        if isinstance(outcome, TaskOutcome) and action_id in run.batch_jobs:
            vsite_name, local_id = run.batch_jobs[action_id]
            record = njs.vsites[vsite_name].batch.query(local_id)
            if record.start_time is not None:
                entries.append(TimelineEntry(
                    action_id=action_id, label=f"{label} [queued]",
                    kind="task", start=record.submit_time,
                    end=record.start_time, status="queued",
                ))
            if record.start_time is not None and record.end_time is not None:
                entries.append(TimelineEntry(
                    action_id=action_id, label=f"{label} [run@{vsite_name}]",
                    kind="task", start=record.start_time,
                    end=record.end_time, status=outcome.status.value,
                ))
            continue
        entry = _entry_for(outcome, label)
        if entry is not None:
            entries.append(entry)
    entries.sort(key=lambda e: (e.start, e.end, e.label))
    return entries


def render_gantt(entries: list[TimelineEntry], width: int = 60) -> str:
    """A text Gantt chart of the timeline."""
    if not entries:
        return "(no timed entries)"
    t0 = min(e.start for e in entries)
    t1 = max(e.end for e in entries)
    span = max(t1 - t0, 1e-9)
    label_w = max(len(e.label) for e in entries)
    lines = [
        f"{'':{label_w}}  t={t0:.1f}s {'.' * (width - 16)} t={t1:.1f}s"
    ]
    for e in entries:
        lo = int((e.start - t0) / span * (width - 1))
        hi = max(lo + 1, int(round((e.end - t0) / span * (width - 1))))
        bar = " " * lo + "#" * (hi - lo)
        lines.append(
            f"{e.label:{label_w}}  |{bar:<{width}}| {e.duration:9.1f}s "
            f"{e.status}"
        )
    return "\n".join(lines)
