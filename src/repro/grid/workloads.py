"""Synthetic workload generation.

Two producers:

* :func:`synth_job` — UNICORE jobs with the paper's shapes (imports →
  compile-link-execute or script task → exports, optional multi-site
  pipelines), parameterized for the benchmarks;
* :class:`LocalLoadGenerator` — non-UNICORE batch jobs submitted directly
  to a Vsite's batch system, modeling the site's own users (experiment
  E8: UNICORE jobs are "treated the same way any other batch job is
  treated").

All randomness flows through an injected ``numpy`` generator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.batch.base import BatchJobSpec, BatchSystem
from repro.client.jpa import JobBuilder, JobPreparationAgent
from repro.resources.model import ResourceRequest, ResourceSet
from repro.simkernel import Simulator

__all__ = ["WorkloadProfile", "synth_job", "LocalLoadGenerator"]


@dataclass(frozen=True, slots=True)
class WorkloadProfile:
    """Distribution parameters for synthetic jobs.

    Runtimes are lognormal (the classic supercomputer-workload shape),
    CPU counts are powers of two between the bounds.
    """

    mean_runtime_s: float = 1800.0
    sigma_runtime: float = 1.0
    min_cpus: int = 1
    max_cpus: int = 64
    #: Ratio of requested time limit to actual runtime (users overask).
    limit_overask: float = 3.0
    script_fraction: float = 0.5

    def sample_runtime(self, rng: np.random.Generator) -> float:
        mu = np.log(self.mean_runtime_s) - self.sigma_runtime**2 / 2
        return float(rng.lognormal(mu, self.sigma_runtime))

    def sample_cpus(self, rng: np.random.Generator) -> int:
        lo = max(0, int(np.log2(self.min_cpus)))
        hi = max(lo, int(np.log2(self.max_cpus)))
        return int(2 ** rng.integers(lo, hi + 1))


def synth_job(
    jpa: JobPreparationAgent,
    rng: np.random.Generator,
    name: str,
    vsite: str,
    profile: WorkloadProfile | None = None,
) -> JobBuilder:
    """One synthetic single-site job: import → work → export."""
    profile = profile or WorkloadProfile()
    builder = jpa.new_job(name, vsite=vsite)
    runtime = profile.sample_runtime(rng)
    cpus = profile.sample_cpus(rng)
    resources = ResourceRequest(
        cpus=cpus,
        time_s=max(60.0, runtime * profile.limit_overask),
        memory_mb=float(64 * cpus),
    )
    imp = builder.import_from_xspace(f"/data/{name}/input.dat", "input.dat")
    if rng.random() < profile.script_fraction:
        work = builder.script_task(
            f"{name}-work",
            script=f"#!/bin/sh\n./application input.dat  # {name}\n",
            resources=resources,
            simulated_runtime_s=runtime,
        )
    else:
        _, _, work = builder.compile_link_execute(
            name,
            sources=[f"{name}.f90"],
            executable=f"{name}.exe",
            run_resources=resources,
            simulated_runtime_s=runtime,
        )
        # The compile needs its source in the uspace.
        src = builder.import_from_xspace(f"/data/{name}/{name}.f90", f"{name}.f90")
        first_exec = builder.ajo.tasks()[1]  # the compile task
        builder.depends(src, first_exec, files=[f"{name}.f90"])
    exp = builder.export_to_xspace("result.dat", f"/results/{name}.dat")
    builder.depends(imp, work, files=["input.dat"])
    builder.depends(work, exp, files=["result.dat"])
    return builder


class LocalLoadGenerator:
    """Site-local (non-UNICORE) batch load on one machine.

    Poisson arrivals; each job uses the machine's native dialect directly,
    exactly as the site's own users would.
    """

    def __init__(
        self,
        sim: Simulator,
        batch: BatchSystem,
        rng: np.random.Generator,
        arrival_rate_per_s: float,
        profile: WorkloadProfile | None = None,
        queue: str = "batch",
        horizon_s: float = math.inf,
    ) -> None:
        self.sim = sim
        self.batch = batch
        self.rng = rng
        self.arrival_rate = arrival_rate_per_s
        self.profile = profile or WorkloadProfile()
        self.queue = queue
        self.horizon_s = horizon_s
        self.submitted: list[str] = []
        sim.process(self._run(), name=f"local-load:{batch.machine.name}")

    def _spec(self, index: int) -> BatchJobSpec:
        runtime = self.profile.sample_runtime(self.rng)
        cpus = min(self.profile.sample_cpus(self.rng), self.batch.machine.cpus)
        resources = ResourceSet(
            cpus=cpus,
            time_s=max(60.0, runtime * self.profile.limit_overask),
            memory_mb=float(
                min(64 * cpus, self.batch.machine.total_memory_mb)
            ),
        )
        script = self.batch.dialect.render_script(
            f"local{index}", self.queue, resources, ["./local_app"]
        )
        return BatchJobSpec(
            name=f"local{index}",
            owner=f"siteuser{index % 17}",
            queue=self.queue,
            script=script,
            resources=resources,
            wallclock_s=runtime,
            origin="local",
        )

    def _run(self):
        index = 0
        while self.sim.now < self.horizon_s:
            gap = float(self.rng.exponential(1.0 / self.arrival_rate))
            yield self.sim.timeout(gap)
            if self.sim.now >= self.horizon_s:
                break
            index += 1
            try:
                self.submitted.append(self.batch.submit(self._spec(index)))
            except Exception:
                # Queue-limit rejections are part of life at a real site.
                continue
