"""Instrumentation helpers for experiments and benchmarks."""

from __future__ import annotations

import typing
from dataclasses import dataclass

import numpy as np

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.observability import Trace

__all__ = ["TierTimes", "summarize_turnarounds", "percentiles"]


@dataclass(slots=True)
class TierTimes:
    """Per-tier latency breakdown of one end-to-end job (experiment E1).

    Historically assembled by hand from scattered instrumentation
    attributes; now a thin view over the per-job trace — build one with
    :meth:`from_trace` and the span names do the bookkeeping.
    """

    handshake_s: float = 0.0
    applet_load_s: float = 0.0
    consign_s: float = 0.0
    gateway_auth_s: float = 0.0
    incarnation_s: float = 0.0
    batch_wait_s: float = 0.0
    execution_s: float = 0.0
    staging_s: float = 0.0
    outcome_return_s: float = 0.0

    @classmethod
    def from_trace(
        cls, trace: "Trace", session_trace: "Trace | None" = None
    ) -> "TierTimes":
        """Derive the breakdown from a job trace (plus optional session
        trace for the handshake/applet columns).

        ``consign_s`` is the client-observed consignment time minus the
        gateway authentication it contains, so the rows stay additive.
        The auth column counts the consign-path authentication (the
        first one); later requests re-authenticate inside their own
        client-side spans.
        """
        first_auth = trace.first("gateway.auth")
        gateway_auth = first_auth.duration if first_auth is not None else 0.0
        return cls(
            handshake_s=(
                session_trace.total("client.handshake") if session_trace else 0.0
            ),
            applet_load_s=(
                session_trace.total("client.applet_load")
                + session_trace.total("client.resource_pages")
                if session_trace
                else 0.0
            ),
            consign_s=max(trace.total("client.submit") - gateway_auth, 0.0),
            gateway_auth_s=gateway_auth,
            incarnation_s=trace.total("njs.incarnate"),
            batch_wait_s=trace.total("batch.wait"),
            execution_s=trace.total("batch.execute"),
            staging_s=(
                trace.total("njs.stage")
                + trace.total("njs.import")
                + trace.total("njs.export")
                + trace.total("njs.transfer")
            ),
            outcome_return_s=trace.total("client.outcome"),
        )

    def middleware_total(self) -> float:
        """Everything UNICORE adds on top of the batch system."""
        return (
            self.handshake_s
            + self.applet_load_s
            + self.consign_s
            + self.gateway_auth_s
            + self.incarnation_s
            + self.staging_s
            + self.outcome_return_s
        )

    def total(self) -> float:
        return self.middleware_total() + self.batch_wait_s + self.execution_s

    def rows(self) -> list[tuple[str, float]]:
        return [
            ("SSL handshake + applet load", self.handshake_s + self.applet_load_s),
            ("consignment (client->NJS)", self.consign_s),
            ("gateway authentication+mapping", self.gateway_auth_s),
            ("incarnation", self.incarnation_s),
            ("file staging", self.staging_s),
            ("batch queue wait", self.batch_wait_s),
            ("execution", self.execution_s),
            ("outcome return", self.outcome_return_s),
        ]


def percentiles(values: typing.Sequence[float], ps=(50, 90, 99)) -> dict[int, float]:
    if not values:
        return {p: float("nan") for p in ps}
    arr = np.asarray(values, dtype=float)
    return {p: float(np.percentile(arr, p)) for p in ps}


def summarize_turnarounds(values: typing.Sequence[float]) -> dict[str, float]:
    """Mean/percentile summary used by several benchmark tables."""
    if not values:
        return {"count": 0, "mean": float("nan"), "p50": float("nan"),
                "p90": float("nan"), "max": float("nan")}
    arr = np.asarray(values, dtype=float)
    return {
        "count": int(arr.size),
        "mean": float(arr.mean()),
        "p50": float(np.percentile(arr, 50)),
        "p90": float(np.percentile(arr, 90)),
        "max": float(arr.max()),
    }
