"""Instrumentation helpers for experiments and benchmarks."""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

import numpy as np

__all__ = ["TierTimes", "summarize_turnarounds", "percentiles"]


@dataclass(slots=True)
class TierTimes:
    """Per-tier latency breakdown of one end-to-end job (experiment E1)."""

    handshake_s: float = 0.0
    applet_load_s: float = 0.0
    consign_s: float = 0.0
    gateway_auth_s: float = 0.0
    incarnation_s: float = 0.0
    batch_wait_s: float = 0.0
    execution_s: float = 0.0
    staging_s: float = 0.0
    outcome_return_s: float = 0.0

    def middleware_total(self) -> float:
        """Everything UNICORE adds on top of the batch system."""
        return (
            self.handshake_s
            + self.applet_load_s
            + self.consign_s
            + self.gateway_auth_s
            + self.incarnation_s
            + self.staging_s
            + self.outcome_return_s
        )

    def total(self) -> float:
        return self.middleware_total() + self.batch_wait_s + self.execution_s

    def rows(self) -> list[tuple[str, float]]:
        return [
            ("SSL handshake + applet load", self.handshake_s + self.applet_load_s),
            ("consignment (client->NJS)", self.consign_s),
            ("gateway authentication+mapping", self.gateway_auth_s),
            ("incarnation", self.incarnation_s),
            ("file staging", self.staging_s),
            ("batch queue wait", self.batch_wait_s),
            ("execution", self.execution_s),
            ("outcome return", self.outcome_return_s),
        ]


def percentiles(values: typing.Sequence[float], ps=(50, 90, 99)) -> dict[int, float]:
    if not values:
        return {p: float("nan") for p in ps}
    arr = np.asarray(values, dtype=float)
    return {p: float(np.percentile(arr, p)) for p in ps}


def summarize_turnarounds(values: typing.Sequence[float]) -> dict[str, float]:
    """Mean/percentile summary used by several benchmark tables."""
    if not values:
        return {"count": 0, "mean": float("nan"), "p50": float("nan"),
                "p90": float("nan"), "max": float("nan")}
    arr = np.asarray(values, dtype=float)
    return {
        "count": int(arr.size),
        "mean": float(arr.mean()),
        "p50": float(np.percentile(arr, 50)),
        "p90": float(np.percentile(arr, 90)),
        "max": float(arr.max()),
    }
