"""Grid construction: sites, PKI, applets, users, and the WAN.

:func:`build_german_grid` reproduces the production deployment of paper
section 5.7: FZ Jülich, RUS Stuttgart, RUKA Karlsruhe, LRZ Munich, ZIB
Berlin, and DWD Offenbach, running Cray T3E, Fujitsu VPP/700, IBM SP-2,
and NEC SX-4 systems, all trusting one CA (the DFN-PCA role).
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.batch.machines import machine
from repro.client.browser import Browser, UnicoreSession
from repro.grid.snapshot import GridSnapshot
from repro.net.transport import Transport, TransportSpec, resolve_transport
from repro.security.applet import AppletBundle, SignedApplet, sign_applet
from repro.security.ca import CertificateAuthority, CertificateStore
from repro.security.x509 import CertificateRole, DistinguishedName
from repro.server.usite import Usite
from repro.simkernel import Simulator
from repro.storage.backend import StorageBackend, StorageSpec, resolve_storage
from repro.storage.errors import SnapshotError
from repro.vfs.spaces import Workstation

__all__ = ["Grid", "GridUser", "build_grid", "build_german_grid"]

#: The six production sites of section 5.7 and their machines.
GERMAN_SITES: dict[str, list[str]] = {
    "FZJ": ["FZJ-T3E"],
    "RUS": ["RUS-T3E"],
    "RUKA": ["RUKA-SP2"],
    "LRZ": ["LRZ-VPP"],
    "ZIB": ["ZIB-SP2"],
    "DWD": ["DWD-SX4"],
}

#: 1999-era WAN between German research centers (B-WiN): 2 Mbit/s slices,
#: ~15 ms one-way latency.
WAN_LATENCY_S = 0.015
WAN_BANDWIDTH_BPS = 250_000.0
#: User access lines were slower still (ISDN/early DSL uplinks aside,
#: university LANs reached the WAN at similar rates).
ACCESS_LATENCY_S = 0.010
ACCESS_BANDWIDTH_BPS = 250_000.0


@dataclass(slots=True)
class GridUser:
    """A user: certificate, workstation, and a browser on a named host."""

    name: str
    browser: Browser
    workstation: Workstation


class Grid:
    """A running multi-site UNICORE deployment."""

    def __init__(
        self,
        sim: Simulator,
        network: Transport,
        ca: CertificateAuthority,
        storage: StorageBackend | None = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.ca = ca
        #: One durable backend shared by every Usite (tables are
        #: prefixed per site), so one dump captures the whole grid.
        self.storage = storage if storage is not None else resolve_storage(None)
        self.usites: dict[str, Usite] = {}
        self.users: dict[str, GridUser] = {}
        self.applets: dict[str, SignedApplet] = {}
        self._user_seq = 0
        #: Round-robin position per Usite for gateway load balancing.
        self._gateway_rr: dict[str, int] = {}
        #: Set by :func:`repro.broker.service.attach_broker`.
        self.broker = None
        #: Deterministic rebuild recipes, recorded by :func:`build_grid`
        #: and :meth:`add_user` — what :meth:`snapshot` serializes in
        #: place of unpicklable live objects.
        self._build_recipe: dict | None = None
        self._user_recipes: list[dict] = []

    # -- construction --------------------------------------------------------
    def add_usite(self, name: str, machine_names: list[str], **usite_kw) -> Usite:
        usite = Usite(
            self.sim,
            self.network,
            name,
            self.ca,
            machines=[machine(m) for m in machine_names],
            applets=self.applets,
            storage=self.storage,
            **usite_kw,
        )
        self.usites[name] = usite
        return usite

    def connect_all(
        self,
        latency_s: float = WAN_LATENCY_S,
        bandwidth_Bps: float = WAN_BANDWIDTH_BPS,
        loss_probability: float = 0.0,
    ) -> None:
        """Full WAN mesh between all Usites (Figure 2)."""
        names = sorted(self.usites)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                self.usites[a].connect_to(
                    self.usites[b],
                    latency_s=latency_s,
                    bandwidth_Bps=bandwidth_Bps,
                    loss_probability=loss_probability,
                )

    def add_user(
        self,
        cn: str,
        organization: str = "",
        logins: dict[str, str] | None = None,
        home_sites: typing.Iterable[str] | None = None,
        register: bool = True,
    ) -> GridUser:
        """Create a user: certificate, UUDB entries, workstation, browser.

        ``logins`` maps Usite name → local login; sites not listed get no
        mapping (access there will be refused — the paper's model).
        ``register=False`` skips the UUDB writes — the snapshot-restore
        path, where the mappings already came back from durable storage
        and re-adding them would be a duplicate.
        """
        home_sites = None if home_sites is None else list(home_sites)
        self._user_recipes.append({
            "cn": cn,
            "organization": organization,
            "logins": dict(logins or {}),
            "home_sites": home_sites,
        })
        dn = DistinguishedName(cn=cn, o=organization, c="DE")
        cert, key = self.ca.issue(dn, role=CertificateRole.USER)
        if register:
            for usite_name, login in (logins or {}).items():
                self.usites[usite_name].add_user(dn, login)

        self._user_seq += 1
        host_name = f"ws{self._user_seq}.{cn.split()[0].lower()}"
        self.network.add_host(host_name)
        # Workstations sit on the user's side of the WAN boundary: a
        # realtime transport carries their gateway traffic over sockets.
        self.network.mark_wan(host_name)
        for usite_name in home_sites or self.usites:
            # One access line per gateway host, so a load-balanced Usite
            # is reachable through any of its gateways.
            for gw_host in self.usites[usite_name].gateway_hosts:
                self.network.link(
                    host_name,
                    gw_host.name,
                    latency_s=ACCESS_LATENCY_S,
                    bandwidth_Bps=ACCESS_BANDWIDTH_BPS,
                )
        workstation = Workstation(str(dn))
        browser = Browser(
            self.sim,
            self.network,
            host_name,
            user_cert=cert,
            user_key=key,
            trust_store=CertificateStore(trusted=[self.ca]),
            workstation=workstation,
        )
        user = GridUser(name=cn, browser=browser, workstation=workstation)
        self.users[cn] = user
        return user

    # -- checkpointing -------------------------------------------------------
    def snapshot(self) -> GridSnapshot:
        """Capture the whole deployment for a later warm restart.

        Serializes the build recipe, every durable table and log, the
        users (with their workstation files), and the simkernel cursors
        (clock, message ids, link loss-RNG states).  Live sessions and
        in-flight events are not captured: jobs caught mid-run come back
        through journal replay on restore.  Only grids built by
        :func:`build_grid` can snapshot — hand-assembled ones have no
        recorded recipe.
        """
        if self._build_recipe is None:
            raise SnapshotError(
                "snapshot() requires a build_grid()-built grid "
                "(no build recipe recorded)"
            )
        return GridSnapshot(
            clock=self.sim.now,
            build=dict(self._build_recipe),
            users=[dict(recipe) for recipe in self._user_recipes],
            workstation_files={
                name: {
                    path: user.workstation.fs.read(path)
                    for path in user.workstation.fs.walk_files("/")
                }
                for name, user in self.users.items()
            },
            storage=self.storage.dump(),
            network=self.network.state_cursors(),
            gateway_rr=dict(self._gateway_rr),
        )

    # -- convenience -------------------------------------------------------------
    def connect_plan(
        self, user: GridUser, usite_name: str, gateway: int | None = None
    ) -> typing.Generator:
        """The §4.1 connect sequence as a plan generator (backend-neutral).

        On a multi-gateway Usite, sessions are spread round-robin over
        the gateways unless ``gateway`` pins a specific index.  Both
        session facades drive this same generator — the blocking one via
        :meth:`connect_user`, the async one through the transport pump.
        """
        usite = self.usites[usite_name]
        if gateway is None:
            gateway = self._gateway_rr.get(usite_name, 0)
            self._gateway_rr[usite_name] = (gateway + 1) % len(usite.gateways)
        session = yield from user.browser.connect(
            usite, gateway=usite.gateways[gateway]
        )
        return session

    def connect_user(
        self, user: GridUser, usite_name: str, gateway: int | None = None
    ) -> UnicoreSession:
        """Run the browser-connect plan to completion (blocking helper)."""
        proc = self.sim.process(
            self.connect_plan(user, usite_name, gateway),
            name=f"connect:{user.name}@{usite_name}",
        )
        return typing.cast(UnicoreSession, self.sim.run(until=proc))


def _build_applets(ca: CertificateAuthority) -> dict[str, SignedApplet]:
    """The signed JPA and JMC applets every gateway serves (section 4.1)."""
    dev_cert, dev_key = ca.issue(
        DistinguishedName(cn="UNICORE Software", o="UNICORE Consortium", c="DE"),
        role=CertificateRole.SOFTWARE,
    )
    applets = {}
    for name, classes in (
        ("JPA", ["JobTree", "TaskEditor", "ResourcePanel", "SubmitDialog"]),
        ("JMC", ["StatusTree", "OutputViewer", "ControlPanel"]),
    ):
        bundle = AppletBundle(name=name, version="3.0")
        for cls in classes:
            # Synthetic class files: content derives from the name so two
            # builds are identical (and tampering is detectable).
            bundle.add_file(
                f"{name.lower()}/{cls}.class",
                b"\xca\xfe\xba\xbe" + cls.encode() * 400,
            )
        applets[name] = sign_applet(bundle, dev_cert, dev_key)
    return applets


def build_grid(
    sites: dict[str, list[str]] | None = None,
    seed: int = 0,
    wan_latency_s: float = WAN_LATENCY_S,
    wan_bandwidth_Bps: float = WAN_BANDWIDTH_BPS,
    wan_loss: float = 0.0,
    key_bits: int = 384,
    gateways: int | dict[str, int] = 1,
    max_active_per_user: int | None = None,
    transport: "TransportSpec | str | None" = None,
    storage: "StorageSpec | str | None" = None,
    restore_from: "GridSnapshot | str | None" = None,
) -> Grid:
    """Build a grid with the given ``{usite: [machine names]}`` layout.

    ``gateways`` deploys that many load-balanced gateways per Usite
    (or per-site counts as a ``{usite: n}`` mapping).
    ``max_active_per_user`` sets every site's fair-use concurrency cap.
    ``transport`` picks the message fabric: ``None``/``"sim"`` for the
    deterministic simkernel backend, ``"aio"`` (or a
    :class:`~repro.net.transport.TransportSpec` with options) for real
    asyncio TCP sockets on the WAN edges.
    ``storage`` picks the durable backend for every site's state
    (``None`` resolves ``REPRO_STORAGE``, default ``"memory"``;
    ``"sqlite"`` or ``"sqlite:/path/grid.db"`` for SQLite).
    ``restore_from`` rebuilds a grid from a :class:`GridSnapshot` (or a
    saved snapshot path) instead of starting fresh: same topology and
    certificates, virtual clock resumed, finished jobs restored from
    storage, incomplete ones replayed.  All other arguments then come
    from the snapshot's build recipe, except ``storage``, which may be
    overridden (e.g. to thaw a file-backed snapshot into memory).
    """
    snap: GridSnapshot | None = None
    if restore_from is not None:
        snap = (
            restore_from
            if isinstance(restore_from, GridSnapshot)
            else GridSnapshot.load(restore_from)
        )
        recipe = snap.build
        sites = {
            name: list(machines)
            for name, machines in typing.cast(dict, recipe["sites"]).items()
        }
        seed = int(typing.cast(int, recipe["seed"]))
        wan_latency_s = float(typing.cast(float, recipe["wan_latency_s"]))
        wan_bandwidth_Bps = float(typing.cast(float, recipe["wan_bandwidth_Bps"]))
        wan_loss = float(typing.cast(float, recipe["wan_loss"]))
        key_bits = int(typing.cast(int, recipe["key_bits"]))
        raw_gateways = recipe["gateways"]
        gateways = (
            {k: int(v) for k, v in raw_gateways.items()}
            if isinstance(raw_gateways, dict)
            else int(typing.cast(int, raw_gateways))
        )
        max_active_per_user = typing.cast("int | None", recipe["max_active_per_user"])
        tr = typing.cast(dict, recipe["transport"])
        transport = TransportSpec(
            kind=str(tr["kind"]), options=dict(tr["options"])
        )
        if storage is None:
            st = typing.cast(dict, recipe["storage"])
            storage = StorageSpec(kind=str(st["kind"]), options=dict(st["options"]))
    if sites is None:
        raise TypeError("build_grid() needs sites= unless restore_from= is given")

    transport_spec = TransportSpec.parse(transport)
    storage_spec = StorageSpec.parse(storage)
    sim = Simulator(start=snap.clock if snap is not None else 0.0)
    network = resolve_transport(transport_spec, sim, seed=seed)
    backend = resolve_storage(storage_spec)
    if snap is not None:
        backend.load(snap.storage)
    ca = CertificateAuthority(key_bits=key_bits, seed=seed)
    grid = Grid(sim, network, ca, storage=backend)
    grid._build_recipe = {
        "sites": {name: list(machines) for name, machines in sites.items()},
        "seed": seed,
        "wan_latency_s": wan_latency_s,
        "wan_bandwidth_Bps": wan_bandwidth_Bps,
        "wan_loss": wan_loss,
        "key_bits": key_bits,
        "gateways": dict(gateways) if isinstance(gateways, dict) else gateways,
        "max_active_per_user": max_active_per_user,
        "transport": {
            "kind": transport_spec.kind,
            "options": dict(transport_spec.options),
        },
        "storage": {
            "kind": storage_spec.kind,
            "options": dict(storage_spec.options),
        },
    }
    grid.applets.update(_build_applets(ca))
    for name, machines in sites.items():
        count = gateways.get(name, 1) if isinstance(gateways, dict) else gateways
        grid.add_usite(
            name, machines, gateway_count=count,
            max_active_per_user=max_active_per_user,
        )
    grid.connect_all(
        latency_s=wan_latency_s,
        bandwidth_Bps=wan_bandwidth_Bps,
        loss_probability=wan_loss,
    )
    if snap is not None:
        for recipe_user in snap.users:
            rec = typing.cast(dict, recipe_user)
            user = grid.add_user(
                str(rec["cn"]),
                str(rec["organization"]),
                logins=typing.cast(dict, rec["logins"]),
                home_sites=typing.cast("list | None", rec["home_sites"]),
                register=False,
            )
            files = typing.cast(dict, snap.workstation_files.get(rec["cn"], {}))
            for path, content in files.items():
                user.workstation.fs.write(path, content)
        network.restore_cursors(snap.network)
        grid._gateway_rr.update(snap.gateway_rr)
        # Sites cold-start from the loaded dump: finished jobs reappear
        # as restored listings, incomplete ones are replayed.
        for usite in grid.usites.values():
            usite.njs.recover()
    return grid


def build_german_grid(seed: int = 0, **kw) -> Grid:
    """The six-site production deployment of paper section 5.7."""
    return build_grid(GERMAN_SITES, seed=seed, **kw)
