"""The UNICORE User DataBase (UUDB): DN → local login mapping.

Paper, section 4: "The unique user identification is translated by the
UNICORE server into the user's user-id on the execution host.  This
mechanism eliminates the need to install uniform UNIX uid/gid pairs for
UNICORE users."  And section 5.2: "Each UNICORE site administration
therefore maintains a user data base for the local mapping."

Each Usite's gateway holds one :class:`UUDB`.  A mapping may be further
restricted per Vsite (different logins on different execution hosts of
one site) and can be disabled without deletion (user on leave, security
incident).  Sites requiring extra authentication (smart cards, DCE — per
the paper) can install a site-specific check hook.
"""

from __future__ import annotations

import typing
from dataclasses import asdict, dataclass

from repro.security.errors import MappingError
from repro.security.x509 import Certificate, DistinguishedName

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.storage.backend import StorageBackend

__all__ = ["UserMapping", "UUDB"]


@dataclass(slots=True)
class UserMapping:
    """One site-local identity for a UNICORE user.

    Attributes
    ----------
    login:
        The local user-id on the execution host(s).
    gid:
        Primary account group (the AJO carries the user account group).
    vsite:
        If non-empty, the mapping applies only on that Vsite; an empty
        string means "all Vsites of this Usite".
    enabled:
        Disabled mappings are retained but refuse authentication.
    """

    dn: str
    login: str
    gid: str = "users"
    vsite: str = ""
    enabled: bool = True


class UUDB:
    """Per-Usite user database maintained by the site administration."""

    def __init__(
        self, site_name: str, storage: "StorageBackend | None" = None
    ) -> None:
        self.site_name = site_name
        # dn string -> list of mappings (general + per-vsite overrides)
        self._mappings: dict[str, list[UserMapping]] = {}
        #: Optional extra site-specific authentication (smart card / DCE).
        self._site_check: typing.Callable[[Certificate], bool] | None = None
        self.lookups = 0  # instrumentation for experiment E6
        #: Durable mapping table ("the site administration's database");
        #: None keeps the historical in-memory-only behavior.
        self._table = (
            storage.table(f"{site_name}.uudb") if storage is not None else None
        )
        if self._table is not None and len(self._table):
            self.reload()

    # -- persistence ---------------------------------------------------------
    def _persist(self, dn: str) -> None:
        if self._table is None:
            return
        entries = self._mappings.get(dn)
        if entries:
            self._table.put(dn, [asdict(m) for m in entries])
        else:
            self._table.delete(dn)

    def reload(self) -> None:
        """Rebuild the in-memory table from storage (site cold start)."""
        if self._table is None:
            return
        self._mappings.clear()
        for dn, rows in self._table.items():
            self._mappings[dn] = [
                UserMapping(**typing.cast(dict, row))
                for row in typing.cast(list, rows)
            ]

    # -- administration ------------------------------------------------------
    def add(self, mapping: UserMapping) -> None:
        """Register a mapping; per-(dn, vsite) pairs must be unique."""
        entries = self._mappings.setdefault(mapping.dn, [])
        if any(m.vsite == mapping.vsite for m in entries):
            raise ValueError(
                f"duplicate mapping for {mapping.dn!r} on vsite "
                f"{mapping.vsite or '<all>'!r}"
            )
        entries.append(mapping)
        self._persist(mapping.dn)

    def add_user(
        self,
        dn: DistinguishedName | str,
        login: str,
        gid: str = "users",
        vsite: str = "",
    ) -> UserMapping:
        """Convenience wrapper around :meth:`add`."""
        mapping = UserMapping(dn=str(dn), login=login, gid=gid, vsite=vsite)
        self.add(mapping)
        return mapping

    def remove(self, dn: DistinguishedName | str, vsite: str = "") -> None:
        entries = self._mappings.get(str(dn), [])
        kept = [m for m in entries if m.vsite != vsite]
        if len(kept) == len(entries):
            raise MappingError(f"no mapping for {dn} on vsite {vsite or '<all>'!r}")
        if kept:
            self._mappings[str(dn)] = kept
        else:
            del self._mappings[str(dn)]
        self._persist(str(dn))

    def disable(self, dn: DistinguishedName | str) -> None:
        """Disable every mapping for ``dn`` (kept on file, refuses auth)."""
        entries = self._mappings.get(str(dn))
        if not entries:
            raise MappingError(f"no mapping for {dn}")
        for m in entries:
            m.enabled = False
        self._persist(str(dn))

    def enable(self, dn: DistinguishedName | str) -> None:
        entries = self._mappings.get(str(dn))
        if not entries:
            raise MappingError(f"no mapping for {dn}")
        for m in entries:
            m.enabled = True
        self._persist(str(dn))

    def install_site_check(
        self, check: typing.Callable[[Certificate], bool]
    ) -> None:
        """Install the site-specific extra authentication hook."""
        self._site_check = check

    # -- lookup ----------------------------------------------------------------
    def map_certificate(self, certificate: Certificate, vsite: str = "") -> UserMapping:
        """Map an (already validated) user certificate to a local identity.

        Prefers a Vsite-specific mapping over the site-wide one.  Raises
        :class:`MappingError` if the DN is unknown, disabled, or the
        site-specific check rejects the certificate.
        """
        if self._site_check is not None and not self._site_check(certificate):
            raise MappingError(
                f"site {self.site_name}: site-specific authentication refused "
                f"{certificate.subject}"
            )
        return self.map_dn(str(certificate.subject), vsite=vsite)

    def map_dn(self, dn: str, vsite: str = "") -> UserMapping:
        """Map a distinguished name (certificate already validated upstream)."""
        self.lookups += 1
        entries = self._mappings.get(dn)
        if not entries:
            raise MappingError(
                f"site {self.site_name}: no local account for {dn!r}"
            )
        specific = next((m for m in entries if m.vsite == vsite and vsite), None)
        general = next((m for m in entries if m.vsite == ""), None)
        mapping = specific or general
        if mapping is None:
            raise MappingError(
                f"site {self.site_name}: {dn!r} has no mapping valid on "
                f"vsite {vsite!r}"
            )
        if not mapping.enabled:
            raise MappingError(f"site {self.site_name}: account for {dn!r} disabled")
        return mapping

    def __len__(self) -> int:
        return sum(len(v) for v in self._mappings.values())

    def known_dns(self) -> list[str]:
        return sorted(self._mappings)
