"""Security substrate: toy PKI reproducing UNICORE's security architecture.

The paper's security architecture (sections 4 and 5.2) rests on https/SSL
with X.509v3 certificates for *users*, *servers*, and *software* (signed
applets), issued by a Certificate Authority, plus a per-site user database
(UUDB) that maps a certificate's distinguished name to the local login.

This package implements every piece from scratch:

- :mod:`repro.security.numbertheory` — Miller–Rabin primality, modular
  inverse, deterministic prime generation;
- :mod:`repro.security.rsa` — RSA key generation and SHA-256 based
  sign/verify (textbook RSA with a fixed-pad scheme: real signatures,
  small keys, no pretension of production cryptography);
- :mod:`repro.security.x509` — certificates with subject/issuer DNs,
  validity windows, serials, and extensions;
- :mod:`repro.security.ca` — certificate authority, chains, revocation;
- :mod:`repro.security.applet` — signed software bundles with manifest
  hashing (tamper detection, paper section 5.2);
- :mod:`repro.security.ssl` — an SSL-style mutual-authentication
  handshake producing sessions with integrity-protected records;
- :mod:`repro.security.uudb` — the UNICORE user database: DN → local
  uid/gid mapping maintained by each site administration.
"""

from repro.security.errors import (
    AuthenticationError,
    CertificateError,
    CertificateExpired,
    CertificateRevoked,
    MappingError,
    SignatureInvalid,
    TamperedBundleError,
    UntrustedIssuer,
)
from repro.security.rsa import RSAKeyPair, RSAPublicKey, sign, verify
from repro.security.x509 import Certificate, DistinguishedName, Validity
from repro.security.ca import CertificateAuthority, CertificateStore
from repro.security.applet import AppletBundle, SignedApplet, sign_applet, verify_applet
from repro.security.ssl import SSLSession, ssl_handshake
from repro.security.uudb import UUDB, UserMapping

__all__ = [
    "AppletBundle",
    "AuthenticationError",
    "Certificate",
    "CertificateAuthority",
    "CertificateError",
    "CertificateExpired",
    "CertificateRevoked",
    "CertificateStore",
    "DistinguishedName",
    "MappingError",
    "RSAKeyPair",
    "RSAPublicKey",
    "SSLSession",
    "SignatureInvalid",
    "SignedApplet",
    "TamperedBundleError",
    "UUDB",
    "UntrustedIssuer",
    "UserMapping",
    "Validity",
    "sign",
    "sign_applet",
    "ssl_handshake",
    "verify",
    "verify_applet",
]
