"""SSL-style mutual authentication handshake and session records.

The paper (section 4.1): "During the SSL handshake between the UNICORE
server and the user's Web browser the server first presents its X.509
certificate to the browser in order to be validated.  Then the user's
certificate is given to the Web server for user authentication."

:func:`ssl_handshake` reproduces exactly that sequence against two
:class:`~repro.security.ca.CertificateStore` trust stores and yields a
pair of :class:`SSLSession` endpoints sharing a derived session key.
Records are integrity-protected with HMAC-SHA256 — enough to model
tampering and to account for the per-record byte overhead that experiment
E5 measures on bulk NJS-to-NJS transfers.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.security.ca import CertificateStore
from repro.security.errors import AuthenticationError, CertificateError
from repro.security.rsa import RSAKeyPair
from repro.security.x509 import Certificate

__all__ = ["SSLSession", "ssl_handshake", "HANDSHAKE_ROUND_TRIPS", "RECORD_OVERHEAD"]

#: Network round trips an SSL handshake costs (ClientHello/ServerHello+cert,
#: client cert + key exchange, finished) — used by the net layer to model
#: handshake latency.
HANDSHAKE_ROUND_TRIPS = 2

#: Bytes of framing + MAC added to every record (5-byte header + 32-byte MAC).
RECORD_OVERHEAD = 37

#: Maximum plaintext bytes per record (as in TLS).
MAX_RECORD_PAYLOAD = 16384


class _Endpoint:
    """One side of an established session: seals and opens records."""

    def __init__(self, key: bytes, peer: Certificate) -> None:
        self._key = key
        #: The authenticated peer certificate (the other side's identity).
        self.peer_certificate = peer
        self._send_seq = 0
        self._recv_seq = 0

    def seal(self, payload: bytes) -> bytes:
        """Wrap ``payload`` into an integrity-protected record."""
        if len(payload) > MAX_RECORD_PAYLOAD:
            raise ValueError(
                f"record payload {len(payload)} exceeds {MAX_RECORD_PAYLOAD}; "
                "fragment at a higher layer"
            )
        header = b"\x17\x03\x03" + len(payload).to_bytes(2, "big")
        mac = hmac.new(
            self._key, self._send_seq.to_bytes(8, "big") + header + payload,
            hashlib.sha256,
        ).digest()
        self._send_seq += 1
        return header + payload + mac

    def open(self, record: bytes) -> bytes:
        """Unwrap a record; raises :class:`AuthenticationError` on tampering."""
        if len(record) < 5 + 32:
            raise AuthenticationError("record too short")
        header, rest = record[:5], record[5:]
        length = int.from_bytes(header[3:5], "big")
        payload, mac = rest[:length], rest[length:]
        if len(payload) != length or len(mac) != 32:
            raise AuthenticationError("record framing corrupt")
        expected = hmac.new(
            self._key, self._recv_seq.to_bytes(8, "big") + header + payload,
            hashlib.sha256,
        ).digest()
        if not hmac.compare_digest(mac, expected):
            raise AuthenticationError("record MAC mismatch (tampered or replayed)")
        self._recv_seq += 1
        return payload


@dataclass(slots=True)
class SSLSession:
    """An established mutually-authenticated session (both endpoints)."""

    client: _Endpoint
    server: _Endpoint
    established_at: float

    @staticmethod
    def record_count(nbytes: int) -> int:
        """Number of records needed to carry ``nbytes`` of payload."""
        return max(1, -(-nbytes // MAX_RECORD_PAYLOAD))

    @staticmethod
    def wire_bytes(nbytes: int) -> int:
        """Total bytes on the wire for ``nbytes`` of payload (framing included)."""
        return nbytes + SSLSession.record_count(nbytes) * RECORD_OVERHEAD


def _derive_key(
    client_cert: Certificate, server_cert: Certificate, nonce: bytes
) -> bytes:
    material = (
        client_cert.tbs_bytes() + server_cert.tbs_bytes() + nonce
    )
    return hashlib.sha256(material).digest()


def ssl_handshake(
    *,
    client_cert: Certificate,
    client_key: RSAKeyPair,
    server_cert: Certificate,
    server_key: RSAKeyPair,
    client_store: CertificateStore,
    server_store: CertificateStore,
    now: float,
    nonce: bytes = b"",
) -> SSLSession:
    """Perform the mutual-authentication handshake of the paper.

    Order matches section 4.1: the *server* certificate is validated by
    the client first; only then is the *client* (user) certificate sent
    and validated by the server.  Each side also proves key possession by
    signing the handshake transcript.

    Raises
    ------
    AuthenticationError
        wrapping the underlying certificate failure, with a message saying
        which side failed.
    """
    # Step 1: client validates the server certificate.
    try:
        client_store.validate(server_cert, now)
    except CertificateError as err:
        raise AuthenticationError(f"server certificate rejected: {err}") from err
    # Server proves possession of the certified key.
    transcript = server_cert.tbs_bytes() + nonce
    try:
        from repro.security.rsa import verify

        verify(server_cert.public_key, transcript, server_key.sign(transcript))
    except Exception as err:  # key mismatch
        raise AuthenticationError(f"server key possession proof failed: {err}") from err
    if server_cert.public_key != server_key.public:
        raise AuthenticationError("server key does not match its certificate")

    # Step 2: server validates the client (user) certificate.
    try:
        server_store.validate(client_cert, now)
    except CertificateError as err:
        raise AuthenticationError(f"client certificate rejected: {err}") from err
    if client_cert.public_key != client_key.public:
        raise AuthenticationError("client key does not match its certificate")
    transcript = client_cert.tbs_bytes() + nonce
    from repro.security.rsa import verify as _verify

    _verify(client_cert.public_key, transcript, client_key.sign(transcript))

    key = _derive_key(client_cert, server_cert, nonce)
    return SSLSession(
        client=_Endpoint(key, peer=server_cert),
        server=_Endpoint(key, peer=client_cert),
        established_at=now,
    )
