"""Signed applet bundles.

In the paper (sections 4.1, 5.2) the GUI software — the Job Preparation
Agent and Job Monitor Controller — is delivered as *signed Java applets*:
"The applet certificate is checked to assure the user that the software
has not been tampered with and can be trusted."

An :class:`AppletBundle` is a named set of files (name → bytes); signing
produces a manifest of per-file SHA-256 digests plus an RSA signature over
the manifest by a *software* certificate's key.  Verification re-hashes
every file and fails on any added, removed, or modified byte.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.security.errors import SignatureInvalid, TamperedBundleError
from repro.security.rsa import RSAKeyPair, verify
from repro.security.x509 import Certificate, CertificateRole

__all__ = ["AppletBundle", "SignedApplet", "sign_applet", "verify_applet"]


@dataclass(slots=True)
class AppletBundle:
    """A software bundle: applet name, version, and its class files."""

    name: str
    version: str
    files: dict[str, bytes] = field(default_factory=dict)

    def add_file(self, path: str, content: bytes) -> None:
        if path in self.files:
            raise ValueError(f"duplicate file {path!r} in bundle")
        self.files[path] = content

    @property
    def total_size(self) -> int:
        return sum(len(c) for c in self.files.values())

    def manifest(self) -> dict:
        """Per-file SHA-256 digests plus bundle identity."""
        return {
            "name": self.name,
            "version": self.version,
            "files": {
                path: hashlib.sha256(content).hexdigest()
                for path, content in sorted(self.files.items())
            },
        }

    def manifest_bytes(self) -> bytes:
        return json.dumps(self.manifest(), sort_keys=True, separators=(",", ":")).encode()


@dataclass(slots=True)
class SignedApplet:
    """A bundle plus the developer's certificate and manifest signature."""

    bundle: AppletBundle
    signer_certificate: Certificate
    signature: int

    @property
    def name(self) -> str:
        return self.bundle.name


def sign_applet(
    bundle: AppletBundle, certificate: Certificate, keypair: RSAKeyPair
) -> SignedApplet:
    """Sign ``bundle`` with a *software*-role certificate's key."""
    if certificate.role != CertificateRole.SOFTWARE:
        raise SignatureInvalid(
            f"applets must be signed by a software certificate, got role "
            f"{certificate.role!r}"
        )
    if certificate.public_key != keypair.public:
        raise SignatureInvalid("certificate does not certify the signing key")
    return SignedApplet(
        bundle=bundle,
        signer_certificate=certificate,
        signature=keypair.sign(bundle.manifest_bytes()),
    )


def verify_applet(applet: SignedApplet) -> None:
    """Verify bundle integrity; raises :class:`TamperedBundleError`.

    Note this checks the *signature over the manifest* computed from the
    bundle's current content, so any file change invalidates it.  Trust in
    the signer certificate itself is established separately via
    :class:`~repro.security.ca.CertificateStore` (the browser does both).
    """
    try:
        verify(
            applet.signer_certificate.public_key,
            applet.bundle.manifest_bytes(),
            applet.signature,
        )
    except SignatureInvalid as err:
        raise TamperedBundleError(
            f"applet {applet.name!r} failed integrity verification: {err}"
        ) from err
