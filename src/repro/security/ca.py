"""Certificate Authority and trust store.

The paper (section 5.2) relies on "the existence of a Certificate
Authority (CA) to generate the X.509v3 certificates for the server
systems, the software developers, and the users", following the DFN-PCA
guidelines.  :class:`CertificateAuthority` plays that role: it issues
role-tagged certificates, maintains a revocation list, and its self-signed
root certificate anchors the :class:`CertificateStore` trust checks done
by gateways and browsers.
"""

from __future__ import annotations

from itertools import count

from repro.security.errors import (
    CertificateError,
    CertificateRevoked,
    SignatureInvalid,
    UntrustedIssuer,
)
from repro.security.rsa import RSAKeyPair
from repro.security.x509 import Certificate, CertificateRole, DistinguishedName, Validity

__all__ = ["CertificateAuthority", "CertificateStore"]

#: Default certificate lifetime: two simulated years (the project duration).
DEFAULT_LIFETIME = 2 * 365 * 24 * 3600.0


class CertificateAuthority:
    """Issues and revokes certificates under a self-signed root.

    Parameters
    ----------
    name:
        CN of the CA (e.g. ``"DFN-PCA"``).
    key_bits:
        RSA modulus size for the CA key and a default for issued keys.
    seed:
        Root seed making all key generation deterministic.
    """

    def __init__(
        self,
        name: str = "DFN-PCA",
        organization: str = "Deutsches Forschungsnetz",
        country: str = "DE",
        key_bits: int = 512,
        seed: int | None = None,
    ) -> None:
        self.dn = DistinguishedName(cn=name, o=organization, c=country)
        self.key_bits = key_bits
        self._seed = seed
        self._keypair = RSAKeyPair.generate(bits=key_bits, seed=seed)
        self._serials = count(1)
        self._issued: dict[int, Certificate] = {}
        self._revoked: dict[int, str] = {}
        self.root_certificate = self._make_root()

    def _make_root(self) -> Certificate:
        cert = Certificate(
            serial=next(self._serials),
            subject=self.dn,
            issuer=self.dn,
            public_key=self._keypair.public,
            validity=Validity(0.0, 10 * DEFAULT_LIFETIME),
            role=CertificateRole.CA,
        )
        signed = cert.with_signature(self._keypair.sign(cert.tbs_bytes()))
        self._issued[signed.serial] = signed
        return signed

    # -- issuance ---------------------------------------------------------
    def issue(
        self,
        subject: DistinguishedName,
        role: str,
        not_before: float = 0.0,
        lifetime: float = DEFAULT_LIFETIME,
        extensions: dict[str, str] | None = None,
        key_seed: int | None = None,
    ) -> tuple[Certificate, RSAKeyPair]:
        """Issue a certificate plus the fresh keypair it certifies.

        Returns ``(certificate, keypair)``; the caller keeps the private
        half (this CA does not escrow keys).
        """
        if role == CertificateRole.CA:
            raise CertificateError("subordinate CAs are issued via issue_sub_ca()")
        keypair = RSAKeyPair.generate(
            bits=self.key_bits,
            seed=key_seed if key_seed is not None else self._derive_seed(subject),
        )
        cert = Certificate(
            serial=next(self._serials),
            subject=subject,
            issuer=self.dn,
            public_key=keypair.public,
            validity=Validity(not_before, not_before + lifetime),
            role=role,
            extensions=extensions or {},
        )
        signed = cert.with_signature(self._keypair.sign(cert.tbs_bytes()))
        self._issued[signed.serial] = signed
        return signed, keypair

    def _derive_seed(self, subject: DistinguishedName) -> int | None:
        if self._seed is None:
            return None
        # Deterministic per-subject key material from the CA seed.
        import hashlib

        h = hashlib.sha256(f"{self._seed}:{subject}".encode()).digest()
        return int.from_bytes(h[:8], "big")

    # -- revocation ---------------------------------------------------------
    def revoke(self, certificate: Certificate, reason: str = "unspecified") -> None:
        """Add ``certificate`` to the revocation list."""
        if self._issued.get(certificate.serial) != certificate:
            raise CertificateError(
                f"certificate with serial {certificate.serial} was not issued "
                "by this CA"
            )
        self._revoked[certificate.serial] = reason

    def is_revoked(self, certificate: Certificate) -> bool:
        return certificate.serial in self._revoked

    @property
    def crl(self) -> dict[int, str]:
        """The certificate revocation list: serial → reason."""
        return dict(self._revoked)

    @property
    def issued_count(self) -> int:
        return len(self._issued)


class CertificateStore:
    """A trust store: validates certificates against trusted CAs.

    Gateways and browsers each hold one.  Validation checks, in order:
    issuer is trusted, signature verifies, validity window contains *now*,
    and the certificate is not on the issuer's CRL.
    """

    def __init__(self, trusted: list[CertificateAuthority] | None = None) -> None:
        self._cas: dict[str, CertificateAuthority] = {}
        for ca in trusted or []:
            self.add_trusted_ca(ca)

    def add_trusted_ca(self, ca: CertificateAuthority) -> None:
        self._cas[str(ca.dn)] = ca

    @property
    def trusted_issuers(self) -> list[str]:
        return sorted(self._cas)

    def validate(self, certificate: Certificate, now: float) -> None:
        """Full validation; raises a :class:`CertificateError` subclass on failure."""
        issuer = str(certificate.issuer)
        ca = self._cas.get(issuer)
        if ca is None:
            raise UntrustedIssuer(
                f"issuer {issuer!r} is not among trusted CAs {self.trusted_issuers}"
            )
        try:
            certificate.verify_signature(ca.root_certificate.public_key)
        except SignatureInvalid as err:
            # A certificate naming a trusted issuer but not signed by it is
            # a forgery attempt, not a mere signature hiccup.
            raise UntrustedIssuer(
                f"certificate claims issuer {issuer!r} but its signature "
                f"does not verify: {err}"
            ) from err
        certificate.check_validity(now)
        if ca.is_revoked(certificate):
            raise CertificateRevoked(
                f"certificate serial {certificate.serial} revoked: "
                f"{ca.crl[certificate.serial]}"
            )
