"""Exception hierarchy for the security substrate."""

from repro.errors import ReproError

__all__ = [
    "SecurityError",
    "CertificateError",
    "CertificateExpired",
    "CertificateRevoked",
    "UntrustedIssuer",
    "SignatureInvalid",
    "TamperedBundleError",
    "AuthenticationError",
    "MappingError",
]


class SecurityError(ReproError):
    """Base class for everything that can go wrong in the security layer."""

    code = "security.error"


class CertificateError(SecurityError):
    """A certificate is malformed or fails validation."""

    code = "security.certificate"


class CertificateExpired(CertificateError):
    """The certificate is outside its validity window."""

    code = "security.certificate_expired"


class CertificateRevoked(CertificateError):
    """The certificate appears on the issuing CA's revocation list."""

    code = "security.certificate_revoked"


class UntrustedIssuer(CertificateError):
    """No trusted CA vouches for this certificate."""

    code = "security.untrusted_issuer"


class SignatureInvalid(SecurityError):
    """A digital signature does not verify against the claimed key."""

    code = "security.signature_invalid"


class TamperedBundleError(SecurityError):
    """A signed applet bundle's content does not match its signed manifest."""

    code = "security.tampered_bundle"


class AuthenticationError(SecurityError):
    """Mutual authentication (SSL handshake) failed."""

    code = "security.authentication"


class MappingError(SecurityError):
    """The UUDB has no entry mapping this distinguished name to a local uid."""

    code = "security.mapping"
