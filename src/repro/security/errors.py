"""Exception hierarchy for the security substrate."""

__all__ = [
    "SecurityError",
    "CertificateError",
    "CertificateExpired",
    "CertificateRevoked",
    "UntrustedIssuer",
    "SignatureInvalid",
    "TamperedBundleError",
    "AuthenticationError",
    "MappingError",
]


class SecurityError(Exception):
    """Base class for everything that can go wrong in the security layer."""


class CertificateError(SecurityError):
    """A certificate is malformed or fails validation."""


class CertificateExpired(CertificateError):
    """The certificate is outside its validity window."""


class CertificateRevoked(CertificateError):
    """The certificate appears on the issuing CA's revocation list."""


class UntrustedIssuer(CertificateError):
    """No trusted CA vouches for this certificate."""


class SignatureInvalid(SecurityError):
    """A digital signature does not verify against the claimed key."""


class TamperedBundleError(SecurityError):
    """A signed applet bundle's content does not match its signed manifest."""


class AuthenticationError(SecurityError):
    """Mutual authentication (SSL handshake) failed."""


class MappingError(SecurityError):
    """The UUDB has no entry mapping this distinguished name to a local uid."""
