"""Number-theoretic primitives for the toy RSA implementation.

Everything here is deterministic given the caller-supplied RNG stream, so
certificate generation in tests and benchmarks is reproducible.
"""

from __future__ import annotations

import random

__all__ = [
    "egcd",
    "modinv",
    "is_probable_prime",
    "generate_prime",
]

# Small primes used for cheap trial division before Miller-Rabin.
_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
]


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclid: returns ``(g, x, y)`` with ``a*x + b*y == g == gcd(a, b)``."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    return old_r, old_s, old_t


def modinv(a: int, m: int) -> int:
    """Modular inverse of ``a`` mod ``m``; raises if not coprime."""
    g, x, _ = egcd(a % m, m)
    if g != 1:
        raise ValueError(f"{a} has no inverse modulo {m}")
    return x % m


def is_probable_prime(n: int, rng: random.Random, rounds: int = 24) -> bool:
    """Miller–Rabin probabilistic primality test.

    With 24 random bases the error probability is below 4**-24 ≈ 4e-15,
    far below anything that matters for a simulated PKI.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # write n-1 = d * 2^s with d odd
    d = n - 1
    s = 0
    while d % 2 == 0:
        d //= 2
        s += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(s - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a random prime with exactly ``bits`` bits.

    The top two bits are forced to 1 so the product of two such primes has
    exactly ``2*bits`` bits (standard RSA practice).
    """
    if bits < 8:
        raise ValueError("prime size below 8 bits is not supported")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1  # top bits + odd
        if is_probable_prime(candidate, rng):
            return candidate
