"""X.509-style certificates.

A :class:`Certificate` binds a :class:`DistinguishedName` to a public key
for a validity window, signed by an issuer.  The To-Be-Signed (TBS) part
is encoded canonically (sorted-key JSON) so signatures are stable across
processes.  The paper uses X.509v3 certificates as the *unique UNICORE
user identification*; here the DN string plays that role and is what the
gateway's UUDB maps to a local login (section 4 of the paper).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.security.errors import CertificateError, CertificateExpired, SignatureInvalid
from repro.security.rsa import RSAPublicKey, verify

__all__ = ["DistinguishedName", "Validity", "Certificate", "CertificateRole"]


class CertificateRole:
    """The three certificate roles of the UNICORE security architecture."""

    USER = "user"
    SERVER = "server"
    SOFTWARE = "software"
    CA = "ca"

    ALL = (USER, SERVER, SOFTWARE, CA)


@dataclass(frozen=True, slots=True, order=True)
class DistinguishedName:
    """An X.500 distinguished name: CN / OU / O / L / C.

    >>> dn = DistinguishedName(cn="Mathilde Romberg", o="FZ Juelich", c="DE")
    >>> str(dn)
    'CN=Mathilde Romberg, O=FZ Juelich, C=DE'
    """

    cn: str
    ou: str = ""
    o: str = ""
    l: str = ""  # noqa: E741 - X.500 attribute name
    c: str = ""

    def __post_init__(self) -> None:
        if not self.cn:
            raise CertificateError("distinguished name requires a CN")
        for attr in ("cn", "ou", "o", "l", "c"):
            if "," in getattr(self, attr) or "=" in getattr(self, attr):
                raise CertificateError(
                    f"DN attribute {attr} must not contain ',' or '='"
                )

    def __str__(self) -> str:
        parts = [("CN", self.cn), ("OU", self.ou), ("O", self.o),
                 ("L", self.l), ("C", self.c)]
        return ", ".join(f"{k}={v}" for k, v in parts if v)

    @classmethod
    def parse(cls, text: str) -> "DistinguishedName":
        """Parse ``'CN=x, O=y, ...'`` back into a DN."""
        fields: dict[str, str] = {}
        for chunk in text.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            if "=" not in chunk:
                raise CertificateError(f"malformed DN component {chunk!r}")
            key, _, value = chunk.partition("=")
            fields[key.strip().lower()] = value.strip()
        if "cn" not in fields:
            raise CertificateError(f"DN {text!r} lacks a CN")
        return cls(
            cn=fields.get("cn", ""),
            ou=fields.get("ou", ""),
            o=fields.get("o", ""),
            l=fields.get("l", ""),
            c=fields.get("c", ""),
        )


@dataclass(frozen=True, slots=True)
class Validity:
    """Certificate validity window in simulated epoch seconds."""

    not_before: float
    not_after: float

    def __post_init__(self) -> None:
        if self.not_after <= self.not_before:
            raise CertificateError("validity window is empty or inverted")

    def contains(self, now: float) -> bool:
        return self.not_before <= now <= self.not_after

    @property
    def lifetime(self) -> float:
        return self.not_after - self.not_before


@dataclass(frozen=True, slots=True)
class Certificate:
    """A signed binding of a DN to a public key.

    Attributes
    ----------
    serial:
        Unique per issuing CA.
    role:
        One of :class:`CertificateRole` — user, server, software, or ca.
    extensions:
        Free-form string map (e.g. ``{"site": "FZJ"}``); signed.
    signature:
        RSA signature by the issuer over :meth:`tbs_bytes`.
    """

    serial: int
    subject: DistinguishedName
    issuer: DistinguishedName
    public_key: RSAPublicKey
    validity: Validity
    role: str
    extensions: dict[str, str] = field(default_factory=dict)
    signature: int = 0

    def __post_init__(self) -> None:
        if self.role not in CertificateRole.ALL:
            raise CertificateError(f"unknown certificate role {self.role!r}")

    # -- canonical encoding --------------------------------------------------
    def tbs_dict(self) -> dict:
        """The to-be-signed content as a plain dict."""
        return {
            "serial": self.serial,
            "subject": str(self.subject),
            "issuer": str(self.issuer),
            "public_key": self.public_key.to_dict(),
            "not_before": self.validity.not_before,
            "not_after": self.validity.not_after,
            "role": self.role,
            "extensions": dict(sorted(self.extensions.items())),
        }

    def tbs_bytes(self) -> bytes:
        """Canonical byte encoding of the to-be-signed content."""
        return json.dumps(self.tbs_dict(), sort_keys=True, separators=(",", ":")).encode()

    def with_signature(self, signature: int) -> "Certificate":
        return Certificate(
            serial=self.serial,
            subject=self.subject,
            issuer=self.issuer,
            public_key=self.public_key,
            validity=self.validity,
            role=self.role,
            extensions=dict(self.extensions),
            signature=signature,
        )

    # -- checks ---------------------------------------------------------------
    @property
    def is_self_signed(self) -> bool:
        return self.subject == self.issuer

    def verify_signature(self, issuer_key: RSAPublicKey) -> None:
        """Raise :class:`SignatureInvalid` unless ``issuer_key`` signed this."""
        if self.signature == 0:
            raise SignatureInvalid(f"certificate {self.serial} is unsigned")
        verify(issuer_key, self.tbs_bytes(), self.signature)

    def check_validity(self, now: float) -> None:
        """Raise :class:`CertificateExpired` if ``now`` is outside the window."""
        if not self.validity.contains(now):
            raise CertificateExpired(
                f"certificate for {self.subject} valid "
                f"[{self.validity.not_before}, {self.validity.not_after}], "
                f"checked at {now}"
            )

    def __str__(self) -> str:
        return f"Certificate[{self.role}] {self.subject} (serial {self.serial})"
