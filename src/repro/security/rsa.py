"""Toy RSA signatures over SHA-256 digests.

This is *textbook* RSA with deterministic full-domain-ish padding — small
keys, fast keygen, real mathematical signatures that fail on any bit flip.
It deliberately does not attempt production-grade padding (OAEP/PSS):
what the architecture reproduction needs from the crypto layer is
(1) unforgeability against accidental modification, (2) key identity, and
(3) measurable sign/verify cost. See DESIGN.md "Substitutions".
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from repro.security.errors import SignatureInvalid
from repro.security.numbertheory import generate_prime, modinv

__all__ = ["RSAPublicKey", "RSAKeyPair", "sign", "verify", "digest"]

_E = 65537


def digest(data: bytes) -> bytes:
    """SHA-256 digest of ``data`` — the hash underlying all signatures."""
    return hashlib.sha256(data).digest()


@dataclass(frozen=True, slots=True)
class RSAPublicKey:
    """An RSA public key ``(n, e)``."""

    n: int
    e: int

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    def fingerprint(self) -> str:
        """Short hex fingerprint identifying this key."""
        material = f"{self.n:x}:{self.e:x}".encode()
        return hashlib.sha256(material).hexdigest()[:16]

    def to_dict(self) -> dict:
        return {"n": f"{self.n:x}", "e": self.e}

    @classmethod
    def from_dict(cls, d: dict) -> "RSAPublicKey":
        return cls(n=int(d["n"], 16), e=int(d["e"]))


@dataclass(frozen=True, slots=True)
class RSAKeyPair:
    """An RSA keypair; the private exponent stays inside this object."""

    public: RSAPublicKey
    d: int

    @classmethod
    def generate(cls, bits: int = 512, seed: int | None = None) -> "RSAKeyPair":
        """Generate a keypair with a modulus of ``bits`` bits.

        ``seed`` makes generation deterministic (tests/benchmarks); with
        ``None`` a fresh system-seeded stream is used.
        """
        if bits < 288:
            raise ValueError("modulus below 288 bits cannot pad a SHA-256 digest")
        rng = random.Random(seed)
        half = bits // 2
        while True:
            p = generate_prime(half, rng)
            q = generate_prime(bits - half, rng)
            if p == q:
                continue
            n = p * q
            phi = (p - 1) * (q - 1)
            if phi % _E == 0:
                continue
            d = modinv(_E, phi)
            return cls(public=RSAPublicKey(n=n, e=_E), d=d)

    def sign(self, data: bytes) -> int:
        return sign(self, data)


def _encode_digest(data: bytes, n: int) -> int:
    """Deterministically pad SHA-256(data) to an integer < n.

    Layout (big-endian): ``0x01 || 0xFF.. || 0x00 || digest`` truncated to
    fit below ``n`` — a simplified EMSA-PKCS1-v1_5.
    """
    dg = digest(data)
    k = (n.bit_length() - 1) // 8  # bytes that always fit below n
    if k < len(dg) + 2:
        raise ValueError("modulus too small for SHA-256 padding")
    padded = b"\x01" + b"\xff" * (k - len(dg) - 2) + b"\x00" + dg
    return int.from_bytes(padded, "big")


def sign(keypair: RSAKeyPair, data: bytes) -> int:
    """Sign ``data``; returns the signature as an integer."""
    m = _encode_digest(data, keypair.public.n)
    return pow(m, keypair.d, keypair.public.n)


def verify(public: RSAPublicKey, data: bytes, signature: int) -> None:
    """Verify ``signature`` over ``data``; raises :class:`SignatureInvalid`.

    Raising (rather than returning bool) forces call sites to handle
    failure explicitly — a misuse-resistance idiom.
    """
    if not isinstance(signature, int) or not 0 < signature < public.n:
        raise SignatureInvalid("signature out of range for modulus")
    expected = _encode_digest(data, public.n)
    if pow(signature, public.e, public.n) != expected:
        raise SignatureInvalid("signature does not match data under this key")
