"""Deprecated aggregate namespace — superseded by :mod:`repro.api`.

This package once re-exported the whole core API (AJO, protocol,
server, client) as a single flat namespace.  With the
:class:`repro.api.GridSession` facade as the supported public surface,
the flat namespace is kept only for backward compatibility: every
attribute still resolves, but the first access of each name emits a
:class:`DeprecationWarning` pointing at its real home.

Migrate as follows:

* end-to-end job submission/monitoring -> :mod:`repro.api`;
* AJO authoring types -> :mod:`repro.ajo`;
* protocol primitives -> :mod:`repro.protocol`;
* server/deployment classes -> :mod:`repro.server`;
* applet-level client classes -> :mod:`repro.client`.
"""

from __future__ import annotations

from repro._compat import deprecated_module_attr

__all__ = [
    "AJOOutcome",
    "AbstractAction",
    "AbstractJobObject",
    "AbstractService",
    "AbstractTaskObject",
    "ActionStatus",
    "AsyncProtocolClient",
    "Browser",
    "CompileTask",
    "ControlService",
    "ExecuteScriptTask",
    "ExecuteTask",
    "ExportTask",
    "FileOutcome",
    "FileTask",
    "Gateway",
    "GridSession",
    "ImportTask",
    "JobBuilder",
    "JobHandle",
    "JobMonitorController",
    "JobPreparationAgent",
    "LinkTask",
    "ListService",
    "NetworkJobSupervisor",
    "Outcome",
    "QueryService",
    "Reply",
    "Request",
    "RequestKind",
    "RetryPolicy",
    "TaskOutcome",
    "TransferTask",
    "TranslationTable",
    "UnicoreSession",
    "Usite",
    "UserTask",
    "Vsite",
    "decode_ajo",
    "decode_outcome",
    "encode_ajo",
    "encode_outcome",
    "validate_ajo",
]

#: name -> the module that actually defines it.
_HOMES: dict[str, str] = {
    "GridSession": "repro.api",
    "JobHandle": "repro.api",
    "Browser": "repro.client",
    "JobBuilder": "repro.client",
    "JobMonitorController": "repro.client",
    "JobPreparationAgent": "repro.client",
    "UnicoreSession": "repro.client",
    "AsyncProtocolClient": "repro.protocol",
    "Reply": "repro.protocol",
    "Request": "repro.protocol",
    "RequestKind": "repro.protocol",
    "RetryPolicy": "repro.protocol",
    "Gateway": "repro.server",
    "NetworkJobSupervisor": "repro.server",
    "TranslationTable": "repro.server",
    "Usite": "repro.server",
    "Vsite": "repro.server",
}
# Everything else lives in repro.ajo.
for _name in __all__:
    _HOMES.setdefault(_name, "repro.ajo")

__getattr__, __dir__ = deprecated_module_attr(
    __name__, globals(), _HOMES,
    hint="(or use the repro.api.GridSession facade)",
)
