"""Deprecated aggregate namespace — superseded by :mod:`repro.api`.

This package once re-exported the whole core API (AJO, protocol,
server, client) as a single flat namespace.  With the
:class:`repro.api.GridSession` facade as the supported public surface,
the flat namespace is kept only for backward compatibility: every
attribute still resolves, but the first access of each name emits a
:class:`DeprecationWarning` pointing at its real home.

Migrate as follows:

* end-to-end job submission/monitoring -> :mod:`repro.api`;
* AJO authoring types -> :mod:`repro.ajo`;
* protocol primitives -> :mod:`repro.protocol`;
* server/deployment classes -> :mod:`repro.server`;
* applet-level client classes -> :mod:`repro.client`.
"""

from __future__ import annotations

import importlib
import warnings

__all__ = [
    "AJOOutcome",
    "AbstractAction",
    "AbstractJobObject",
    "AbstractService",
    "AbstractTaskObject",
    "ActionStatus",
    "AsyncProtocolClient",
    "Browser",
    "CompileTask",
    "ControlService",
    "ExecuteScriptTask",
    "ExecuteTask",
    "ExportTask",
    "FileOutcome",
    "FileTask",
    "Gateway",
    "GridSession",
    "ImportTask",
    "JobBuilder",
    "JobHandle",
    "JobMonitorController",
    "JobPreparationAgent",
    "LinkTask",
    "ListService",
    "NetworkJobSupervisor",
    "Outcome",
    "QueryService",
    "Reply",
    "Request",
    "RequestKind",
    "RetryPolicy",
    "TaskOutcome",
    "TransferTask",
    "TranslationTable",
    "UnicoreSession",
    "Usite",
    "UserTask",
    "Vsite",
    "decode_ajo",
    "decode_outcome",
    "encode_ajo",
    "encode_outcome",
    "validate_ajo",
]

#: name -> the module that actually defines it.
_HOMES: dict[str, str] = {
    "GridSession": "repro.api",
    "JobHandle": "repro.api",
    "Browser": "repro.client",
    "JobBuilder": "repro.client",
    "JobMonitorController": "repro.client",
    "JobPreparationAgent": "repro.client",
    "UnicoreSession": "repro.client",
    "AsyncProtocolClient": "repro.protocol",
    "Reply": "repro.protocol",
    "Request": "repro.protocol",
    "RequestKind": "repro.protocol",
    "RetryPolicy": "repro.protocol",
    "Gateway": "repro.server",
    "NetworkJobSupervisor": "repro.server",
    "TranslationTable": "repro.server",
    "Usite": "repro.server",
    "Vsite": "repro.server",
}
# Everything else lives in repro.ajo.
for _name in __all__:
    _HOMES.setdefault(_name, "repro.ajo")

_warned: set[str] = set()


def __getattr__(name: str):
    home = _HOMES.get(name)
    if home is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    if name not in _warned:
        _warned.add(name)
        warnings.warn(
            f"repro.core.{name} is deprecated; import it from {home} "
            "(or use the repro.api.GridSession facade)",
            DeprecationWarning,
            stacklevel=2,
        )
    value = getattr(importlib.import_module(home), name)
    globals()[name] = value  # warn once, then resolve at module speed
    return value


def __dir__() -> list[str]:
    return sorted(__all__)
