"""The paper's primary contribution, under one roof.

UNICORE's core is not a single algorithm but the combination of four
pieces: the recursive Abstract Job Object (:mod:`repro.ajo`), the
asynchronous protocol that moves it (:mod:`repro.protocol`), the server
tier that executes it — gateway plus NJS (:mod:`repro.server`) — and the
client tier that authors and monitors it (:mod:`repro.client`).  This
package re-exports that core API as a single namespace; the substrate
packages (simkernel, net, security, resources, vfs, batch) stay separate,
mirroring the DESIGN.md inventory.
"""

from repro.ajo import (
    AbstractAction,
    AbstractJobObject,
    AbstractService,
    AbstractTaskObject,
    ActionStatus,
    AJOOutcome,
    CompileTask,
    ControlService,
    ExecuteScriptTask,
    ExecuteTask,
    ExportTask,
    FileOutcome,
    FileTask,
    ImportTask,
    LinkTask,
    ListService,
    Outcome,
    QueryService,
    TaskOutcome,
    TransferTask,
    UserTask,
    decode_ajo,
    decode_outcome,
    encode_ajo,
    encode_outcome,
    validate_ajo,
)
from repro.client import (
    Browser,
    JobBuilder,
    JobMonitorController,
    JobPreparationAgent,
    UnicoreSession,
)
from repro.protocol import (
    AsyncProtocolClient,
    Reply,
    Request,
    RequestKind,
    RetryPolicy,
)
from repro.server import (
    Gateway,
    NetworkJobSupervisor,
    TranslationTable,
    Usite,
    Vsite,
)

__all__ = [
    "AJOOutcome",
    "AbstractAction",
    "AbstractJobObject",
    "AbstractService",
    "AbstractTaskObject",
    "ActionStatus",
    "AsyncProtocolClient",
    "Browser",
    "CompileTask",
    "ControlService",
    "ExecuteScriptTask",
    "ExecuteTask",
    "ExportTask",
    "FileOutcome",
    "FileTask",
    "Gateway",
    "ImportTask",
    "JobBuilder",
    "JobMonitorController",
    "JobPreparationAgent",
    "LinkTask",
    "ListService",
    "NetworkJobSupervisor",
    "Outcome",
    "QueryService",
    "Reply",
    "Request",
    "RequestKind",
    "RetryPolicy",
    "TaskOutcome",
    "TransferTask",
    "TranslationTable",
    "UnicoreSession",
    "Usite",
    "UserTask",
    "Vsite",
    "decode_ajo",
    "decode_outcome",
    "encode_ajo",
    "encode_outcome",
    "validate_ajo",
]
